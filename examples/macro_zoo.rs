//! The macro-communication zoo: the paper's Examples 2–4 (broadcast,
//! gather, reduction) detected end to end, plus the geometry of total vs
//! partial vs hidden collectives.
//!
//! ```text
//! cargo run -p rescomm-bench --example macro_zoo
//! ```

use rescomm::substrate::macrocomm::{detect, Extent, MacroInput};
use rescomm::{map_nest, MappingOptions};
use rescomm_intlin::IMat;
use rescomm_loopnest::examples::{example2_broadcast, example3_gather, example4_reduction};
use rescomm_loopnest::AccessKind;

fn main() {
    for (name, nest) in [
        ("Example 2 (broadcast)", example2_broadcast(8)),
        ("Example 3 (gather)", example3_gather(8)),
        ("Example 4 (reduction)", example4_reduction(8)),
    ] {
        println!("=== {name} ===");
        let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        println!("{}", mapping.report(&nest));
    }

    // Raw detector geometry: the same access under three mappings.
    println!("=== geometry of r[i,j] = f(a[i]) under three mappings ===");
    let theta = IMat::zeros(1, 2);
    let f = IMat::from_rows(&[&[1, 0]]);
    let m_x = IMat::identity(1);
    for (label, m_s) in [
        (
            "identity mapping (axis-parallel partial broadcast)",
            IMat::identity(2),
        ),
        (
            "skewed mapping (diagonal broadcast, needs rotation)",
            IMat::from_rows(&[&[1, 1], &[0, 1]]),
        ),
        (
            "projection onto i (broadcast hidden)",
            IMat::from_rows(&[&[1, 0]]),
        ),
    ] {
        let got = detect(MacroInput {
            theta: &theta,
            f: &f,
            m_s: &m_s,
            m_x: &m_x,
            kind: AccessKind::Read,
            stmt_is_reduction: false,
        })
        .expect("broadcast geometry always present");
        let extent = match got.extent {
            Extent::Total => "total".to_string(),
            Extent::Partial { r } => format!("partial (r = {r})"),
            Extent::Hidden => "hidden".to_string(),
        };
        println!("  {label}: {extent}, axis-parallel = {}", got.axis_parallel);
    }
}
