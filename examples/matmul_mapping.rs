//! Mapping the matrix–matrix product — the paper's §1 example of a kernel
//! with *no* communication-free 2-D mapping. Shows how the heuristic
//! degrades gracefully: one operand aligned, the others become structured
//! residual communications.
//!
//! ```text
//! cargo run -p rescomm-bench --example matmul_mapping
//! ```

use rescomm::{map_nest, CommOutcome, MappingOptions};
use rescomm_loopnest::examples::matmul;

fn main() {
    let nest = matmul(16);
    println!("{nest}");

    for m in [1usize, 2] {
        let mapping = map_nest(&nest, &MappingOptions::new(m)).unwrap();
        println!("--- target grid dimension m = {m} ---");
        println!("{}", mapping.report(&nest));
        let n_general = mapping
            .outcomes
            .iter()
            .filter(|o| matches!(o, CommOutcome::General))
            .count();
        println!(
            "non-local accesses left fully general: {n_general} of {}\n",
            nest.accesses.len()
        );
    }

    // The paper's point: residual communications are unavoidable for this
    // kernel; the question is only whether they are *structured*.
    let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
    assert!(
        mapping
            .outcomes
            .iter()
            .any(|o| matches!(o, CommOutcome::Local)),
        "at least one operand must align"
    );
}
