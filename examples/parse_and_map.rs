//! Describe a nest in the textual mini-language, parse it, and map it —
//! the workflow a compiler front-end would use.
//!
//! ```text
//! cargo run -p rescomm-bench --example parse_and_map
//! ```

use rescomm::{map_nest, MappingOptions};
use rescomm_loopnest::parser::parse_nest;

const SOURCE: &str = r#"
# A 2-statement pipeline: the first stage produces t, the second
# consumes it transposed while ALSO reading src directly — the cycle
# src -> Produce -> t -> Consume -> src cannot be made fully local
# (its matrix product is the transposition, not the identity).
nest transpose-pipeline
array src 2
array t 2
array dst 2
stmt Produce depth 2 domain 0..15 0..15
  read  src [1 0; 0 1]
  write t   [1 0; 0 1]
stmt Consume depth 2 domain 0..15 0..15
  read  t   [0 1; 1 0]
  read  src [1 0; 0 1]
  write dst [1 0; 0 1]
"#;

fn main() {
    let nest = parse_nest(SOURCE).expect("the demo source must parse");
    println!("{nest}");

    let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
    println!("{}", mapping.report(&nest));

    // The transpose closes a non-identity cycle: exactly one access stays
    // non-local — and the heuristic structures it (decomposition or
    // macro-communication) instead of leaving it general.
    let r = mapping.report(&nest);
    assert_eq!(r.n_accesses(), 5);
    assert!(r.n_local >= 3, "{r}");
    assert!(r.n_local < 5, "the transposition cycle cannot be free");
}
