//! Quickstart: map the paper's motivating example onto a 2-D virtual grid
//! and print what happened to every communication.
//!
//! ```text
//! cargo run -p rescomm-bench --example quickstart
//! ```

use rescomm::{map_nest, MappingOptions};
use rescomm_loopnest::examples::motivating_example;

fn main() {
    // The reconstructed §2 nest: 3 statements, 3 arrays, 8 affine accesses.
    let (nest, ids) = motivating_example(8, 4);
    println!("{nest}");

    // Run the complete two-step heuristic for a 2-D virtual grid.
    let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();

    // The report tells the §2 story: 5 local communications, two partial
    // broadcasts (one needed a unimodular rotation to become axis-parallel,
    // the rank-deficient one came along for free), and one residual
    // communication decomposed into two elementary factors.
    let report = mapping.report(&nest);
    println!("{report}");

    // The allocation matrices are ordinary integer matrices you can
    // inspect (and hand to a code generator).
    println!(
        "allocation of statement S1:\n{}",
        mapping.alignment.stmt_alloc[ids.s1.0].mat
    );
    println!(
        "allocation of array a:\n{}",
        mapping.alignment.array_alloc[ids.a.0].mat
    );

    assert_eq!(report.n_local, 5);
    assert_eq!(report.n_broadcast, 2);
    assert_eq!(report.n_decomposed, 1);
    assert_eq!(report.n_general, 0);
    println!("\nall §2 claims check out.");
}
