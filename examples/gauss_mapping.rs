//! Mapping Gaussian elimination: a sequential outer loop, shifted affine
//! accesses, a rank-deficient pivot access — and a message-vectorization
//! check (§3.5) on the result.
//!
//! ```text
//! cargo run -p rescomm-bench --example gauss_mapping
//! ```

use rescomm::substrate::macrocomm::vectorizable;
use rescomm::{map_nest, MappingOptions};
use rescomm_loopnest::examples::gauss_elim;

fn main() {
    let nest = gauss_elim(16);
    println!("{nest}");

    let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
    println!("{}", mapping.report(&nest));

    // §3.5: which of the remaining communications can be hoisted out of
    // the sequential k loop and sent as one big message?
    println!("message vectorization (ker M_S ⊆ ker M_A·F):");
    for acc in &nest.accesses {
        let m_s = &mapping.alignment.stmt_alloc[acc.stmt.0].mat;
        let m_x = &mapping.alignment.array_alloc[acc.array.0].mat;
        let mxf = m_x * &acc.f;
        println!(
            "  access {:?} (A[F{}·I+c]): vectorizable = {}",
            acc.id,
            acc.id.0,
            vectorizable(m_s, &mxf)
        );
    }
}
