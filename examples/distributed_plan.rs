//! From mapping to runtime artifacts: build the communication *plan* of a
//! mapped nest, prove it delivers every element to its consumer, execute
//! the nest distributed and check it computes exactly the sequential
//! result, then price the plan on the simulated Paragon.
//!
//! ```text
//! cargo run -p rescomm-bench --example distributed_plan
//! ```

use rescomm::substrate::distribution::{Dist1D, Dist2D};
use rescomm::substrate::machine::{CostModel, Mesh2D};
use rescomm::{build_plan, map_nest, verify_execution, MappingOptions, PhaseKind, ScheduleMode};
use rescomm_loopnest::examples::motivating_example;

fn main() {
    let (nest, _) = motivating_example(6, 2);
    let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
    println!("{}", mapping.report(&nest));

    // The plan: ordered message phases a runtime would execute.
    let plan = build_plan(&nest, &mapping);
    println!(
        "communication plan: {} phases, {} virtual messages",
        plan.phases.len(),
        plan.message_count()
    );
    for phase in &plan.phases {
        let kind = match &phase.kind {
            PhaseKind::Translation => "translation".to_string(),
            PhaseKind::CollectiveRound => "collective placement".to_string(),
            PhaseKind::Elementary(e) => format!("elementary {e}"),
            PhaseKind::DecompositionShift => "final shift".to_string(),
            PhaseKind::UnirowFactor => "unirow sweep".to_string(),
            PhaseKind::GeneralAffine => "general affine".to_string(),
        };
        println!(
            "  access {:?}: {kind} ({} msgs)",
            phase.access,
            phase.pattern.explicit().map_or(0, <[_]>::len)
        );
    }

    // Prove the plan correct: every element reaches its consumer.
    plan.verify_availability(&nest, &mapping)
        .expect("plan must deliver all data");
    println!("\navailability proof: ok");

    // Execute the nest distributed and compare against sequential.
    let stats = verify_execution(&nest, &mapping).expect("distributed run must match");
    println!(
        "functional check: ok ({} instances, {:.0}% reads local, {} remote reads)",
        stats.instances,
        100.0 * stats.read_locality(),
        stats.remote_reads
    );

    // Price the plan on the 8×4 mesh, under both schedule modes.
    let mesh = Mesh2D::new(8, 4, CostModel::paragon());
    let dist = Dist2D::uniform(Dist1D::Cyclic);
    let t = plan.simulate_on_mesh(&mesh, dist, (24, 24), 128, ScheduleMode::Phased);
    println!("simulated plan time on 8×4 Paragon mesh: {t} ns (phased)");
    let over = plan.simulate_on_mesh(&mesh, dist, (24, 24), 128, ScheduleMode::overlapped());
    println!("with overlapped phase scheduling:        {over} ns");
}
