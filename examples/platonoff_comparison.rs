//! §7.2 of the paper: the order of the two optimization concerns matters.
//! Platonoff detects macro-communications *first* and then zeroes what
//! remains; the paper zeroes first and optimizes the residue. On
//! Example 5 the difference is stark: communication-free vs one broadcast
//! per timestep.
//!
//! ```text
//! cargo run -p rescomm-bench --example platonoff_comparison
//! ```

use rescomm::baselines::platonoff_map;
use rescomm::{map_nest, CommOutcome, MappingOptions};
use rescomm_loopnest::examples::example5_platonoff;

fn main() {
    let (nest, ids) = example5_platonoff(8);
    println!("{nest}");
    println!("schedule: outer t sequential, i/j/k parallel; target m = 2\n");

    let ours = map_nest(&nest, &MappingOptions::new(2)).unwrap();
    println!("--- locality-first (this paper) ---");
    println!("{}", ours.report(&nest));
    println!("M_S = \n{}\n", ours.alignment.stmt_alloc[ids.s.0].mat);

    let theirs = platonoff_map(&nest, 2);
    println!("--- macro-first (Platonoff) ---");
    println!("{}", theirs.report(&nest));
    println!(
        "M_S = \n{}\n(the broadcast direction e4 is preserved — and paid for)\n",
        theirs.alignment.stmt_alloc[ids.s.0].mat
    );

    let ours_free = ours
        .outcomes
        .iter()
        .all(|o| matches!(o, CommOutcome::Local));
    let theirs_bc = theirs
        .outcomes
        .iter()
        .any(|o| matches!(o, CommOutcome::Macro { .. }));
    assert!(ours_free, "locality-first must be communication-free here");
    assert!(theirs_bc, "macro-first must keep its broadcast");
    println!("conclusion: zero out first, then optimize the residue.");
}
