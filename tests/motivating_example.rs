//! End-to-end integration test for the §2 motivating example: every
//! claim of the paper's worked narrative, across all crates.

use rescomm::substrate::accessgraph::{
    augment, component_structure, maximum_branching, AccessGraph,
};
use rescomm::substrate::alignment::{compute_alignment, residual_communications};
use rescomm::{map_nest, CommOutcome, MappingOptions};
use rescomm_bench::workload::{mapping_cost_on_mesh, paragon_mesh};
use rescomm_loopnest::deps::is_doall;
use rescomm_loopnest::examples::motivating_example;

#[test]
fn nest_is_doall_as_claimed() {
    let (nest, _) = motivating_example(4, 2);
    assert!(
        is_doall(&nest).unwrap(),
        "§2: no data dependences in the nest"
    );
}

#[test]
fn figure1_access_graph() {
    // Fig. 1: 6 vertices; the rank-deficient access is not represented.
    let (nest, ids) = motivating_example(8, 4);
    let g = AccessGraph::build(&nest, 2);
    assert_eq!(g.vertices.len(), 6);
    assert_eq!(g.represented_accesses(), 7);
    assert_eq!(g.excluded.len(), 1);
    assert_eq!(g.excluded[0].0, ids.f8);
}

#[test]
fn figure2_integer_weights() {
    // Fig. 2: weight = rank of the access matrix; the two depth-3 square
    // accesses weigh 3, everything else 2.
    let (nest, ids) = motivating_example(8, 4);
    let g = AccessGraph::build(&nest, 2);
    for e in &g.edges {
        let want = nest.access(e.access).f.rank() as i64;
        assert_eq!(e.int_weight, want);
    }
    let w = |a| g.edges.iter().find(|e| e.access == a).unwrap().int_weight;
    assert_eq!(w(ids.f5), 3);
    assert_eq!(w(ids.f7), 3);
    assert_eq!(w(ids.f1), 2);
}

#[test]
fn figure3_maximum_branching() {
    // Fig. 3: 5 of the 7 represented communications become local, and the
    // two maximum-weight edges are among them.
    let (nest, ids) = motivating_example(8, 4);
    let g = AccessGraph::build(&nest, 2);
    let b = maximum_branching(&g);
    assert_eq!(b.edges.len(), 5);
    assert_eq!(b.total_weight, 12);
    let accs: Vec<_> = b.edges.iter().map(|e| g.edges[e.0].access).collect();
    assert!(accs.contains(&ids.f5));
    assert!(accs.contains(&ids.f7));
}

#[test]
fn single_connected_component() {
    let (nest, _) = motivating_example(8, 4);
    let g = AccessGraph::build(&nest, 2);
    let b = maximum_branching(&g);
    let comps = component_structure(&g, &b, &nest);
    assert_eq!(comps.len(), 1);
    assert_eq!(comps[0].members.len(), 6);
}

#[test]
fn residuals_before_step2() {
    let (nest, ids) = motivating_example(8, 4);
    let g = AccessGraph::build(&nest, 2);
    let b = maximum_branching(&g);
    let comps = component_structure(&g, &b, &nest);
    let aug = augment(&g, &b.edges, &comps, 2);
    let al = compute_alignment(&nest, &g, &comps, &aug);
    let res = residual_communications(&nest, &al);
    let accs: Vec<_> = res.iter().map(|r| r.access).collect();
    assert_eq!(accs.len(), 3);
    assert!(accs.contains(&ids.f3));
    assert!(accs.contains(&ids.f6));
    assert!(accs.contains(&ids.f8));
}

#[test]
fn section2_final_tally() {
    // "we finally obtain … 5 local communications, one broadcast and one
    // residual communication that can be decomposed into two elementary
    // communications" — plus the footnoted F8 broadcast.
    let (nest, ids) = motivating_example(8, 4);
    let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
    let r = mapping.report(&nest);
    assert_eq!(r.n_local, 5);
    assert_eq!(r.n_broadcast, 2);
    assert_eq!(r.n_decomposed, 1);
    assert_eq!(r.n_factors, 2);
    assert_eq!(r.n_general, 0);
    // The broadcast needed exactly one unimodular rotation of the (single)
    // component.
    assert_eq!(mapping.rotations.len(), 1);
    let v = mapping.rotations.values().next().unwrap();
    assert!(rescomm::substrate::intlin::is_unimodular(v));
    // F3 decomposes into exactly L·U (two factors).
    match &mapping.outcomes[ids.f3.0] {
        CommOutcome::Decomposed { factors, .. } => assert_eq!(factors.len(), 2),
        other => panic!("F3: {other:?}"),
    }
}

#[test]
fn locality_survives_everything() {
    // After branching, augmentation, rotation: the five local accesses
    // have exactly zero communication distance at every iteration point.
    let (nest, ids) = motivating_example(4, 2);
    let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
    for fid in [ids.f1, ids.f2, ids.f4, ids.f5, ids.f7] {
        let acc = nest.access(fid);
        let dom = &nest.statement(acc.stmt).domain;
        for p in dom.points() {
            let d = mapping.alignment.comm_distance(&nest, acc, &p);
            assert_eq!(d, vec![0, 0], "access {fid:?} at {p:?}");
        }
    }
}

#[test]
fn two_step_beats_step1_on_simulated_mesh() {
    let (nest, _) = motivating_example(8, 4);
    let mesh = paragon_mesh();
    let ours = map_nest(&nest, &MappingOptions::new(2)).unwrap();
    let step1 = rescomm::baselines::feautrier_map(&nest, 2).unwrap();
    let c_ours = mapping_cost_on_mesh(&nest, &ours, &mesh, (32, 16), 256);
    let c_step1 = mapping_cost_on_mesh(&nest, &step1, &mesh, (32, 16), 256);
    assert!(
        c_ours < c_step1,
        "residual optimization must pay off: {c_ours} vs {c_step1}"
    );
}
