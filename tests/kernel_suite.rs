//! The classic-kernel suite: qualitative mapping expectations for the
//! textbook nests, end to end through the full pipeline.

use rescomm::{map_nest, CommOutcome, MappingOptions};
use rescomm_loopnest::examples;

fn outcome_counts(nest: &rescomm_loopnest::LoopNest) -> (usize, usize, usize, usize, usize) {
    let mapping = map_nest(nest, &MappingOptions::new(2)).unwrap();
    let mut loc = 0;
    let mut tra = 0;
    let mut mac = 0;
    let mut dec = 0;
    let mut gen = 0;
    for o in &mapping.outcomes {
        match o {
            CommOutcome::Local => loc += 1,
            CommOutcome::Translation => tra += 1,
            CommOutcome::Macro { .. } => mac += 1,
            CommOutcome::Decomposed { .. } | CommOutcome::DecomposedGeneral { .. } => dec += 1,
            CommOutcome::General => gen += 1,
        }
    }
    (loc, tra, mac, dec, gen)
}

#[test]
fn jacobi_is_all_local_or_translation() {
    // Uniform dependences: alignment zeroes the linear parts; the offsets
    // remain as fixed-size translations — exactly the "regular fixed-size
    // communications that can be performed efficiently" of §2.1.
    let nest = examples::jacobi2d(8);
    let (loc, tra, mac, dec, gen) = outcome_counts(&nest);
    assert_eq!(mac + dec + gen, 0, "no structured residue expected");
    assert_eq!(loc + tra, 6);
    assert!(tra >= 4, "the four neighbour reads are translations");
}

#[test]
fn stencil1d_translations_not_vectorizable() {
    let nest = examples::stencil1d(10, 5);
    let (loc, tra, mac, dec, gen) = outcome_counts(&nest);
    assert_eq!(mac + dec + gen, 0);
    assert_eq!(loc + tra, 4);
    // §3.5: the moving window reads different data every timestep, so the
    // communication must NOT be vectorizable.
    let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
    for acc in &nest.accesses {
        let m_s = &mapping.alignment.stmt_alloc[acc.stmt.0].mat;
        let m_x = &mapping.alignment.array_alloc[acc.array.0].mat;
        let mxf = m_x * &acc.f;
        // Identity allocations on (t, i): ker M_S trivial ⇒ vectorizable
        // holds trivially; the interesting check is that the *time-sliced*
        // processor map (drop the t row) is not vectorizable.
        let sliced_ms = m_s.submatrix(1, 2, 0, 2);
        assert!(
            !rescomm::substrate::macrocomm::vectorizable(&sliced_ms, &mxf)
                || mxf.rank() < 2
                || acc.c[0] == 1, // the write moves with t by construction
            "shifting-window access {:?} must not vectorize",
            acc.id
        );
    }
}

#[test]
fn transpose_aligns_completely() {
    // With independent allocations for A and B, the swap is absorbed into
    // M_B = M_S·J: a transpose alone is communication-FREE after
    // alignment (the cost only appears when a third access closes a
    // non-identity cycle — see examples/parse_and_map.rs).
    let nest = examples::transpose(8);
    let (loc, tra, mac, dec, gen) = outcome_counts(&nest);
    assert_eq!(loc + tra, 2);
    assert_eq!(mac + dec + gen, 0);
}

#[test]
fn syrk_broadcast_structure() {
    // C aligned with one A-read; the second A-read shares elements across
    // the l loop: macro-communication or decomposition, never general.
    let nest = examples::syrk(6);
    let (loc, _tra, mac, dec, gen) = outcome_counts(&nest);
    assert!(loc >= 1);
    assert_eq!(gen + mac + dec + loc, 3);
    assert_eq!(gen, 0, "syrk residuals must be structured");
}

#[test]
fn matmul_no_general_residue() {
    let nest = examples::matmul(8);
    let (_loc, _tra, mac, dec, gen) = outcome_counts(&nest);
    assert_eq!(gen, 0, "matmul residuals must be structured (macro)");
    assert!(mac + dec >= 1);
}

#[test]
fn gauss_pivot_broadcasts() {
    // The A[k,k] and A[k,c] / A[r,k] accesses read pivot data used by a
    // whole row/column of processors at fixed k: broadcast candidates.
    let nest = examples::gauss_elim(8);
    let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
    let n_macro = mapping
        .outcomes
        .iter()
        .filter(|o| matches!(o, CommOutcome::Macro { .. }))
        .count();
    assert!(n_macro >= 1, "outcomes: {:?}", mapping.outcomes);
}

#[test]
fn every_kernel_maps_deterministically() {
    // Same input ⇒ same mapping, across repeated runs (no hidden state).
    for nest in [
        examples::jacobi2d(6),
        examples::transpose(6),
        examples::syrk(4),
        examples::stencil1d(8, 4),
        examples::matmul(4),
        examples::gauss_elim(4),
        examples::adi_sweep(6),
    ] {
        let a = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        let b = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        assert_eq!(a.outcomes, b.outcomes, "nondeterminism on {}", nest.name);
        assert_eq!(a.alignment.stmt_alloc, b.alignment.stmt_alloc);
        assert_eq!(a.alignment.array_alloc, b.alignment.array_alloc);
    }
}

#[test]
fn stress_many_statements_and_arrays() {
    // A synthetic program with 8 statements and 6 arrays, 24 accesses with
    // assorted shapes: the pipeline must stay fast and sound.
    use rescomm::substrate::intlin::IMat;
    use rescomm_loopnest::{Domain, NestBuilder};
    let mut b = NestBuilder::new("stress");
    let arrays: Vec<_> = (0..6)
        .map(|i| b.array(&format!("x{i}"), 2 + i % 2))
        .collect();
    let stmts: Vec<_> = (0..8)
        .map(|i| b.statement(&format!("S{i}"), 2 + i % 2, Domain::cube(2 + i % 2, 4)))
        .collect();
    let mut seed = 0x5a5au64;
    let mut next = move || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(7);
        ((seed >> 33) as i64 % 5) - 2
    };
    for k in 0..24usize {
        let s = stmts[k % stmts.len()];
        let x = arrays[(k * 5 + 1) % arrays.len()];
        let q = 2 + ((k * 5 + 1) % arrays.len()) % 2;
        let d = 2 + (k % stmts.len()) % 2;
        let f = IMat::from_fn(q, d, |_, _| next());
        let c: Vec<i64> = (0..q).map(|_| next()).collect();
        if k % 3 == 0 {
            b.write(s, x, f, &c);
        } else {
            b.read(s, x, f, &c);
        }
    }
    let nest = b.build().unwrap();
    let t0 = std::time::Instant::now();
    let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
    assert!(
        t0.elapsed().as_secs() < 10,
        "pipeline too slow: {:?}",
        t0.elapsed()
    );
    assert_eq!(mapping.outcomes.len(), 24);
    // Soundness: every Local claim is real.
    for (acc, out) in nest.accesses.iter().zip(&mapping.outcomes) {
        if matches!(out, CommOutcome::Local) {
            let dom = &nest.statement(acc.stmt).domain;
            for p in dom.points().take(16) {
                assert!(
                    mapping
                        .alignment
                        .comm_distance(&nest, acc, &p)
                        .iter()
                        .all(|&x| x == 0),
                    "false Local on access {:?}",
                    acc.id
                );
            }
        }
    }
}

#[test]
fn unit_weight_ablation_changes_nothing_or_something_sane() {
    // With unit weights the branching maximizes cardinality instead of
    // volume: on the motivating example both are optimal at 5 edges, but
    // the chosen edges may differ. The pipeline must stay sound either way.
    let (nest, _) = examples::motivating_example(8, 4);
    let mut opts = MappingOptions::new(2);
    opts.weight_by_rank = false;
    let mapping = map_nest(&nest, &opts).unwrap();
    let r = mapping.report(&nest);
    assert_eq!(
        r.n_local + r.n_translation + r.n_macro() + r.n_decomposed + r.n_general,
        8
    );
    assert!(
        r.n_local >= 4,
        "unit weights still zero out most edges: {r}"
    );
}
