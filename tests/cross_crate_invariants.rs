//! Property-based integration tests: random small affine nests are pushed
//! through the whole pipeline and the cross-crate invariants checked —
//! whatever the heuristic decides, it must never lie.

use proptest::prelude::*;
use rescomm::pipeline::dataflow_matrix;
use rescomm::{map_nest, CommOutcome, MappingOptions};
use rescomm_decompose::product;
use rescomm_intlin::IMat;
use rescomm_loopnest::{Domain, LoopNest, NestBuilder};

/// Strategy: a random nest with 1–2 statements (depths 2–3), 1–3 arrays
/// (dims 1–3) and 2–5 affine accesses with small coefficients.
fn small_nest() -> impl Strategy<Value = LoopNest> {
    let dims = proptest::collection::vec(1usize..=3, 1..=3);
    let depths = proptest::collection::vec(2usize..=3, 1..=2);
    (
        dims,
        depths,
        proptest::collection::vec(
            (
                0usize..100,
                0usize..100,
                proptest::collection::vec(-2i64..=2, 9),
                proptest::collection::vec(-2i64..=2, 3),
                any::<bool>(),
            ),
            2..=5,
        ),
    )
        .prop_map(|(dims, depths, accs)| {
            let mut b = NestBuilder::new("random");
            let arrays: Vec<_> = dims
                .iter()
                .enumerate()
                .map(|(i, &d)| b.array(&format!("x{i}"), d))
                .collect();
            let stmts: Vec<_> = depths
                .iter()
                .enumerate()
                .map(|(i, &d)| b.statement(&format!("S{i}"), d, Domain::cube(d, 4)))
                .collect();
            for (ai, si, coeffs, offs, write) in accs {
                let x = arrays[ai % arrays.len()];
                let s = stmts[si % stmts.len()];
                let q = dims[ai % arrays.len()];
                let d = depths[si % stmts.len()];
                let f = IMat::from_fn(q, d, |i, j| coeffs[(i * d + j) % coeffs.len()]);
                let c: Vec<i64> = (0..q).map(|i| offs[i % offs.len()]).collect();
                if write {
                    b.write(s, x, f, &c);
                } else {
                    b.read(s, x, f, &c);
                }
            }
            b.build().expect("random nest must validate")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the mapping, an access reported Local really has zero
    /// communication distance at every point, and a Translation has a
    /// constant one.
    #[test]
    fn reported_locality_is_real(nest in small_nest()) {
        let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        for (acc, out) in nest.accesses.iter().zip(&mapping.outcomes) {
            let dom = &nest.statement(acc.stmt).domain;
            match out {
                CommOutcome::Local => {
                    for p in dom.points().take(32) {
                        let d = mapping.alignment.comm_distance(&nest, acc, &p);
                        prop_assert!(d.iter().all(|&x| x == 0),
                            "Local access {:?} moved at {:?}", acc.id, p);
                    }
                }
                CommOutcome::Translation => {
                    let mut seen: Option<Vec<i64>> = None;
                    for p in dom.points().take(32) {
                        let d = mapping.alignment.comm_distance(&nest, acc, &p);
                        match &seen {
                            None => seen = Some(d),
                            Some(s) => prop_assert_eq!(s, &d, "translation not constant"),
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Reported elementary decompositions multiply back to the dataflow
    /// matrix of the (post-rotation) alignment.
    #[test]
    fn reported_decompositions_verify(nest in small_nest()) {
        let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        for (acc, out) in nest.accesses.iter().zip(&mapping.outcomes) {
            if let CommOutcome::Decomposed { factors, .. } = out {
                let t = dataflow_matrix(&mapping.alignment, &nest, acc.id)
                    .expect("decomposed access must have a dataflow matrix");
                prop_assert_eq!(product(factors), t,
                    "factor product mismatch for {:?}", acc.id);
            }
        }
    }

    /// All rotations recorded by the pipeline are unimodular, and the
    /// outcome vector covers every access exactly once.
    #[test]
    fn pipeline_bookkeeping(nest in small_nest()) {
        let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        prop_assert_eq!(mapping.outcomes.len(), nest.accesses.len());
        for v in mapping.rotations.values() {
            prop_assert!(rescomm::substrate::intlin::is_unimodular(v));
        }
        // Report counts always sum to the access count.
        let r = mapping.report(&nest);
        prop_assert_eq!(
            r.n_local + r.n_translation + r.n_macro() + r.n_decomposed + r.n_general,
            nest.accesses.len()
        );
    }

    /// Disabling step 2 never changes step-1 locality: the Local set of
    /// the full pipeline contains the Local set of step1-only (rotations
    /// must not destroy locality).
    #[test]
    fn step2_never_loses_locality(nest in small_nest()) {
        let full = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        let step1 = map_nest(&nest, &MappingOptions::step1_only(2)).unwrap();
        for (i, o) in step1.outcomes.iter().enumerate() {
            if matches!(o, CommOutcome::Local) {
                prop_assert!(
                    matches!(full.outcomes[i], CommOutcome::Local),
                    "access {i} was local under step 1 but not under the full pipeline"
                );
            }
        }
    }
}
