//! End-to-end recovery suite: the paper pipeline's communication plans
//! driven through the machine's checkpoint/restart engine, and the
//! degraded-grid remap validated across the kernel zoo.
//!
//! These are the integration gates of the robustness story: a permanent
//! node death in the middle of a *real* mapped nest's communication
//! schedule must be detected, rolled back, folded onto survivors and
//! replayed — with every message delivered exactly once — and the
//! remapped nest must still pass the functional execution check with the
//! dead nodes excluded.

use rescomm::{
    build_plan, map_nest, remap_for_survivors, run_distributed, run_distributed_on,
    verify_execution_on, DegradedGrid, IncidentKind, MappingOptions,
};
use rescomm_loopnest::examples;
use rescomm_machine::{CheckpointPolicy, CostModel, FaultPlan, Mesh2D, NodeDeath, PMsg, PhaseSim};

fn wrap(v: i64, n: usize) -> usize {
    v.rem_euclid(n as i64) as usize
}

/// The communication plan of a mapped nest, folded toroidally onto the
/// mesh as concrete physical message phases (empty phases dropped).
fn plan_phases(nest: &rescomm_loopnest::LoopNest, mesh: &Mesh2D) -> Vec<Vec<PMsg>> {
    let mapping = map_nest(nest, &MappingOptions::new(2)).unwrap();
    let plan = build_plan(nest, &mapping);
    plan.phases
        .iter()
        .filter_map(|ph| {
            let msgs: Vec<PMsg> = ph
                .pattern
                .explicit()
                .expect("build_plan emits explicit patterns")
                .iter()
                .map(|&(s, d)| PMsg {
                    src: mesh.node_id(wrap(s.0, mesh.px), wrap(s.1, mesh.py)),
                    dst: mesh.node_id(wrap(d.0, mesh.px), wrap(d.1, mesh.py)),
                    bytes: 256,
                })
                .filter(|m| m.src != m.dst)
                .collect();
            (!msgs.is_empty()).then_some(msgs)
        })
        .collect()
}

#[test]
fn paper_plan_survives_node_death_end_to_end() {
    let (nest, _) = examples::motivating_example(8, 4);
    let mesh = Mesh2D::new(8, 4, CostModel::paragon());
    let phases = plan_phases(&nest, &mesh);
    assert!(!phases.is_empty(), "the motivating example communicates");
    let healthy = mesh.simulate_phases(&phases);

    let mut sim = PhaseSim::new(mesh);
    let plan = FaultPlan {
        seed: 7,
        node_deaths: vec![NodeDeath {
            node: 5,
            t: healthy / 3,
        }],
        detection_latency: 2_000,
        ..FaultPlan::none()
    };
    let policy = CheckpointPolicy::default();
    let rep = sim.simulate_phases_recovering(&phases, &plan, &policy);
    assert!(rep.recovery.all_recovered(), "{:?}", rep.recovery);
    assert_eq!(rep.delivered, rep.messages, "exactly-once delivery");
    assert_eq!(rep.black_holes, 0);
    assert_eq!(rep.recovery.folded_nodes, 1);
    assert!(rep.wall_clock_ns() >= rep.makespan);
    // Bit-exact determinism on the real schedule.
    assert_eq!(rep, sim.simulate_phases_recovering(&phases, &plan, &policy));
}

#[test]
fn zero_death_recovering_driver_matches_plan_simulation() {
    let (nest, _) = examples::motivating_example(8, 4);
    let mesh = Mesh2D::new(8, 4, CostModel::paragon());
    let phases = plan_phases(&nest, &mesh);
    let healthy = mesh.simulate_phases(&phases);
    let mut sim = PhaseSim::new(mesh);
    let rep =
        sim.simulate_phases_recovering(&phases, &FaultPlan::none(), &CheckpointPolicy::default());
    assert_eq!(rep.makespan, healthy, "zero-death run is bit-identical");
    assert_eq!(rep.recovery.rollbacks, 0);
    assert_eq!(rep.recovery.lost_work_ns, 0);
}

#[test]
fn tiny_checkpoint_ring_still_recovers_the_paper_plan() {
    let (nest, _) = examples::motivating_example(8, 4);
    let mesh = Mesh2D::new(8, 4, CostModel::paragon());
    let phases = plan_phases(&nest, &mesh);
    let healthy = mesh.simulate_phases(&phases);
    let mut sim = PhaseSim::new(mesh);
    let plan = FaultPlan {
        seed: 7,
        node_deaths: vec![NodeDeath {
            node: 9,
            t: healthy / 2,
        }],
        detection_latency: 0,
        ..FaultPlan::none()
    };
    let policy = CheckpointPolicy {
        interval: 1,
        ring: 1,
        ..CheckpointPolicy::default()
    };
    let rep = sim.simulate_phases_recovering(&phases, &plan, &policy);
    assert!(rep.recovery.all_recovered(), "{:?}", rep.recovery);
    assert_eq!(rep.delivered, rep.messages);
}

#[test]
fn remap_survives_across_the_kernel_zoo() {
    let kernels = [
        examples::motivating_example(4, 2).0,
        examples::matmul(4),
        examples::transpose(5),
        examples::jacobi2d(6),
        examples::example4_reduction(5),
    ];
    let opts = MappingOptions::new(2);
    for nest in &kernels {
        let mapping = map_nest(nest, &opts).unwrap();
        for dead in [vec![0], vec![5], vec![3, 7]] {
            let remapped = remap_for_survivors(nest, &mapping, &opts, &dead, (4, 4))
                .unwrap_or_else(|e| panic!("{} dead={dead:?}: {e}", nest.name));
            assert!(
                remapped
                    .incidents
                    .iter()
                    .any(|i| i.kind == IncidentKind::NodeLoss),
                "{}: node loss must be recorded",
                nest.name
            );
            let grid = DegradedGrid::new(4, 4, &dead).unwrap();
            let stats = verify_execution_on(nest, &remapped, Some(&grid))
                .unwrap_or_else(|e| panic!("{} dead={dead:?}: {e}", nest.name));
            assert!(stats.instances > 0);
        }
    }
}

#[test]
fn remap_never_loses_zeroed_out_locality() {
    // The candidate search refuses any rotation that breaks a zeroed-out
    // edge, so the remapped nest keeps at least the original's local
    // accesses (identity is always a legal fallback).
    let (nest, _) = examples::motivating_example(4, 2);
    let opts = MappingOptions::new(2);
    let mapping = map_nest(&nest, &opts).unwrap();
    let before = mapping.report(&nest).n_local;
    for dead in [vec![1], vec![5, 6], vec![0, 4, 8]] {
        let remapped = remap_for_survivors(&nest, &mapping, &opts, &dead, (4, 4)).unwrap();
        assert!(
            remapped.report(&nest).n_local >= before,
            "dead={dead:?} lost locality"
        );
    }
}

#[test]
fn folding_onto_survivors_only_creates_locality() {
    // Physical colocation is coarser than virtual equality: two virtual
    // processors folded onto the same survivor turn remote traffic into
    // local traffic, never the reverse.
    let (nest, _) = examples::motivating_example(4, 2);
    let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
    let (_, virt) = run_distributed(&nest, &mapping);
    let grid = DegradedGrid::new(4, 4, &[5]).unwrap();
    let (_, phys) = run_distributed_on(&nest, &mapping, Some(&grid));
    assert!(phys.local_reads >= virt.local_reads);
    assert_eq!(
        phys.local_reads + phys.remote_reads,
        virt.local_reads + virt.remote_reads
    );
    assert!(phys.remapped_placements > 0, "node 5 had work to displace");
}
