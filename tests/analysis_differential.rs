//! Differential tests for the front-end optimization: the optimized
//! passes (`map_nest`, and `map_nest_with` under a warm shared
//! [`AnalysisCache`]) must classify exactly like the seed implementation
//! (`map_nest_reference`: positional vertex scans, per-start cycle
//! rescans, O(E²) twin marking, no memoization) on every nest — random
//! small nests and the large synthetic families alike.

use proptest::prelude::*;
use rescomm::{map_nest, map_nest_reference, map_nest_with, AnalysisCache};
use rescomm::{CommOutcome, Mapping, MappingOptions};
use rescomm_bench::workload::{chained_stencil_nest, pipeline_nest};
use rescomm_intlin::IMat;
use rescomm_loopnest::{Domain, LoopNest, NestBuilder};

/// Assert the two mappings are observably identical: outcomes, component
/// rotations, allocation matrices and offsets, component assignment.
fn assert_identical(tag: &str, new: &Mapping, old: &Mapping) {
    assert_eq!(new.outcomes, old.outcomes, "{tag}: outcomes diverged");
    assert_eq!(new.rotations, old.rotations, "{tag}: rotations diverged");
    assert_eq!(
        new.alignment.n_components, old.alignment.n_components,
        "{tag}: component count diverged"
    );
    assert_eq!(
        new.alignment.comp_of_stmt, old.alignment.comp_of_stmt,
        "{tag}: statement components diverged"
    );
    assert_eq!(
        new.alignment.comp_of_array, old.alignment.comp_of_array,
        "{tag}: array components diverged"
    );
    for (i, (a, b)) in new
        .alignment
        .stmt_alloc
        .iter()
        .zip(&old.alignment.stmt_alloc)
        .enumerate()
    {
        assert_eq!(a.mat, b.mat, "{tag}: stmt {i} allocation diverged");
        assert_eq!(a.rho, b.rho, "{tag}: stmt {i} offset diverged");
    }
    for (i, (a, b)) in new
        .alignment
        .array_alloc
        .iter()
        .zip(&old.alignment.array_alloc)
        .enumerate()
    {
        assert_eq!(a.mat, b.mat, "{tag}: array {i} allocation diverged");
        assert_eq!(a.rho, b.rho, "{tag}: array {i} offset diverged");
    }
}

/// Strategy: a random nest with 1–3 statements (depths 2–3), 1–3 arrays
/// (dims 1–3) and 2–7 affine accesses with small coefficients — same
/// family as `cross_crate_invariants`, slightly wider.
fn small_nest() -> impl Strategy<Value = LoopNest> {
    let dims = proptest::collection::vec(1usize..=3, 1..=3);
    let depths = proptest::collection::vec(2usize..=3, 1..=3);
    (
        dims,
        depths,
        proptest::collection::vec(
            (
                0usize..100,
                0usize..100,
                proptest::collection::vec(-2i64..=2, 9),
                proptest::collection::vec(-2i64..=2, 3),
                any::<bool>(),
            ),
            2..=7,
        ),
    )
        .prop_map(|(dims, depths, accs)| {
            let mut b = NestBuilder::new("random");
            let arrays: Vec<_> = dims
                .iter()
                .enumerate()
                .map(|(i, &d)| b.array(&format!("x{i}"), d))
                .collect();
            let stmts: Vec<_> = depths
                .iter()
                .enumerate()
                .map(|(i, &d)| b.statement(&format!("S{i}"), d, Domain::cube(d, 4)))
                .collect();
            for (ai, si, coeffs, offs, write) in accs {
                let x = arrays[ai % arrays.len()];
                let s = stmts[si % stmts.len()];
                let q = dims[ai % arrays.len()];
                let d = depths[si % stmts.len()];
                let f = IMat::from_fn(q, d, |i, j| coeffs[(i * d + j) % coeffs.len()]);
                let c: Vec<i64> = (0..q).map(|i| offs[i % offs.len()]).collect();
                if write {
                    b.write(s, x, f, &c);
                } else {
                    b.read(s, x, f, &c);
                }
            }
            b.build().expect("random nest must validate")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The optimized pipeline classifies every random nest exactly like
    /// the seed passes.
    #[test]
    fn optimized_matches_reference(nest in small_nest()) {
        let opts = MappingOptions::new(2);
        assert_identical("m=2", &map_nest(&nest, &opts).unwrap(), &map_nest_reference(&nest, &opts));
    }

    /// Same, with the ablation options (unit weights, no merging) that
    /// exercise the other branching/augment code paths.
    #[test]
    fn optimized_matches_reference_ablations(nest in small_nest()) {
        let mut opts = MappingOptions::new(2);
        opts.weight_by_rank = false;
        opts.enable_merging = false;
        assert_identical(
            "ablation",
            &map_nest(&nest, &opts).unwrap(),
            &map_nest_reference(&nest, &opts),
        );
    }

    /// A warm shared cache is outcome-transparent: mapping the same nest
    /// repeatedly through one [`AnalysisCache`] replays, never drifts.
    #[test]
    fn warm_cache_is_outcome_transparent(nest in small_nest()) {
        let opts = MappingOptions::new(2);
        let cold = map_nest(&nest, &opts).unwrap();
        let mut cache = AnalysisCache::new();
        let first = map_nest_with(&nest, &opts, &mut cache).unwrap();
        let warm = map_nest_with(&nest, &opts, &mut cache).unwrap();
        assert_identical("first", &first, &cold);
        assert_identical("warm", &warm, &cold);
    }
}

/// Golden test: the 200-statement chained-stencil nest — the headline
/// `BENCH_pipeline.json` size — maps identically through both paths, and
/// the heuristic zeroes out the expected fraction of its accesses.
#[test]
fn golden_chained_stencil_200() {
    let nest = chained_stencil_nest(200, 8);
    let opts = MappingOptions::new(2);
    let new = map_nest(&nest, &opts).unwrap();
    let old = map_nest_reference(&nest, &opts);
    assert_identical("chained_stencil n=200", &new, &old);

    let local = new
        .outcomes
        .iter()
        .filter(|o| matches!(o, CommOutcome::Local))
        .count();
    // Each statement reads its predecessor's array (local along the chain)
    // and the shared array g; one of the two per statement is zeroed.
    assert_eq!(new.outcomes.len(), nest.accesses.len());
    let frac = local as f64 / new.outcomes.len() as f64;
    assert!(
        (0.45..=0.75).contains(&frac),
        "chained stencil local fraction drifted: {local}/{} = {frac:.3}",
        new.outcomes.len()
    );
}

/// Golden test: the 200-statement pipeline family (3-D statements, flat
/// and square accesses mixed) through both paths.
#[test]
fn golden_pipeline_200() {
    let nest = pipeline_nest(200, 8);
    let opts = MappingOptions::new(2);
    let new = map_nest(&nest, &opts).unwrap();
    let old = map_nest_reference(&nest, &opts);
    assert_identical("pipeline n=200", &new, &old);
}
