//! The paper's quantitative claims, asserted against the simulated
//! machines (shape reproduction: orderings and rough factors, not
//! absolute numbers — see EXPERIMENTS.md).

use rescomm_bench::{example5, figure8, table1, table2};

#[test]
fn table1_macro_communications_an_order_of_magnitude_cheaper() {
    // Platonoff's CM-5 measurement behind Table 1: general/broadcast ≈ an
    // order of magnitude (he quotes ~40× against the broadcast).
    let row = table1(1024);
    let [red, bc, tr, gen] = row.times;
    assert!(red <= bc, "reduction must be cheapest");
    assert!(bc < tr, "broadcast beats translation");
    assert!(tr < gen, "translation beats general");
    let ratio = gen as f64 / bc as f64;
    assert!(
        (10.0..2000.0).contains(&ratio),
        "general/broadcast should be order(s) of magnitude: {ratio}"
    );
}

#[test]
fn table1_stable_across_sizes() {
    for bytes in [64u64, 512, 4096, 32768] {
        let row = table1(bytes);
        let [red, bc, tr, gen] = row.times;
        assert!(
            red <= bc && bc < tr && tr < gen,
            "bytes={bytes}: {:?}",
            row.times
        );
    }
}

#[test]
fn table2_decomposition_wins_across_sizes() {
    for (vshape, bytes) in [
        ((32, 16), 128u64),
        ((32, 16), 512),
        ((64, 32), 512),
        ((64, 32), 2048),
    ] {
        let row = table2(vshape, bytes);
        assert!(
            row.lu_total < row.not_decomposed,
            "vshape={vshape:?} bytes={bytes}: LU {} vs direct {}",
            row.lu_total,
            row.not_decomposed
        );
        assert!(row.u_phase >= row.l_phase, "U must cost at least L");
    }
}

#[test]
fn figure8_grouped_dominates_for_k_at_least_2() {
    for mesh in [(4, 4), (8, 4), (8, 8)] {
        let rows = figure8(mesh, 48, 8, 8, 2, 256);
        for r in rows.iter().filter(|r| r.k >= 2) {
            assert!(r.block_ratio >= 1.0, "mesh {mesh:?} k={}: {r:?}", r.k);
            assert!(r.cyclic_ratio >= 1.0, "mesh {mesh:?} k={}: {r:?}", r.k);
            assert!(
                r.cyclic_block_ratio >= 1.0,
                "mesh {mesh:?} k={}: {r:?}",
                r.k
            );
        }
        assert!(
            rows.iter().any(|r| r.block_ratio > 3.0),
            "grouped must beat BLOCK substantially somewhere: {rows:?}"
        );
    }
}

#[test]
fn figure8_cyclic_equals_grouped_when_k_is_p() {
    // "The CYCLIC distribution performs well because it amounts to the
    // grouped partition with k = P."
    let rows = figure8((4, 4), 48, 8, 8, 2, 256);
    let r4 = rows.iter().find(|r| r.k == 4).unwrap();
    assert!((r4.cyclic_ratio - 1.0).abs() < 1e-9, "{r4:?}");
}

#[test]
fn example5_claim() {
    for n in [2, 4, 8] {
        let row = example5(n);
        assert_eq!(row.ours_nonlocal, 0);
        assert!(row.platonoff_nonlocal > 0);
        assert!(row.platonoff_macro);
    }
}
