//! Property tests for the loop-nest IR: parser robustness, print↔parse
//! round-trips, domain iteration invariants, and schedule algebra.

use proptest::prelude::*;
use rescomm_intlin::IMat;
use rescomm_loopnest::parser::parse_nest;
use rescomm_loopnest::{to_text, Domain, LoopNest, NestBuilder, Schedule};

fn random_nest() -> impl Strategy<Value = LoopNest> {
    (
        proptest::collection::vec(1usize..=3, 1..=3),
        proptest::collection::vec(1usize..=3, 1..=2),
        proptest::collection::vec(
            (
                0usize..100,
                0usize..100,
                proptest::collection::vec(-3i64..=3, 9),
                proptest::collection::vec(-2i64..=2, 3),
                0u8..3,
            ),
            0..=6,
        ),
        proptest::collection::vec(any::<bool>(), 2),
    )
        .prop_map(|(dims, depths, accs, seqs)| {
            let mut b = NestBuilder::new("fuzz");
            let arrays: Vec<_> = dims
                .iter()
                .enumerate()
                .map(|(i, &d)| b.array(&format!("x{i}"), d))
                .collect();
            let stmts: Vec<_> = depths
                .iter()
                .enumerate()
                .map(|(i, &d)| b.statement(&format!("S{i}"), d, Domain::cube(d, 3)))
                .collect();
            for (i, (&sid, &d)) in stmts.iter().zip(&depths).enumerate() {
                if seqs.get(i).copied().unwrap_or(false) && d >= 1 {
                    b.schedule(sid, Schedule::sequential_outer(d, 1));
                }
            }
            for (ai, si, coeffs, offs, kind) in accs {
                let x = arrays[ai % arrays.len()];
                let s = stmts[si % stmts.len()];
                let q = dims[ai % arrays.len()];
                let d = depths[si % stmts.len()];
                let f = IMat::from_fn(q, d, |i, j| coeffs[(i * d + j) % coeffs.len()]);
                let c: Vec<i64> = (0..q).map(|i| offs[i % offs.len()]).collect();
                match kind {
                    0 => b.read(s, x, f, &c),
                    1 => b.write(s, x, f, &c),
                    _ => b.reduce(s, x, f, &c),
                };
            }
            b.build().expect("generated nest is valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The parser never panics, whatever the input.
    #[test]
    fn parser_never_panics(src in "\\PC{0,200}") {
        let _ = parse_nest(&src);
    }

    /// …including inputs that look structurally plausible.
    #[test]
    fn parser_never_panics_on_plausible_lines(
        lines in proptest::collection::vec(
            prop_oneof![
                Just("nest t".to_string()),
                Just("array a 2".to_string()),
                Just("stmt S depth 2 domain 0..3 0..3".to_string()),
                Just("read a [1 0; 0 1]".to_string()),
                Just("guard 1 -1 <= 0".to_string()),
                Just("schedule linear 1 0".to_string()),
                "[a-z ]{0,20}",
                "(read|write|stmt|guard) [0-9\\[\\]; .<=-]{0,30}",
            ],
            0..12,
        )
    ) {
        let src = lines.join("\n");
        let _ = parse_nest(&src);
    }

    /// print → parse is the identity on generated nests.
    #[test]
    fn print_parse_roundtrip(nest in random_nest()) {
        let text = to_text(&nest);
        let back = parse_nest(&text)
            .unwrap_or_else(|e| panic!("round-trip parse failed: {e}\n{text}"));
        prop_assert_eq!(&back.arrays, &nest.arrays);
        prop_assert_eq!(back.statements.len(), nest.statements.len());
        for (a, b) in back.statements.iter().zip(&nest.statements) {
            prop_assert_eq!(&a.domain, &b.domain);
            prop_assert_eq!(&a.schedule, &b.schedule);
        }
        prop_assert_eq!(back.accesses.len(), nest.accesses.len());
    }

    /// Domain iteration: count matches exact_size, all points contained,
    /// lexicographic order.
    #[test]
    fn domain_iteration_invariants(
        bounds in proptest::collection::vec((-3i64..=3, 0i64..=3), 1..=3),
        guard in proptest::collection::vec(-2i64..=2, 1..=3),
        b in -4i64..=4,
    ) {
        let bounds: Vec<(i64, i64)> = bounds
            .into_iter()
            .map(|(lo, span)| (lo, lo + span))
            .collect();
        let mut dom = Domain::rect(&bounds);
        if guard.len() == dom.dim() {
            dom = dom.with_guard(&guard, b);
        }
        let pts: Vec<Vec<i64>> = dom.points().collect();
        prop_assert_eq!(pts.len() as u128, dom.exact_size());
        let mut prev: Option<&Vec<i64>> = None;
        for p in &pts {
            prop_assert!(dom.contains(p));
            if let Some(q) = prev {
                prop_assert!(q < p, "not lexicographic: {q:?} !< {p:?}");
            }
            prev = Some(p);
        }
    }

    /// Schedules: concurrency is an equivalence relation compatible with
    /// kernel membership.
    #[test]
    fn schedule_concurrency(pi in proptest::collection::vec(-3i64..=3, 2..=4)) {
        let s = Schedule::linear(&pi);
        let d = pi.len();
        let zero = vec![0i64; d];
        let mut e0 = vec![0i64; d];
        e0[0] = 1;
        prop_assert!(s.concurrent(&zero, &zero));
        let same = s.concurrent(&zero, &e0);
        prop_assert_eq!(same, pi[0] == 0);
    }
}
