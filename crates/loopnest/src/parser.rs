//! A small text format for affine loop nests.
//!
//! Lets examples and the CLI describe nests without writing Rust:
//!
//! ```text
//! # comment
//! nest demo
//! array a 2
//! array b 3
//! stmt S1 depth 2 domain 0..7 0..7
//!   schedule parallel
//!   write b [1 0; 0 1; 0 0] + [0 0 0]
//!   read  a [1 0; 0 1] + [0 1]
//! stmt S2 depth 3 domain 0..7 0..7 0..11
//!   schedule linear 1 0 0
//!   read  a [1 1 0; 0 1 1] + [1 1]
//! ```
//!
//! * `domain` takes one inclusive `lo..hi` range per loop;
//! * `guard g1 g2 … <= b` adds an affine constraint `g·I ≤ b` to the
//!   current statement's domain (triangular bounds);
//! * `schedule` is `parallel`, `linear c1 … cd`, or `seqouter k`
//!   (first `k` loops sequential); it defaults to `parallel`;
//! * access matrices are `[row; row; …]`, offsets `+ [v …]`;
//! * access kinds are `read`, `write`, `reduce`.

use crate::builder::NestBuilder;
use crate::domain::Domain;
use crate::ir::{ArrayId, LoopNest, StmtId};
use crate::schedule::Schedule;
use rescomm_intlin::IMat;
use std::collections::HashMap;

/// Parse error with a 1-based line number and (when the offending token
/// is known) a 1-based column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line the error was detected on.
    pub line: usize,
    /// Column of the offending token (1-based; 0 when unknown).
    pub col: usize,
    /// Human-readable message.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.col > 0 {
            write!(f, "line {}, col {}: {}", self.line, self.col, self.msg)
        } else {
            write!(f, "line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        col: 0,
        msg: msg.into(),
    })
}

fn err_at<T>(line: usize, raw: &str, tok: &str, msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        col: raw.find(tok).map_or(0, |i| i + 1),
        msg: msg.into(),
    })
}

/// Parse `[a b; c d; …]` starting at `text`; returns the matrix and the
/// rest of the line after the closing bracket.
fn parse_matrix(line_no: usize, text: &str) -> Result<(IMat, &str), ParseError> {
    let text = text.trim_start();
    let Some(inner_start) = text.strip_prefix('[') else {
        return err(
            line_no,
            format!("expected '[' to start a matrix, got {text:?}"),
        );
    };
    let Some(close) = inner_start.find(']') else {
        return err(line_no, "unterminated matrix: missing ']'");
    };
    let inner = &inner_start[..close];
    let rest = &inner_start[close + 1..];
    let mut rows: Vec<Vec<i64>> = Vec::new();
    for row_text in inner.split(';') {
        let row: Result<Vec<i64>, _> = row_text
            .split_whitespace()
            .map(|t| t.parse::<i64>())
            .collect();
        match row {
            Ok(r) if !r.is_empty() => rows.push(r),
            Ok(_) => return err(line_no, "empty matrix row"),
            Err(e) => return err(line_no, format!("bad matrix entry: {e}")),
        }
    }
    if rows.is_empty() {
        return err(line_no, "empty matrix");
    }
    let cols = rows[0].len();
    if rows.iter().any(|r| r.len() != cols) {
        return err(line_no, "ragged matrix rows");
    }
    let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
    Ok((IMat::from_rows(&refs), rest))
}

/// Parse a nest from its textual description.
pub fn parse_nest(src: &str) -> Result<LoopNest, ParseError> {
    let mut name = "anonymous".to_string();
    let mut builder: Option<NestBuilder> = None;
    let mut arrays: HashMap<String, ArrayId> = HashMap::new();
    let mut cur_stmt: Option<StmtId> = None;
    let mut cur_depth = 0usize;

    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        // A trimmed non-empty line always has a first token.
        let Some(head) = words.next() else { continue };
        match head {
            "nest" => {
                let Some(n) = words.next() else {
                    return err(line_no, "nest needs a name");
                };
                name = n.to_string();
                if builder.is_some() {
                    return err(line_no, "'nest' must come first");
                }
            }
            "array" => {
                let Some(n) = words.next() else {
                    return err(line_no, "array needs a name");
                };
                let Some(d) = words.next().and_then(|t| t.parse::<usize>().ok()) else {
                    return err(line_no, "array needs a dimension");
                };
                if arrays.contains_key(n) {
                    return err_at(line_no, raw, n, format!("duplicate array {n}"));
                }
                let id = builder
                    .get_or_insert_with(|| NestBuilder::new(&name))
                    .array(n, d);
                arrays.insert(n.to_string(), id);
            }
            "stmt" => {
                let Some(n) = words.next() else {
                    return err(line_no, "stmt needs a name");
                };
                let depth = match (words.next(), words.next()) {
                    (Some("depth"), Some(t)) => t.parse::<usize>().map_err(|e| ParseError {
                        line: line_no,
                        col: 0,
                        msg: format!("bad depth: {e}"),
                    })?,
                    _ => return err(line_no, "expected 'depth <d>'"),
                };
                match words.next() {
                    Some("domain") => {}
                    _ => return err(line_no, "expected 'domain lo..hi …'"),
                }
                let mut bounds = Vec::new();
                for tok in words {
                    let Some((lo, hi)) = tok.split_once("..") else {
                        return err_at(
                            line_no,
                            raw,
                            tok,
                            format!("bad range {tok:?}, want lo..hi"),
                        );
                    };
                    let (lo, hi) = match (lo.parse::<i64>(), hi.parse::<i64>()) {
                        (Ok(l), Ok(h)) => (l, h),
                        _ => {
                            return err_at(
                                line_no,
                                raw,
                                tok,
                                format!("bad range bounds in {tok:?}"),
                            )
                        }
                    };
                    if lo > hi {
                        return err_at(line_no, raw, tok, format!("empty range {tok:?}"));
                    }
                    bounds.push((lo, hi));
                }
                if bounds.len() != depth {
                    return err(
                        line_no,
                        format!("stmt {n}: {} ranges for depth {depth}", bounds.len()),
                    );
                }
                let id = builder
                    .get_or_insert_with(|| NestBuilder::new(&name))
                    .statement(n, depth, Domain::rect(&bounds));
                cur_stmt = Some(id);
                cur_depth = depth;
            }
            "guard" => {
                let Some(s) = cur_stmt else {
                    return err(line_no, "guard outside a stmt");
                };
                let toks: Vec<&str> = words.collect();
                let Some(sep) = toks.iter().position(|&t| t == "<=") else {
                    return err(line_no, "guard needs '<=': guard g1 … <= b");
                };
                let g: Result<Vec<i64>, _> = toks[..sep].iter().map(|t| t.parse::<i64>()).collect();
                let b = toks.get(sep + 1).and_then(|t| t.parse::<i64>().ok());
                // A current stmt implies the builder exists; stay
                // defensive rather than unwrapping.
                let Some(bldr) = builder.as_mut() else {
                    return err(line_no, "guard before any stmt");
                };
                match (g, b, toks.len()) {
                    (Ok(g), Some(b), n) if n == sep + 2 && g.len() == cur_depth => {
                        bldr.add_guard(s, &g, b);
                    }
                    (Ok(g), _, _) if g.len() != cur_depth => {
                        return err(
                            line_no,
                            format!("guard has {} coefficients for depth {cur_depth}", g.len()),
                        )
                    }
                    _ => return err(line_no, "malformed guard"),
                }
            }
            "schedule" => {
                let Some(s) = cur_stmt else {
                    return err(line_no, "schedule outside a stmt");
                };
                let Some(b) = builder.as_mut() else {
                    return err(line_no, "schedule before any stmt");
                };
                match words.next() {
                    Some("parallel") => { /* default */ }
                    Some("linear") => {
                        let pi: Result<Vec<i64>, _> = words.map(|t| t.parse::<i64>()).collect();
                        match pi {
                            Ok(v) if !v.is_empty() => {
                                b.schedule(s, Schedule::linear(&v));
                            }
                            _ => return err(line_no, "linear schedule needs coefficients"),
                        }
                    }
                    Some("seqouter") => {
                        let Some(k) = words.next().and_then(|t| t.parse::<usize>().ok()) else {
                            return err(line_no, "seqouter needs a count");
                        };
                        if k == 0 || k > cur_depth {
                            return err(line_no, format!("seqouter {k} out of 1..={cur_depth}"));
                        }
                        b.schedule(s, Schedule::sequential_outer(cur_depth, k));
                    }
                    other => return err(line_no, format!("unknown schedule {other:?}")),
                }
            }
            "read" | "write" | "reduce" => {
                let Some(s) = cur_stmt else {
                    return err(line_no, format!("{head} outside a stmt"));
                };
                let Some(arr_name) = words.next() else {
                    return err(line_no, format!("{head} needs an array name"));
                };
                let Some(&arr) = arrays.get(arr_name) else {
                    return err_at(line_no, raw, arr_name, format!("unknown array {arr_name}"));
                };
                let rest: String = words.collect::<Vec<_>>().join(" ");
                let (f, after) = parse_matrix(line_no, &rest)?;
                let after = after.trim_start();
                let c: Vec<i64> = if let Some(off) = after.strip_prefix('+') {
                    let (cv, _) = parse_matrix(line_no, off)?;
                    if cv.rows() != 1 && cv.cols() != 1 {
                        return err(line_no, "offset must be a vector");
                    }
                    cv.as_slice().to_vec()
                } else if after.is_empty() {
                    vec![0; f.rows()]
                } else {
                    return err(line_no, format!("trailing junk after access: {after:?}"));
                };
                let Some(b) = builder.as_mut() else {
                    return err(line_no, format!("{head} before any stmt"));
                };
                match head {
                    "read" => b.read(s, arr, f, &c),
                    "write" => b.write(s, arr, f, &c),
                    _ => b.reduce(s, arr, f, &c),
                };
            }
            other => return err_at(line_no, raw, other, format!("unknown directive {other:?}")),
        }
    }

    let Some(b) = builder else {
        return err(0, "empty nest description");
    };
    b.build().map_err(|msg| ParseError {
        line: 0,
        col: 0,
        msg,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::AccessKind;

    const DEMO: &str = r#"
# the reconstructed motivating example, S1/S2 fragment
nest demo
array a 2
array b 3
stmt S1 depth 2 domain 0..7 0..7
  write b [1 0; 0 1; 0 0] + [0 0 0]
  read  a [1 0; 0 1] + [0 1]
stmt S2 depth 3 domain 0..7 0..7 0..11
  schedule linear 1 0 0
  read  a [1 1 0; 0 1 1] + [1 1]
"#;

    #[test]
    fn parses_demo() {
        let nest = parse_nest(DEMO).unwrap();
        assert_eq!(nest.name, "demo");
        assert_eq!(nest.arrays.len(), 2);
        assert_eq!(nest.statements.len(), 2);
        assert_eq!(nest.accesses.len(), 3);
        assert_eq!(nest.accesses[0].kind, AccessKind::Write);
        assert_eq!(nest.accesses[0].c, vec![0, 0, 0]);
        assert_eq!(nest.accesses[2].f.shape(), (2, 3));
        assert!(!nest.statements[1].schedule.is_parallel());
        assert!(nest.statements[0].schedule.is_parallel());
    }

    #[test]
    fn default_offset_is_zero() {
        let src = "nest t\narray x 1\nstmt S depth 1 domain 0..3\n  read x [1]\n";
        let nest = parse_nest(src).unwrap();
        assert_eq!(nest.accesses[0].c, vec![0]);
    }

    #[test]
    fn reports_unknown_array() {
        let src = "nest t\nstmt S depth 1 domain 0..3\n  read x [1]\n";
        let e = parse_nest(src).unwrap_err();
        assert_eq!(e.line, 3);
        assert_eq!(e.col, 8, "column of the unknown array token");
        assert!(e.msg.contains("unknown array"));
        assert!(format!("{e}").contains("line 3, col 8"));
    }

    #[test]
    fn reports_column_of_bad_tokens() {
        let e = parse_nest("nest t\nstmt S depth 1 domain 0..x\n").unwrap_err();
        assert_eq!((e.line, e.col), (2, 23));
        let e = parse_nest("nest t\nfrobnicate\n").unwrap_err();
        assert_eq!((e.line, e.col), (2, 1));
        assert!(e.msg.contains("unknown directive"));
        // Errors without a token keep col = 0 and the short format.
        let e = parse_nest("").unwrap_err();
        assert_eq!(e.col, 0);
        assert!(!format!("{e}").contains("col"));
    }

    #[test]
    fn reports_bad_matrix() {
        let src = "nest t\narray x 1\nstmt S depth 1 domain 0..3\n  read x [1 q]\n";
        let e = parse_nest(src).unwrap_err();
        assert!(e.msg.contains("bad matrix entry"));
    }

    #[test]
    fn reports_ragged_matrix() {
        let src = "nest t\narray x 2\nstmt S depth 2 domain 0..3 0..3\n  read x [1 0; 1]\n";
        let e = parse_nest(src).unwrap_err();
        assert!(e.msg.contains("ragged"));
    }

    #[test]
    fn reports_domain_arity_mismatch() {
        let src = "nest t\narray x 1\nstmt S depth 2 domain 0..3\n";
        let e = parse_nest(src).unwrap_err();
        assert!(e.msg.contains("ranges for depth"));
    }

    #[test]
    fn shape_validation_happens_at_build() {
        // F is 1×1 but the statement has depth 2.
        let src = "nest t\narray x 1\nstmt S depth 2 domain 0..3 0..3\n  read x [1]\n";
        assert!(parse_nest(src).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "# top\n\nnest t # trailing\narray x 1\nstmt S depth 1 domain 0..3\nread x [1]\n";
        let nest = parse_nest(src).unwrap();
        assert_eq!(nest.accesses.len(), 1);
    }

    #[test]
    fn empty_input_rejected() {
        assert!(parse_nest("").is_err());
        assert!(parse_nest("# only comments\n").is_err());
    }
}
