//! Exact (enumerative) dependence analysis.
//!
//! The paper checks with Tiny that its motivating example carries no data
//! dependence, so every loop is a DOALL. We reproduce that check: two
//! accesses to the same array conflict if one of them writes and some pair
//! of in-domain iteration points touches the same element. Domains here
//! are small (the check is a validation tool, not part of the mapping
//! analysis), so an exact enumeration with an early integer-feasibility
//! filter is the right tool.

use crate::ir::{Access, AccessKind, LoopNest};
use rescomm_intlin::{solve_axb_int, LinError};

/// A detected dependence between two accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dependence {
    /// Index of the first access in [`LoopNest::accesses`].
    pub from: usize,
    /// Index of the second access.
    pub to: usize,
    /// A witness pair of iteration points touching the same element.
    pub witness: (Vec<i64>, Vec<i64>),
}

/// Upper bound on enumerated point pairs before [`find_dependences`]
/// refuses (returns `Err`): exact analysis is only meant for test-sized
/// domains.
pub const ENUMERATION_LIMIT: u128 = 2_000_000;

fn conflicting_kinds(a: AccessKind, b: AccessKind) -> bool {
    // Two reads never conflict; reductions commute with themselves; every
    // other combination involves an update racing with another touch.
    !matches!(
        (a, b),
        (AccessKind::Read, AccessKind::Read) | (AccessKind::Reduce, AccessKind::Reduce)
    )
}

/// Quick infeasibility filter: `F1·I − F2·J = c2 − c1` must be solvable
/// over ℤ (ignoring bounds) for a dependence to exist.
fn integrally_feasible(a1: &Access, a2: &Access) -> bool {
    // Stack [F1 | −F2] and solve against c2 − c1.
    let f1 = &a1.f;
    let f2 = &a2.f;
    let stacked = f1.hstack(&f2.scale(-1));
    let rhs: Vec<i64> = a2.c.iter().zip(&a1.c).map(|(&x, &y)| x - y).collect();
    match solve_axb_int(&stacked, &rhs) {
        Ok(_) => true,
        Err(LinError::Incompatible) | Err(LinError::NotIntegral) => false,
        Err(_) => true, // conservative
    }
}

/// Find all pairwise dependences in the nest by exact enumeration.
///
/// Returns `Err` if the enumeration would exceed [`ENUMERATION_LIMIT`]
/// point pairs.
pub fn find_dependences(nest: &LoopNest) -> Result<Vec<Dependence>, String> {
    let mut out = Vec::new();
    for (i, a1) in nest.accesses.iter().enumerate() {
        for (j, a2) in nest.accesses.iter().enumerate() {
            if j < i {
                continue;
            }
            if a1.array != a2.array {
                continue;
            }
            if !conflicting_kinds(a1.kind, a2.kind) {
                continue;
            }
            if !integrally_feasible(a1, a2) {
                continue;
            }
            let d1 = &nest.statement(a1.stmt).domain;
            let d2 = &nest.statement(a2.stmt).domain;
            let pairs = d1.size().saturating_mul(d2.size());
            if pairs > ENUMERATION_LIMIT {
                return Err(format!(
                    "dependence check between accesses {i} and {j} needs {pairs} pairs \
                     (> {ENUMERATION_LIMIT}); shrink the domains"
                ));
            }
            'search: for p in d1.points() {
                let e1 = a1.subscript(&p);
                for q in d2.points() {
                    if a1.stmt == a2.stmt && p == q {
                        // Same statement instance: its internal read/write
                        // ordering is sequential, not a loop dependence.
                        continue;
                    }
                    if e1 == a2.subscript(&q) {
                        out.push(Dependence {
                            from: i,
                            to: j,
                            witness: (p.clone(), q),
                        });
                        break 'search; // one witness per pair suffices
                    }
                }
            }
        }
    }
    Ok(out)
}

/// `true` iff the nest is fully parallel: no dependence at all.
pub fn is_doall(nest: &LoopNest) -> Result<bool, String> {
    Ok(find_dependences(nest)?.is_empty())
}

/// `true` iff every dependence is carried by the schedules (the source and
/// sink never run at the same timestep) — i.e. the declared schedules are
/// *valid* for the nest. Dependences between instances scheduled at
/// identical multidimensional timesteps are reported as violations.
pub fn schedules_valid(nest: &LoopNest) -> Result<Vec<Dependence>, String> {
    let deps = find_dependences(nest)?;
    let mut violations = Vec::new();
    for d in deps {
        let a1 = &nest.accesses[d.from];
        let a2 = &nest.accesses[d.to];
        let t1 = nest.statement(a1.stmt).schedule.time(&d.witness.0);
        let t2 = nest.statement(a2.stmt).schedule.time(&d.witness.1);
        if t1 == t2 {
            violations.push(d);
        }
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NestBuilder;
    use crate::domain::Domain;
    use crate::examples;
    use crate::schedule::Schedule;
    use rescomm_intlin::IMat;

    #[test]
    fn motivating_example_is_dependence_free() {
        // The paper: "There are no data dependences in the nest … all loops
        // are DOALL loops". Distinct offsets keep the a/b/c touches apart.
        let (nest, _) = examples::motivating_example(4, 2);
        let deps = find_dependences(&nest).unwrap();
        assert!(deps.is_empty(), "unexpected dependences: {deps:?}");
        assert!(is_doall(&nest).unwrap());
    }

    #[test]
    fn detects_simple_flow_dependence() {
        // S1 writes x[i], S2 reads x[i-1]: flow dependence.
        let mut b = NestBuilder::new("dep");
        let x = b.array("x", 1);
        let s1 = b.statement("S1", 1, Domain::cube(1, 8));
        let s2 = b.statement("S2", 1, Domain::cube(1, 8));
        b.write(s1, x, IMat::identity(1), &[0]);
        b.read(s2, x, IMat::identity(1), &[-1]);
        let nest = b.build().unwrap();
        let deps = find_dependences(&nest).unwrap();
        assert_eq!(deps.len(), 1);
        assert!(!is_doall(&nest).unwrap());
    }

    #[test]
    fn reads_never_conflict() {
        let mut b = NestBuilder::new("rr");
        let x = b.array("x", 1);
        let s = b.statement("S", 1, Domain::cube(1, 8));
        b.read(s, x, IMat::identity(1), &[0]);
        b.read(s, x, IMat::identity(1), &[0]);
        let nest = b.build().unwrap();
        assert!(is_doall(&nest).unwrap());
    }

    #[test]
    fn reductions_commute() {
        let mut b = NestBuilder::new("red");
        let s_arr = b.array("s", 1);
        let st = b.statement("S", 2, Domain::cube(2, 4));
        b.reduce(st, s_arr, IMat::zeros(1, 2), &[0]);
        let nest = b.build().unwrap();
        assert!(is_doall(&nest).unwrap());
    }

    #[test]
    fn infeasibility_filter_rejects_parity_mismatch() {
        // x[2i] written, x[2j+1] read: never the same element.
        let mut b = NestBuilder::new("parity");
        let x = b.array("x", 1);
        let s1 = b.statement("S1", 1, Domain::cube(1, 8));
        let s2 = b.statement("S2", 1, Domain::cube(1, 8));
        b.write(s1, x, IMat::from_rows(&[&[2]]), &[0]);
        b.read(s2, x, IMat::from_rows(&[&[2]]), &[1]);
        let nest = b.build().unwrap();
        let a1 = &nest.accesses[0];
        let a2 = &nest.accesses[1];
        assert!(!super::integrally_feasible(a1, a2));
        assert!(is_doall(&nest).unwrap());
    }

    #[test]
    fn gauss_sequential_schedule_is_valid() {
        // Gaussian elimination has dependences, but they are all carried by
        // the sequential outer k loop.
        let nest = examples::gauss_elim(4);
        let deps = find_dependences(&nest).unwrap();
        assert!(!deps.is_empty(), "gauss must have dependences");
        let violations = schedules_valid(&nest).unwrap();
        assert!(
            violations.is_empty(),
            "k-sequential schedule must carry all: {violations:?}"
        );
    }

    #[test]
    fn matmul_reduction_schedule() {
        // The only conflicts are the C-reductions with themselves, which
        // commute; matmul under the k-linear schedule is clean.
        let nest = examples::matmul(3);
        let violations = schedules_valid(&nest).unwrap();
        assert!(violations.is_empty());
    }

    #[test]
    fn invalid_parallel_schedule_is_caught() {
        // x[i] = x[i-1] with a parallel schedule: violation.
        let mut b = NestBuilder::new("bad-sched");
        let x = b.array("x", 1);
        let s = b.statement("S", 1, Domain::cube(1, 8));
        b.schedule(s, Schedule::parallel(1));
        b.write(s, x, IMat::identity(1), &[0]);
        b.read(s, x, IMat::identity(1), &[-1]);
        let nest = b.build().unwrap();
        let violations = schedules_valid(&nest).unwrap();
        assert!(!violations.is_empty());
    }

    #[test]
    fn enumeration_limit_enforced() {
        let mut b = NestBuilder::new("huge");
        let x = b.array("x", 1);
        let s = b.statement("S", 2, Domain::cube(2, 3000));
        b.write(s, x, IMat::from_rows(&[&[1, 1]]), &[0]);
        b.read(s, x, IMat::from_rows(&[&[1, 1]]), &[-1]);
        let nest = b.build().unwrap();
        assert!(find_dependences(&nest).is_err());
    }
}
