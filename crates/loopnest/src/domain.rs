//! Rectangular iteration domains.
//!
//! The paper's analysis is symbolic (it only looks at the access matrices),
//! but the *workload generators* for the benchmark harness need concrete
//! iteration points to turn a mapping into an actual message set. A
//! [`Domain`] is a product of integer intervals `[lo_k, hi_k]` (inclusive),
//! one per loop of the statement.

/// An iteration domain: a box `lo_k ≤ I_k ≤ hi_k` optionally cut by
/// affine guards `g·I ≤ b` (triangular loop bounds like Gaussian
/// elimination's `i, j > k` become guards over the bounding box).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domain {
    lo: Vec<i64>,
    hi: Vec<i64>,
    /// Each guard `(g, b)` keeps the points with `g·I ≤ b`.
    guards: Vec<(Vec<i64>, i64)>,
}

impl Domain {
    /// Build from `(lo, hi)` inclusive bounds per dimension.
    ///
    /// # Panics
    /// Panics if any `lo > hi`.
    pub fn rect(bounds: &[(i64, i64)]) -> Self {
        for &(lo, hi) in bounds {
            assert!(lo <= hi, "empty interval [{lo}, {hi}] in domain");
        }
        Domain {
            lo: bounds.iter().map(|b| b.0).collect(),
            hi: bounds.iter().map(|b| b.1).collect(),
            guards: Vec::new(),
        }
    }

    /// Add an affine guard `g·I ≤ b` (builder style). The guard vector
    /// must have one coefficient per dimension.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn with_guard(mut self, g: &[i64], b: i64) -> Self {
        assert_eq!(g.len(), self.dim(), "guard arity mismatch");
        self.guards.push((g.to_vec(), b));
        self
    }

    /// The affine guards.
    pub fn guards(&self) -> &[(Vec<i64>, i64)] {
        &self.guards
    }

    /// The cube `[0, n-1]^dim`.
    ///
    /// # Panics
    /// Panics if `n < 1`.
    pub fn cube(dim: usize, n: i64) -> Self {
        assert!(n >= 1, "cube size must be at least 1");
        Domain {
            lo: vec![0; dim],
            hi: vec![n - 1; dim],
            guards: Vec::new(),
        }
    }

    /// Number of dimensions (loop depth).
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower bound of dimension `k`.
    pub fn lo(&self, k: usize) -> i64 {
        self.lo[k]
    }

    /// Upper bound (inclusive) of dimension `k`.
    pub fn hi(&self, k: usize) -> i64 {
        self.hi[k]
    }

    /// Number of points in the bounding box (an upper bound when guards
    /// are present; use [`Domain::exact_size`] for the guarded count).
    pub fn size(&self) -> u128 {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(&l, &h)| (h - l + 1) as u128)
            .product()
    }

    /// Exact point count, honouring the guards (enumerates; intended for
    /// test-sized domains).
    pub fn exact_size(&self) -> u128 {
        if self.guards.is_empty() {
            self.size()
        } else {
            self.points().count() as u128
        }
    }

    /// `true` iff the point lies in the domain (box and guards).
    pub fn contains(&self, p: &[i64]) -> bool {
        p.len() == self.dim()
            && p.iter()
                .zip(self.lo.iter().zip(&self.hi))
                .all(|(&x, (&l, &h))| l <= x && x <= h)
            && self.satisfies_guards(p)
    }

    fn satisfies_guards(&self, p: &[i64]) -> bool {
        self.guards
            .iter()
            .all(|(g, b)| g.iter().zip(p).map(|(&c, &x)| c * x).sum::<i64>() <= *b)
    }

    /// Iterate all points in lexicographic order (guards applied).
    pub fn points(&self) -> impl Iterator<Item = Vec<i64>> + '_ {
        DomainIter {
            dom: self.clone(),
            cur: Some(self.lo.clone()),
        }
        .filter(move |p| self.satisfies_guards(p))
    }
}

/// Lexicographic iterator over the points of a [`Domain`].
pub struct DomainIter {
    dom: Domain,
    cur: Option<Vec<i64>>,
}

impl Iterator for DomainIter {
    type Item = Vec<i64>;

    fn next(&mut self) -> Option<Vec<i64>> {
        let cur = self.cur.take()?;
        // Compute the successor (odometer from the last dimension).
        let mut nxt = cur.clone();
        let mut k = nxt.len();
        loop {
            if k == 0 {
                self.cur = None;
                break;
            }
            k -= 1;
            if nxt[k] < self.dom.hi[k] {
                nxt[k] += 1;
                nxt[k + 1..].copy_from_slice(&self.dom.lo[k + 1..]);
                self.cur = Some(nxt);
                break;
            }
        }
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_shape() {
        let d = Domain::cube(3, 4);
        assert_eq!(d.dim(), 3);
        assert_eq!(d.size(), 64);
        assert!(d.contains(&[0, 3, 2]));
        assert!(!d.contains(&[0, 4, 2]));
        assert!(!d.contains(&[0, 3]));
    }

    #[test]
    fn rect_bounds() {
        let d = Domain::rect(&[(1, 3), (-2, 2)]);
        assert_eq!(d.size(), 15);
        assert_eq!(d.lo(1), -2);
        assert_eq!(d.hi(0), 3);
        assert!(d.contains(&[1, -2]));
        assert!(!d.contains(&[0, 0]));
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn rect_rejects_empty() {
        Domain::rect(&[(3, 1)]);
    }

    #[test]
    fn points_lexicographic_and_complete() {
        let d = Domain::rect(&[(0, 1), (5, 6)]);
        let pts: Vec<_> = d.points().collect();
        assert_eq!(pts, vec![vec![0, 5], vec![0, 6], vec![1, 5], vec![1, 6]]);
    }

    #[test]
    fn points_count_matches_size() {
        let d = Domain::rect(&[(0, 2), (-1, 1), (4, 4)]);
        assert_eq!(d.points().count() as u128, d.size());
        for p in d.points() {
            assert!(d.contains(&p));
        }
    }

    #[test]
    fn single_point_domain() {
        let d = Domain::rect(&[(2, 2)]);
        assert_eq!(d.points().collect::<Vec<_>>(), vec![vec![2]]);
    }

    #[test]
    fn triangular_guard() {
        // i < j over a 4×4 box: guard i − j ≤ −1.
        let d = Domain::cube(2, 4).with_guard(&[1, -1], -1);
        let pts: Vec<_> = d.points().collect();
        assert_eq!(pts.len(), 6); // C(4,2)
        for p in &pts {
            assert!(p[0] < p[1]);
            assert!(d.contains(p));
        }
        assert!(!d.contains(&[2, 2]));
        assert_eq!(d.exact_size(), 6);
        assert_eq!(d.size(), 16, "box size is an upper bound");
    }

    #[test]
    fn multiple_guards_intersect() {
        // 0-weighted guard plus a strict one.
        let d = Domain::cube(2, 4)
            .with_guard(&[1, 0], 1) // i ≤ 1
            .with_guard(&[0, 1], 2); // j ≤ 2
        assert_eq!(d.exact_size(), 2 * 3);
    }

    #[test]
    #[should_panic(expected = "guard arity")]
    fn guard_arity_checked() {
        let _ = Domain::cube(2, 4).with_guard(&[1], 0);
    }
}
