//! Core IR types: arrays, statements, affine accesses, loop nests.

use crate::domain::Domain;
use crate::schedule::Schedule;
use rescomm_intlin::IMat;
use std::fmt;

/// Identifier of an array within a [`LoopNest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub usize);

/// Identifier of a statement within a [`LoopNest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub usize);

/// Identifier of an access within a [`LoopNest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AccessId(pub usize);

/// An array variable of dimension `dim`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Array {
    /// Source-level name.
    pub name: String,
    /// Dimensionality `q_x`.
    pub dim: usize,
}

/// Read/write direction of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// The statement reads the element.
    Read,
    /// The statement writes the element.
    Write,
    /// The statement accumulates into the element with an
    /// associative-commutative operator (`s += …`): reduction candidate.
    Reduce,
}

/// An affine array access `x[F·I + c]` appearing in statement `stmt`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Access {
    /// Identifier (index into [`LoopNest::accesses`]).
    pub id: AccessId,
    /// The accessed array.
    pub array: ArrayId,
    /// The accessing statement.
    pub stmt: StmtId,
    /// Access matrix `F` (`q_x × d`).
    pub f: IMat,
    /// Constant offset `c` (`q_x` entries).
    pub c: Vec<i64>,
    /// Read, write or reduction.
    pub kind: AccessKind,
}

impl Access {
    /// The array subscript for iteration point `i`: `F·i + c`.
    pub fn subscript(&self, i: &[i64]) -> Vec<i64> {
        let mut v = self.f.mul_vec(i);
        for (x, &o) in v.iter_mut().zip(&self.c) {
            *x += o;
        }
        v
    }
}

/// A statement of depth `d` with its iteration domain and schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Statement {
    /// Source-level name.
    pub name: String,
    /// Loop depth `d` (length of the iteration vector).
    pub depth: usize,
    /// Iteration domain.
    pub domain: Domain,
    /// Schedule `θ_S`.
    pub schedule: Schedule,
}

/// A whole affine loop nest: the unit of the mapping problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopNest {
    /// Arrays, indexed by [`ArrayId`].
    pub arrays: Vec<Array>,
    /// Statements, indexed by [`StmtId`].
    pub statements: Vec<Statement>,
    /// Affine accesses, indexed by [`AccessId`].
    pub accesses: Vec<Access>,
    /// Human-readable name for reports.
    pub name: String,
}

impl LoopNest {
    /// The array of an id.
    pub fn array(&self, id: ArrayId) -> &Array {
        &self.arrays[id.0]
    }

    /// The statement of an id.
    pub fn statement(&self, id: StmtId) -> &Statement {
        &self.statements[id.0]
    }

    /// The access of an id.
    pub fn access(&self, id: AccessId) -> &Access {
        &self.accesses[id.0]
    }

    /// All accesses of a statement.
    pub fn accesses_of(&self, s: StmtId) -> impl Iterator<Item = &Access> {
        self.accesses.iter().filter(move |a| a.stmt == s)
    }

    /// All accesses touching an array.
    pub fn accesses_to(&self, x: ArrayId) -> impl Iterator<Item = &Access> {
        self.accesses.iter().filter(move |a| a.array == x)
    }

    /// Validate internal consistency (shapes of every access matrix and
    /// offset against the statement depth and array dimension).
    pub fn validate(&self) -> Result<(), String> {
        for a in &self.accesses {
            let st = self
                .statements
                .get(a.stmt.0)
                .ok_or_else(|| format!("access {:?}: bad statement id", a.id))?;
            let ar = self
                .arrays
                .get(a.array.0)
                .ok_or_else(|| format!("access {:?}: bad array id", a.id))?;
            if a.f.rows() != ar.dim {
                return Err(format!(
                    "access {:?} on {}: F has {} rows, array has dim {}",
                    a.id,
                    ar.name,
                    a.f.rows(),
                    ar.dim
                ));
            }
            if a.f.cols() != st.depth {
                return Err(format!(
                    "access {:?} on {}: F has {} cols, statement {} has depth {}",
                    a.id,
                    ar.name,
                    a.f.cols(),
                    st.name,
                    st.depth
                ));
            }
            if a.c.len() != ar.dim {
                return Err(format!(
                    "access {:?} on {}: offset has {} entries, array has dim {}",
                    a.id,
                    ar.name,
                    a.c.len(),
                    ar.dim
                ));
            }
        }
        for st in &self.statements {
            if st.domain.dim() != st.depth {
                return Err(format!(
                    "statement {}: domain dim {} != depth {}",
                    st.name,
                    st.domain.dim(),
                    st.depth
                ));
            }
            if st.schedule.depth() != st.depth {
                return Err(format!(
                    "statement {}: schedule depth {} != depth {}",
                    st.name,
                    st.schedule.depth(),
                    st.depth
                ));
            }
        }
        Ok(())
    }
}

impl fmt::Display for LoopNest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "nest {}:", self.name)?;
        for (si, st) in self.statements.iter().enumerate() {
            writeln!(f, "  {} (depth {}):", st.name, st.depth)?;
            for a in self.accesses_of(StmtId(si)) {
                let kind = match a.kind {
                    AccessKind::Read => "read ",
                    AccessKind::Write => "write",
                    AccessKind::Reduce => "reduce",
                };
                writeln!(
                    f,
                    "    {kind} {}[F{}·I + {:?}]",
                    self.array(a.array).name,
                    a.id.0,
                    a.c
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NestBuilder;

    #[test]
    fn subscript_applies_affine_map() {
        let f = IMat::from_rows(&[&[1, 0], &[1, 1]]);
        let a = Access {
            id: AccessId(0),
            array: ArrayId(0),
            stmt: StmtId(0),
            f,
            c: vec![2, -1],
            kind: AccessKind::Read,
        };
        assert_eq!(a.subscript(&[3, 4]), vec![5, 6]);
    }

    #[test]
    fn validation_catches_shape_bugs() {
        let mut b = NestBuilder::new("bad");
        let x = b.array("x", 2);
        let s = b.statement("S", 2, Domain::cube(2, 4));
        b.read(s, x, IMat::identity(2), &[0, 0]);
        let mut nest = b.build().unwrap();
        // Corrupt: offset with wrong arity.
        nest.accesses[0].c = vec![0];
        assert!(nest.validate().is_err());
    }

    #[test]
    fn display_contains_names() {
        let mut b = NestBuilder::new("demo");
        let x = b.array("x", 1);
        let s = b.statement("S1", 1, Domain::cube(1, 3));
        b.write(s, x, IMat::identity(1), &[0]);
        let nest = b.build().unwrap();
        let text = format!("{nest}");
        assert!(text.contains("demo"));
        assert!(text.contains("S1"));
        assert!(text.contains("write"));
    }
}
