//! Serializing a [`LoopNest`] back to the textual format of
//! [`crate::parser`] — `parse_nest(to_text(n)) == n` up to names.

use crate::ir::{AccessKind, LoopNest, StmtId};
use crate::schedule::Schedule;
use rescomm_intlin::IMat;
use std::fmt::Write;

fn matrix_text(m: &IMat) -> String {
    let mut s = String::from("[");
    for i in 0..m.rows() {
        if i > 0 {
            s.push_str("; ");
        }
        for j in 0..m.cols() {
            if j > 0 {
                s.push(' ');
            }
            write!(s, "{}", m[(i, j)]).unwrap();
        }
    }
    s.push(']');
    s
}

fn vector_text(v: &[i64]) -> String {
    let mut s = String::from("[");
    for (j, x) in v.iter().enumerate() {
        if j > 0 {
            s.push(' ');
        }
        write!(s, "{x}").unwrap();
    }
    s.push(']');
    s
}

fn schedule_text(sched: &Schedule) -> Option<String> {
    if sched.is_parallel() {
        return None; // the parser's default
    }
    let theta = sched.theta();
    if theta.rows() == 1 {
        let row: Vec<String> = theta.row(0).iter().map(|x| x.to_string()).collect();
        Some(format!("schedule linear {}", row.join(" ")))
    } else {
        // Multidimensional schedules have no surface syntax; emit the
        // first row as a linear approximation and mark it.
        let row: Vec<String> = theta.row(0).iter().map(|x| x.to_string()).collect();
        Some(format!(
            "schedule linear {} # (first row of a multidim schedule)",
            row.join(" ")
        ))
    }
}

/// Serialize the nest to the parser's textual format.
///
/// Round-trip guarantee: for nests whose schedules are `parallel` or
/// single-row linear, `parse_nest(to_text(n))` reproduces the nest
/// exactly (same arrays, statements, domains, schedules and accesses).
pub fn to_text(nest: &LoopNest) -> String {
    let mut out = String::new();
    writeln!(out, "nest {}", nest.name).unwrap();
    for a in &nest.arrays {
        writeln!(out, "array {} {}", a.name, a.dim).unwrap();
    }
    for (si, st) in nest.statements.iter().enumerate() {
        let ranges: Vec<String> = (0..st.depth)
            .map(|k| format!("{}..{}", st.domain.lo(k), st.domain.hi(k)))
            .collect();
        writeln!(
            out,
            "stmt {} depth {} domain {}",
            st.name,
            st.depth,
            ranges.join(" ")
        )
        .unwrap();
        if let Some(s) = schedule_text(&st.schedule) {
            writeln!(out, "  {s}").unwrap();
        }
        for (g, b) in st.domain.guards() {
            let coeffs: Vec<String> = g.iter().map(|x| x.to_string()).collect();
            writeln!(out, "  guard {} <= {b}", coeffs.join(" ")).unwrap();
        }
        for acc in nest.accesses_of(StmtId(si)) {
            let kw = match acc.kind {
                AccessKind::Read => "read",
                AccessKind::Write => "write",
                AccessKind::Reduce => "reduce",
            };
            writeln!(
                out,
                "  {kw} {} {} + {}",
                nest.array(acc.array).name,
                matrix_text(&acc.f),
                vector_text(&acc.c)
            )
            .unwrap();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;
    use crate::parser::parse_nest;

    fn roundtrip_equal(nest: &LoopNest) {
        let text = to_text(nest);
        let back =
            parse_nest(&text).unwrap_or_else(|e| panic!("serialized text must parse: {e}\n{text}"));
        assert_eq!(back.name, nest.name);
        assert_eq!(back.arrays, nest.arrays);
        assert_eq!(back.statements.len(), nest.statements.len());
        for (a, b) in back.statements.iter().zip(&nest.statements) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.domain, b.domain);
            assert_eq!(a.schedule, b.schedule);
        }
        // Accesses may be reordered by statement grouping; compare as
        // multisets keyed by (stmt, array, F, c, kind).
        let key = |n: &LoopNest| {
            let mut v: Vec<String> = n
                .accesses
                .iter()
                .map(|a| {
                    format!(
                        "{:?}|{:?}|{:?}|{:?}|{:?}",
                        a.stmt, a.array, a.f, a.c, a.kind
                    )
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(key(&back), key(nest));
    }

    #[test]
    fn roundtrip_all_examples() {
        roundtrip_equal(&examples::motivating_example(8, 4).0);
        roundtrip_equal(&examples::matmul(6));
        roundtrip_equal(&examples::jacobi2d(6));
        roundtrip_equal(&examples::transpose(6));
        roundtrip_equal(&examples::syrk(4));
        roundtrip_equal(&examples::example2_broadcast(4));
        roundtrip_equal(&examples::example4_reduction(4));
    }

    #[test]
    fn guards_roundtrip() {
        let nest = examples::gauss_triangular(4);
        roundtrip_equal(&nest);
        assert!(to_text(&nest).contains("guard 1 -1 0 <= -1"));
    }

    #[test]
    fn sequential_outer_survives_as_linear() {
        // sequential_outer(3, 1) has a one-row θ: exact round-trip.
        let nest = examples::gauss_elim(4);
        roundtrip_equal(&nest);
    }

    #[test]
    fn serialized_text_is_stable() {
        let nest = examples::matmul(4);
        assert_eq!(to_text(&nest), to_text(&nest));
        assert!(to_text(&nest).contains("reduce C"));
        assert!(to_text(&nest).contains("schedule linear 0 0 1"));
    }
}
