//! Fluent, validating construction of [`LoopNest`]s.

use crate::domain::Domain;
use crate::ir::{Access, AccessId, AccessKind, Array, ArrayId, LoopNest, Statement, StmtId};
use crate::schedule::Schedule;
use rescomm_intlin::IMat;

/// Builder for a [`LoopNest`]. Statements default to a fully parallel
/// schedule; use [`NestBuilder::schedule`] to override.
#[derive(Debug, Clone)]
pub struct NestBuilder {
    name: String,
    arrays: Vec<Array>,
    statements: Vec<Statement>,
    accesses: Vec<Access>,
}

impl NestBuilder {
    /// Start a new nest with a report name.
    pub fn new(name: &str) -> Self {
        NestBuilder {
            name: name.to_string(),
            arrays: Vec::new(),
            statements: Vec::new(),
            accesses: Vec::new(),
        }
    }

    /// Declare an array of dimension `dim`.
    pub fn array(&mut self, name: &str, dim: usize) -> ArrayId {
        assert!(dim > 0, "array {name} with dimension 0");
        self.arrays.push(Array {
            name: name.to_string(),
            dim,
        });
        ArrayId(self.arrays.len() - 1)
    }

    /// Declare a statement of the given depth and domain (parallel
    /// schedule by default).
    pub fn statement(&mut self, name: &str, depth: usize, domain: Domain) -> StmtId {
        assert!(depth > 0, "statement {name} with depth 0");
        assert_eq!(
            domain.dim(),
            depth,
            "statement {name}: domain/depth mismatch"
        );
        self.statements.push(Statement {
            name: name.to_string(),
            depth,
            domain,
            schedule: Schedule::parallel(depth),
        });
        StmtId(self.statements.len() - 1)
    }

    /// Add an affine guard `g·I ≤ b` to a statement's domain.
    pub fn add_guard(&mut self, s: StmtId, g: &[i64], b: i64) -> &mut Self {
        let st = &mut self.statements[s.0];
        st.domain = st.domain.clone().with_guard(g, b);
        self
    }

    /// Override the schedule of a statement.
    pub fn schedule(&mut self, s: StmtId, sched: Schedule) -> &mut Self {
        assert_eq!(
            sched.depth(),
            self.statements[s.0].depth,
            "schedule depth mismatch for {}",
            self.statements[s.0].name
        );
        self.statements[s.0].schedule = sched;
        self
    }

    fn access(&mut self, s: StmtId, x: ArrayId, f: IMat, c: &[i64], kind: AccessKind) -> AccessId {
        let id = AccessId(self.accesses.len());
        self.accesses.push(Access {
            id,
            array: x,
            stmt: s,
            f,
            c: c.to_vec(),
            kind,
        });
        id
    }

    /// Add a read access `x[F·I + c]` to statement `s`.
    pub fn read(&mut self, s: StmtId, x: ArrayId, f: IMat, c: &[i64]) -> AccessId {
        self.access(s, x, f, c, AccessKind::Read)
    }

    /// Add a write access.
    pub fn write(&mut self, s: StmtId, x: ArrayId, f: IMat, c: &[i64]) -> AccessId {
        self.access(s, x, f, c, AccessKind::Write)
    }

    /// Add a reduction access (`x[F·I+c] ⊕= …`).
    pub fn reduce(&mut self, s: StmtId, x: ArrayId, f: IMat, c: &[i64]) -> AccessId {
        self.access(s, x, f, c, AccessKind::Reduce)
    }

    /// Finalize and validate.
    pub fn build(self) -> Result<LoopNest, String> {
        let nest = LoopNest {
            arrays: self.arrays,
            statements: self.statements,
            accesses: self.accesses,
            name: self.name,
        };
        nest.validate()?;
        Ok(nest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_nest() {
        let mut b = NestBuilder::new("t");
        let a = b.array("a", 2);
        let s = b.statement("S", 2, Domain::cube(2, 8));
        b.read(s, a, IMat::identity(2), &[0, 0]);
        b.write(s, a, IMat::from_rows(&[&[0, 1], &[1, 0]]), &[1, 0]);
        let nest = b.build().unwrap();
        assert_eq!(nest.arrays.len(), 1);
        assert_eq!(nest.accesses.len(), 2);
        assert_eq!(nest.accesses_of(s).count(), 2);
        assert_eq!(nest.accesses_to(a).count(), 2);
    }

    #[test]
    fn build_rejects_shape_mismatch() {
        let mut b = NestBuilder::new("t");
        let a = b.array("a", 2);
        let s = b.statement("S", 3, Domain::cube(3, 4));
        // F is 2×2 but the statement has depth 3.
        b.read(s, a, IMat::identity(2), &[0, 0]);
        assert!(b.build().is_err());
    }

    #[test]
    fn schedule_override() {
        let mut b = NestBuilder::new("t");
        let a = b.array("a", 1);
        let s = b.statement("S", 2, Domain::cube(2, 4));
        b.schedule(s, Schedule::sequential_outer(2, 1));
        b.write(s, a, IMat::from_rows(&[&[0, 1]]), &[0]);
        let nest = b.build().unwrap();
        assert!(!nest.statement(s).schedule.is_parallel());
    }

    #[test]
    #[should_panic(expected = "schedule depth mismatch")]
    fn schedule_depth_mismatch_panics() {
        let mut b = NestBuilder::new("t");
        let s = b.statement("S", 2, Domain::cube(2, 4));
        b.schedule(s, Schedule::parallel(3));
    }
}
