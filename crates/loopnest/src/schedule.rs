//! Multidimensional linear schedules.
//!
//! Following Feautrier (cited by the paper for multidimensional time), a
//! statement `S` of depth `d` carries a schedule `θ_S`, an `s×d` integer
//! matrix: instance `S(I)` executes at (multidimensional, lexicographically
//! ordered) timestep `θ_S·I`. Two instances run concurrently iff their
//! timesteps coincide, i.e. iff their difference lies in `ker θ_S` — which
//! is why every macro-communication condition in §3 of the paper starts
//! with `I′ − I ∈ ker θ_S`.
//!
//! A fully parallel (DOALL) statement is modelled as the all-zero one-row
//! schedule: every instance at timestep 0, `ker θ = ℤᵈ`.

use rescomm_intlin::IMat;

/// A multidimensional linear schedule `t = θ·I`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    theta: IMat,
}

impl Schedule {
    /// Fully parallel schedule for a depth-`d` statement: `θ = 0` (one zero
    /// row), so all instances share timestep 0.
    pub fn parallel(depth: usize) -> Self {
        assert!(depth > 0, "schedule of a depth-0 statement");
        Schedule {
            theta: IMat::zeros(1, depth),
        }
    }

    /// One-dimensional linear schedule `t = π·I`.
    pub fn linear(pi: &[i64]) -> Self {
        assert!(!pi.is_empty());
        Schedule {
            theta: IMat::row_vec(pi),
        }
    }

    /// The `k`-th outer loops sequential, the rest parallel: θ is the first
    /// `k` rows of the identity. (`sequential_outer(1)` is the common
    /// “outer time loop” pattern of the paper's Example 5.)
    pub fn sequential_outer(depth: usize, k: usize) -> Self {
        assert!(k >= 1 && k <= depth);
        Schedule {
            theta: IMat::from_fn(k, depth, |i, j| i64::from(i == j)),
        }
    }

    /// General multidimensional schedule from a full matrix.
    pub fn multidim(theta: IMat) -> Self {
        assert!(theta.rows() > 0 && theta.cols() > 0);
        Schedule { theta }
    }

    /// The schedule matrix `θ` (`s×d`).
    pub fn theta(&self) -> &IMat {
        &self.theta
    }

    /// Statement depth `d`.
    pub fn depth(&self) -> usize {
        self.theta.cols()
    }

    /// Timestep of an iteration point.
    pub fn time(&self, point: &[i64]) -> Vec<i64> {
        self.theta.mul_vec(point)
    }

    /// `true` iff two instances execute at the same timestep.
    pub fn concurrent(&self, p: &[i64], q: &[i64]) -> bool {
        self.time(p) == self.time(q)
    }

    /// `true` iff the schedule is fully parallel (θ = 0).
    pub fn is_parallel(&self) -> bool {
        self.theta.is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_schedule_everything_concurrent() {
        let s = Schedule::parallel(3);
        assert!(s.is_parallel());
        assert!(s.concurrent(&[0, 0, 0], &[5, -2, 7]));
        assert_eq!(s.time(&[5, -2, 7]), vec![0]);
    }

    #[test]
    fn linear_schedule() {
        let s = Schedule::linear(&[1, 0, 0]);
        assert!(!s.is_parallel());
        assert!(s.concurrent(&[3, 1, 2], &[3, 9, -4]));
        assert!(!s.concurrent(&[3, 1, 2], &[4, 1, 2]));
        assert_eq!(s.depth(), 3);
    }

    #[test]
    fn sequential_outer_matches_linear_for_k1() {
        let a = Schedule::sequential_outer(4, 1);
        let b = Schedule::linear(&[1, 0, 0, 0]);
        assert_eq!(a.theta(), b.theta());
    }

    #[test]
    fn multidim_schedule() {
        let theta = IMat::from_rows(&[&[1, 0, 0], &[0, 1, 1]]);
        let s = Schedule::multidim(theta);
        assert_eq!(s.time(&[2, 3, 4]), vec![2, 7]);
        assert!(s.concurrent(&[2, 3, 4], &[2, 4, 3]));
        assert!(!s.concurrent(&[2, 3, 4], &[2, 4, 4]));
    }

    #[test]
    fn kernel_of_parallel_schedule_is_everything() {
        let s = Schedule::parallel(2);
        let k = rescomm_intlin::kernel_basis(s.theta()).unwrap();
        assert_eq!(k.cols(), 2);
    }
}
