//! # rescomm-loopnest — affine loop-nest intermediate representation
//!
//! The computations the paper maps onto distributed-memory machines are
//! *affine loop nests*: possibly non-perfect nests of loops in which every
//! array reference is an affine function `x[F·I + c]` of the iteration
//! vector `I`. This crate provides the IR those analyses run on:
//!
//! * [`ir`] — arrays, statements, affine accesses and whole nests;
//! * [`domain`] — rectangular iteration domains with point iteration;
//! * [`schedule`] — multidimensional linear schedules `θ_S` (a DOALL nest
//!   is the all-zero one-row schedule: every iteration at timestep 0);
//! * [`builder`] — a fluent, validating construction API;
//! * [`parser`] — a small text format for nests (used by examples/CLI);
//! * [`deps`] — an exact (enumerative) dependence test used to validate
//!   that the paper's example nests are DOALL, as the paper does with Tiny;
//! * [`examples`] — the paper's Examples 1–5 plus classic kernels
//!   (matrix–matrix product, Gaussian elimination) used throughout the
//!   benchmarks. Example 1 is a *reconstruction*: the OCR of the paper lost
//!   the literal matrix entries, so we rebuilt an instance that satisfies
//!   every structural property the text asserts (see DESIGN.md).

pub mod builder;
pub mod deps;
pub mod domain;
pub mod examples;
pub mod ir;
pub mod parser;
pub mod printer;
pub mod schedule;

pub use builder::NestBuilder;
pub use domain::Domain;
pub use ir::{Access, AccessId, AccessKind, Array, ArrayId, LoopNest, Statement, StmtId};
pub use parser::{parse_nest, ParseError};
pub use printer::to_text;
pub use schedule::Schedule;
