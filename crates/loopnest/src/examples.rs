//! The paper's example nests and classic kernels.
//!
//! # Reconstruction note
//!
//! The available text of the paper (HAL scan, OCR) lost the literal matrix
//! entries of the motivating example of §2. [`motivating_example`] is a
//! *reconstruction*: a fully concrete instance that satisfies every
//! structural property the prose asserts —
//!
//! * a non-perfect nest: `S1` of depth 2, `S2`/`S3` of depth 3, arrays
//!   `a` (2-D), `b`, `c` (3-D), eight affine accesses `F1..F8`, all DOALL;
//! * `F8` is rank-deficient and therefore excluded from the access graph
//!   (7 edges remain);
//! * a maximum branching with 5 edges exists in which both edges of maximum
//!   integer weight 3 (the square accesses `F5`, `F7`) are made local;
//! * the residual access `F6` (read of `a` in `S2`) has a one-dimensional
//!   kernel, so it is a *partial broadcast*; its direction `M_{S2}·v` is
//!   not axis-parallel until the component is rotated by a unimodular `V`;
//! * after the same rotation the rank-deficient `F8` communication is
//!   *also* an axis-parallel broadcast (the paper's footnoted "lucky
//!   coincidence");
//! * the residual access `F3` (second read of `a` in `S1`) has dataflow
//!   matrix `T = V·M_{S1}·(M_a·F3)⁻¹·V⁻¹ = [[1,1],[1,2]]`, which decomposes
//!   into exactly two elementary communications `L(1)·U(1)`.

use crate::builder::NestBuilder;
use crate::domain::Domain;
use crate::ir::{AccessId, ArrayId, LoopNest, StmtId};
use crate::schedule::Schedule;
use rescomm_intlin::IMat;

/// Handles into the [`motivating_example`] nest, so tests and the
/// end-to-end pipeline can refer to the paper's names.
#[derive(Debug, Clone, Copy)]
pub struct MotivatingIds {
    /// Array `a` (2-D).
    pub a: ArrayId,
    /// Array `b` (3-D).
    pub b: ArrayId,
    /// Array `c` (3-D).
    pub c: ArrayId,
    /// Statement `S1` (depth 2).
    pub s1: StmtId,
    /// Statement `S2` (depth 3).
    pub s2: StmtId,
    /// Statement `S3` (depth 3).
    pub s3: StmtId,
    /// `b[F1·I+c1]` written in `S1` (narrow 3×2).
    pub f1: AccessId,
    /// `a[F2·I+c2]` read in `S1` (square, = Id).
    pub f2: AccessId,
    /// `a[F3·I+c3]` read in `S1` (square unimodular) — the residual that
    /// gets *decomposed*.
    pub f3: AccessId,
    /// `c[F4·I+c4]` read in `S1` (narrow 3×2).
    pub f4: AccessId,
    /// `b[F5·I+c5]` written in `S2` (square, = Id).
    pub f5: AccessId,
    /// `a[F6·I+c6]` read in `S2` (flat 2×3, 1-D kernel) — the residual that
    /// becomes a *partial broadcast*.
    pub f6: AccessId,
    /// `c[F7·I+c7]` written in `S3` (square unimodular).
    pub f7: AccessId,
    /// `a[F8·I+c8]` read in `S3` (flat, rank 1 — excluded from the graph;
    /// the "lucky coincidence" broadcast).
    pub f8: AccessId,
}

/// The reconstructed motivating example of §2 (see module docs), with
/// `i, j ∈ [0, n)` and `k ∈ [0, n+m)`:
///
/// ```text
/// for i, j:                                     (DOALL)
///   S1: b[F1(i,j)+c1] = g1(a[F2(i,j)+c2], a[F3(i,j)+c3], c[F4(i,j)+c4])
///   for k:                                      (DOALL)
///     S2: b[F5(i,j,k)+c5] = g2(a[F6(i,j,k)+c6])
///     S3: c[F7(i,j,k)+c7] = g3(a[F8(i,j,k)+c8])
/// ```
pub fn motivating_example(n: i64, m: i64) -> (LoopNest, MotivatingIds) {
    let mut bld = NestBuilder::new("motivating-example");
    let a = bld.array("a", 2);
    let b = bld.array("b", 3);
    let c = bld.array("c", 3);
    let dom2 = Domain::rect(&[(0, n - 1), (0, n - 1)]);
    let dom3 = Domain::rect(&[(0, n - 1), (0, n - 1), (0, n + m - 1)]);
    let s1 = bld.statement("S1", 2, dom2);
    let s2 = bld.statement("S2", 3, dom3.clone());
    let s3 = bld.statement("S3", 3, dom3);

    let f1 = bld.write(
        s1,
        b,
        IMat::from_rows(&[&[1, 0], &[0, 1], &[0, 0]]),
        &[0, 0, 0],
    );
    let f2 = bld.read(s1, a, IMat::identity(2), &[0, 1]);
    let f3 = bld.read(s1, a, IMat::from_rows(&[&[3, 1], &[-1, 0]]), &[1, 0]);
    let f4 = bld.read(
        s1,
        c,
        IMat::from_rows(&[&[1, 0], &[0, 1], &[1, 1]]),
        &[0, 0, 0],
    );
    let f5 = bld.write(s2, b, IMat::identity(3), &[0, 0, 1]);
    let f6 = bld.read(s2, a, IMat::from_rows(&[&[1, 1, 0], &[0, 1, 1]]), &[1, 1]);
    let f7 = bld.write(
        s3,
        c,
        IMat::from_rows(&[&[1, 0, -1], &[0, 1, 2], &[0, 0, 1]]),
        &[1, 0, 0],
    );
    let f8 = bld.read(
        s3,
        a,
        IMat::from_rows(&[&[1, 1, 1], &[-1, -1, -1]]),
        &[1, 2],
    );

    let nest = bld.build().expect("motivating example must validate");
    (
        nest,
        MotivatingIds {
            a,
            b,
            c,
            s1,
            s2,
            s3,
            f1,
            f2,
            f3,
            f4,
            f5,
            f6,
            f7,
            f8,
        },
    )
}

/// Example 2 of the paper (broadcast shape): `S(I): … = a[Fa·I + ca]`
/// with `Fa` flat so several processors read the same element at the same
/// timestep.
pub fn example2_broadcast(n: i64) -> LoopNest {
    let mut bld = NestBuilder::new("example2-broadcast");
    let a = bld.array("a", 1);
    let r = bld.array("r", 2);
    let s = bld.statement("S", 2, Domain::cube(2, n));
    // r[i,j] = f(a[i]): a-element broadcast along j.
    bld.write(s, r, IMat::identity(2), &[0, 0]);
    bld.read(s, a, IMat::from_rows(&[&[1, 0]]), &[0]);
    bld.build().expect("example2 must validate")
}

/// Example 3 of the paper (gather shape): `S(I): a[Fa·I + ca] = …` with
/// several sources contributing to elements owned by one processor.
pub fn example3_gather(n: i64) -> LoopNest {
    let mut bld = NestBuilder::new("example3-gather");
    let a = bld.array("a", 1);
    let src = bld.array("src", 2);
    let s = bld.statement("S", 2, Domain::cube(2, n));
    bld.write(s, a, IMat::from_rows(&[&[1, 0]]), &[0]);
    bld.read(s, src, IMat::identity(2), &[0, 0]);
    bld.build().expect("example3 must validate")
}

/// Example 4 of the paper (reduction shape): `S(I): s = s ⊕ b[Fb·I + cb]`.
/// The scalar is modelled as a 1-D array accessed through a zero access
/// matrix row.
pub fn example4_reduction(n: i64) -> LoopNest {
    let mut bld = NestBuilder::new("example4-reduction");
    let sarr = bld.array("s", 1);
    let b = bld.array("b", 2);
    let s = bld.statement("S", 2, Domain::cube(2, n));
    bld.reduce(s, sarr, IMat::zeros(1, 2), &[0]);
    bld.read(s, b, IMat::identity(2), &[0, 0]);
    bld.build().expect("example4 must validate")
}

/// Handles into [`example5_platonoff`].
#[derive(Debug, Clone, Copy)]
pub struct Example5Ids {
    /// Array `a` (4-D).
    pub a: ArrayId,
    /// Array `b` (3-D).
    pub b: ArrayId,
    /// The single statement.
    pub s: StmtId,
    /// Write `a[t,i,j,k]`.
    pub fa: AccessId,
    /// Read `b[t,i,j]` — the broadcast candidate (`ker θ ∩ ker Fb = ⟨e₄⟩`).
    pub fb: AccessId,
}

/// Example 5 of §7.2 — the nest on which the paper contrasts its
/// locality-first heuristic with Platonoff's macro-first strategy:
///
/// ```text
/// for t = 1..n (sequential):
///   for i, j, k = 1..n (parallel):
///     S: a[t,i,j,k] = b[t,i,j]
/// ```
pub fn example5_platonoff(n: i64) -> (LoopNest, Example5Ids) {
    let mut bld = NestBuilder::new("example5-platonoff");
    let a = bld.array("a", 4);
    let b = bld.array("b", 3);
    let s = bld.statement("S", 4, Domain::cube(4, n));
    bld.schedule(s, Schedule::sequential_outer(4, 1));
    let fa = bld.write(s, a, IMat::identity(4), &[0, 0, 0, 0]);
    let fb = bld.read(
        s,
        b,
        IMat::from_rows(&[&[1, 0, 0, 0], &[0, 1, 0, 0], &[0, 0, 1, 0]]),
        &[0, 0, 0],
    );
    let nest = bld.build().expect("example5 must validate");
    (nest, Example5Ids { a, b, s, fa, fb })
}

/// Matrix–matrix product `C[i,j] += A[i,k]·B[k,j]` — the paper's §1 poster
/// child for "no communication-free 2-D mapping exists".
pub fn matmul(n: i64) -> LoopNest {
    let mut bld = NestBuilder::new("matmul");
    let a = bld.array("A", 2);
    let b = bld.array("B", 2);
    let c = bld.array("C", 2);
    let s = bld.statement("S", 3, Domain::cube(3, n));
    // Iteration vector (i, j, k); the k loop carries the reduction.
    bld.schedule(s, Schedule::linear(&[0, 0, 1]));
    bld.reduce(s, c, IMat::from_rows(&[&[1, 0, 0], &[0, 1, 0]]), &[0, 0]);
    bld.read(s, a, IMat::from_rows(&[&[1, 0, 0], &[0, 0, 1]]), &[0, 0]);
    bld.read(s, b, IMat::from_rows(&[&[0, 0, 1], &[0, 1, 0]]), &[0, 0]);
    bld.build().expect("matmul must validate")
}

/// Gaussian-elimination update `A[r,c] -= A[r,k]·A[k,c] / A[k,k]` with
/// `r = k+1+i`, `c = k+1+j` (the triangular bounds of the classic kernel
/// encoded as shifted affine accesses over a box domain); the outer `k`
/// loop is sequential, the updates at a fixed `k` are parallel.
pub fn gauss_elim(n: i64) -> LoopNest {
    let mut bld = NestBuilder::new("gauss-elim");
    let a = bld.array("A", 2);
    // Iteration vector (k, i, j); updated entry is A[k+1+i, k+1+j].
    let s = bld.statement("S", 3, Domain::cube(3, n));
    bld.schedule(s, Schedule::sequential_outer(3, 1));
    bld.write(s, a, IMat::from_rows(&[&[1, 1, 0], &[1, 0, 1]]), &[1, 1]);
    bld.read(s, a, IMat::from_rows(&[&[1, 1, 0], &[1, 0, 1]]), &[1, 1]);
    bld.read(s, a, IMat::from_rows(&[&[1, 1, 0], &[1, 0, 0]]), &[1, 0]);
    bld.read(s, a, IMat::from_rows(&[&[1, 0, 0], &[1, 0, 1]]), &[0, 1]);
    bld.read(s, a, IMat::from_rows(&[&[1, 0, 0], &[1, 0, 0]]), &[0, 0]);
    bld.build().expect("gauss must validate")
}

/// Jacobi 2-D five-point stencil: `B[i,j] = f(A[i,j], A[i±1,j], A[i,j±1])`
/// — all five reads share the identity access matrix (different offsets),
/// so step 1 makes them all *translations*: the textbook all-local nest.
pub fn jacobi2d(n: i64) -> LoopNest {
    let mut bld = NestBuilder::new("jacobi2d");
    let a = bld.array("A", 2);
    let b = bld.array("B", 2);
    let s = bld.statement("S", 2, Domain::rect(&[(1, n - 2), (1, n - 2)]));
    bld.write(s, b, IMat::identity(2), &[0, 0]);
    for off in [[0, 0], [1, 0], [-1, 0], [0, 1], [0, -1]] {
        bld.read(s, a, IMat::identity(2), &off);
    }
    bld.build().expect("jacobi must validate")
}

/// Out-of-place transpose `B[j,i] = A[i,j]`: a single access pair whose
/// matrices multiply to the swap — local for one array, a permutation for
/// the other.
pub fn transpose(n: i64) -> LoopNest {
    let mut bld = NestBuilder::new("transpose");
    let a = bld.array("A", 2);
    let b = bld.array("B", 2);
    let s = bld.statement("S", 2, Domain::cube(2, n));
    bld.read(s, a, IMat::identity(2), &[0, 0]);
    bld.write(s, b, IMat::from_rows(&[&[0, 1], &[1, 0]]), &[0, 0]);
    bld.build().expect("transpose must validate")
}

/// Symmetric rank-k update `C[i,j] += A[i,l]·A[j,l]`: the *same* array
/// read through two different access matrices — only one can be aligned,
/// and the broadcast structure of the other is the interesting residue.
pub fn syrk(n: i64) -> LoopNest {
    let mut bld = NestBuilder::new("syrk");
    let a = bld.array("A", 2);
    let c = bld.array("C", 2);
    // Iteration vector (i, j, l); the l loop carries the reduction.
    let s = bld.statement("S", 3, Domain::cube(3, n));
    bld.schedule(s, Schedule::linear(&[0, 0, 1]));
    bld.reduce(s, c, IMat::from_rows(&[&[1, 0, 0], &[0, 1, 0]]), &[0, 0]);
    bld.read(s, a, IMat::from_rows(&[&[1, 0, 0], &[0, 0, 1]]), &[0, 0]);
    bld.read(s, a, IMat::from_rows(&[&[0, 1, 0], &[0, 0, 1]]), &[0, 0]);
    bld.build().expect("syrk must validate")
}

/// 1-D three-point stencil over a time loop:
/// `X[t+1, i] = f(X[t, i−1], X[t, i], X[t, i+1])`, `t` sequential — every
/// residual is a translation and vectorization is impossible (the data
/// moves every step).
pub fn stencil1d(n: i64, steps: i64) -> LoopNest {
    let mut bld = NestBuilder::new("stencil1d");
    let x = bld.array("X", 2); // indexed [t, i]
    let s = bld.statement("S", 2, Domain::rect(&[(0, steps - 1), (1, n - 2)]));
    bld.schedule(s, Schedule::sequential_outer(2, 1));
    bld.write(s, x, IMat::identity(2), &[1, 0]);
    for di in [-1i64, 0, 1] {
        bld.read(s, x, IMat::identity(2), &[0, di]);
    }
    bld.build().expect("stencil must validate")
}

/// Gaussian elimination with *true triangular bounds* (affine guards:
/// `i > k`, `j > k` over the bounding box) — the honest domain that the
/// shifted-access variant [`gauss_elim`] approximates.
pub fn gauss_triangular(n: i64) -> LoopNest {
    let mut bld = NestBuilder::new("gauss-triangular");
    let a = bld.array("A", 2);
    // Iteration vector (k, i, j) with k < i and k < j.
    let dom = Domain::cube(3, n)
        .with_guard(&[1, -1, 0], -1) // k − i ≤ −1
        .with_guard(&[1, 0, -1], -1); // k − j ≤ −1
    let s = bld.statement("S", 3, dom);
    bld.schedule(s, Schedule::sequential_outer(3, 1));
    bld.write(s, a, IMat::from_rows(&[&[0, 1, 0], &[0, 0, 1]]), &[0, 0]);
    bld.read(s, a, IMat::from_rows(&[&[0, 1, 0], &[0, 0, 1]]), &[0, 0]);
    bld.read(s, a, IMat::from_rows(&[&[0, 1, 0], &[1, 0, 0]]), &[0, 0]);
    bld.read(s, a, IMat::from_rows(&[&[1, 0, 0], &[0, 0, 1]]), &[0, 0]);
    bld.read(s, a, IMat::from_rows(&[&[1, 0, 0], &[1, 0, 0]]), &[0, 0]);
    bld.build().expect("gauss-triangular must validate")
}

/// ADI-like sweep: two statements alternating row and column updates —
/// a nest whose two statements want *conflicting* alignments, exercising
/// the branching tie-break.
pub fn adi_sweep(n: i64) -> LoopNest {
    let mut bld = NestBuilder::new("adi-sweep");
    let x = bld.array("X", 2);
    let u = bld.array("U", 2);
    let s1 = bld.statement("Srow", 2, Domain::cube(2, n));
    let s2 = bld.statement("Scol", 2, Domain::cube(2, n));
    bld.write(s1, x, IMat::identity(2), &[0, 0]);
    bld.read(s1, u, IMat::identity(2), &[0, -1]);
    bld.write(s2, x, IMat::from_rows(&[&[0, 1], &[1, 0]]), &[0, 0]);
    bld.read(s2, u, IMat::from_rows(&[&[0, 1], &[1, 0]]), &[-1, 0]);
    bld.build().expect("adi must validate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::AccessKind;
    use rescomm_intlin::kernel_basis;

    #[test]
    fn motivating_example_shapes() {
        let (nest, ids) = motivating_example(8, 4);
        assert_eq!(nest.arrays.len(), 3);
        assert_eq!(nest.statements.len(), 3);
        assert_eq!(nest.accesses.len(), 8);
        assert_eq!(nest.array(ids.a).dim, 2);
        assert_eq!(nest.array(ids.b).dim, 3);
        assert_eq!(nest.statement(ids.s1).depth, 2);
        assert_eq!(nest.statement(ids.s2).depth, 3);
    }

    #[test]
    fn motivating_example_rank_structure() {
        let (nest, ids) = motivating_example(8, 4);
        // F8 is the only rank-deficient access.
        for acc in &nest.accesses {
            let full = acc.f.rank() == acc.f.rows().min(acc.f.cols());
            if acc.id == ids.f8 {
                assert!(!full, "F8 must be rank-deficient");
                assert_eq!(acc.f.rank(), 1);
            } else {
                assert!(full, "access {:?} must be full rank", acc.id);
            }
        }
        // F3 is unimodular (needed for an integral dataflow matrix).
        let f3 = &nest.access(ids.f3).f;
        assert_eq!(f3.det().abs(), 1);
        // F6 has a 1-dimensional kernel — the broadcast direction.
        let k6 = kernel_basis(&nest.access(ids.f6).f).unwrap();
        assert_eq!(k6.cols(), 1);
    }

    #[test]
    fn motivating_example_is_doall() {
        let (nest, _) = motivating_example(4, 2);
        for st in &nest.statements {
            assert!(st.schedule.is_parallel());
        }
    }

    #[test]
    fn example5_kernel_condition() {
        // ker θ ∩ ker Fb = ⟨e₄⟩ — the broadcast the paper discusses.
        let (nest, ids) = example5_platonoff(4);
        let theta = nest.statement(ids.s).schedule.theta().clone();
        let fb = nest.access(ids.fb).f.clone();
        let inter = rescomm_intlin::kernel_intersection(&[&theta, &fb]).unwrap();
        assert_eq!(inter.cols(), 1);
        let v = inter.col(0);
        assert_eq!(&v[0..3], &[0, 0, 0]);
        assert_eq!(v[3].abs(), 1);
    }

    #[test]
    fn matmul_structure() {
        let nest = matmul(4);
        assert_eq!(nest.accesses.len(), 3);
        assert!(nest.accesses.iter().any(|a| a.kind == AccessKind::Reduce));
        // All access matrices are flat 2×3 of rank 2.
        for a in &nest.accesses {
            assert_eq!(a.f.shape(), (2, 3));
            assert_eq!(a.f.rank(), 2);
        }
    }

    #[test]
    fn gauss_triangular_schedule_valid() {
        // With the genuine triangular bounds the *unshifted* accesses are
        // safe: at fixed k nobody writes row k or column k.
        let nest = gauss_triangular(5);
        let deps = crate::deps::find_dependences(&nest).unwrap();
        assert!(!deps.is_empty(), "flow dependences across k must exist");
        let violations = crate::deps::schedules_valid(&nest).unwrap();
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn gauss_has_rank_deficient_pivot_access() {
        let nest = gauss_elim(4);
        let ranks: Vec<usize> = nest.accesses.iter().map(|a| a.f.rank()).collect();
        assert!(ranks.contains(&1), "A[k,k] access must have rank 1");
        assert_eq!(nest.accesses.len(), 5);
    }

    #[test]
    fn example_nests_validate() {
        for nest in [
            motivating_example(4, 2).0,
            example2_broadcast(4),
            example3_gather(4),
            example4_reduction(4),
            example5_platonoff(3).0,
            matmul(3),
            gauss_elim(3),
            adi_sweep(4),
            jacobi2d(6),
            transpose(4),
            syrk(3),
            stencil1d(8, 4),
        ] {
            nest.validate().expect("example nest must validate");
        }
    }

    #[test]
    fn jacobi_reads_are_uniform() {
        let nest = jacobi2d(8);
        assert_eq!(nest.accesses.len(), 6);
        // All accesses use the identity matrix: uniform dependences.
        for a in &nest.accesses {
            assert!(a.f.is_identity());
        }
    }

    #[test]
    fn stencil_schedule_is_valid() {
        let nest = stencil1d(10, 5);
        let violations = crate::deps::schedules_valid(&nest).unwrap();
        assert!(violations.is_empty(), "{violations:?}");
        // And it genuinely has dependences across t.
        assert!(!crate::deps::find_dependences(&nest).unwrap().is_empty());
    }

    #[test]
    fn syrk_two_reads_of_same_array_differ() {
        let nest = syrk(4);
        let fa: Vec<_> = nest
            .accesses
            .iter()
            .filter(|a| nest.array(a.array).name == "A")
            .collect();
        assert_eq!(fa.len(), 2);
        assert_ne!(fa[0].f, fa[1].f);
    }

    #[test]
    fn transpose_composition_is_swap() {
        let nest = transpose(4);
        let fa = &nest.accesses[0].f;
        let fb = &nest.accesses[1].f;
        let comp = &fb.transpose() * fa; // the alignment cycle product
        assert!(!comp.is_identity());
    }
}
