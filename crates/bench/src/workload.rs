//! Workload generators shared by the experiments: communication patterns
//! on the simulated machines and cost estimation for a whole mapping.

use rescomm::{CommOutcome, Mapping};
use rescomm_distribution::{fold_general, Dist1D, Dist2D, Msg};
use rescomm_intlin::IMat;
use rescomm_loopnest::{Domain, LoopNest, NestBuilder};
use rescomm_machine::{broadcast_rows_time, shift_time, CostModel, Mesh2D, PMsg, PhaseSim};

/// Flatten aggregated distribution messages onto mesh node ids.
pub fn msgs_to_phase(msgs: &[Msg], mesh: &Mesh2D) -> Vec<PMsg> {
    msgs.iter()
        .map(|m| PMsg {
            src: mesh.node_id(m.src.0, m.src.1),
            dst: mesh.node_id(m.dst.0, m.dst.1),
            bytes: m.bytes,
        })
        .collect()
}

/// Generate the physical phase of a dataflow matrix closed-form and
/// schedule it on a reused [`PhaseSim`] — the zero-alloc hot path every
/// sweep in this crate goes through.
pub fn simulate_dataflow_with(
    sim: &mut PhaseSim,
    t: &IMat,
    dist: Dist2D,
    vshape: (usize, usize),
    bytes: u64,
) -> u64 {
    let mesh = sim.mesh();
    let folded = fold_general(t, dist, vshape, (mesh.px, mesh.py), bytes);
    let pms = msgs_to_phase(&folded.msgs, sim.mesh());
    sim.simulate_phase(&pms)
}

/// Fold a dataflow matrix's virtual pattern onto a mesh and simulate it
/// (one-shot convenience over [`simulate_dataflow_with`]).
pub fn simulate_dataflow(
    t: &IMat,
    mesh: &Mesh2D,
    dist: Dist2D,
    vshape: (usize, usize),
    bytes: u64,
) -> u64 {
    simulate_dataflow_with(&mut PhaseSim::new(mesh.clone()), t, dist, vshape, bytes)
}

/// The paper's default Paragon-like testbed: an 8×4 mesh (32 nodes).
/// Number of hardware threads of the benchmarking host (0 when the OS
/// will not say). Every committed `BENCH_*.json` records this so a
/// parallel-speedup table can be read against the machine that produced
/// it — a "4 threads, 1.0x" row is expected, not a regression, when the
/// host only has one core.
pub fn host_threads() -> usize {
    std::thread::available_parallelism().map_or(0, |n| n.get())
}

pub fn paragon_mesh() -> Mesh2D {
    Mesh2D::new(8, 4, CostModel::paragon())
}

/// Estimated communication time of a whole mapping on a mesh, pricing
/// each access by its outcome class (an end-to-end extension experiment;
/// the paper prices single communications only).
pub fn mapping_cost_on_mesh(
    nest: &LoopNest,
    mapping: &Mapping,
    mesh: &Mesh2D,
    vshape: (usize, usize),
    bytes: u64,
) -> u64 {
    let dist = Dist2D::uniform(Dist1D::Cyclic);
    // One scratch engine for every simulated outcome of the mapping, and
    // one memo so repeated general residuals solve their dataflow matrix
    // once instead of per access.
    let mut sim = PhaseSim::new(mesh.clone());
    let mut cache = rescomm::AnalysisCache::new();
    let mut total = 0u64;
    for (acc, out) in nest.accesses.iter().zip(&mapping.outcomes) {
        total += match out {
            CommOutcome::Local => 0,
            CommOutcome::Translation => shift_time(mesh, 1, 0, bytes),
            CommOutcome::Macro { .. } => broadcast_rows_time(mesh, bytes),
            CommOutcome::Decomposed { factors, .. } => factors
                .iter()
                .map(|f| simulate_dataflow_with(&mut sim, &f.to_mat(), dist, vshape, bytes))
                .sum(),
            CommOutcome::DecomposedGeneral { n_factors } => {
                // Price each unirow factor like one elementary sweep.
                let one = simulate_dataflow_with(
                    &mut sim,
                    &IMat::from_rows(&[&[1, 1], &[0, 1]]),
                    dist,
                    vshape,
                    bytes,
                );
                one * *n_factors as u64
            }
            CommOutcome::General => {
                let t = rescomm::pipeline::dataflow_matrix_cached(
                    &mut cache,
                    &mapping.alignment,
                    nest,
                    acc.id,
                )
                .filter(|t| t.shape() == (2, 2))
                .unwrap_or_else(|| IMat::from_rows(&[&[1, 3], &[2, 7]]));
                simulate_dataflow_with(&mut sim, &t, dist, vshape, bytes)
            }
        };
    }
    total
}

/// Deterministic chained-stencil nest with `n_stmts` depth-2 statements:
/// statement `S_i` writes its own array `a_i` (identity), reads the
/// previous stage `a_{i-1}` through a unimodular transform, and reads a
/// shared coefficient array `g` through a second one — the repeating
/// producer/consumer chains of time-stepped stencil codes. Both
/// transforms cycle through a 3-element family by statement index, so the
/// analysis sees long chains of *repeated* `(F, M_S, M_x)` combinations,
/// exactly the shape real unrolled pipelines hand the compiler. The
/// family is signed permutations on purpose: relative alignment matrices
/// along an `n`-statement chain are *products* of the access matrices,
/// and a finite matrix group keeps those entries bounded at any depth
/// (skews like `U(1)·L(1)·…` blow up Fibonacci-fast instead).
pub fn chained_stencil_nest(n_stmts: usize, size: i64) -> LoopNest {
    assert!(n_stmts >= 1);
    let fam = [
        IMat::identity(2),
        IMat::from_rows(&[&[0, 1], &[1, 0]]),
        IMat::from_rows(&[&[0, -1], &[1, 0]]),
    ];
    let mut b = NestBuilder::new("chained-stencil");
    let g = b.array("g", 2);
    let stages: Vec<_> = (0..=n_stmts)
        .map(|i| b.array(&format!("a{i}"), 2))
        .collect();
    for i in 1..=n_stmts {
        let s = b.statement(&format!("S{i}"), 2, Domain::cube(2, size));
        b.write(s, stages[i], IMat::identity(2), &[0, 0]);
        b.read(s, stages[i - 1], fam[i % 3].clone(), &[0, 0]);
        b.read(s, g, fam[(i + 1) % 3].clone(), &[(i % 2) as i64, 0]);
    }
    b.build().expect("chained stencil nest valid")
}

/// Deterministic pipeline nest with `n_stmts` depth-3 statements mixing
/// both edge orientations: `S_i` writes its stage array `b_i` (3-D,
/// square unimodular), reads `b_{i-1}` through a cycling 3×3 permutation
/// (bounded chain products, see [`chained_stencil_nest`]), and reads a
/// shared 2-D table `c` through a cycling *flat* 2×3 access (array →
/// statement edges). Exercises the rank/orientation logic the chained
/// stencil family does not.
pub fn pipeline_nest(n_stmts: usize, size: i64) -> LoopNest {
    assert!(n_stmts >= 1);
    let perms = [
        IMat::identity(3),
        IMat::from_rows(&[&[0, 1, 0], &[0, 0, 1], &[1, 0, 0]]),
        IMat::from_rows(&[&[0, 1, 0], &[1, 0, 0], &[0, 0, 1]]),
    ];
    let flats = [
        IMat::from_rows(&[&[1, 0, 0], &[0, 1, 0]]),
        IMat::from_rows(&[&[0, 1, 0], &[0, 0, 1]]),
        IMat::from_rows(&[&[1, 1, 0], &[0, 1, 1]]),
    ];
    let mut b = NestBuilder::new("pipeline");
    let c = b.array("c", 2);
    let stages: Vec<_> = (0..=n_stmts)
        .map(|i| b.array(&format!("b{i}"), 3))
        .collect();
    for i in 1..=n_stmts {
        let s = b.statement(&format!("P{i}"), 3, Domain::cube(3, size));
        b.write(s, stages[i], IMat::identity(3), &[0, 0, 0]);
        b.read(s, stages[i - 1], perms[i % 3].clone(), &[0, 0, 0]);
        b.read(s, c, flats[(i + 1) % 3].clone(), &[0, 0]);
    }
    b.build().expect("pipeline nest valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The rewired hot path (closed-form generation + PhaseSim) gives the
    /// same times as the original enumeration + one-shot simulation.
    #[test]
    fn closed_form_path_matches_enumeration_path() {
        use rescomm_distribution::{general_pattern, physical_messages};
        let mesh = paragon_mesh();
        let vshape = (32, 16);
        let mut sim = PhaseSim::new(mesh.clone());
        for t in [
            IMat::from_rows(&[&[1, 3], &[0, 1]]),
            IMat::from_rows(&[&[1, 0], &[2, 1]]),
            IMat::from_rows(&[&[1, 3], &[2, 7]]),
        ] {
            for dist in [
                Dist2D::uniform(Dist1D::Cyclic),
                Dist2D {
                    rows: Dist1D::Grouped(3),
                    cols: Dist1D::Block,
                },
            ] {
                let pattern = general_pattern(&t, vshape);
                let msgs = physical_messages(&pattern, dist, vshape, (mesh.px, mesh.py), 256);
                let want = mesh.simulate_phase(&msgs_to_phase(&msgs, &mesh));
                assert_eq!(
                    simulate_dataflow_with(&mut sim, &t, dist, vshape, 256),
                    want,
                    "t={t:?} dist={dist:?}"
                );
            }
        }
    }

    #[test]
    fn dataflow_simulation_nonzero_for_nonlocal() {
        let mesh = paragon_mesh();
        let t = IMat::from_rows(&[&[1, 3], &[2, 7]]);
        let time = simulate_dataflow(&t, &mesh, Dist2D::uniform(Dist1D::Cyclic), (32, 16), 256);
        assert!(time > 0);
    }

    #[test]
    fn identity_dataflow_is_free() {
        let mesh = paragon_mesh();
        let time = simulate_dataflow(
            &IMat::identity(2),
            &mesh,
            Dist2D::uniform(Dist1D::Cyclic),
            (32, 16),
            256,
        );
        assert_eq!(time, 0);
    }

    #[test]
    fn mapping_cost_orders_strategies() {
        use rescomm::{map_nest, MappingOptions};
        use rescomm_loopnest::examples;
        let (nest, _) = examples::motivating_example(8, 4);
        let mesh = paragon_mesh();
        let ours = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        let base = rescomm::baselines::feautrier_map(&nest, 2).unwrap();
        let c_ours = mapping_cost_on_mesh(&nest, &ours, &mesh, (32, 16), 256);
        let c_base = mapping_cost_on_mesh(&nest, &base, &mesh, (32, 16), 256);
        assert!(
            c_ours <= c_base,
            "residual optimization must not cost more: {c_ours} vs {c_base}"
        );
    }
}
