//! The experiment implementations, one per paper artifact.

use crate::workload::{mapping_cost_on_mesh, msgs_to_phase, paragon_mesh, simulate_dataflow_with};
use rescomm::baselines::{feautrier_map, platonoff_map};
use rescomm::{map_nest, CommOutcome, MappingOptions};
use rescomm_decompose::Elementary;
use rescomm_distribution::{fold_general, Dist1D, Dist2D};
use rescomm_intlin::IMat;
use rescomm_loopnest::examples;
use rescomm_machine::{CachedPhase, CostModel, FatTree, PMsg, PhaseSim};

/// One row of Table 1: simulated CM-5 times for the four data movements,
/// normalized to the reduction.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Message payload per processor (bytes).
    pub bytes: u64,
    /// Simulated times in ns: (reduction, broadcast, translation, general).
    pub times: [u64; 4],
    /// Ratios normalized to the reduction.
    pub ratios: [f64; 4],
}

/// Reproduce Table 1: compare reduction / broadcast / translation /
/// general affine communication on the 32-processor fat-tree (CM-5-like)
/// machine.
pub fn table1(bytes: u64) -> Table1Row {
    let t = FatTree::new(32, 4, CostModel::cm5());
    let reduction = t.hw_reduce(32, 8); // combine values: tiny payload
    let broadcast = t.hw_broadcast(32, bytes.min(512));
    let translation = t.translation(1, bytes);
    // General affine communication: an irregular permutation exercising
    // the top of the tree (same spirit as the paper's affine patterns).
    let msgs: Vec<PMsg> = (0..32)
        .map(|i| PMsg {
            src: i,
            dst: (i * 13 + 5) % 32,
            bytes,
        })
        .collect();
    let general = t.simulate_phase(&msgs);
    let times = [reduction, broadcast, translation, general];
    let r0 = reduction.max(1) as f64;
    Table1Row {
        bytes,
        times,
        ratios: times.map(|x| x as f64 / r0),
    }
}

/// One row of Table 2: Paragon times for `T = [[1,3],[2,7]] = L(2)·U(3)`
/// executed directly vs decomposed.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Payload bytes per virtual processor.
    pub bytes: u64,
    /// Direct execution of the general communication.
    pub not_decomposed: u64,
    /// The `L(2)` phase alone.
    pub l_phase: u64,
    /// The `U(3)` phase alone.
    pub u_phase: u64,
    /// Decomposed execution: `L` then `U` sequentially.
    pub lu_total: u64,
}

impl Table2Row {
    /// Ratios normalized to the `L` phase, the paper's presentation.
    pub fn ratios(&self) -> [f64; 4] {
        let base = self.l_phase.max(1) as f64;
        [
            self.not_decomposed as f64 / base,
            self.l_phase as f64 / base,
            self.u_phase as f64 / base,
            self.lu_total as f64 / base,
        ]
    }
}

/// Reproduce Table 2 on the 8×4 mesh with a CYCLIC distribution (the
/// paper's data distribution for this experiment).
pub fn table2(vshape: (usize, usize), bytes: u64) -> Table2Row {
    let mesh = paragon_mesh();
    let dist = Dist2D::uniform(Dist1D::Cyclic);
    let t = IMat::from_rows(&[&[1, 3], &[2, 7]]);
    let l = Elementary::L(2).to_mat();
    let u = Elementary::U(3).to_mat();
    let mut sim = PhaseSim::new(mesh);
    let not_decomposed = simulate_dataflow_with(&mut sim, &t, dist, vshape, bytes);
    let l_phase = simulate_dataflow_with(&mut sim, &l, dist, vshape, bytes);
    let u_phase = simulate_dataflow_with(&mut sim, &u, dist, vshape, bytes);
    Table2Row {
        bytes,
        not_decomposed,
        l_phase,
        u_phase,
        lu_total: l_phase + u_phase,
    }
}

/// One point of Figure 8: ratios of the standard HPF distributions over
/// the grouped partition for the `U(k)` elementary communication.
#[derive(Debug, Clone)]
pub struct Figure8Row {
    /// The elementary coefficient `k`.
    pub k: usize,
    /// Grouped-partition time (the denominator).
    pub grouped: u64,
    /// `CYCLIC` over grouped.
    pub cyclic_ratio: f64,
    /// full `BLOCK` over grouped.
    pub block_ratio: f64,
    /// `CYCLIC(B)` over grouped.
    pub cyclic_block_ratio: f64,
}

/// Reproduce one Figure 8 graph: sweep `k = 1..=kmax` for a given mesh
/// shape, comparing distributions on the `U(k)` pattern. The virtual row
/// count is chosen per `k` as the smallest multiple of `lcm(k, P)` that is
/// ≥ `base_rows`, so the toroidal wrap preserves the `i mod k` classes
/// (the paper's setting; ratios are per-`k`, so sizes need not match
/// across `k`).
pub fn figure8(
    mesh_shape: (usize, usize),
    base_rows: usize,
    vcols: usize,
    kmax: usize,
    block_b: usize,
    bytes: u64,
) -> Vec<Figure8Row> {
    let mesh = rescomm_machine::Mesh2D::new(mesh_shape.0, mesh_shape.1, CostModel::paragon());
    let mut sim = PhaseSim::new(mesh);
    (1..=kmax)
        .map(|k| {
            let l = lcm(k, mesh_shape.0);
            let vshape = (l * base_rows.div_ceil(l), vcols);
            let u = IMat::from_rows(&[&[1, k as i64], &[0, 1]]);
            let mut run = |rows: Dist1D| {
                let dist = Dist2D {
                    rows,
                    cols: Dist1D::Block,
                };
                simulate_dataflow_with(&mut sim, &u, dist, vshape, bytes)
            };
            let grouped = run(Dist1D::Grouped(k));
            // When k is a multiple of P the whole pattern is local under
            // both grouped and CYCLIC ("CYCLIC amounts to the grouped
            // partition with k = P"): report a ratio of 1 for 0/0.
            let ratio = |t: u64| {
                if grouped == 0 {
                    if t == 0 {
                        1.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    t as f64 / grouped as f64
                }
            };
            Figure8Row {
                k,
                grouped,
                cyclic_ratio: ratio(run(Dist1D::Cyclic)),
                block_ratio: ratio(run(Dist1D::Block)),
                cyclic_block_ratio: ratio(run(Dist1D::CyclicBlock(block_b))),
            }
        })
        .collect()
}

/// Payload sweep around Table 2: how does the decomposition advantage
/// move with message size? Small messages are start-up dominated and the
/// irregular direct pattern pays many serialized start-ups, so
/// decomposition helps *most* there; at large payloads the advantage
/// shrinks toward the bandwidth ratio (decomposed data crosses the mesh
/// twice) — the asymptote the compiler writer must know.
#[derive(Debug, Clone)]
pub struct CrossoverRow {
    /// Payload per virtual processor (bytes).
    pub bytes: u64,
    /// Direct execution (ns).
    pub direct: u64,
    /// Decomposed execution (ns).
    pub decomposed: u64,
}

/// Sweep payload sizes for the Table 2 configuration.
///
/// The three message patterns do not depend on the payload, so each is
/// generated closed-form and route-compiled **once** and replayed per
/// size with a uniform byte scale — bit-identical to calling [`table2`]
/// at every size (the per-size test pins this), at a fraction of the
/// cost.
pub fn table2_crossover(vshape: (usize, usize), sizes: &[u64]) -> Vec<CrossoverRow> {
    let mesh = paragon_mesh();
    let dist = Dist2D::uniform(Dist1D::Cyclic);
    let compile = |t: &IMat| {
        let folded = fold_general(t, dist, vshape, (mesh.px, mesh.py), 1);
        CachedPhase::new(&mesh, &msgs_to_phase(&folded.msgs, &mesh))
    };
    let direct = compile(&IMat::from_rows(&[&[1, 3], &[2, 7]]));
    let l = compile(&Elementary::L(2).to_mat());
    let u = compile(&Elementary::U(3).to_mat());
    let mut sim = PhaseSim::new(mesh);
    sizes
        .iter()
        .map(|&bytes| CrossoverRow {
            bytes,
            direct: sim.run_cached_scaled(&direct, bytes),
            decomposed: sim.run_cached_scaled(&l, bytes) + sim.run_cached_scaled(&u, bytes),
        })
        .collect()
}

/// The §4 + §5 composition: decompose `T = L(2)·U(3)` AND fold each
/// elementary phase with the factor-derived grouped partition — the full
/// stack the paper proposes, against partial applications.
#[derive(Debug, Clone)]
pub struct CombinedRow {
    /// Direct execution, CYCLIC distribution.
    pub direct_cyclic: u64,
    /// Decomposed, CYCLIC distribution (Table 2's winner).
    pub decomposed_cyclic: u64,
    /// Decomposed, factor-derived grouped partition (§5's refinement).
    pub decomposed_grouped: u64,
}

/// Run the composition experiment on the 8×4 mesh.
pub fn combined(vshape: (usize, usize), bytes: u64) -> CombinedRow {
    use rescomm_decompose::product;
    let mesh = paragon_mesh();
    let l = Elementary::L(2);
    let u = Elementary::U(3);
    let t = product(&[l, u]);
    let cyclic = Dist2D::uniform(Dist1D::Cyclic);
    let grouped = rescomm_distribution::scheme_for_factors(&[l.to_mat(), u.to_mat()]);
    let mut sim = PhaseSim::new(mesh);
    let mut phase =
        |f: Elementary, d: Dist2D| simulate_dataflow_with(&mut sim, &f.to_mat(), d, vshape, bytes);
    let decomposed_cyclic = phase(l, cyclic) + phase(u, cyclic);
    let decomposed_grouped = phase(l, grouped) + phase(u, grouped);
    CombinedRow {
        direct_cyclic: simulate_dataflow_with(&mut sim, &t, cyclic, vshape, bytes),
        decomposed_cyclic,
        decomposed_grouped,
    }
}

fn lcm(a: usize, b: usize) -> usize {
    fn gcd(mut a: usize, mut b: usize) -> usize {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    }
    a / gcd(a, b) * b
}

/// Figures 6/7: render the grouped-partition layout (which physical
/// processor owns each virtual index) as text.
pub fn figure7_layout(v: usize, k: usize, p: usize) -> String {
    let d = Dist1D::Grouped(k);
    let mut line1 = String::from("virtual :");
    let mut line2 = String::from("physical:");
    for i in 0..v {
        line1.push_str(&format!(" {i:>2}"));
        line2.push_str(&format!(" {:>2}", d.map(i as i64, v, p)));
    }
    format!("{line1}\n{line2}")
}

/// One row of the §7.2 comparison on Example 5.
#[derive(Debug, Clone)]
pub struct Example5Row {
    /// Problem size `n`.
    pub n: i64,
    /// Residual communications under the locality-first heuristic.
    pub ours_nonlocal: usize,
    /// Residual communications under Platonoff's macro-first strategy.
    pub platonoff_nonlocal: usize,
    /// `true` iff Platonoff's residual is (at least) an axis-parallel
    /// macro-communication, as his strategy guarantees.
    pub platonoff_macro: bool,
}

/// Reproduce the §7.2 discussion.
pub fn example5(n: i64) -> Example5Row {
    let (nest, _) = examples::example5_platonoff(n);
    let ours = map_nest(&nest, &MappingOptions::new(2)).expect("example 5 maps");
    let theirs = platonoff_map(&nest, 2);
    let nonlocal = |m: &rescomm::Mapping| {
        m.outcomes
            .iter()
            .filter(|o| !matches!(o, CommOutcome::Local))
            .count()
    };
    Example5Row {
        n,
        ours_nonlocal: nonlocal(&ours),
        platonoff_nonlocal: nonlocal(&theirs),
        platonoff_macro: theirs
            .outcomes
            .iter()
            .any(|o| matches!(o, CommOutcome::Macro { .. })),
    }
}

/// One row of the §3.5 message-vectorization experiment.
#[derive(Debug, Clone)]
pub struct VectorizationRow {
    /// Number of timesteps the communication repeats over.
    pub n_steps: usize,
    /// Payload per timestep and processor (bytes).
    pub bytes: u64,
    /// One message per timestep (start-up paid every time).
    pub unvectorized: u64,
    /// One regrouped message hoisted out of the loop.
    pub vectorized: u64,
}

/// §3.5: when `ker M_S ⊆ ker(M_a·F_a)` the data a processor needs is
/// time-invariant and the per-timestep messages regroup into one packet.
/// Simulate both schedules for a one-hop translation pattern on the mesh.
pub fn vectorization(n_steps: usize, bytes: u64) -> VectorizationRow {
    let mesh = paragon_mesh();
    let shift: Vec<PMsg> = (0..mesh.nodes())
        .map(|i| {
            let (x, y) = mesh.coords(i);
            PMsg {
                src: i,
                dst: mesh.node_id((x + 1) % mesh.px, y),
                bytes,
            }
        })
        .collect();
    // The regrouped schedule is the same pattern with n× payloads: compile
    // the routes once, replay at both scales.
    let cached = CachedPhase::new(&mesh, &shift);
    let mut sim = PhaseSim::new(mesh);
    VectorizationRow {
        n_steps,
        bytes,
        unvectorized: sim.run_cached(&cached) * n_steps as u64,
        vectorized: sim.run_cached_scaled(&cached, n_steps as u64),
    }
}

/// The §2 motivating example, end to end, under three strategies.
#[derive(Debug, Clone)]
pub struct MotivatingRow {
    /// Strategy name.
    pub strategy: &'static str,
    /// Locals / macros / decomposed / general counts.
    pub counts: [usize; 4],
    /// Estimated communication time on the 8×4 mesh.
    pub est_time: u64,
}

/// Run the motivating example under the full heuristic, the step-1-only
/// baseline and Platonoff's strategy, with simulated mesh costs.
pub fn motivating(bytes: u64) -> Vec<MotivatingRow> {
    let (nest, _) = examples::motivating_example(8, 4);
    let mesh = paragon_mesh();
    let vshape = (32, 16);
    let mut rows = Vec::new();
    let mut push = |name: &'static str, mapping: rescomm::Mapping| {
        let mut counts = [0usize; 4];
        for o in &mapping.outcomes {
            match o {
                CommOutcome::Local | CommOutcome::Translation => counts[0] += 1,
                CommOutcome::Macro { .. } => counts[1] += 1,
                CommOutcome::Decomposed { .. } | CommOutcome::DecomposedGeneral { .. } => {
                    counts[2] += 1
                }
                CommOutcome::General => counts[3] += 1,
            }
        }
        let est_time = mapping_cost_on_mesh(&nest, &mapping, &mesh, vshape, bytes);
        rows.push(MotivatingRow {
            strategy: name,
            counts,
            est_time,
        });
    };
    push(
        "two-step heuristic",
        map_nest(&nest, &MappingOptions::new(2)).expect("motivating example maps"),
    );
    push(
        "step 1 only (greedy zeroing)",
        feautrier_map(&nest, 2).expect("motivating example maps"),
    );
    push("Platonoff (macro-first)", platonoff_map(&nest, 2));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1's qualitative content: reduction ≈ broadcast ≪ general,
    /// translation in between — and the broadcast/general gap is roughly
    /// an order of magnitude, as Platonoff measured.
    #[test]
    fn table1_shape() {
        let row = table1(1024);
        let [red, bc, tr, gen] = row.times;
        assert!(red <= bc);
        assert!(bc < tr, "broadcast {bc} vs translation {tr}");
        assert!(tr < gen, "translation {tr} vs general {gen}");
        assert!(
            gen as f64 / bc as f64 > 4.0,
            "general/broadcast ratio too small: {} / {}",
            gen,
            bc
        );
    }

    /// Table 2's content: L·U decomposition beats the direct execution;
    /// the U phase costs more than the L phase (larger grid dimension).
    #[test]
    fn table2_shape() {
        let row = table2((32, 16), 512);
        assert!(
            row.lu_total < row.not_decomposed,
            "decomposition must win: {} vs {}",
            row.lu_total,
            row.not_decomposed
        );
        assert!(
            row.u_phase >= row.l_phase,
            "U ({} ) should cost at least L ({})",
            row.u_phase,
            row.l_phase
        );
    }

    /// Figure 8's content: "the grouped partition is always more
    /// efficient than a standard BLOCK or CYCLIC(B) distribution" for the
    /// U(k) pattern with k ≥ 2, and "CYCLIC performs well" (close to
    /// grouped, equal when k is a multiple of P).
    #[test]
    fn figure8_shape() {
        for rows in [
            figure8((4, 4), 48, 8, 8, 2, 256),
            figure8((8, 4), 48, 8, 8, 2, 256),
        ] {
            for r in rows.iter().filter(|r| r.k >= 2) {
                assert!(
                    r.block_ratio >= 1.0,
                    "k={}: BLOCK ratio {} below 1",
                    r.k,
                    r.block_ratio
                );
                assert!(
                    r.cyclic_ratio >= 1.0,
                    "k={}: CYCLIC ratio {}",
                    r.k,
                    r.cyclic_ratio
                );
                assert!(
                    r.cyclic_block_ratio >= 1.0,
                    "k={}: CYCLIC(2) ratio {}",
                    r.k,
                    r.cyclic_block_ratio
                );
            }
            // The win over BLOCK is substantial somewhere in the sweep.
            assert!(rows.iter().any(|r| r.block_ratio > 3.0), "{rows:?}");
        }
    }

    #[test]
    fn example5_shape() {
        let row = example5(4);
        assert_eq!(row.ours_nonlocal, 0, "ours must be communication-free");
        assert!(row.platonoff_nonlocal >= 1);
        assert!(row.platonoff_macro);
    }

    #[test]
    fn motivating_rows_ordered() {
        let rows = motivating(256);
        assert_eq!(rows.len(), 3);
        let ours = rows[0].est_time;
        let step1 = rows[1].est_time;
        assert!(ours <= step1, "two-step {ours} vs step1 {step1}");
        // The two-step heuristic keeps no general residual.
        assert_eq!(rows[0].counts[3], 0);
        assert_eq!(rows[0].counts[0], 5);
    }

    /// The full stack (decompose + grouped partition) beats both the
    /// direct execution and the decomposition-with-CYCLIC of Table 2 —
    /// the composition the paper's §4 and §5 argue for. The virtual rows
    /// must be divisible by both class counts (2 and 3) for the grouped
    /// classes to survive the toroidal wrap.
    #[test]
    fn combined_stack_wins() {
        let row = combined((36, 18), 512);
        assert!(row.decomposed_cyclic < row.direct_cyclic, "{row:?}");
        assert!(
            row.decomposed_grouped < row.decomposed_cyclic,
            "grouped partition must refine the decomposition: {row:?}"
        );
    }

    /// The cached-replay sweep is bit-identical to re-running table2 at
    /// every payload size.
    #[test]
    fn crossover_matches_table2_per_size() {
        let sizes = [16u64, 256, 4096];
        let rows = table2_crossover((32, 16), &sizes);
        for (r, &bytes) in rows.iter().zip(&sizes) {
            let t2 = table2((32, 16), bytes);
            assert_eq!(r.direct, t2.not_decomposed, "bytes={bytes}");
            assert_eq!(r.decomposed, t2.lu_total, "bytes={bytes}");
        }
    }

    #[test]
    fn crossover_decomposition_always_wins_advantage_shrinks() {
        let rows = table2_crossover((32, 16), &[16, 64, 256, 1024, 4096]);
        // Decomposition wins at every size on this configuration…
        for r in &rows {
            assert!(
                r.decomposed < r.direct,
                "bytes={}: {} !< {}",
                r.bytes,
                r.decomposed,
                r.direct
            );
        }
        // …but the advantage declines toward large payloads, where the
        // twice-moved bytes of the decomposition eat into the win.
        let first_ratio = rows[0].direct as f64 / rows[0].decomposed as f64;
        let last_ratio =
            rows.last().unwrap().direct as f64 / rows.last().unwrap().decomposed as f64;
        assert!(
            last_ratio <= first_ratio,
            "advantage should shrink with payload: {first_ratio} vs {last_ratio}"
        );
        assert!(last_ratio > 1.0);
    }

    /// §3.5: "replace a set of small-size communications by a single large
    /// message so as to reduce overhead due to startup and latency" — the
    /// vectorized schedule must win, and the gain must grow with the
    /// number of timesteps.
    #[test]
    fn vectorization_shape() {
        let r8 = vectorization(8, 64);
        let r64 = vectorization(64, 64);
        assert!(r8.vectorized < r8.unvectorized);
        assert!(r64.vectorized < r64.unvectorized);
        let g8 = r8.unvectorized as f64 / r8.vectorized as f64;
        let g64 = r64.unvectorized as f64 / r64.vectorized as f64;
        assert!(g64 > g8, "gain must grow with steps: {g8} vs {g64}");
        // With tiny payloads the gain approaches n (start-up dominated).
        assert!(g64 > 10.0, "gain too small: {g64}");
    }

    #[test]
    fn figure7_layout_matches_paper() {
        let text = figure7_layout(12, 3, 4);
        // Virtual processors 0,3,6 on physical 0 (Fig. 6).
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("0  1  2  0"));
    }
}
