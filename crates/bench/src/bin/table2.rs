//! Regenerate **Table 2**: decomposing the general affine communication
//! `T = [[1,3],[2,7]] = L(2)·U(3)` on the simulated Paragon (8×4 mesh,
//! CYCLIC distribution).
//!
//! ```text
//! cargo run -p rescomm-bench --bin table2 [--bytes N]
//! ```

use rescomm_bench::{combined, table2};

fn main() {
    let bytes = std::env::args()
        .skip_while(|a| a != "--bytes")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512u64);
    println!("Table 2 — decomposing vs not decomposing on the simulated Paragon (8×4 mesh)");
    println!("T = [[1,3],[2,7]] = L(2)·U(3), CYCLIC distribution, {bytes} B/virtual processor\n");
    println!(
        "{:>18} {:>10} {:>10} {:>10}",
        "Not decomposed", "L", "U", "L·U"
    );
    for vshape in [(32usize, 16usize), (64, 32)] {
        let row = table2(vshape, bytes);
        let r = row.ratios();
        println!(
            "{:>18} {:>10} {:>10} {:>10}   (ns, virtual grid {}×{})",
            row.not_decomposed, row.l_phase, row.u_phase, row.lu_total, vshape.0, vshape.1
        );
        println!(
            "{:>18.2} {:>10.2} {:>10.2} {:>10.2}   (ratio to L)",
            r[0], r[1], r[2], r[3]
        );
    }
    let c = combined((36, 18), bytes);
    println!("\n§4+§5 composition (36×18 virtual grid, {bytes} B):");
    println!(
        "  direct+CYCLIC {} ns | decomposed+CYCLIC {} ns | decomposed+grouped {} ns",
        c.direct_cyclic, c.decomposed_cyclic, c.decomposed_grouped
    );
    println!("\npaper's qualitative claim: L·U < not decomposed; U costs more than L;");
    println!("the grouped partition further refines the decomposed phases.");
}
