//! Regenerate the **§3.5 message-vectorization** experiment: one message
//! per timestep vs a single regrouped packet hoisted out of the loop.
//!
//! ```text
//! cargo run -p rescomm-bench --bin vectorization [--bytes N]
//! ```

use rescomm_bench::vectorization;

fn main() {
    let bytes = std::env::args()
        .skip_while(|a| a != "--bytes")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64u64);
    println!("§3.5 — message vectorization on the simulated Paragon (8×4 mesh)");
    println!("one-hop translation, {bytes} B/timestep/processor\n");
    println!(
        "{:>8} {:>18} {:>16} {:>8}",
        "steps", "unvectorized (ns)", "vectorized (ns)", "gain"
    );
    for n in [1usize, 4, 16, 64, 256] {
        let r = vectorization(n, bytes);
        println!(
            "{:>8} {:>18} {:>16} {:>7.1}x",
            r.n_steps,
            r.unvectorized,
            r.vectorized,
            r.unvectorized as f64 / r.vectorized as f64
        );
    }
    println!("\npaper's claim: regrouping removes per-message start-up and latency;");
    println!("the gain grows with the number of regrouped timesteps.");
}
