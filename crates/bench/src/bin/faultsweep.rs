//! Fault-injection sweep over the mesh scheduler and the fat-tree
//! collectives; writes `BENCH_faults.json` with delivered-fraction and
//! makespan-inflation curves.
//!
//! Three sections:
//!
//! * **drop sweep** — drop probabilities × retry on/off on an 8×4 mesh
//!   with link and node outage windows in force. With retries enabled the
//!   delivery-guarantee invariant (exactly-once, 100% delivered) is
//!   asserted at every point; without them the delivered fraction decays
//!   and the lost messages are accounted for.
//! * **zero-fault gate** — a zero-fault plan must be bit-identical in
//!   makespan to the unfaulted scheduler.
//! * **fat-tree degraded mode** — hardware control-network collectives vs
//!   the software binomial fallback used when `ctrl_outage` is set.
//!
//! ```text
//! cargo run --release -p rescomm-bench --bin faultsweep [--quick] [--out PATH]
//! ```
//!
//! Every report is produced twice and compared, so a nondeterministic
//! fault schedule fails the run instead of polluting the curves. `--quick`
//! shrinks the workload for the CI smoke job; the invariants checked are
//! identical.

use rescomm_machine::{
    CostModel, FatTree, FaultPlan, LinkOutage, Mesh2D, NodeOutage, PMsg, PhaseSim, RetryPolicy,
    XorShift64,
};
use std::fmt::Write as _;

/// Deterministic synthetic phase set on `nodes` processors.
fn synth_phases(nodes: usize, n_phases: usize, per_phase: usize, seed: u64) -> Vec<Vec<PMsg>> {
    let mut rng = XorShift64::new(seed);
    (0..n_phases)
        .map(|_| {
            (0..per_phase)
                .map(|_| PMsg {
                    src: rng.below(nodes as u64) as usize,
                    dst: rng.below(nodes as u64) as usize,
                    bytes: 1 + rng.below(2048),
                })
                .collect()
        })
        .collect()
}

struct DropRow {
    drop_pct: u32,
    retry: bool,
    delivered_fraction: f64,
    makespan: u64,
    inflation: f64,
    retries: u64,
    reroutes: u64,
    escalations: u64,
}

struct DegradedRow {
    bytes: u64,
    hw_ns: u64,
    sw_ns: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .skip_while(|a| *a != "--out")
        .nth(1)
        .cloned()
        .unwrap_or_else(|| "BENCH_faults.json".into());

    let mesh = Mesh2D::new(8, 4, CostModel::paragon());
    let mut sim = PhaseSim::new(mesh.clone());
    let (n_phases, per_phase) = if quick { (4, 24) } else { (8, 48) };
    let phases = synth_phases(mesh.nodes(), n_phases, per_phase, 0xfa17);
    let healthy = mesh.simulate_phases(&phases);

    // Outage windows held fixed across the sweep: two dead links early in
    // each phase's clock and one node out for the first stretch.
    let link_outages = vec![
        LinkOutage {
            link: mesh.h_link(2, 3, true).index(),
            from: 0,
            until: 400_000,
        },
        LinkOutage {
            link: mesh.v_link(5, 1, false).index(),
            from: 100_000,
            until: 600_000,
        },
    ];
    let node_outages = vec![NodeOutage {
        node: 13,
        from: 0,
        until: 250_000,
    }];

    eprintln!("drop sweep: 8x4 mesh, {n_phases} phases x {per_phase} msgs, outages in force");
    let mut rows = Vec::new();
    for drop_pct in [0u32, 5, 10, 20, 40, 80] {
        for retry in [true, false] {
            let plan = FaultPlan {
                seed: 42,
                drop_prob: f64::from(drop_pct) / 100.0,
                dup_prob: 0.02,
                link_outages: link_outages.clone(),
                node_outages: node_outages.clone(),
                retry: if retry {
                    RetryPolicy::default()
                } else {
                    RetryPolicy::disabled()
                },
                ..FaultPlan::none()
            };
            let rep = sim.simulate_phases_faulty(&phases, &plan);
            // Determinism gate: the identical plan must replay bit-for-bit.
            assert_eq!(
                rep,
                sim.simulate_phases_faulty(&phases, &plan),
                "fault schedule not deterministic at drop={drop_pct}% retry={retry}"
            );
            if retry {
                // The delivery-guarantee invariant, at every sweep point.
                assert_eq!(
                    rep.delivered, rep.messages,
                    "delivery guarantee violated at drop={drop_pct}%"
                );
                assert_eq!(rep.lost, 0);
            } else {
                assert_eq!(rep.delivered + rep.lost, rep.messages);
            }
            let inflation = rep.makespan as f64 / healthy.max(1) as f64;
            eprintln!(
                "  drop {drop_pct:>2}%  retry {}  delivered {:>6.1}%  makespan {:>12} ns  x{inflation:.2}",
                if retry { "on " } else { "off" },
                rep.delivered_fraction() * 100.0,
                rep.makespan
            );
            rows.push(DropRow {
                drop_pct,
                retry,
                delivered_fraction: rep.delivered_fraction(),
                makespan: rep.makespan,
                inflation,
                retries: rep.retries,
                reroutes: rep.reroutes,
                escalations: rep.escalations,
            });
        }
    }

    // Zero-fault gate: no faults → bit-identical to the unfaulted engine.
    let zero = sim.simulate_phases_faulty(&phases, &FaultPlan::none());
    assert_eq!(zero.makespan, healthy, "zero-fault plan must be identical");
    assert_eq!(zero.delivered, zero.messages);
    eprintln!("zero-fault gate: makespan {} ns == healthy", zero.makespan);

    eprintln!("fat-tree degraded mode: hw collectives vs software binomial fallback");
    let ft = FatTree::new(32, 4, CostModel::cm5());
    let degraded_plan = FaultPlan {
        ctrl_outage: true,
        ..FaultPlan::none()
    };
    let mut degraded = Vec::new();
    for bytes in [64u64, 1024, 16384] {
        let hw_ns = ft.broadcast_time(32, bytes, &FaultPlan::none());
        let sw_ns = ft.broadcast_time(32, bytes, &degraded_plan);
        assert!(
            sw_ns >= hw_ns,
            "software fallback cannot beat the control network"
        );
        eprintln!(
            "  {bytes:>5} B  hw {hw_ns:>10} ns   sw {sw_ns:>10} ns   x{:.1}",
            sw_ns as f64 / hw_ns.max(1) as f64
        );
        degraded.push(DegradedRow {
            bytes,
            hw_ns,
            sw_ns,
        });
    }

    let mut j = String::new();
    j.push_str("{\n  \"bench\": \"faults\",\n  \"mesh\": [8, 4],\n");
    let _ = writeln!(
        j,
        "  \"phases\": {n_phases},\n  \"msgs_per_phase\": {per_phase},\n  \"healthy_makespan_ns\": {healthy},\n  \"dup_prob\": 0.02,"
    );
    j.push_str("  \"drop_sweep\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"drop_pct\": {}, \"retry\": {}, \"delivered_fraction\": {:.4}, \"makespan_ns\": {}, \"inflation\": {:.3}, \"retries\": {}, \"reroutes\": {}, \"escalations\": {}}}",
            r.drop_pct,
            r.retry,
            r.delivered_fraction,
            r.makespan,
            r.inflation,
            r.retries,
            r.reroutes,
            r.escalations
        );
        j.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ],\n  \"fattree_degraded\": [\n");
    for (i, r) in degraded.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"bytes\": {}, \"hw_broadcast_ns\": {}, \"sw_broadcast_ns\": {}, \"slowdown\": {:.2}}}",
            r.bytes,
            r.hw_ns,
            r.sw_ns,
            r.sw_ns as f64 / r.hw_ns.max(1) as f64
        );
        j.push_str(if i + 1 < degraded.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ]\n}\n");
    std::fs::write(&out, &j).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("wrote {out}");
}
