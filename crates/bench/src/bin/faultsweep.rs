//! Fault-injection sweep over the mesh scheduler and the fat-tree
//! collectives; writes `BENCH_faults.json` with delivered-fraction and
//! makespan-inflation curves.
//!
//! Three sections:
//!
//! * **drop sweep** — drop probabilities × retry on/off on an 8×4 mesh
//!   with link and node outage windows in force. With retries enabled the
//!   delivery-guarantee invariant (exactly-once, 100% delivered) is
//!   asserted at every point; without them the delivered fraction decays
//!   and the lost messages are accounted for.
//! * **zero-fault gate** — a zero-fault plan must be bit-identical in
//!   makespan to the unfaulted scheduler.
//! * **fat-tree degraded mode** — hardware control-network collectives vs
//!   the software binomial fallback used when `ctrl_outage` is set.
//!
//! ```text
//! cargo run --release -p rescomm-bench --bin faultsweep [--quick] [--out PATH]
//! ```
//!
//! Every sweep point is evaluated twice — once through the per-call
//! oracle and once through the compiled batch engine
//! ([`rescomm_machine::FaultSim`]) — and the two must agree bit for bit,
//! so a nondeterministic fault schedule or a compiled-plan divergence
//! fails the run instead of polluting the curves. On top of the classic
//! single-seed columns, every sweep point carries Monte Carlo statistics
//! over [`rescomm_machine::replication_seed`]-derived replications
//! (replication 0 **is** the classic run), computed with
//! [`rescomm_machine::par_fault_sweep`] and asserted bit-identical to a
//! serial evaluation. `--quick` shrinks the workload for the CI smoke
//! job; the invariants checked are identical.

use rescomm_bench::json::{fixed, raw, JsonDoc, Val};
use rescomm_machine::{
    par_fault_sweep, CostModel, FatTree, FaultPlan, FaultSim, LinkOutage, Mesh2D, NodeOutage, PMsg,
    PhaseSim, RetryPolicy, SchedulePolicy, XorShift64,
};

/// Deterministic synthetic phase set on `nodes` processors.
fn synth_phases(nodes: usize, n_phases: usize, per_phase: usize, seed: u64) -> Vec<Vec<PMsg>> {
    let mut rng = XorShift64::new(seed);
    (0..n_phases)
        .map(|_| {
            (0..per_phase)
                .map(|_| PMsg {
                    src: rng.below(nodes as u64) as usize,
                    dst: rng.below(nodes as u64) as usize,
                    bytes: 1 + rng.below(2048),
                })
                .collect()
        })
        .collect()
}

struct DropRow {
    drop_pct: u32,
    retry: bool,
    delivered_fraction: f64,
    makespan: u64,
    inflation: f64,
    retries: u64,
    reroutes: u64,
    escalations: u64,
    // Monte Carlo statistics over the replications (appended after the
    // classic single-seed columns so the artifact stays diffable).
    mc_makespan_mean: f64,
    mc_makespan_std: f64,
    mc_makespan_min: u64,
    mc_makespan_max: u64,
    mc_inflation: f64,
    mc_delivered_mean: f64,
}

struct DegradedRow {
    bytes: u64,
    hw_ns: u64,
    sw_ns: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .skip_while(|a| *a != "--out")
        .nth(1)
        .cloned()
        .unwrap_or_else(|| "BENCH_faults.json".into());

    let mesh = Mesh2D::new(8, 4, CostModel::paragon());
    let mut sim = PhaseSim::new(mesh.clone());
    let (n_phases, per_phase) = if quick { (4, 24) } else { (8, 48) };
    let phases = synth_phases(mesh.nodes(), n_phases, per_phase, 0xfa17);
    let healthy = mesh.simulate_phases(&phases);

    // Outage windows held fixed across the sweep: two dead links early in
    // each phase's clock and one node out for the first stretch.
    let link_outages = vec![
        LinkOutage {
            link: mesh.h_link(2, 3, true).index(),
            from: 0,
            until: 400_000,
        },
        LinkOutage {
            link: mesh.v_link(5, 1, false).index(),
            from: 100_000,
            until: 600_000,
        },
    ];
    let node_outages = vec![NodeOutage {
        node: 13,
        from: 0,
        until: 250_000,
    }];

    let replications = if quick { 8usize } else { 32 };
    let threads = rescomm_bench::workload::host_threads().max(1);
    eprintln!(
        "drop sweep: 8x4 mesh, {n_phases} phases x {per_phase} msgs, outages in force, \
         {replications} replications"
    );
    let points: Vec<(u32, bool)> = [0u32, 5, 10, 20, 40, 80]
        .iter()
        .flat_map(|&d| [(d, true), (d, false)])
        .collect();
    let plans: Vec<FaultPlan> = points
        .iter()
        .map(|&(drop_pct, retry)| FaultPlan {
            seed: 42,
            drop_prob: f64::from(drop_pct) / 100.0,
            dup_prob: 0.02,
            link_outages: link_outages.clone(),
            node_outages: node_outages.clone(),
            retry: if retry {
                RetryPolicy::default()
            } else {
                RetryPolicy::disabled()
            },
            ..FaultPlan::none()
        })
        .collect();
    let sched = SchedulePolicy::default();
    let stats = par_fault_sweep(&mesh, &phases, &plans, replications, threads, sched);
    // Parallel-determinism gate: the sweep must not depend on the
    // thread count.
    assert_eq!(
        stats,
        par_fault_sweep(&mesh, &phases, &plans, replications, 1, sched),
        "parallel fault sweep diverged from serial"
    );

    let mut engine = FaultSim::new(&mesh, &phases, &plans[0]);
    let mut rows = Vec::new();
    for ((&(drop_pct, retry), plan), st) in points.iter().zip(&plans).zip(&stats) {
        // The classic single-seed run through the per-call oracle …
        let rep = sim.simulate_phases_faulty(&phases, plan);
        // … must be reproduced bit for bit by the compiled engine
        // (replication 0's seed is the plan's own seed).
        engine.set_plan(plan);
        assert_eq!(
            engine.run_faulty(plan.seed, sched),
            rep,
            "compiled engine diverged from the oracle at drop={drop_pct}% retry={retry}"
        );
        assert!(
            st.makespan.min() <= rep.makespan as f64 && rep.makespan as f64 <= st.makespan.max(),
            "replication 0 outside the Monte Carlo envelope at drop={drop_pct}%"
        );
        if retry {
            // The delivery-guarantee invariant, at every sweep point and
            // every replication.
            assert_eq!(
                rep.delivered, rep.messages,
                "delivery guarantee violated at drop={drop_pct}%"
            );
            assert_eq!(rep.lost, 0);
            assert_eq!(st.total.delivered, st.total.messages);
            assert_eq!(st.total.lost, 0);
        } else {
            assert_eq!(rep.delivered + rep.lost, rep.messages);
            assert_eq!(st.total.delivered + st.total.lost, st.total.messages);
        }
        let inflation = rep.makespan as f64 / healthy.max(1) as f64;
        eprintln!(
            "  drop {drop_pct:>2}%  retry {}  delivered {:>6.1}%  makespan {:>12} ns  x{inflation:.2}  mc x{:.2}",
            if retry { "on " } else { "off" },
            rep.delivered_fraction() * 100.0,
            rep.makespan,
            st.inflation(healthy)
        );
        rows.push(DropRow {
            drop_pct,
            retry,
            delivered_fraction: rep.delivered_fraction(),
            makespan: rep.makespan,
            inflation,
            retries: rep.retries,
            reroutes: rep.reroutes,
            escalations: rep.escalations,
            mc_makespan_mean: st.makespan.mean(),
            mc_makespan_std: st.makespan.std_dev(),
            mc_makespan_min: st.makespan.min() as u64,
            mc_makespan_max: st.makespan.max() as u64,
            mc_inflation: st.inflation(healthy),
            mc_delivered_mean: st.delivered.mean(),
        });
    }

    // Zero-fault gate: no faults → bit-identical to the unfaulted engine.
    let zero = sim.simulate_phases_faulty(&phases, &FaultPlan::none());
    assert_eq!(zero.makespan, healthy, "zero-fault plan must be identical");
    assert_eq!(zero.delivered, zero.messages);
    eprintln!("zero-fault gate: makespan {} ns == healthy", zero.makespan);

    eprintln!("fat-tree degraded mode: hw collectives vs software binomial fallback");
    let ft = FatTree::new(32, 4, CostModel::cm5());
    let degraded_plan = FaultPlan {
        ctrl_outage: true,
        ..FaultPlan::none()
    };
    let mut degraded = Vec::new();
    for bytes in [64u64, 1024, 16384] {
        let hw_ns = ft.broadcast_time(32, bytes, &FaultPlan::none());
        let sw_ns = ft.broadcast_time(32, bytes, &degraded_plan);
        assert!(
            sw_ns >= hw_ns,
            "software fallback cannot beat the control network"
        );
        eprintln!(
            "  {bytes:>5} B  hw {hw_ns:>10} ns   sw {sw_ns:>10} ns   x{:.1}",
            sw_ns as f64 / hw_ns.max(1) as f64
        );
        degraded.push(DegradedRow {
            bytes,
            hw_ns,
            sw_ns,
        });
    }

    let mut doc = JsonDoc::new();
    doc.field("bench", "faults")
        .field("mesh", raw("[8, 4]"))
        .field("phases", n_phases)
        .field("msgs_per_phase", per_phase)
        .field("healthy_makespan_ns", healthy)
        .field("dup_prob", fixed(0.02, 2))
        .field("replications", replications)
        .field("host_threads", rescomm_bench::workload::host_threads());
    doc.rows("drop_sweep", &rows, |r| {
        vec![
            ("drop_pct", Val::from(r.drop_pct)),
            ("retry", Val::from(r.retry)),
            ("delivered_fraction", fixed(r.delivered_fraction, 4)),
            ("makespan_ns", Val::from(r.makespan)),
            ("inflation", fixed(r.inflation, 3)),
            ("retries", Val::from(r.retries)),
            ("reroutes", Val::from(r.reroutes)),
            ("escalations", Val::from(r.escalations)),
            ("mc_makespan_mean_ns", fixed(r.mc_makespan_mean, 0)),
            ("mc_makespan_std_ns", fixed(r.mc_makespan_std, 0)),
            ("mc_makespan_min_ns", Val::from(r.mc_makespan_min)),
            ("mc_makespan_max_ns", Val::from(r.mc_makespan_max)),
            ("mc_inflation", fixed(r.mc_inflation, 3)),
            ("mc_delivered_mean", fixed(r.mc_delivered_mean, 4)),
        ]
    });
    doc.rows("fattree_degraded", &degraded, |r| {
        vec![
            ("bytes", Val::from(r.bytes)),
            ("hw_broadcast_ns", Val::from(r.hw_ns)),
            ("sw_broadcast_ns", Val::from(r.sw_ns)),
            ("slowdown", fixed(r.sw_ns as f64 / r.hw_ns.max(1) as f64, 2)),
        ]
    });
    doc.write(&out);
}
