//! Payload sweep around **Table 2**: how the decomposition advantage
//! moves with message size (extension experiment).
//!
//! ```text
//! cargo run -p rescomm-bench --bin crossover
//! ```

use rescomm_bench::table2_crossover;

fn main() {
    println!("Table 2 payload sweep — direct vs decomposed, 8×4 mesh, CYCLIC, 32×16 virtual\n");
    println!(
        "{:>8} {:>14} {:>16} {:>10}",
        "bytes", "direct (ns)", "decomposed (ns)", "advantage"
    );
    let sizes = [16u64, 64, 256, 1024, 4096, 16384];
    for r in table2_crossover((32, 16), &sizes) {
        println!(
            "{:>8} {:>14} {:>16} {:>9.2}x",
            r.bytes,
            r.direct,
            r.decomposed,
            r.direct as f64 / r.decomposed as f64
        );
    }
    println!("\nsmall messages: the irregular direct pattern pays many serialized");
    println!("start-ups, decomposition helps most; large messages: the advantage");
    println!("settles toward the bandwidth ratio (decomposed bytes move twice).");
}
