//! Regenerate **Table 1**: execution-time ratios of the four data
//! movements on the simulated CM-5 (fat tree + control network).
//!
//! ```text
//! cargo run -p rescomm-bench --bin table1 [--bytes N]
//! ```

use rescomm_bench::table1;

fn main() {
    let bytes = std::env::args()
        .skip_while(|a| a != "--bytes")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024u64);
    println!("Table 1 — comparing data movements on the simulated CM-5 (32 procs)");
    println!("payload: {bytes} bytes/processor\n");
    println!(
        "{:>12} {:>12} {:>12} {:>22}",
        "Reduction", "Broadcast", "Translation", "General communication"
    );
    let row = table1(bytes);
    println!(
        "{:>12} {:>12} {:>12} {:>22}   (simulated ns)",
        row.times[0], row.times[1], row.times[2], row.times[3]
    );
    println!(
        "{:>12.1} {:>12.1} {:>12.1} {:>22.1}   (ratio to reduction)",
        row.ratios[0], row.ratios[1], row.ratios[2], row.ratios[3]
    );
    println!("\npaper's qualitative claim: reduction ≈ broadcast ≪ translation ≪ general");
}
