//! Measure the compiler front-end (`map_nest`) old vs new and write a
//! machine-readable baseline to `BENCH_pipeline.json` so later PRs can
//! track the analysis-cost trajectory.
//!
//! Three sections, matching the three halves of the optimization:
//!
//! * **synthetic** — `map_nest_reference` (the seed passes: positional
//!   vertex scans, per-start cycle rescans, O(E²) twin marking, no
//!   memoization) vs `map_nest` on the chained-stencil and pipeline
//!   families at 10–500 statements.
//! * **kernels** — the paper's kernels mapped repeatedly, old vs new with
//!   a warm shared [`rescomm::AnalysisCache`] (the batch-serving setting
//!   `map_nest_batch` exists for).
//! * **batch** — `map_nest_batch` over a fleet of nests, serial vs
//!   multi-worker.
//!
//! ```text
//! cargo run --release -p rescomm-bench --bin pipeline_baseline [--quick] [--out PATH]
//! ```
//!
//! Every timed pair is first checked for identical mappings (outcomes,
//! rotations, allocation matrices), so the numbers can't drift from a
//! wrong answer going fast.

use rescomm::{
    map_nest, map_nest_batch, map_nest_batch_report, map_nest_reference, map_nest_with,
    AnalysisCache,
};
use rescomm::{Mapping, MappingOptions};
use rescomm_bench::workload::{chained_stencil_nest, pipeline_nest};
use rescomm_loopnest::{examples, LoopNest};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Median of `reps` timed runs of `f`, in nanoseconds.
fn median_ns<R>(reps: usize, f: impl FnMut() -> R) -> u64 {
    median_ns_inner(reps, 1, f)
}

/// [`median_ns`] with `inner` calls per timed sample (per-call median):
/// microsecond-scale work needs batching to rise above timer jitter.
fn median_ns_inner<R>(reps: usize, inner: u32, mut f: impl FnMut() -> R) -> u64 {
    black_box(f()); // warm up
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..inner {
            black_box(f());
        }
        samples.push(t0.elapsed().as_nanos() as u64 / u64::from(inner));
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Panic unless the two mappings classify identically.
fn assert_same_mapping(tag: &str, new: &Mapping, old: &Mapping) {
    assert_eq!(new.outcomes, old.outcomes, "{tag}: outcomes diverged");
    assert_eq!(new.rotations, old.rotations, "{tag}: rotations diverged");
    for (a, b) in new
        .alignment
        .stmt_alloc
        .iter()
        .zip(&old.alignment.stmt_alloc)
    {
        assert_eq!(a.mat, b.mat, "{tag}: statement allocation diverged");
    }
    for (a, b) in new
        .alignment
        .array_alloc
        .iter()
        .zip(&old.alignment.array_alloc)
    {
        assert_eq!(a.mat, b.mat, "{tag}: array allocation diverged");
    }
}

/// A synthetic nest family: name + generator `(n_stmts, size)`.
type Family = (&'static str, fn(usize, i64) -> LoopNest);

struct SynthRow {
    family: &'static str,
    n_stmts: usize,
    accesses: usize,
    old_ns: u64,
    new_ns: u64,
}

struct KernelRow {
    kernel: &'static str,
    old_ns: u64,
    new_ns: u64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let out = std::env::args()
        .skip_while(|a| a != "--out")
        .nth(1)
        .unwrap_or_else(|| "BENCH_pipeline.json".into());
    let opts = MappingOptions::new(2);

    let sizes: &[usize] = if quick {
        &[10, 50, 200]
    } else {
        &[10, 50, 200, 500]
    };
    let families: [Family; 2] = [
        ("chained_stencil", chained_stencil_nest),
        ("pipeline", pipeline_nest),
    ];

    eprintln!("synthetic: map_nest_reference (seed passes) vs map_nest");
    let mut synth = Vec::new();
    for (family, build) in families {
        for &n in sizes {
            let nest = build(n, 8);
            // Correctness gate before timing.
            let new = map_nest(&nest, &opts).unwrap();
            let old = map_nest_reference(&nest, &opts);
            assert_same_mapping(&format!("{family} n={n}"), &new, &old);

            let reps = if quick {
                3
            } else if n >= 200 {
                5
            } else {
                9
            };
            let old_ns = median_ns(reps, || map_nest_reference(&nest, &opts));
            let new_ns = median_ns(reps.max(9), || map_nest(&nest, &opts));
            eprintln!(
                "  {family:>15} n={n:>4}  old {old_ns:>12} ns   new {new_ns:>10} ns   ×{:.1}",
                old_ns as f64 / new_ns.max(1) as f64
            );
            synth.push(SynthRow {
                family,
                n_stmts: n,
                accesses: nest.accesses.len(),
                old_ns,
                new_ns,
            });
        }
    }

    eprintln!("kernels: repeated mapping, old vs new with a warm shared cache");
    let kernels: Vec<(&'static str, LoopNest)> = vec![
        ("motivating", examples::motivating_example(8, 4).0),
        ("matmul", examples::matmul(6)),
        ("gauss", examples::gauss_elim(6)),
        ("adi", examples::adi_sweep(8)),
    ];
    let mut kern = Vec::new();
    for (name, nest) in &kernels {
        let new = map_nest(nest, &opts).unwrap();
        let old = map_nest_reference(nest, &opts);
        assert_same_mapping(name, &new, &old);

        let reps = if quick { 9 } else { 33 };
        let old_ns = median_ns_inner(reps, 32, || map_nest_reference(nest, &opts));
        let mut cache = AnalysisCache::new();
        let new_ns = median_ns_inner(reps, 32, || map_nest_with(nest, &opts, &mut cache));
        eprintln!(
            "  {name:>12}  old {old_ns:>9} ns   new {new_ns:>9} ns   ×{:.1}",
            old_ns as f64 / new_ns.max(1) as f64
        );
        kern.push(KernelRow {
            kernel: name,
            old_ns,
            new_ns,
        });
    }

    eprintln!("batch: map_nest_batch over a fleet of synthetic nests");
    let fleet: Vec<LoopNest> = (0..if quick { 4 } else { 16 })
        .map(|i| chained_stencil_nest(20 + 3 * i, 8))
        .collect();
    let serial = map_nest_batch(&fleet, &opts, 1).unwrap();
    let host = rescomm_bench::workload::host_threads();
    let threads = host.clamp(2, 8);
    // Worker-count identity gate runs on every host; the pool's report
    // says how many workers actually ran.
    let (par, report) = map_nest_batch_report(&fleet, &opts, threads);
    for (i, (s, p)) in serial.iter().zip(&par.unwrap()).enumerate() {
        assert_same_mapping(&format!("batch nest {i}"), p, s);
    }
    let reps = if quick { 3 } else { 7 };
    let serial_ns = median_ns(reps, || map_nest_batch(&fleet, &opts, 1));
    // A timed multi-worker run on a single-core host measures the OS
    // scheduler, not the batch: skip it (null in the artifact), never
    // fake it.
    let batch_ns = (host > 1).then(|| median_ns(reps, || map_nest_batch(&fleet, &opts, threads)));
    match batch_ns {
        Some(b) => eprintln!(
            "  {} nests  serial {serial_ns:>12} ns   {} workers {b:>12} ns   ×{:.1}",
            fleet.len(),
            report.workers,
            serial_ns as f64 / b.max(1) as f64
        ),
        None => eprintln!(
            "  {} nests  serial {serial_ns:>12} ns   parallel row skipped (single-core host)",
            fleet.len()
        ),
    }

    let mut j = String::new();
    j.push_str("{\n  \"bench\": \"pipeline\",\n  \"m\": 2,\n");
    let _ = writeln!(j, "  \"quick\": {quick},");
    j.push_str("  \"synthetic\": [\n");
    for (i, r) in synth.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"family\": \"{f}\", \"statements\": {n}, \"accesses\": {a}, \"reference_ns\": {o}, \"optimized_ns\": {w}, \"speedup\": {s:.2}}}",
            f = r.family,
            n = r.n_stmts,
            a = r.accesses,
            o = r.old_ns,
            w = r.new_ns,
            s = r.old_ns as f64 / r.new_ns.max(1) as f64
        );
        j.push_str(if i + 1 < synth.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ],\n  \"kernels\": [\n");
    for (i, r) in kern.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"kernel\": \"{k}\", \"reference_ns\": {o}, \"warm_cache_ns\": {w}, \"speedup\": {s:.2}}}",
            k = r.kernel,
            o = r.old_ns,
            w = r.new_ns,
            s = r.old_ns as f64 / r.new_ns.max(1) as f64
        );
        j.push_str(if i + 1 < kern.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ],\n");
    let _ = writeln!(
        j,
        "  \"batch\": {{\"nests\": {n}, \"threads\": {threads}, \"workers_used\": {w}, \"host_threads\": {host}, \"oversubscribed\": {over}, \"skipped\": {skipped}, \"serial_ns\": {s}, \"parallel_ns\": {p}, \"speedup\": {x}}}",
        n = fleet.len(),
        w = report.workers,
        over = threads > host,
        skipped = batch_ns.is_none(),
        s = serial_ns,
        p = batch_ns.map_or_else(|| "null".to_string(), |v| v.to_string()),
        x = batch_ns.map_or_else(
            || "null".to_string(),
            |v| format!("{:.2}", serial_ns as f64 / v.max(1) as f64)
        )
    );
    j.push_str("}\n");
    std::fs::write(&out, &j).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("wrote {out}");
}
