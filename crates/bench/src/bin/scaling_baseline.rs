//! Measure how the shared work-stealing pool (`machine::pool`) scales
//! the workspace's parallel sweeps and write a machine-readable baseline
//! to `BENCH_scaling.json` so later PRs can track the trajectory.
//!
//! Two timed workloads, chosen because every ROADMAP item above the
//! substrate (topology sweeps, schedule search, the sharded service)
//! fans out exactly like one of them:
//!
//! * **fault_replay** — [`par_fault_sweep`] over a bank of fault plans
//!   (plan×seed task sharding, per-worker [`FaultSim`] engines);
//! * **analysis_batch** — [`map_nest_batch`] over a fleet of loop nests
//!   of deliberately skewed sizes (per-worker `AnalysisCache`s; the
//!   skew is what the steal path exists for).
//!
//! ```text
//! cargo run --release -p rescomm-bench --bin scaling_baseline [--smoke] [--out PATH]
//! ```
//!
//! Gates, in order:
//!
//! * **Identity (every host, including single-core CI, smoke or not):**
//!   fault, recovery, schedule and analysis sweeps must be bit-identical
//!   to their 1-worker runs at several worker counts — the pool's
//!   determinism contract, checked end to end at the public entry
//!   points. The artifact's `identity` rows exist only if this passed
//!   (a divergence panics the bin).
//! * **Timing (only when `host_threads > 1`):** speedup over the
//!   1-worker run and efficiency against `workers_used` (the pool's
//!   post-clamp worker count, not the request). Rows asking for more
//!   workers than the host has hardware threads are **skipped** —
//!   emitted with `skipped: true` and null timings, never fabricated —
//!   because they would time the OS scheduler, not the sweep. On
//!   multi-core hosts the 4-worker row of each workload must reach
//!   ≥ 0.7 efficiency.

use rescomm::{map_nest_batch, map_nest_batch_report, MappingOptions};
use rescomm_bench::json::{fixed, raw, JsonDoc, Val};
use rescomm_bench::workload::{chained_stencil_nest, host_threads, pipeline_nest};
use rescomm_loopnest::LoopNest;
use rescomm_machine::{
    par_fault_sweep, par_fault_sweep_report, par_recovery_sweep, par_schedule_sweep, CachedPhase,
    CheckpointPolicy, CostModel, FaultPlan, LinkOutage, Mesh2D, NodeOutage, PMsg, RetryPolicy,
    ScheduleMode, SchedulePolicy, SweepReport, XorShift64,
};
use std::hint::black_box;
use std::time::Instant;

/// Median of `reps` timed runs of `f`, in nanoseconds.
fn median_ns<R>(reps: usize, mut f: impl FnMut() -> R) -> u64 {
    black_box(f()); // warm up
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(f());
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Deterministic synthetic phase set on `nodes` processors.
fn synth_phases(nodes: usize, n_phases: usize, per_phase: usize, seed: u64) -> Vec<Vec<PMsg>> {
    let mut rng = XorShift64::new(seed);
    (0..n_phases)
        .map(|_| {
            (0..per_phase)
                .map(|_| PMsg {
                    src: rng.below(nodes as u64) as usize,
                    dst: rng.below(nodes as u64) as usize,
                    bytes: 1 + rng.below(2048),
                })
                .collect()
        })
        .collect()
}

/// A fault plan exercising every transport mechanism: seeded link and
/// node outage windows, drop, duplication, retries.
fn dense_plan(mesh: &Mesh2D, seed: u64) -> FaultPlan {
    let mut rng = XorShift64::new(0xfa17_babe ^ seed);
    let link_outages = (0..24)
        .map(|_| {
            let from = rng.below(600_000);
            LinkOutage {
                link: rng.below(mesh.link_count() as u64) as usize,
                from,
                until: from + 50_000 + rng.below(200_000),
            }
        })
        .collect();
    let node_outages = (0..4)
        .map(|_| {
            let from = rng.below(400_000);
            NodeOutage {
                node: rng.below(mesh.nodes() as u64) as usize,
                from,
                until: from + 30_000 + rng.below(100_000),
            }
        })
        .collect();
    FaultPlan {
        seed,
        drop_prob: 0.2,
        dup_prob: 0.02,
        link_outages,
        node_outages,
        retry: RetryPolicy::default(),
        ..FaultPlan::none()
    }
}

/// One timing row of a workload section.
struct ScaleRow {
    report: SweepReport,
    /// `None` = row skipped (would oversubscribe the host).
    wall_ns: Option<u64>,
}

/// Render one timing section; `t1` is the 1-worker wall clock.
fn emit_rows(doc: &mut JsonDoc, section: &'static str, rows: &[ScaleRow], t1: u64, host: usize) {
    doc.rows(section, rows, |r| {
        let speedup = r.wall_ns.map(|w| t1 as f64 / w.max(1) as f64);
        vec![
            ("workers_requested", Val::from(r.report.requested)),
            ("workers_used", Val::from(r.report.workers)),
            ("tasks", Val::from(r.report.tasks)),
            ("grain", Val::from(r.report.grain)),
            ("steals", Val::from(r.report.steals)),
            ("wall_ns", r.wall_ns.map_or(raw("null"), Val::from)),
            ("speedup_vs_1", speedup.map_or(raw("null"), |s| fixed(s, 2))),
            (
                "efficiency",
                speedup.map_or(raw("null"), |s| {
                    fixed(s / r.report.workers.max(1) as f64, 2)
                }),
            ),
            ("oversubscribed", Val::from(r.report.requested > host)),
            ("skipped", Val::from(r.wall_ns.is_none())),
        ]
    });
}

/// The ≥0.7-efficiency floor on the timed 4-worker row, when one ran.
fn gate_efficiency(section: &str, rows: &[ScaleRow], t1: u64, host: usize) {
    for r in rows {
        let Some(wall) = r.wall_ns else { continue };
        if r.report.requested != 4 {
            continue;
        }
        let efficiency = t1 as f64 / wall.max(1) as f64 / r.report.workers.max(1) as f64;
        assert!(
            efficiency >= 0.7,
            "{section}: 4-worker efficiency {efficiency:.2} below the 0.7 floor \
             on a {host}-thread host (tasks {}, grain {}, steals {})",
            r.report.tasks,
            r.report.grain,
            r.report.steals
        );
        eprintln!("  {section}: 4-worker efficiency {efficiency:.2} >= 0.7  ok");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--quick");
    let out = args
        .iter()
        .skip_while(|a| *a != "--out")
        .nth(1)
        .cloned()
        .unwrap_or_else(|| "BENCH_scaling.json".into());
    let host = host_threads();
    let timing_reps = if smoke { 3 } else { 7 };

    let mesh = Mesh2D::new(8, 4, CostModel::paragon());
    let phases = synth_phases(mesh.nodes(), 5, 56, 0xfa17);
    let sched = SchedulePolicy::default();
    let bank: Vec<FaultPlan> = (0..if smoke { 4 } else { 8 })
        .map(|i| dense_plan(&mesh, 42 + i))
        .collect();
    let reps = if smoke { 4 } else { 32 };

    // Analysis fleet with a ~4x size skew between the smallest and
    // largest nest, alternating families — the uneven per-task cost the
    // steal path has to level out.
    let fleet: Vec<LoopNest> = (0..if smoke { 8 } else { 32 })
        .map(|i| {
            if i % 2 == 0 {
                chained_stencil_nest(12 + 3 * i, 8)
            } else {
                pipeline_nest(12 + 3 * i, 8)
            }
        })
        .collect();
    let opts = MappingOptions::new(2);

    // --- identity gates: every host, smoke or not --------------------------
    eprintln!("identity: all four sweep entry points vs their 1-worker runs");
    let id_workers: &[usize] = if smoke { &[2, 3, 8] } else { &[2, 3, 5, 8] };
    let mut id_rows: Vec<(&str, usize)> = Vec::new();

    let fault_serial = par_fault_sweep(&mesh, &phases, &bank, reps, 1, sched);
    for &w in id_workers {
        assert_eq!(
            par_fault_sweep(&mesh, &phases, &bank, reps, w, sched),
            fault_serial,
            "par_fault_sweep diverged from serial at {w} workers"
        );
        id_rows.push(("fault", w));
    }

    let policy = CheckpointPolicy::default();
    let rec_reps = reps.min(8);
    let rec_serial = par_recovery_sweep(&mesh, &phases, &bank, &policy, rec_reps, 1, sched);
    for &w in &id_workers[..2] {
        assert_eq!(
            par_recovery_sweep(&mesh, &phases, &bank, &policy, rec_reps, w, sched),
            rec_serial,
            "par_recovery_sweep diverged from serial at {w} workers"
        );
        id_rows.push(("recovery", w));
    }

    let cached: Vec<CachedPhase> = phases.iter().map(|p| CachedPhase::new(&mesh, p)).collect();
    let byte_scales: Vec<u64> = (1..=if smoke { 16 } else { 64 }).collect();
    let sched_serial =
        par_schedule_sweep(&mesh, &cached, ScheduleMode::overlapped(), &byte_scales, 1);
    for &w in &id_workers[..2] {
        assert_eq!(
            par_schedule_sweep(&mesh, &cached, ScheduleMode::overlapped(), &byte_scales, w),
            sched_serial,
            "par_schedule_sweep diverged from serial at {w} workers"
        );
        id_rows.push(("schedule", w));
    }

    let analysis_serial = map_nest_batch(&fleet, &opts, 1).unwrap();
    for &w in id_workers {
        let par = map_nest_batch(&fleet, &opts, w).unwrap();
        assert_eq!(par.len(), analysis_serial.len());
        for (i, (s, p)) in analysis_serial.iter().zip(&par).enumerate() {
            assert_eq!(
                (&s.outcomes, &s.rotations),
                (&p.outcomes, &p.rotations),
                "map_nest_batch diverged from serial at {w} workers on nest {i}"
            );
        }
        id_rows.push(("analysis", w));
    }
    eprintln!("  all {} identity checks passed", id_rows.len());

    // --- timing: fault replay ---------------------------------------------
    let worker_counts = [1usize, 2, 4, 8];
    eprintln!(
        "fault_replay: {} plans x {reps} replications on a {host}-thread host",
        bank.len()
    );
    let mut fault_rows = Vec::new();
    for w in worker_counts {
        let (_, report) = par_fault_sweep_report(&mesh, &phases, &bank, reps, w, sched);
        // Oversubscribed rows time the OS scheduler, not the sweep:
        // skip them outright, never fake them.
        let wall_ns = (w <= host).then(|| {
            median_ns(timing_reps, || {
                par_fault_sweep(&mesh, &phases, &bank, reps, w, sched)
            })
        });
        match wall_ns {
            Some(t) => eprintln!(
                "  {w} workers ({} used)  wall {t:>12} ns   steals {}",
                report.workers, report.steals
            ),
            None => eprintln!("  {w} workers  skipped (host has {host} threads)"),
        }
        fault_rows.push(ScaleRow { report, wall_ns });
    }

    // --- timing: analysis batch -------------------------------------------
    eprintln!("analysis_batch: {} skewed nests", fleet.len());
    let mut analysis_rows = Vec::new();
    for w in worker_counts {
        let (result, report) = map_nest_batch_report(&fleet, &opts, w);
        result.unwrap();
        let wall_ns = (w <= host)
            .then(|| median_ns(timing_reps, || map_nest_batch(&fleet, &opts, w).unwrap()));
        match wall_ns {
            Some(t) => eprintln!(
                "  {w} workers ({} used)  wall {t:>12} ns   steals {}",
                report.workers, report.steals
            ),
            None => eprintln!("  {w} workers  skipped (host has {host} threads)"),
        }
        analysis_rows.push(ScaleRow { report, wall_ns });
    }

    // --- efficiency gates (timed rows only, so host_threads > 1) ----------
    let fault_t1 = fault_rows[0].wall_ns.expect("1-worker row always timed");
    let analysis_t1 = analysis_rows[0].wall_ns.expect("1-worker row always timed");
    gate_efficiency("fault_replay", &fault_rows, fault_t1, host);
    gate_efficiency("analysis_batch", &analysis_rows, analysis_t1, host);

    // --- artifact ----------------------------------------------------------
    let mut doc = JsonDoc::new();
    doc.field("bench", "scaling")
        .field("host_threads", host)
        .field("smoke", smoke)
        .field("mesh", raw("[8, 4]"))
        .field("fault_plans", bank.len())
        .field("fault_replications", reps)
        .field("analysis_nests", fleet.len());
    doc.rows("identity", &id_rows, |r| {
        vec![
            ("workload", Val::from(r.0)),
            ("workers", Val::from(r.1)),
            ("identical", Val::from(true)),
        ]
    });
    emit_rows(&mut doc, "fault_replay", &fault_rows, fault_t1, host);
    emit_rows(
        &mut doc,
        "analysis_batch",
        &analysis_rows,
        analysis_t1,
        host,
    );
    doc.write(&out);
}
