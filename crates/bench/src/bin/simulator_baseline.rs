//! Measure the simulator hot path and write a machine-readable baseline
//! to `BENCH_simulator.json` so later PRs can track the perf trajectory.
//!
//! Two axes, matching the two halves of the optimization:
//!
//! * **generation** — enumerated (`general_pattern` + `physical_messages`,
//!   the `O(V log V)` oracle) vs closed-form residue-class folding
//!   (`fold_general`) at virtual grids 64²..2048².
//! * **scheduling** — one-shot `Mesh2D::simulate_phase` (fresh link
//!   table and route `Vec` per message) vs the reused `PhaseSim` scratch
//!   engine and `CachedPhase` replay, at message counts up to 10⁵.
//!
//! ```text
//! cargo run --release -p rescomm-bench --bin simulator_baseline [--out PATH]
//! ```
//!
//! Every timed pair is also checked for equality (same message sets, same
//! makespans) before timing, so the numbers can't drift from a wrong
//! answer going fast.

use rescomm_distribution::{fold_general, general_pattern, physical_messages, Dist1D, Dist2D};
use rescomm_intlin::IMat;
use rescomm_machine::{CachedPhase, CostModel, Mesh2D, PMsg, PhaseSim};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Median of `reps` timed runs of `f`, in nanoseconds.
fn median_ns<R>(reps: usize, mut f: impl FnMut() -> R) -> u64 {
    black_box(f()); // warm up
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(f());
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct GenRow {
    side: usize,
    enumerated_ns: u64,
    closed_ns: u64,
}

struct SchedRow {
    messages: usize,
    oneshot_ns: u64,
    phasesim_ns: u64,
    cached_ns: u64,
}

fn main() {
    let out = std::env::args()
        .skip_while(|a| a != "--out")
        .nth(1)
        .unwrap_or_else(|| "BENCH_simulator.json".into());

    let t = IMat::from_rows(&[&[1, 3], &[0, 1]]);
    let dist = Dist2D {
        rows: Dist1D::Grouped(3),
        cols: Dist1D::Block,
    };
    let pshape = (8usize, 4usize);
    let bytes = 64u64;

    eprintln!("generation: enumerated vs closed-form, U(3), grouped×block on 8×4");
    let mut gen = Vec::new();
    for side in [64usize, 256, 1024, 2048] {
        let vshape = (side, side);
        // Correctness gate before timing.
        let folded = fold_general(&t, dist, vshape, pshape, bytes);
        let oracle = physical_messages(&general_pattern(&t, vshape), dist, vshape, pshape, bytes);
        assert_eq!(folded.msgs, oracle, "closed form diverged at {side}x{side}");

        let reps = if side >= 1024 { 5 } else { 9 };
        let enumerated_ns = median_ns(reps, || {
            let pat = general_pattern(&t, vshape);
            physical_messages(&pat, dist, vshape, pshape, bytes)
        });
        let closed_ns = median_ns(reps.max(9), || {
            fold_general(&t, dist, vshape, pshape, bytes)
        });
        eprintln!(
            "  {side:>4}²  enumerated {:>12} ns   closed {:>9} ns   ×{:.1}",
            enumerated_ns,
            closed_ns,
            enumerated_ns as f64 / closed_ns.max(1) as f64
        );
        gen.push(GenRow {
            side,
            enumerated_ns,
            closed_ns,
        });
    }

    eprintln!("scheduling: one-shot vs PhaseSim vs CachedPhase replay on 8×4");
    let mesh = Mesh2D::new(8, 4, CostModel::paragon());
    let mut sched = Vec::new();
    for n in [1_000usize, 10_000, 100_000] {
        let msgs: Vec<PMsg> = (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                PMsg {
                    src: (h % 32) as usize,
                    dst: ((h >> 17) % 32) as usize,
                    bytes: 1 + (h >> 40) % 4096,
                }
            })
            .collect();
        let mut sim = PhaseSim::new(mesh.clone());
        let cached = CachedPhase::new(&mesh, &msgs);
        // Correctness gate before timing.
        let want = mesh.simulate_phase(&msgs);
        assert_eq!(
            sim.simulate_phase(&msgs),
            want,
            "PhaseSim diverged at n={n}"
        );
        assert_eq!(
            sim.run_cached(&cached),
            want,
            "CachedPhase diverged at n={n}"
        );

        let reps = if n >= 100_000 { 5 } else { 9 };
        let oneshot_ns = median_ns(reps, || mesh.simulate_phase(&msgs));
        let phasesim_ns = median_ns(reps, || sim.simulate_phase(&msgs));
        let cached_ns = median_ns(reps, || sim.run_cached(&cached));
        eprintln!(
            "  {n:>6} msgs  oneshot {:>12} ns   phasesim {:>12} ns (×{:.1})   cached {:>12} ns (×{:.1})",
            oneshot_ns,
            phasesim_ns,
            oneshot_ns as f64 / phasesim_ns.max(1) as f64,
            cached_ns,
            oneshot_ns as f64 / cached_ns.max(1) as f64
        );
        sched.push(SchedRow {
            messages: n,
            oneshot_ns,
            phasesim_ns,
            cached_ns,
        });
    }

    let mut j = String::new();
    j.push_str("{\n  \"bench\": \"simulator\",\n  \"mesh\": [8, 4],\n");
    let _ = writeln!(
        j,
        "  \"dataflow\": \"U(3)\",\n  \"dist\": \"grouped(3) x block\",\n  \"elem_bytes\": {bytes},"
    );
    j.push_str("  \"generation\": [\n");
    for (i, r) in gen.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"grid\": \"{side}x{side}\", \"enumerated_ns\": {e}, \"closed_form_ns\": {c}, \"speedup\": {s:.2}}}",
            side = r.side,
            e = r.enumerated_ns,
            c = r.closed_ns,
            s = r.enumerated_ns as f64 / r.closed_ns.max(1) as f64
        );
        j.push_str(if i + 1 < gen.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ],\n  \"scheduling\": [\n");
    for (i, r) in sched.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"messages\": {n}, \"oneshot_ns\": {o}, \"phasesim_ns\": {p}, \"cached_replay_ns\": {c}, \"phasesim_speedup\": {ps:.2}, \"cached_speedup\": {cs:.2}}}",
            n = r.messages,
            o = r.oneshot_ns,
            p = r.phasesim_ns,
            c = r.cached_ns,
            ps = r.oneshot_ns as f64 / r.phasesim_ns.max(1) as f64,
            cs = r.oneshot_ns as f64 / r.cached_ns.max(1) as f64
        );
        j.push_str(if i + 1 < sched.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ]\n}\n");
    std::fs::write(&out, &j).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("wrote {out}");
}
