//! Measure the simulator hot path and write a machine-readable baseline
//! to `BENCH_simulator.json` so later PRs can track the perf trajectory.
//!
//! Two axes, matching the two halves of the optimization:
//!
//! * **generation** — the closed residue-class fold
//!   ([`rescomm_distribution::fold_general`]) vs the dense `O(V)` count
//!   fold and the enumerated oracle, across a *kernel zoo* of unimodular
//!   dataflow matrices (shears, fully-coupled maps, rotations, swaps —
//!   the matrices that used to force the dense fallback) at virtual
//!   grids 64² through 8192² (67M virtual processors).
//! * **scheduling** — one-shot `Mesh2D::simulate_phase` (fresh link
//!   table and route `Vec` per message) vs the reused `PhaseSim` scratch
//!   engine and `CachedPhase` replay, at message counts up to 10⁵.
//!
//! ```text
//! cargo run --release -p rescomm-bench --bin simulator_baseline [--out PATH] [--smoke]
//! ```
//!
//! `--smoke` runs the correctness gates only (small grids, no timing, no
//! artifact): every zoo matrix must take the closed path and match the
//! enumeration oracle bit-for-bit — CI fails on any dense fallback for
//! unimodular `T`.
//!
//! Every timed pair is also checked for equality (same message sets, same
//! locality) before timing, so the numbers can't drift from a wrong
//! answer going fast. The full run additionally gates the acceptance
//! floor: closed ≥ 20× over the dense fold at 4096² for the
//! previously-dense matrices, and sublinear-in-V growth of the closed
//! path from 4096² to 8192².

use rescomm_bench::json::{fixed, raw, JsonDoc, Val};
use rescomm_bench::workload::host_threads;
use rescomm_distribution::{
    fold_affine_with, fold_pattern, general_pattern, Dist1D, Dist2D, FoldPath,
};
use rescomm_intlin::IMat;
use rescomm_machine::{CachedPhase, CostModel, Mesh2D, PMsg, PhaseSim};
use std::hint::black_box;
use std::time::Instant;

/// Median of `reps` timed runs of `f`, in nanoseconds.
fn median_ns<R>(reps: usize, mut f: impl FnMut() -> R) -> u64 {
    black_box(f()); // warm up
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(f());
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// One zoo entry: a named dataflow matrix. `previously_dense` marks the
/// matrices the old elementary-only fast path could not handle (they hit
/// the dense `O(V)` fold before the general segment algebra) — these
/// carry the ≥20× acceptance gate at 4096².
struct Kernel {
    name: &'static str,
    t: IMat,
    previously_dense: bool,
}

fn kernel_zoo() -> Vec<Kernel> {
    let m = |rows: &[&[i64]]| IMat::from_rows(rows);
    vec![
        Kernel {
            name: "U(3)",
            t: m(&[&[1, 3], &[0, 1]]),
            previously_dense: false,
        },
        Kernel {
            name: "L(2)",
            t: m(&[&[1, 0], &[2, 1]]),
            previously_dense: false,
        },
        Kernel {
            name: "U(-2)",
            t: m(&[&[1, -2], &[0, 1]]),
            previously_dense: false,
        },
        Kernel {
            name: "coupled[[1,3],[2,7]]",
            t: m(&[&[1, 3], &[2, 7]]),
            previously_dense: true,
        },
        Kernel {
            name: "fib[[1,1],[1,2]]",
            t: m(&[&[1, 1], &[1, 2]]),
            previously_dense: true,
        },
        Kernel {
            name: "rot90",
            t: m(&[&[0, -1], &[1, 0]]),
            previously_dense: true,
        },
        Kernel {
            name: "swap",
            t: m(&[&[0, 1], &[1, 0]]),
            previously_dense: true,
        },
    ]
}

struct GenRow {
    matrix: &'static str,
    side: usize,
    factors: usize,
    closed_ns: u64,
    dense_ns: u64,
    /// `None` above the enumeration cutoff (the oracle is `O(V log V)`
    /// with tree-map constants; 16.8M-send patterns are not a baseline).
    enumerated_ns: Option<u64>,
}

struct SchedRow {
    messages: usize,
    oneshot_ns: u64,
    phasesim_ns: u64,
    cached_ns: u64,
}

/// Correctness gate: the closed path must fire for unimodular `T`, match
/// the dense fold everywhere, and match the enumeration oracle below the
/// cutoff. Panics with a witness on any divergence.
fn gate(k: &Kernel, dist: Dist2D, side: usize, pshape: (usize, usize), bytes: u64, oracle: bool) {
    let vshape = (side, side);
    let closed = fold_affine_with(FoldPath::Closed, &k.t, (0, 0), dist, vshape, pshape, bytes);
    assert!(
        closed.closed,
        "{}: closed path did not fire at {side}x{side}",
        k.name
    );
    assert!(
        closed.factors > 0,
        "{}: unimodular matrix reported no factor chain",
        k.name
    );
    let dense = fold_affine_with(FoldPath::Dense, &k.t, (0, 0), dist, vshape, pshape, bytes);
    assert_eq!(
        closed, dense,
        "{}: closed fold diverged from dense at {side}x{side}",
        k.name
    );
    // Auto must route unimodular T through the closed path.
    let auto = fold_affine_with(FoldPath::Auto, &k.t, (0, 0), dist, vshape, pshape, bytes);
    assert!(
        auto.closed,
        "{}: auto path fell back to dense for unimodular T at {side}x{side}",
        k.name
    );
    if oracle {
        let want = fold_pattern(&general_pattern(&k.t, vshape), dist, vshape, pshape, bytes);
        assert_eq!(
            closed, want,
            "{}: closed fold diverged from the enumeration oracle at {side}x{side}",
            k.name
        );
    }
}

fn main() {
    let mut out = "BENCH_simulator.json".to_string();
    let mut smoke = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = it.next().expect("--out needs a path"),
            "--smoke" => smoke = true,
            other => panic!("unknown argument {other:?}"),
        }
    }

    let dist = Dist2D {
        rows: Dist1D::Grouped(3),
        cols: Dist1D::Block,
    };
    let pshape = (8usize, 4usize);
    let bytes = 64u64;
    let zoo = kernel_zoo();

    if smoke {
        eprintln!("smoke: closed-path + oracle gates over the kernel zoo");
        for k in &zoo {
            for side in [16usize, 48, 96] {
                gate(k, dist, side, pshape, bytes, true);
            }
            eprintln!("  {:<22} closed path ok", k.name);
        }
        eprintln!("smoke ok: {} matrices, no dense fallback", zoo.len());
        return;
    }

    eprintln!("generation: closed vs dense vs enumerated, grouped(3)×block on 8×4");
    let mut gen = Vec::new();
    for k in &zoo {
        let factors = {
            let f = fold_affine_with(
                FoldPath::Closed,
                &k.t,
                (0, 0),
                dist,
                (64, 64),
                pshape,
                bytes,
            );
            f.factors
        };
        for side in [64usize, 256, 1024, 4096, 8192] {
            let vshape = (side, side);
            // Enumeration is the gold oracle but O(V log V): gate against
            // it only where it is tractable.
            let with_oracle = side <= 1024;
            gate(k, dist, side, pshape, bytes, with_oracle);

            let reps = if side >= 4096 { 3 } else { 7 };
            let closed_ns = median_ns(reps.max(7), || {
                fold_affine_with(FoldPath::Closed, &k.t, (0, 0), dist, vshape, pshape, bytes)
            });
            let dense_ns = median_ns(reps, || {
                fold_affine_with(FoldPath::Dense, &k.t, (0, 0), dist, vshape, pshape, bytes)
            });
            let enumerated_ns = with_oracle.then(|| {
                median_ns(reps, || {
                    fold_pattern(&general_pattern(&k.t, vshape), dist, vshape, pshape, bytes)
                })
            });
            eprintln!(
                "  {:<22} {side:>4}²  closed {closed_ns:>10} ns   dense {dense_ns:>12} ns (×{:.1})   enumerated {}",
                k.name,
                dense_ns as f64 / closed_ns.max(1) as f64,
                enumerated_ns.map_or("-".into(), |e| format!("{e} ns")),
            );
            gen.push(GenRow {
                matrix: k.name,
                side,
                factors,
                closed_ns,
                dense_ns,
                enumerated_ns,
            });
        }
    }

    // Acceptance gates: the previously-dense matrices must beat the dense
    // fold by ≥20× at 4096², and the closed path must grow sublinearly in
    // V (V quadruples from 4096² to 8192²; flat-in-V means the ratio
    // stays far under 4).
    for k in zoo.iter().filter(|k| k.previously_dense) {
        let at = |side: usize| {
            gen.iter()
                .find(|r| r.matrix == k.name && r.side == side)
                .unwrap()
        };
        let r4 = at(4096);
        let speedup = r4.dense_ns as f64 / r4.closed_ns.max(1) as f64;
        assert!(
            speedup >= 20.0,
            "{}: closed path only {speedup:.1}x over dense at 4096² (gate: 20x)",
            k.name
        );
        let r8 = at(8192);
        // Floor the denominator at 50µs so scheduler noise on a
        // sub-millisecond sample cannot fail the growth gate.
        let growth = r8.closed_ns as f64 / r4.closed_ns.max(50_000) as f64;
        assert!(
            growth < 4.0,
            "{}: closed path grew {growth:.2}x from 4096² to 8192² (V grew 4x; gate: sublinear)",
            k.name
        );
    }
    eprintln!("gates ok: ≥20x over dense at 4096², sublinear growth to 8192²");

    eprintln!("scheduling: one-shot vs PhaseSim vs CachedPhase replay on 8×4");
    let mesh = Mesh2D::new(8, 4, CostModel::paragon());
    let mut sched = Vec::new();
    for n in [1_000usize, 10_000, 100_000] {
        let msgs: Vec<PMsg> = (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                PMsg {
                    src: (h % 32) as usize,
                    dst: ((h >> 17) % 32) as usize,
                    bytes: 1 + (h >> 40) % 4096,
                }
            })
            .collect();
        let mut sim = PhaseSim::new(mesh.clone());
        let cached = CachedPhase::new(&mesh, &msgs);
        // Correctness gate before timing.
        let want = mesh.simulate_phase(&msgs);
        assert_eq!(
            sim.simulate_phase(&msgs),
            want,
            "PhaseSim diverged at n={n}"
        );
        assert_eq!(
            sim.run_cached(&cached),
            want,
            "CachedPhase diverged at n={n}"
        );

        let reps = if n >= 100_000 { 5 } else { 9 };
        let oneshot_ns = median_ns(reps, || mesh.simulate_phase(&msgs));
        let phasesim_ns = median_ns(reps, || sim.simulate_phase(&msgs));
        let cached_ns = median_ns(reps, || sim.run_cached(&cached));
        eprintln!(
            "  {n:>6} msgs  oneshot {:>12} ns   phasesim {:>12} ns (×{:.1})   cached {:>12} ns (×{:.1})",
            oneshot_ns,
            phasesim_ns,
            oneshot_ns as f64 / phasesim_ns.max(1) as f64,
            cached_ns,
            oneshot_ns as f64 / cached_ns.max(1) as f64
        );
        sched.push(SchedRow {
            messages: n,
            oneshot_ns,
            phasesim_ns,
            cached_ns,
        });
    }

    let mut doc = JsonDoc::new();
    doc.field("bench", "simulator")
        .field("mesh", raw("[8, 4]"))
        .field("dist", "grouped(3) x block")
        .field("elem_bytes", bytes)
        .field("host_threads", host_threads());
    doc.rows("generation", &gen, |r| {
        vec![
            ("matrix", Val::from(r.matrix)),
            ("grid", Val::from(format!("{0}x{0}", r.side))),
            ("closed", Val::from(true)),
            ("factors", Val::from(r.factors)),
            ("closed_ns", Val::from(r.closed_ns)),
            ("dense_ns", Val::from(r.dense_ns)),
            (
                "enumerated_ns",
                r.enumerated_ns.map_or(raw("null"), Val::from),
            ),
            (
                "dense_speedup",
                fixed(r.dense_ns as f64 / r.closed_ns.max(1) as f64, 2),
            ),
        ]
    });
    doc.rows("scheduling", &sched, |r| {
        vec![
            ("messages", Val::from(r.messages)),
            ("oneshot_ns", Val::from(r.oneshot_ns)),
            ("phasesim_ns", Val::from(r.phasesim_ns)),
            ("cached_replay_ns", Val::from(r.cached_ns)),
            (
                "phasesim_speedup",
                fixed(r.oneshot_ns as f64 / r.phasesim_ns.max(1) as f64, 2),
            ),
            (
                "cached_speedup",
                fixed(r.oneshot_ns as f64 / r.cached_ns.max(1) as f64, 2),
            ),
        ]
    });
    doc.write(&out);
}
