//! Faulty execution under phased, overlapped and adaptive schedules,
//! written as a machine-readable baseline to `BENCH_faultsched.json`.
//!
//! Workloads are the multi-factor kernel-zoo decompositions of
//! `schedule_baseline` (each unimodular dataflow matrix decomposed into
//! its unirow factor chain, one affine phase per factor) plus the
//! paper's motivating-example plan, folded onto the 8×4 Paragon mesh.
//! Every workload runs through the compiled fault engine
//! ([`rescomm_machine::FaultSim`]) under a drop/duplication fault plan
//! with retries, replayed over [`replication_seed`]-derived seeds under
//! each [`SchedulePolicy`]: fixed phased barriers, fixed overlap (both
//! orders) and adaptive degradation. Every simulated quantity is
//! deterministic, so the committed artifact is byte-stable across hosts.
//!
//! ```text
//! cargo run --release -p rescomm-bench --bin faultsched [--out PATH] [--smoke]
//! ```
//!
//! `--smoke` shrinks the grid and replication count for the CI job; the
//! gates are identical.
//!
//! Gates (checked before anything is written):
//!
//! * (a) **zero-fault identity per mode** — a zero-fault plan through
//!   the fault engine is bit-identical in makespan to the fault-free
//!   scheduler under every policy's healthy mode, with zero downgrades;
//! * (b) **overlap helps under faults** — overlapped-faulty mean
//!   makespan ≤ phased-faulty mean makespan at equal seeds on at least
//!   one multi-factor chain (drop-only plans keep the per-message RNG
//!   draw sequence identical across modes, so the comparison is
//!   schedule-for-schedule);
//! * (c) **adaptive dominance** — on every row the adaptive policy's
//!   mean makespan is never worse than the worse of the two fixed
//!   modes it arbitrates between;
//! * (d) **oracle bit-identity** — the compiled replay reproduces the
//!   per-call policy oracle on replication 0 under every policy;
//! * (e) **delivery** — with retries enabled, every replication of
//!   every row delivers every message.

use rescomm::substrate::loopnest::examples;
use rescomm::{build_plan_closed, map_nest, MappingOptions};
use rescomm_bench::json::{fixed, raw, JsonDoc, Val};
use rescomm_bench::workload::host_threads;
use rescomm_decompose::decompose_general;
use rescomm_distribution::{fold_affine, Dist1D, Dist2D};
use rescomm_intlin::IMat;
use rescomm_machine::{
    replication_seed, CostModel, FaultPlan, FaultReport, FaultSim, Mesh2D, OverlapOrder, PMsg,
    PhaseSim, ScheduleMode, SchedulePolicy,
};

/// A named multi-phase workload, already folded to physical messages.
struct Workload {
    name: String,
    factors: usize,
    multi_factor: bool,
    phases: Vec<Vec<PMsg>>,
}

/// The multi-factor subset of `schedule_baseline`'s kernel zoo: chains
/// where phases can actually pipeline, plus one single-factor control.
fn zoo() -> Vec<(&'static str, IMat)> {
    let m = |rows: &[&[i64]]| IMat::from_rows(rows);
    vec![
        ("U(3)", m(&[&[1, 3], &[0, 1]])),
        ("coupled[[1,3],[2,7]]", m(&[&[1, 3], &[2, 7]])),
        ("fib[[1,1],[1,2]]", m(&[&[1, 1], &[1, 2]])),
        ("rot90", m(&[&[0, -1], &[1, 0]])),
    ]
}

fn fold_factor_chain(
    factors: &[IMat],
    mesh: &Mesh2D,
    dist: Dist2D,
    side: usize,
    bytes: u64,
) -> Vec<Vec<PMsg>> {
    factors
        .iter()
        .rev()
        .map(|t| {
            let folded = fold_affine(t, (0, 0), dist, (side, side), (mesh.px, mesh.py), bytes);
            folded
                .msgs
                .iter()
                .map(|m| PMsg {
                    src: mesh.node_id(m.src.0, m.src.1),
                    dst: mesh.node_id(m.dst.0, m.dst.1),
                    bytes: m.bytes,
                })
                .collect()
        })
        .collect()
}

fn workloads(mesh: &Mesh2D, dist: Dist2D, side: usize, bytes: u64) -> Vec<Workload> {
    let mut out = Vec::new();
    for (name, t) in zoo() {
        let factors: Vec<IMat> = decompose_general(&t)
            .expect("zoo matrices are unimodular")
            .iter()
            .map(|f| f.to_mat(2))
            .collect();
        out.push(Workload {
            name: name.to_string(),
            factors: factors.len(),
            multi_factor: factors.len() >= 2,
            phases: fold_factor_chain(&factors, mesh, dist, side, bytes),
        });
    }
    let (nest, _) = examples::motivating_example(6, 2);
    let mapping = map_nest(&nest, &MappingOptions::new(2)).expect("motivating example maps");
    let plan = build_plan_closed(&nest, &mapping);
    out.push(Workload {
        name: "paper_plan".to_string(),
        factors: plan.phases.len(),
        multi_factor: false,
        phases: plan.phases_on_mesh(mesh, dist, (side, side), bytes),
    });
    out
}

/// One (workload, policy) row of the artifact.
struct Row {
    workload: String,
    factors: usize,
    multi_factor: bool,
    messages: usize,
    policy: SchedulePolicy,
    healthy_ns: u64,
    mean_makespan_ns: f64,
    max_makespan_ns: u64,
    retries: u64,
    downgrades: u64,
}

impl Row {
    fn inflation(&self) -> f64 {
        if self.healthy_ns == 0 {
            return 1.0;
        }
        self.mean_makespan_ns / self.healthy_ns as f64
    }
}

fn mean(reports: &[FaultReport]) -> f64 {
    if reports.is_empty() {
        return 0.0;
    }
    reports.iter().map(|r| r.makespan as f64).sum::<f64>() / reports.len() as f64
}

fn main() {
    let mut out = "BENCH_faultsched.json".to_string();
    let mut smoke = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = it.next().expect("--out needs a path"),
            "--smoke" => smoke = true,
            other => panic!("unknown argument {other:?}"),
        }
    }

    let dist = Dist2D {
        rows: Dist1D::Grouped(3),
        cols: Dist1D::Block,
    };
    let bytes = 64u64;
    let mesh = Mesh2D::new(8, 4, CostModel::paragon());
    let mut sim = PhaseSim::new(mesh.clone());
    let side = if smoke { 48usize } else { 256 };
    let replications = if smoke { 4usize } else { 16 };

    // Drop-only (plus duplication) faults: no outage windows, so the
    // per-message RNG draw sequence is identical under every schedule
    // mode and gate (b) compares schedules, not fault timings.
    let fault = FaultPlan {
        dup_prob: 0.02,
        ..FaultPlan::with_drop(42, 0.2)
    };
    let seeds: Vec<u64> = (0..replications)
        .map(|r| replication_seed(fault.seed, r as u64))
        .collect();

    let policies = [
        SchedulePolicy::Fixed(ScheduleMode::Phased),
        SchedulePolicy::Fixed(ScheduleMode::overlapped()),
        SchedulePolicy::Fixed(ScheduleMode::Overlapped(OverlapOrder::LongestFirst)),
        SchedulePolicy::Adaptive {
            inflation_threshold: 1.5,
        },
    ];

    eprintln!("faultsched: {side}² grids on 8x4, drop 0.20 dup 0.02, {replications} replications");
    let mut rows = Vec::new();
    let mut overlap_beats_phased_somewhere = false;
    for w in workloads(&mesh, dist, side, bytes) {
        let messages: usize = w.phases.iter().map(Vec::len).sum();
        let mut engine = FaultSim::new(&mesh, &w.phases, &fault);
        let mut per_policy = Vec::new();
        for sched in policies {
            let healthy = sim.simulate_phases_mode(&w.phases, sched.healthy_mode());
            // Gate (a): zero-fault identity under this policy.
            let zero = FaultPlan {
                seed: fault.seed,
                ..FaultPlan::none()
            };
            let z = sim.simulate_phases_faulty_policy(&w.phases, &zero, sched);
            assert_eq!(
                z.makespan,
                healthy,
                "{}: zero-fault {} diverged from the fault-free scheduler",
                w.name,
                sched.label()
            );
            assert_eq!(z.downgrades, 0, "{}: zero-fault run degraded", w.name);

            let reports = engine.replay_faulty(&seeds, sched);
            // Gate (d): replication 0 is the per-call policy oracle.
            assert_eq!(
                reports[0],
                sim.simulate_phases_faulty_policy(&w.phases, &fault, sched),
                "{}: compiled replay diverged from the oracle under {}",
                w.name,
                sched.label()
            );
            // Gate (e): retries are on, so every message lands.
            for r in &reports {
                assert_eq!(
                    r.delivered,
                    r.messages,
                    "{} under {}",
                    w.name,
                    sched.label()
                );
            }
            let row = Row {
                workload: w.name.clone(),
                factors: w.factors,
                multi_factor: w.multi_factor,
                messages,
                policy: sched,
                healthy_ns: healthy,
                mean_makespan_ns: mean(&reports),
                max_makespan_ns: reports.iter().map(|r| r.makespan).max().unwrap_or(0),
                retries: reports.iter().map(|r| r.retries).sum(),
                downgrades: reports.iter().map(|r| r.downgrades).sum(),
            };
            eprintln!(
                "  {:<22} {:<20} mean {:>12.0} ns  x{:.2}  retries {:>5}  downgrades {}",
                row.workload,
                sched.label(),
                row.mean_makespan_ns,
                row.inflation(),
                row.retries,
                row.downgrades
            );
            per_policy.push(row);
        }
        // Gate (b) bookkeeping: overlapped vs phased at equal seeds.
        let phased_mean = per_policy[0].mean_makespan_ns;
        let over_mean = per_policy[1].mean_makespan_ns;
        if w.multi_factor && over_mean <= phased_mean {
            overlap_beats_phased_somewhere = true;
        }
        // Gate (c): adaptive never worse than the worse fixed mode it
        // arbitrates between (phased vs default overlap).
        let adaptive_mean = per_policy[3].mean_makespan_ns;
        assert!(
            adaptive_mean <= phased_mean.max(over_mean) + 1e-9,
            "{}: adaptive mean {adaptive_mean:.0} ns worse than both fixed modes \
             (phased {phased_mean:.0}, overlapped {over_mean:.0})",
            w.name
        );
        rows.extend(per_policy);
    }
    assert!(
        overlap_beats_phased_somewhere,
        "overlapped-faulty beat phased-faulty on no multi-factor chain"
    );
    eprintln!("gates ok: zero-fault identity, overlap win, adaptive dominance, oracle identity");

    let mut doc = JsonDoc::new();
    doc.field("bench", "faultsched")
        .field("mesh", raw("[8, 4]"))
        .field("dist", "grouped(3) x block")
        .field("grid", format!("{side}x{side}"))
        .field("elem_bytes", bytes)
        .field("drop_prob", fixed(0.2, 2))
        .field("dup_prob", fixed(0.02, 2))
        .field("replications", replications)
        .field("smoke", smoke)
        .field("host_threads", host_threads());
    doc.rows("faultsched", &rows, |r| {
        vec![
            ("workload", Val::from(r.workload.as_str())),
            ("phases", Val::from(r.factors)),
            ("multi_factor", Val::from(r.multi_factor)),
            ("messages", Val::from(r.messages)),
            ("schedule_mode", Val::from(r.policy.healthy_mode().label())),
            ("policy", Val::from(r.policy.label())),
            ("healthy_makespan_ns", Val::from(r.healthy_ns)),
            ("mean_makespan_ns", fixed(r.mean_makespan_ns, 0)),
            ("max_makespan_ns", Val::from(r.max_makespan_ns)),
            ("inflation", fixed(r.inflation(), 3)),
            ("retries", Val::from(r.retries)),
            ("downgrades", Val::from(r.downgrades)),
        ]
    });
    doc.write(&out);
}
