//! Regenerate the **§5.4 comparison**: the grouped partition's effect on
//! a general affine communication that is *not* decomposed. The paper
//! reports "less than 5% difference between the grouped partition and
//! the CYCLIC distribution" — i.e. adopting the grouped partition costs
//! nothing even where it does not help.
//!
//! ```text
//! cargo run -p rescomm-bench --bin grouped_general
//! ```

use rescomm_bench::workload::{paragon_mesh, simulate_dataflow};
use rescomm_distribution::{Dist1D, Dist2D};
use rescomm_intlin::IMat;

fn main() {
    let mesh = paragon_mesh();
    let t = IMat::from_rows(&[&[1, 3], &[2, 7]]);
    println!("§5.4 — general affine communication T = [[1,3],[2,7]], NOT decomposed,");
    println!("grouped partition vs CYCLIC, 8×4 mesh:\n");
    println!(
        "{:>10} {:>8} {:>14} {:>14} {:>10}",
        "virtual", "bytes", "CYCLIC (ns)", "grouped (ns)", "diff %"
    );
    for vshape in [(32usize, 16usize), (48, 16), (64, 32)] {
        for bytes in [128u64, 512, 2048] {
            let cyc = simulate_dataflow(&t, &mesh, Dist2D::uniform(Dist1D::Cyclic), vshape, bytes);
            let grp = simulate_dataflow(
                &t,
                &mesh,
                Dist2D {
                    rows: Dist1D::Grouped(3),
                    cols: Dist1D::Grouped(2),
                },
                vshape,
                bytes,
            );
            let diff = 100.0 * (grp as f64 - cyc as f64) / cyc as f64;
            println!(
                "{:>10} {:>8} {:>14} {:>14} {:>+9.1}%",
                format!("{}x{}", vshape.0, vshape.1),
                bytes,
                cyc,
                grp,
                diff
            );
        }
    }
    println!("\npaper's claim: the grouped partition neither helps nor hurts a");
    println!("general (undecomposed) communication — differences stay small.");
}
