//! Robustness + throughput baseline for `rescomm-serve` (the mapping
//! service), written to `BENCH_service.json`. Four gated sections:
//!
//! * **throughput** — a corpus of distinct nests served cold (every
//!   request computes) vs warm (every request hits the plan cache).
//!   **Gate: warm throughput ≥ 3× cold.**
//! * **snapshot** — the corpus is served fresh on a snapshotting
//!   server, the server is stopped, a new server restores the
//!   snapshot and replays the corpus. **Gate: every restored response
//!   carries the `snapshot` marker and byte-identical result bytes.**
//! * **malformed** — a corpus of hostile request lines (bad JSON,
//!   duplicate keys, wrong types, bad nests, unknown ops, oversized
//!   lines). **Gate: every line gets a structured error, the server
//!   keeps serving, and zero panics are absorbed.**
//! * **deadline** — requests with already-expired and mid-pipeline
//!   deadlines. **Gate: each is cancelled with the `deadline` error
//!   code (exit code 6) and counted in the server stats.**
//!
//! ```text
//! cargo run --release -p rescomm-bench --bin service_baseline [--smoke] [--out PATH]
//! ```

use rescomm::serve::{Server, ServerConfig, ServerHandle};
use rescomm_bench::json::{fixed, JsonDoc, Val};
use rescomm_json::{parse, JsonValue};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

/// One line-oriented client connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.addr).expect("connect to in-process server");
        stream.set_nodelay(true).expect("nodelay");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn request(&mut self, req: &str) -> JsonValue {
        writeln!(self.writer, "{req}").expect("send request");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        parse(line.trim()).unwrap_or_else(|e| panic!("unparseable response {line:?}: {e}"))
    }
}

/// Distinct well-formed nest sources (the serving corpus).
fn corpus(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let dom = 3 + (i % 5) as i64;
            let sx = (i % 3) as i64;
            let sy = ((i / 3) % 3) as i64;
            format!(
                "nest svc{i}\narray a 2\narray b 2\n\
                 stmt S depth 2 domain 0..{dom} 0..{dom}\n  \
                 write a [1 0; 0 1] + [0 0]\n  \
                 read a [0 1; 1 0] + [{sx} {sy}]\n  \
                 read b [1 0; 0 1] + [{sy} 1]\n"
            )
        })
        .collect()
}

fn map_req(id: usize, nest: &str) -> String {
    let nest = JsonValue::Str(nest.to_string()).render();
    format!("{{\"id\": {id}, \"op\": \"map\", \"nest\": {nest}, \"mesh\": [8, 4]}}")
}

fn served(resp: &JsonValue) -> &str {
    resp.get("served")
        .and_then(JsonValue::as_str)
        .unwrap_or("?")
}

fn result_bytes(resp: &JsonValue) -> String {
    resp.get("result")
        .unwrap_or_else(|| panic!("response without result: {resp:?}"))
        .render()
}

fn stat(client: &mut Client, key: &str) -> u64 {
    let resp = client.request("{\"op\": \"stats\"}");
    resp.get("result")
        .and_then(|r| r.get(key))
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| panic!("stats missing {key}: {resp:?}"))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let out = std::env::args()
        .skip_while(|a| a != "--out")
        .nth(1)
        .unwrap_or_else(|| "BENCH_service.json".into());

    let n_corpus = if smoke { 8 } else { 24 };
    let warm_rounds = if smoke { 4 } else { 16 };
    let nests = corpus(n_corpus);

    // --- throughput: cold (every request computes) vs warm (cache) ---
    eprintln!("throughput: {n_corpus}-nest corpus, cold vs warm ({warm_rounds} warm rounds)");
    let handle = Server::bind(ServerConfig::default()).expect("bind").spawn();
    let mut client = Client::connect(&handle);

    let t0 = Instant::now();
    let fresh: Vec<JsonValue> = nests
        .iter()
        .enumerate()
        .map(|(i, nest)| client.request(&map_req(i, nest)))
        .collect();
    let cold_ns = t0.elapsed().as_nanos() as u64;
    for r in &fresh {
        assert_eq!(served(r), "fresh", "cold round must compute: {r:?}");
    }

    let t0 = Instant::now();
    for round in 0..warm_rounds {
        for (i, (nest, want)) in nests.iter().zip(&fresh).enumerate() {
            let r = client.request(&map_req(1000 + round * n_corpus + i, nest));
            assert_eq!(served(&r), "cache", "warm round must hit: {r:?}");
            assert_eq!(
                result_bytes(&r),
                result_bytes(want),
                "cache replay must be byte-identical"
            );
        }
    }
    let warm_total = t0.elapsed().as_nanos() as u64;
    let warm_ns = warm_total / warm_rounds as u64; // per corpus pass
    let speedup = cold_ns as f64 / warm_ns.max(1) as f64;
    eprintln!("  cold {cold_ns:>12} ns/corpus   warm {warm_ns:>9} ns/corpus   ×{speedup:.1}");
    assert!(
        speedup >= 3.0,
        "GATE: warm throughput must be ≥ 3× cold (got {speedup:.2}×)"
    );
    handle.stop().expect("drain");

    // --- snapshot: restored responses byte-identical to fresh ---
    eprintln!("snapshot: fresh → kill → restore → replay, byte equality");
    let dir = std::env::temp_dir().join(format!("rescomm-svcbench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let snap = dir.join("plans.json");
    let _ = std::fs::remove_file(&snap);
    let cfg = ServerConfig {
        snapshot_path: Some(snap.clone()),
        snapshot_every: 1,
        ..ServerConfig::default()
    };
    let handle = Server::bind(cfg.clone()).expect("bind").spawn();
    let mut client = Client::connect(&handle);
    let fresh_bytes: Vec<String> = nests
        .iter()
        .enumerate()
        .map(|(i, nest)| result_bytes(&client.request(&map_req(i, nest))))
        .collect();
    drop(client);
    handle.stop().expect("drain");

    let server = Server::bind(cfg).expect("rebind");
    let restored = server.restored_entries();
    assert_eq!(
        restored as usize, n_corpus,
        "GATE: every corpus entry must restore from the snapshot"
    );
    let handle = server.spawn();
    let mut client = Client::connect(&handle);
    let mut verified = 0usize;
    for (i, (nest, want)) in nests.iter().zip(&fresh_bytes).enumerate() {
        let r = client.request(&map_req(i, nest));
        assert_eq!(
            served(&r),
            "snapshot",
            "GATE: restored server must serve from snapshot: {r:?}"
        );
        assert_eq!(
            &result_bytes(&r),
            want,
            "GATE: snapshot-restored response must be byte-identical"
        );
        verified += 1;
    }
    eprintln!("  {verified}/{n_corpus} snapshot replays byte-identical");
    handle.stop().expect("drain");
    let _ = std::fs::remove_dir_all(&dir);

    // --- malformed corpus: structured rejection, zero panics ---
    eprintln!("malformed: hostile corpus, structured rejection only");
    let handle = Server::bind(ServerConfig {
        max_line_bytes: 4096,
        ..ServerConfig::default()
    })
    .expect("bind")
    .spawn();
    let hostile = [
        "garbage".to_string(),
        "{\"op\": \"map\"}".to_string(),
        "{\"op\": \"map\", \"nest\": 42}".to_string(),
        "{\"op\": \"map\", \"nest\": \"nest x\\nbroken\"}".to_string(),
        "{\"op\": \"map\", \"nest\": \"\", \"mesh\": [0, 0]}".to_string(),
        "{\"op\": \"map\", \"nest\": \"\", \"mesh\": \"big\"}".to_string(),
        "{\"op\": \"map\", \"nest\": \"\", \"mode\": \"warp\"}".to_string(),
        "{\"op\": \"map\", \"nest\": \"\", \"m\": 3}".to_string(),
        "{\"op\": \"teleport\"}".to_string(),
        "{\"no_op\": true}".to_string(),
        "{\"op\": \"map\", \"op\": \"map\"}".to_string(),
        "[\"not\", \"an\", \"object\"]".to_string(),
        "null".to_string(),
        "{\"op\": \"map_batch\", \"nests\": []}".to_string(),
        "{\"op\": \"map_batch\", \"nests\": [7]}".to_string(),
        format!("{{\"op\": \"map\", \"nest\": \"{}\"}}", "y".repeat(8000)),
    ];
    let mut rejected = 0usize;
    for line in &hostile {
        // One connection per hostile line: oversized lines close theirs.
        let mut c = Client::connect(&handle);
        let resp = c.request(line);
        assert_eq!(
            resp.get("ok"),
            Some(&JsonValue::Bool(false)),
            "GATE: hostile line must be rejected structurally: {line:?} -> {resp:?}"
        );
        assert!(
            resp.get("error").and_then(|e| e.get("code")).is_some(),
            "error must carry a code: {resp:?}"
        );
        rejected += 1;
    }
    let mut client = Client::connect(&handle);
    let pong = client.request("{\"op\": \"ping\"}");
    assert_eq!(
        pong.get("ok"),
        Some(&JsonValue::Bool(true)),
        "server must survive the hostile corpus"
    );
    let panics = stat(&mut client, "panics_absorbed");
    assert_eq!(panics, 0, "GATE: zero panics absorbed on malformed corpus");
    eprintln!(
        "  {rejected}/{} hostile lines rejected, {panics} panics",
        hostile.len()
    );
    handle.stop().expect("drain");

    // --- deadlines: expired requests cancelled and reported ---
    eprintln!("deadline: expired requests must cancel, not compute");
    let handle = Server::bind(ServerConfig::default()).expect("bind").spawn();
    let mut client = Client::connect(&handle);
    let deadline_corpus = corpus(4);
    let mut cancelled = 0usize;
    for (i, nest) in deadline_corpus.iter().enumerate() {
        let nest_json = JsonValue::Str(nest.clone()).render();
        let req =
            format!("{{\"id\": {i}, \"op\": \"map\", \"nest\": {nest_json}, \"deadline_ms\": 0}}");
        let resp = client.request(&req);
        assert_eq!(
            resp.get("ok"),
            Some(&JsonValue::Bool(false)),
            "GATE: zero-deadline request must not succeed: {resp:?}"
        );
        let err = resp.get("error").expect("structured error");
        assert_eq!(
            err.get("code").and_then(JsonValue::as_str),
            Some("deadline"),
            "GATE: cancelled request must report the deadline code: {resp:?}"
        );
        assert_eq!(err.get("exit_code").and_then(JsonValue::as_i64), Some(6));
        cancelled += 1;
    }
    let reported = stat(&mut client, "deadline_cancelled");
    assert_eq!(
        reported as usize, cancelled,
        "GATE: every cancellation must be reported in stats"
    );
    // A generous deadline on the same corpus still completes.
    let nest_json = JsonValue::Str(deadline_corpus[0].clone()).render();
    let ok = client.request(&format!(
        "{{\"op\": \"map\", \"nest\": {nest_json}, \"deadline_ms\": 60000}}"
    ));
    assert_eq!(ok.get("ok"), Some(&JsonValue::Bool(true)), "{ok:?}");
    eprintln!("  {cancelled} cancelled + reported, generous deadline still serves");
    handle.stop().expect("drain");

    let mut doc = JsonDoc::new();
    doc.field("bench", "service")
        .field("smoke", smoke)
        .field("corpus", n_corpus)
        .field("warm_rounds", warm_rounds)
        .field("cold_ns_per_corpus", cold_ns)
        .field("warm_ns_per_corpus", warm_ns)
        .field("warm_speedup", fixed(speedup, 2))
        .field("warm_speedup_gate", 3u64)
        .field("snapshot_entries_restored", restored)
        .field("snapshot_replays_byte_identical", verified)
        .field("hostile_lines", hostile.len())
        .field("hostile_rejected_structurally", rejected)
        .field("panics_absorbed", panics)
        .field("deadline_cancelled", cancelled)
        .field(
            "gates",
            Val::from(
                "warm>=3x_cold; snapshot_byte_identical; zero_panics_malformed; \
                 deadline_cancelled_and_reported",
            ),
        );
    doc.write(&out);
}
