//! Regenerate the **§7.2 comparison** on Example 5: the locality-first
//! two-step heuristic vs Platonoff's macro-first strategy.
//!
//! ```text
//! cargo run -p rescomm-bench --bin example5
//! ```

use rescomm_bench::example5;

fn main() {
    println!("§7.2 — Example 5: a[t,i,j,k] = b[t,i,j], t sequential, m = 2\n");
    println!(
        "{:>4} {:>22} {:>26} {:>18}",
        "n", "ours: non-local", "Platonoff: non-local", "kept broadcast?"
    );
    for n in [2i64, 4, 8, 16] {
        let row = example5(n);
        println!(
            "{:>4} {:>22} {:>26} {:>18}",
            row.n, row.ours_nonlocal, row.platonoff_nonlocal, row.platonoff_macro
        );
    }
    println!("\npaper's claim: locality-first finds a communication-free mapping,");
    println!("macro-first keeps n broadcasts (one per timestep).");
}
