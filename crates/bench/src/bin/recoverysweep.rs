//! Checkpoint/restart sweep over the mesh scheduler with permanent node
//! deaths; writes `BENCH_recovery.json` with wall-clock-inflation and
//! lost-work curves.
//!
//! Three sections:
//!
//! * **MTTF sweep** — node deaths injected at a fixed mean-time-to-failure
//!   (as a fraction of the healthy makespan), recovered via rollback to
//!   the newest usable checkpoint and survivor folding. At every point the
//!   run asserts exactly-once recovery (`detected == deaths`, every
//!   message delivered, zero black holes) and bit-exact determinism.
//! * **checkpoint-interval sweep** — a fixed death plan under intervals
//!   from every-phase to almost-never: more checkpoints mean more
//!   overhead but strictly less lost work on rollback.
//! * **zero-death gate** — a death-free plan through the recovering
//!   driver must be bit-identical to the unfaulted scheduler: no
//!   rollbacks, no folds, same makespan.
//!
//! ```text
//! cargo run --release -p rescomm-bench --bin recoverysweep [--quick] [--out PATH]
//! ```
//!
//! Every MTTF point is evaluated through both the per-call oracle and
//! the compiled batch engine ([`rescomm_machine::FaultSim`]), which must
//! agree bit for bit, and carries Monte Carlo statistics over
//! [`rescomm_machine::replication_seed`]-derived replications computed
//! with [`rescomm_machine::par_recovery_sweep`] (replication 0 **is**
//! the classic run; the parallel sweep is asserted bit-identical to a
//! serial one).
//!
//! `--quick` (alias `--smoke`) shrinks the workload for the CI smoke job;
//! the invariants checked are identical.

use rescomm_bench::json::{fixed, raw, JsonDoc, Val};
use rescomm_machine::{
    mttf_death_schedule, par_recovery_sweep, CheckpointPolicy, CostModel, FaultPlan, FaultSim,
    Mesh2D, PMsg, PhaseSim, SchedulePolicy, XorShift64,
};

/// Deterministic synthetic phase set on `nodes` processors.
fn synth_phases(nodes: usize, n_phases: usize, per_phase: usize, seed: u64) -> Vec<Vec<PMsg>> {
    let mut rng = XorShift64::new(seed);
    (0..n_phases)
        .map(|_| {
            (0..per_phase)
                .map(|_| PMsg {
                    src: rng.below(nodes as u64) as usize,
                    dst: rng.below(nodes as u64) as usize,
                    bytes: 1 + rng.below(2048),
                })
                .collect()
        })
        .collect()
}

struct MttfRow {
    mttf_pct: u32,
    deaths: usize,
    wall_clock_ns: u64,
    inflation: f64,
    lost_work_ns: u64,
    lost_work_fraction: f64,
    rollbacks: usize,
    replayed_phases: usize,
    checkpoint_overhead_ns: u64,
    // Monte Carlo statistics over the replications (appended after the
    // classic single-seed columns so the artifact stays diffable).
    mc_wall_clock_mean: f64,
    mc_wall_clock_std: f64,
    mc_inflation: f64,
    mc_rollbacks_total: u64,
}

struct IntervalRow {
    interval: usize,
    checkpoints: usize,
    checkpoint_overhead_ns: u64,
    lost_work_ns: u64,
    wall_clock_ns: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "--smoke");
    let out = args
        .iter()
        .skip_while(|a| *a != "--out")
        .nth(1)
        .cloned()
        .unwrap_or_else(|| "BENCH_recovery.json".into());

    let mesh = Mesh2D::new(8, 4, CostModel::paragon());
    let mut sim = PhaseSim::new(mesh.clone());
    let (n_phases, per_phase) = if quick { (8, 24) } else { (24, 48) };
    let phases = synth_phases(mesh.nodes(), n_phases, per_phase, 0x4ec0);
    let healthy = mesh.simulate_phases(&phases);
    let policy = CheckpointPolicy::default();
    // This artifact tracks the historical phased-barrier path; the
    // overlapped/adaptive schedules are gated in `faultsched`. The
    // policy is recorded in every row so the artifacts stay comparable.
    let sched = SchedulePolicy::default();

    // Zero-death gate first: the recovering driver on a death-free plan
    // must match the unfaulted scheduler bit for bit.
    let zero = sim.simulate_phases_recovering(&phases, &FaultPlan::none(), &policy);
    assert_eq!(zero.makespan, healthy, "zero-death run must be identical");
    assert_eq!(zero.delivered, zero.messages);
    assert_eq!(zero.recovery.rollbacks, 0);
    assert_eq!(zero.recovery.folded_nodes, 0);
    eprintln!("zero-death gate: makespan {} ns == healthy", zero.makespan);

    let replications = if quick { 8usize } else { 32 };
    let threads = rescomm_bench::workload::host_threads().max(1);
    eprintln!(
        "mttf sweep: 8x4 mesh, {n_phases} phases x {per_phase} msgs, {replications} replications"
    );
    let points = [10u32, 20, 40, 80];
    let plans: Vec<FaultPlan> = points
        .iter()
        .map(|&mttf_pct| {
            let mttf_ns = healthy * u64::from(mttf_pct) / 100;
            FaultPlan {
                seed: 42,
                node_deaths: mttf_death_schedule(mesh.nodes(), mttf_ns, healthy, 0xdead),
                detection_latency: 5_000,
                ..FaultPlan::none()
            }
        })
        .collect();
    let stats = par_recovery_sweep(
        &mesh,
        &phases,
        &plans,
        &policy,
        replications,
        threads,
        sched,
    );
    // Parallel-determinism gate: the sweep must not depend on the
    // thread count.
    assert_eq!(
        stats,
        par_recovery_sweep(&mesh, &phases, &plans, &policy, replications, 1, sched),
        "parallel recovery sweep diverged from serial"
    );

    let mut engine = FaultSim::new(&mesh, &phases, &plans[0]);
    let mut mttf_rows = Vec::new();
    for ((&mttf_pct, plan), st) in points.iter().zip(&plans).zip(&stats) {
        // The classic single-seed run through the per-call oracle …
        let rep = sim.simulate_phases_recovering(&phases, plan, &policy);
        // … must be reproduced bit for bit by the compiled engine
        // (replication 0's seed is the plan's own seed).
        engine.set_plan(plan);
        assert_eq!(
            engine.run_recovering(&policy, plan.seed, sched),
            rep,
            "compiled engine diverged from the oracle at mttf={mttf_pct}%"
        );
        // Exactly-once gate: every death detected and recovered exactly
        // once, every message delivered to a live node, nothing lost —
        // across every replication, not just the classic seed.
        assert!(rep.recovery.all_recovered(), "{:?}", rep.recovery);
        assert!(
            rep.recovery.deaths >= 1,
            "mttf={mttf_pct}%: no death struck"
        );
        assert_eq!(rep.recovery.folded_nodes, rep.recovery.detected);
        assert_eq!(rep.delivered, rep.messages, "mttf={mttf_pct}%");
        assert_eq!(rep.black_holes, 0);
        assert_eq!(st.total.delivered, st.total.messages, "mttf={mttf_pct}%");
        assert_eq!(st.total.black_holes, 0);
        assert_eq!(st.total.recovery.folded_nodes, st.total.recovery.detected);
        let wall = rep.wall_clock_ns();
        let inflation = wall as f64 / healthy.max(1) as f64;
        let lost_frac = rep.recovery.lost_work_ns as f64 / wall.max(1) as f64;
        eprintln!(
            "  mttf {mttf_pct:>3}%  deaths {}  wall {wall:>12} ns  x{inflation:.2}  lost {:>5.1}%  rollbacks {}  mc x{:.2}",
            rep.recovery.deaths,
            lost_frac * 100.0,
            rep.recovery.rollbacks,
            st.wall_clock.mean() / healthy.max(1) as f64
        );
        mttf_rows.push(MttfRow {
            mttf_pct,
            deaths: rep.recovery.deaths,
            wall_clock_ns: wall,
            inflation,
            lost_work_ns: rep.recovery.lost_work_ns,
            lost_work_fraction: lost_frac,
            rollbacks: rep.recovery.rollbacks,
            replayed_phases: rep.recovery.replayed_phases,
            checkpoint_overhead_ns: rep.recovery.checkpoint_overhead_ns,
            mc_wall_clock_mean: st.wall_clock.mean(),
            mc_wall_clock_std: st.wall_clock.std_dev(),
            mc_inflation: st.wall_clock.mean() / healthy.max(1) as f64,
            mc_rollbacks_total: st.total.recovery.rollbacks as u64,
        });
    }

    eprintln!("checkpoint-interval sweep: fixed death plan");
    let fixed_plan = FaultPlan {
        seed: 42,
        node_deaths: mttf_death_schedule(mesh.nodes(), healthy / 4, healthy, 0xdead),
        detection_latency: 5_000,
        ..FaultPlan::none()
    };
    let mut interval_rows = Vec::new();
    for interval in [1usize, 2, 4, 8, 16] {
        let p = CheckpointPolicy {
            interval,
            ring: 32,
            ..CheckpointPolicy::default()
        };
        let rep = sim.simulate_phases_recovering(&phases, &fixed_plan, &p);
        assert!(rep.recovery.all_recovered(), "interval={interval}");
        assert_eq!(rep.delivered, rep.messages);
        eprintln!(
            "  interval {interval:>2}  checkpoints {:>3}  overhead {:>9} ns  lost {:>10} ns",
            rep.recovery.checkpoints,
            rep.recovery.checkpoint_overhead_ns,
            rep.recovery.lost_work_ns
        );
        interval_rows.push(IntervalRow {
            interval,
            checkpoints: rep.recovery.checkpoints,
            checkpoint_overhead_ns: rep.recovery.checkpoint_overhead_ns,
            lost_work_ns: rep.recovery.lost_work_ns,
            wall_clock_ns: rep.wall_clock_ns(),
        });
    }
    // Tighter checkpointing must not lose more work than sparser.
    for w in interval_rows.windows(2) {
        assert!(
            w[0].lost_work_ns <= w[1].lost_work_ns,
            "lost work must grow with the checkpoint interval"
        );
        assert!(w[0].checkpoints >= w[1].checkpoints);
    }

    let mut doc = JsonDoc::new();
    doc.field("bench", "recovery")
        .field("mesh", raw("[8, 4]"))
        .field("phases", n_phases)
        .field("msgs_per_phase", per_phase)
        .field("healthy_makespan_ns", healthy)
        .field("detection_latency_ns", 5000u64)
        .field("replications", replications)
        .field("schedule_policy", sched.label())
        .field("host_threads", rescomm_bench::workload::host_threads());
    let mode_label = sched.healthy_mode().label();
    doc.rows("mttf_sweep", &mttf_rows, |r| {
        vec![
            ("schedule_mode", Val::from(mode_label)),
            ("policy", Val::from(sched.label())),
            ("mttf_pct", Val::from(r.mttf_pct)),
            ("deaths", Val::from(r.deaths)),
            ("wall_clock_ns", Val::from(r.wall_clock_ns)),
            ("inflation", fixed(r.inflation, 3)),
            ("lost_work_ns", Val::from(r.lost_work_ns)),
            ("lost_work_fraction", fixed(r.lost_work_fraction, 4)),
            ("rollbacks", Val::from(r.rollbacks)),
            ("replayed_phases", Val::from(r.replayed_phases)),
            (
                "checkpoint_overhead_ns",
                Val::from(r.checkpoint_overhead_ns),
            ),
            ("mc_wall_clock_mean_ns", fixed(r.mc_wall_clock_mean, 0)),
            ("mc_wall_clock_std_ns", fixed(r.mc_wall_clock_std, 0)),
            ("mc_inflation", fixed(r.mc_inflation, 3)),
            ("mc_rollbacks_total", Val::from(r.mc_rollbacks_total)),
        ]
    });
    doc.rows("interval_sweep", &interval_rows, |r| {
        vec![
            ("schedule_mode", Val::from(mode_label)),
            ("policy", Val::from(sched.label())),
            ("interval", Val::from(r.interval)),
            ("checkpoints", Val::from(r.checkpoints)),
            (
                "checkpoint_overhead_ns",
                Val::from(r.checkpoint_overhead_ns),
            ),
            ("lost_work_ns", Val::from(r.lost_work_ns)),
            ("wall_clock_ns", Val::from(r.wall_clock_ns)),
        ]
    });
    doc.write(&out);
}
