//! Phased vs. overlapped execution of multi-phase communication plans,
//! written as a machine-readable baseline to `BENCH_schedule.json`.
//!
//! Workloads are the kernel-zoo decompositions (each unimodular dataflow
//! matrix decomposed into its unirow factor chain, one affine phase per
//! factor, folded through the closed segment algebra) and the paper's
//! motivating-example plan in closed form, at virtual grids 64² through
//! 8192² on the 8×4 mesh. For every row the bin reports the *simulated*
//! makespan under [`ScheduleMode::Phased`] (strict barriers, the
//! historical engine), the default overlapped mode, and the
//! longest-route-first heuristic — all deterministic quantities, so the
//! committed artifact is byte-stable across hosts.
//!
//! ```text
//! cargo run --release -p rescomm-bench --bin schedule_baseline [--out PATH] [--smoke]
//! ```
//!
//! `--smoke` runs the gates only (small grids, no artifact).
//!
//! Gates (checked in both modes, before anything is written):
//!
//! * (a) overlapped ≤ phased on **every** row — the default order keeps
//!   the phased processing order, so this is structural, and the gate
//!   proves the implementation didn't break the structure;
//! * (b) ≥15% makespan reduction on at least one multi-factor kernel-zoo
//!   decomposition — overlap must actually buy something where phases
//!   pipeline;
//! * (c) `Phased` bit-identity with the pre-change simulator
//!   ([`Mesh2D::simulate_phases`]) on every row;
//! * (d) cached replay ([`PhaseSim::run_cached_phases`]) bit-identical
//!   to direct simulation under every mode.

use rescomm::substrate::loopnest::examples;
use rescomm::{build_plan_closed, map_nest, MappingOptions};
use rescomm_bench::json::{fixed, raw, JsonDoc, Val};
use rescomm_bench::workload::host_threads;
use rescomm_decompose::decompose_general;
use rescomm_distribution::{fold_affine, Dist1D, Dist2D};
use rescomm_intlin::IMat;
use rescomm_machine::{CachedPhase, CostModel, Mesh2D, OverlapOrder, PMsg, PhaseSim, ScheduleMode};

/// A named multi-phase workload: already folded to physical messages.
struct Workload {
    name: String,
    /// Number of affine factors (phases) for zoo entries; plan phase
    /// count for the paper plan.
    factors: usize,
    /// True for kernel-zoo decompositions with ≥2 factors — the rows
    /// gate (b) quantifies over.
    multi_factor: bool,
    phases: Vec<Vec<PMsg>>,
}

/// The kernel zoo of `simulator_baseline`, decomposed into unirow factor
/// chains — each factor is one grid-wide affine sweep, applied right to
/// left exactly as `build_plan_closed` orders a decomposition.
fn zoo() -> Vec<(&'static str, IMat)> {
    let m = |rows: &[&[i64]]| IMat::from_rows(rows);
    vec![
        ("U(3)", m(&[&[1, 3], &[0, 1]])),
        ("L(2)", m(&[&[1, 0], &[2, 1]])),
        ("U(-2)", m(&[&[1, -2], &[0, 1]])),
        ("coupled[[1,3],[2,7]]", m(&[&[1, 3], &[2, 7]])),
        ("fib[[1,1],[1,2]]", m(&[&[1, 1], &[1, 2]])),
        ("rot90", m(&[&[0, -1], &[1, 0]])),
        ("swap", m(&[&[0, 1], &[1, 0]])),
    ]
}

fn fold_factor_chain(
    factors: &[IMat],
    mesh: &Mesh2D,
    dist: Dist2D,
    side: usize,
    bytes: u64,
) -> Vec<Vec<PMsg>> {
    factors
        .iter()
        .rev()
        .map(|t| {
            let folded = fold_affine(t, (0, 0), dist, (side, side), (mesh.px, mesh.py), bytes);
            folded
                .msgs
                .iter()
                .map(|m| PMsg {
                    src: mesh.node_id(m.src.0, m.src.1),
                    dst: mesh.node_id(m.dst.0, m.dst.1),
                    bytes: m.bytes,
                })
                .collect()
        })
        .collect()
}

fn workloads(mesh: &Mesh2D, dist: Dist2D, side: usize, bytes: u64) -> Vec<Workload> {
    let mut out = Vec::new();
    for (name, t) in zoo() {
        let factors: Vec<IMat> = decompose_general(&t)
            .expect("zoo matrices are unimodular")
            .iter()
            .map(|f| f.to_mat(2))
            .collect();
        out.push(Workload {
            name: name.to_string(),
            factors: factors.len(),
            multi_factor: factors.len() >= 2,
            phases: fold_factor_chain(&factors, mesh, dist, side, bytes),
        });
    }
    // The paper plan: the motivating example in closed (affine) form.
    let (nest, _) = examples::motivating_example(6, 2);
    let mapping = map_nest(&nest, &MappingOptions::new(2)).expect("motivating example maps");
    let plan = build_plan_closed(&nest, &mapping);
    out.push(Workload {
        name: "paper_plan".to_string(),
        factors: plan.phases.len(),
        multi_factor: false,
        phases: plan.phases_on_mesh(mesh, dist, (side, side), bytes),
    });
    out
}

struct Row {
    workload: String,
    side: usize,
    factors: usize,
    multi_factor: bool,
    messages: usize,
    phased_ns: u64,
    overlapped_ns: u64,
    longest_ns: u64,
}

impl Row {
    fn reduction_pct(&self) -> f64 {
        if self.phased_ns == 0 {
            return 0.0;
        }
        100.0 * (self.phased_ns - self.overlapped_ns) as f64 / self.phased_ns as f64
    }

    fn longest_reduction_pct(&self) -> f64 {
        if self.phased_ns == 0 {
            return 0.0;
        }
        100.0 * (self.phased_ns as f64 - self.longest_ns as f64) / self.phased_ns as f64
    }
}

/// Simulate one workload under all modes and run gates (a), (c), (d).
fn measure(mesh: &Mesh2D, sim: &mut PhaseSim, w: &Workload, side: usize) -> Row {
    // Gate (c): `Phased` is bit-identical to the pre-change simulator.
    let oracle = mesh.simulate_phases(&w.phases);
    let phased = sim.simulate_phases_mode(&w.phases, ScheduleMode::Phased);
    assert_eq!(
        phased, oracle,
        "{} at {side}²: Phased diverged from Mesh2D::simulate_phases",
        w.name
    );
    let overlapped = sim.simulate_phases_mode(&w.phases, ScheduleMode::overlapped());
    let longest = sim.simulate_phases_mode(
        &w.phases,
        ScheduleMode::Overlapped(OverlapOrder::LongestFirst),
    );
    // Gate (a): relaxing barriers in the default order never loses.
    assert!(
        overlapped <= phased,
        "{} at {side}²: overlapped {overlapped} > phased {phased}",
        w.name
    );
    // Gate (d): the cached-replay path reproduces every mode exactly.
    let cached: Vec<CachedPhase> = w.phases.iter().map(|p| CachedPhase::new(mesh, p)).collect();
    for (mode, want) in [
        (ScheduleMode::Phased, phased),
        (ScheduleMode::overlapped(), overlapped),
        (
            ScheduleMode::Overlapped(OverlapOrder::LongestFirst),
            longest,
        ),
    ] {
        assert_eq!(
            sim.run_cached_phases(&cached, mode, 1),
            want,
            "{} at {side}²: cached replay diverged under {mode:?}",
            w.name
        );
    }
    Row {
        workload: w.name.clone(),
        side,
        factors: w.factors,
        multi_factor: w.multi_factor,
        messages: w.phases.iter().map(Vec::len).sum(),
        phased_ns: phased,
        overlapped_ns: overlapped,
        longest_ns: longest,
    }
}

/// Gate (b): at least one multi-factor zoo decomposition must pipeline
/// ≥15% of its phased makespan away.
fn gate_multi_factor_win(rows: &[Row]) {
    let best = rows
        .iter()
        .filter(|r| r.multi_factor)
        .map(|r| (r.reduction_pct(), r.workload.clone(), r.side))
        .max_by(|a, b| a.0.total_cmp(&b.0))
        .expect("no multi-factor rows");
    assert!(
        best.0 >= 15.0,
        "best multi-factor overlap win is {:.1}% ({} at {}²) — gate: ≥15%",
        best.0,
        best.1,
        best.2
    );
    eprintln!(
        "gates ok: overlapped ≤ phased everywhere; best multi-factor win {:.1}% ({} at {}²)",
        best.0, best.1, best.2
    );
}

fn main() {
    let mut out = "BENCH_schedule.json".to_string();
    let mut smoke = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = it.next().expect("--out needs a path"),
            "--smoke" => smoke = true,
            other => panic!("unknown argument {other:?}"),
        }
    }

    let dist = Dist2D {
        rows: Dist1D::Grouped(3),
        cols: Dist1D::Block,
    };
    let bytes = 64u64;
    let mesh = Mesh2D::new(8, 4, CostModel::paragon());
    let mut sim = PhaseSim::new(mesh.clone());

    let sides: &[usize] = if smoke {
        &[48, 64]
    } else {
        &[64, 256, 1024, 4096, 8192]
    };

    let mut rows = Vec::new();
    eprintln!("schedule: phased vs overlapped, grouped(3)×block on 8×4");
    for &side in sides {
        for w in workloads(&mesh, dist, side, bytes) {
            let row = measure(&mesh, &mut sim, &w, side);
            eprintln!(
                "  {:<22} {side:>4}²  {} phases  phased {:>12} ns   overlapped {:>12} ns (−{:.1}%)   longest-first {:>12} ns (−{:.1}%)",
                row.workload,
                row.factors,
                row.phased_ns,
                row.overlapped_ns,
                row.reduction_pct(),
                row.longest_ns,
                row.longest_reduction_pct(),
            );
            rows.push(row);
        }
    }
    gate_multi_factor_win(&rows);

    if smoke {
        eprintln!("smoke ok: {} rows gated, no artifact written", rows.len());
        return;
    }

    let mut doc = JsonDoc::new();
    doc.field("bench", "schedule")
        .field("mesh", raw("[8, 4]"))
        .field("dist", "grouped(3) x block")
        .field("elem_bytes", bytes)
        .field("host_threads", host_threads());
    doc.rows("schedule", &rows, |r| {
        vec![
            ("workload", Val::from(r.workload.as_str())),
            ("grid", Val::from(format!("{0}x{0}", r.side))),
            ("phases", Val::from(r.factors)),
            ("multi_factor", Val::from(r.multi_factor)),
            ("messages", Val::from(r.messages)),
            ("phased_makespan_ns", Val::from(r.phased_ns)),
            ("overlapped_makespan_ns", Val::from(r.overlapped_ns)),
            ("longest_first_makespan_ns", Val::from(r.longest_ns)),
            ("overlap_reduction_pct", fixed(r.reduction_pct(), 2)),
            (
                "longest_first_reduction_pct",
                fixed(r.longest_reduction_pct(), 2),
            ),
        ]
    });
    doc.write(&out);
}
