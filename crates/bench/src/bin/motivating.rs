//! Regenerate the **§2 motivating example** end to end: access graph,
//! maximum branching, mapping report, and estimated mesh cost per
//! strategy (Figures 1–3 in structural form).
//!
//! ```text
//! cargo run -p rescomm-bench --bin motivating
//! ```

use rescomm::substrate::accessgraph::{maximum_branching, AccessGraph};
use rescomm::{map_nest, MappingOptions};
use rescomm_bench::motivating;
use rescomm_loopnest::examples::motivating_example;

fn main() {
    let (nest, _) = motivating_example(8, 4);
    println!("{nest}");

    let graph = AccessGraph::build(&nest, 2);
    println!("{graph}");
    let b = maximum_branching(&graph);
    println!(
        "maximum branching: {} edges, total weight {} (both weight-3 edges zeroed)",
        b.edges.len(),
        b.total_weight
    );
    for e in &b.edges {
        let ed = &graph.edges[e.0];
        println!("  {:?} -> {:?} via access {:?}", ed.from, ed.to, ed.access);
    }
    println!();

    let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
    println!("{}", mapping.report(&nest));

    println!("strategy comparison (estimated communication time, 8×4 mesh, 256 B):");
    println!(
        "{:>32} {:>7} {:>7} {:>11} {:>9} {:>14}",
        "strategy", "local", "macro", "decomposed", "general", "est. time (ns)"
    );
    for row in motivating(256) {
        println!(
            "{:>32} {:>7} {:>7} {:>11} {:>9} {:>14}",
            row.strategy, row.counts[0], row.counts[1], row.counts[2], row.counts[3], row.est_time
        );
    }
}
