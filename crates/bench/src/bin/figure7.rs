//! Regenerate **Figures 6 and 7**: the grouped-partition layouts.
//!
//! ```text
//! cargo run -p rescomm-bench --bin figure7
//! ```

use rescomm_bench::figure7_layout;

fn main() {
    println!("Figure 6 — U = [[1,3],[0,1]]: 12 virtual processors per row,");
    println!("3 classes, mapped onto P = 4 physical processors:\n");
    println!("{}\n", figure7_layout(12, 3, 4));

    println!("Figure 7 — T = L(2)·U(3): 2-D grouped partition of a 10×6");
    println!("virtual grid onto physical processors (rows grouped with k=3,");
    println!("columns grouped with k=2):\n");
    println!("row axis (k = 3, 10 virtuals, P = 5):");
    println!("{}\n", figure7_layout(10, 3, 5));
    println!("column axis (k = 2, 6 virtuals, Q = 3):");
    println!("{}", figure7_layout(6, 2, 3));
}
