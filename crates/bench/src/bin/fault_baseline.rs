//! Measure the compiled fault engine against the per-call oracles and
//! write a machine-readable baseline to `BENCH_faultperf.json` so later
//! PRs can track the perf trajectory.
//!
//! Workload: the paper's motivating example mapped by the full pipeline,
//! folded onto an 8×4 Paragon mesh (the same plan the CLI and the paper
//! tables use), under a fault plan with two link-outage windows, one
//! node outage, 20% message drop, 2% duplication and the default retry
//! policy — every fault mechanism the transport has is in force.
//!
//! Three sections:
//!
//! * **replay** — multi-seed faulty Monte Carlo: the per-call oracle
//!   loop (`simulate_phases_faulty` once per seed, linear outage scans,
//!   per-call filter+sort+route walks) vs the compiled batch engine
//!   ([`FaultSim::replay_faulty`]: plan compiled to sorted interval
//!   buckets, phases compiled once to flat route slices). Full-mode
//!   rows at ≥64 replications assert the compiled engine is ≥5×.
//! * **recovering** — the same comparison through the
//!   checkpoint/rollback path with permanent node deaths.
//! * **parallel** — [`par_fault_sweep`] wall-clock at 1..8 threads over
//!   a bank of plans on the shared work-stealing pool (plan×seed task
//!   sharding; see `machine::pool` and `BENCH_scaling.json` for the
//!   dedicated scaling study); reports speedup over one thread and
//!   efficiency against `workers_used` (the pool's post-clamp worker
//!   count). Rows asking for more workers than the host has hardware
//!   threads are marked `oversubscribed` in the artifact and excluded
//!   from the efficiency gate; on a single-core host the multi-thread
//!   rows are skipped outright (emitted with `skipped: true` and null
//!   timings) — timing them would measure the OS scheduler, not the
//!   sweep. The thread-count bit-identity gate runs on every host.
//!
//! ```text
//! cargo run --release -p rescomm-bench --bin fault_baseline [--smoke] [--out PATH]
//! ```
//!
//! Every timed pair is first checked for **bit-identity** (full
//! [`rescomm_machine::FaultReport`] per seed) and the parallel sweep for
//! thread-count independence, so the numbers can't drift from a wrong
//! answer going fast. `--smoke` shrinks the replication counts for the
//! CI job and skips the wall-clock-dependent speedup floors (CI boxes
//! are noisy); the identity gates are unchanged.

use rescomm::{build_plan, map_nest, MappingOptions};
use rescomm_bench::json::{fixed, raw, JsonDoc, Val};
use rescomm_bench::workload::host_threads;
use rescomm_distribution::{Dist1D, Dist2D};
use rescomm_loopnest::examples;
use rescomm_machine::{
    mttf_death_schedule, par_fault_sweep, par_fault_sweep_report, replication_seed,
    CheckpointPolicy, CostModel, FaultPlan, FaultReport, FaultSim, LinkOutage, Mesh2D, NodeOutage,
    PMsg, PhaseSim, RetryPolicy, ScheduleMode, SchedulePolicy,
};
use std::hint::black_box;
use std::time::Instant;

/// Median of `reps` timed runs of `f`, in nanoseconds.
fn median_ns<R>(reps: usize, mut f: impl FnMut() -> R) -> u64 {
    black_box(f()); // warm up
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(f());
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct ReplayRow {
    replications: usize,
    oracle_ns: u64,
    compiled_ns: u64,
}

struct ParRow {
    threads: usize,
    /// Workers the pool actually used (after clamping to the task
    /// count) — efficiency is computed against this, not the request.
    workers: usize,
    /// `None` when the row was skipped (multi-thread sweep on a
    /// single-core host — there is nothing meaningful to time).
    wall_ns: Option<u64>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--quick");
    let out = args
        .iter()
        .skip_while(|a| *a != "--out")
        .nth(1)
        .cloned()
        .unwrap_or_else(|| "BENCH_faultperf.json".into());

    // The paper plan: motivating example through the full mapping
    // pipeline, folded onto the 8×4 Paragon mesh.
    let (nest, _) = examples::motivating_example(6, 2);
    let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
    let mesh = Mesh2D::new(8, 4, CostModel::paragon());
    let dist = Dist2D::uniform(Dist1D::Cyclic);
    let phases: Vec<Vec<PMsg>> =
        build_plan(&nest, &mapping).phases_on_mesh(&mesh, dist, (24, 24), 64);
    let messages: usize = phases.iter().map(Vec::len).sum();
    let healthy = mesh.simulate_phases(&phases);

    // Every fault mechanism in force: a dense outage schedule (48 link
    // windows and 6 node windows — the per-call oracle scans the whole
    // list per link per attempt, the compiled plan binary-searches its
    // per-link buckets), drop, duplication and retries. The first two
    // link windows and the node-13 window are the faultsweep harness's
    // fixed outages; the rest are seeded.
    let mut fault_rng = rescomm_machine::XorShift64::new(0xfa17_babe);
    let mut link_outages = vec![
        LinkOutage {
            link: mesh.h_link(2, 3, true).index(),
            from: 0,
            until: 400_000,
        },
        LinkOutage {
            link: mesh.v_link(5, 1, false).index(),
            from: 100_000,
            until: 600_000,
        },
    ];
    for _ in 0..46 {
        let from = fault_rng.below(600_000);
        link_outages.push(LinkOutage {
            link: fault_rng.below(mesh.link_count() as u64) as usize,
            from,
            until: from + 50_000 + fault_rng.below(200_000),
        });
    }
    let mut node_outages = vec![NodeOutage {
        node: 13,
        from: 0,
        until: 250_000,
    }];
    for _ in 0..5 {
        let from = fault_rng.below(400_000);
        node_outages.push(NodeOutage {
            node: fault_rng.below(mesh.nodes() as u64) as usize,
            from,
            until: from + 30_000 + fault_rng.below(100_000),
        });
    }
    let plan = FaultPlan {
        seed: 42,
        drop_prob: 0.2,
        dup_prob: 0.02,
        link_outages,
        node_outages,
        retry: RetryPolicy::default(),
        ..FaultPlan::none()
    };

    let rep_counts: &[usize] = if smoke { &[4, 8] } else { &[16, 64, 256] };
    let timing_reps = if smoke { 3 } else { 7 };
    // The timed sections track the historical phased-barrier path; the
    // overlapped schedules get their own identity gates below and their
    // own artifact (`faultsched`).
    let sched = SchedulePolicy::default();

    eprintln!(
        "replay: paper plan on 8x4 mesh, {} phases, {messages} messages, drop 0.20 dup 0.02",
        phases.len()
    );
    let mut engine = FaultSim::new(&mesh, &phases, &plan);
    let mut oracle = PhaseSim::new(mesh.clone());
    let oracle_run = |sim: &mut PhaseSim, seeds: &[u64]| -> Vec<FaultReport> {
        seeds
            .iter()
            .map(|&seed| {
                sim.simulate_phases_faulty(
                    &phases,
                    &FaultPlan {
                        seed,
                        ..plan.clone()
                    },
                )
            })
            .collect()
    };
    let mut replay_rows = Vec::new();
    for &n in rep_counts {
        let seeds: Vec<u64> = (0..n)
            .map(|r| replication_seed(plan.seed, r as u64))
            .collect();
        // Bit-identity gate before any timing: every compiled replay must
        // reproduce the oracle's full report, seed for seed.
        assert_eq!(
            engine.replay_faulty(&seeds, sched),
            oracle_run(&mut oracle, &seeds),
            "compiled replay diverged from the oracle at {n} replications"
        );
        let oracle_ns = median_ns(timing_reps, || oracle_run(&mut oracle, &seeds));
        let compiled_ns = median_ns(timing_reps, || engine.replay_faulty(&seeds, sched));
        let speedup = oracle_ns as f64 / compiled_ns.max(1) as f64;
        assert!(speedup > 0.0);
        // Wall-clock floor: the compiled engine has measured 4–6.5x over
        // the oracle across hosts (both sides single-threaded; the ratio
        // swings with the box's memory subsystem and background load, so
        // the floor carries headroom below the worst measurement).
        if !smoke && n >= 64 {
            assert!(
                speedup >= 3.0,
                "compiled replay must be >=3x the oracle at {n} replications, got {speedup:.2}x"
            );
        }
        eprintln!(
            "  {n:>4} replications  oracle {oracle_ns:>12} ns   compiled {compiled_ns:>10} ns   x{speedup:.1}"
        );
        replay_rows.push(ReplayRow {
            replications: n,
            oracle_ns,
            compiled_ns,
        });
    }

    // Overlapped-faulty gate (runs in smoke too): the compiled engine
    // must reproduce the per-call policy oracle bit for bit under the
    // overlapped and adaptive schedules as well.
    let gate_seeds: Vec<u64> = (0..4).map(|r| replication_seed(plan.seed, r)).collect();
    for gate in [
        SchedulePolicy::Fixed(ScheduleMode::overlapped()),
        SchedulePolicy::Adaptive {
            inflation_threshold: 1.5,
        },
    ] {
        let want: Vec<FaultReport> = gate_seeds
            .iter()
            .map(|&seed| {
                oracle.simulate_phases_faulty_policy(
                    &phases,
                    &FaultPlan {
                        seed,
                        ..plan.clone()
                    },
                    gate,
                )
            })
            .collect();
        assert_eq!(
            engine.replay_faulty(&gate_seeds, gate),
            want,
            "compiled overlapped-faulty replay diverged from the oracle under {}",
            gate.label()
        );
        for r in &want {
            assert_eq!(r.delivered, r.messages, "{}", gate.label());
        }
        eprintln!("overlapped-faulty gate ({}): ok", gate.label());
    }

    // Checkpoint/rollback path with permanent deaths on top of the lossy
    // transport.
    let policy = CheckpointPolicy::default();
    let recover_plan = FaultPlan {
        node_deaths: mttf_death_schedule(mesh.nodes(), healthy / 3, healthy, 0xdead),
        detection_latency: 5_000,
        ..plan.clone()
    };
    let n = if smoke { 8usize } else { 64 };
    let seeds: Vec<u64> = (0..n)
        .map(|r| replication_seed(plan.seed, r as u64))
        .collect();
    engine.set_plan(&recover_plan);
    let oracle_recover = |sim: &mut PhaseSim, seeds: &[u64]| -> Vec<FaultReport> {
        seeds
            .iter()
            .map(|&seed| {
                sim.simulate_phases_recovering(
                    &phases,
                    &FaultPlan {
                        seed,
                        ..recover_plan.clone()
                    },
                    &policy,
                )
            })
            .collect()
    };
    assert_eq!(
        engine.replay_recovering(&policy, &seeds, sched),
        oracle_recover(&mut oracle, &seeds),
        "compiled recovering replay diverged from the oracle"
    );
    // Overlapped-recovering gate (runs in smoke too): rollback + replay
    // under the overlapped schedule, compiled vs per-call, exactly once.
    {
        let gate = SchedulePolicy::Fixed(ScheduleMode::overlapped());
        let want: Vec<FaultReport> = gate_seeds
            .iter()
            .map(|&seed| {
                oracle.simulate_phases_recovering_policy(
                    &phases,
                    &FaultPlan {
                        seed,
                        ..recover_plan.clone()
                    },
                    &policy,
                    gate,
                )
            })
            .collect();
        assert_eq!(
            engine.replay_recovering(&policy, &gate_seeds, gate),
            want,
            "compiled overlapped-recovering replay diverged from the oracle"
        );
        for r in &want {
            assert!(r.recovery.all_recovered(), "{:?}", r.recovery);
            assert_eq!(r.delivered, r.messages, "overlapped recovery exactly-once");
        }
        eprintln!("overlapped-recovering gate ({}): ok", gate.label());
    }
    let rec_oracle_ns = median_ns(timing_reps, || oracle_recover(&mut oracle, &seeds));
    let rec_compiled_ns = median_ns(timing_reps, || {
        engine.replay_recovering(&policy, &seeds, sched)
    });
    eprintln!(
        "recovering: {n} replications  oracle {rec_oracle_ns} ns   compiled {rec_compiled_ns} ns   x{:.1}",
        rec_oracle_ns as f64 / rec_compiled_ns.max(1) as f64
    );

    // Parallel efficiency of the Monte Carlo sweep driver: a bank of
    // plans (distinct seeds, same faults), replications per plan.
    let bank: Vec<FaultPlan> = (0..8)
        .map(|i| FaultPlan {
            seed: 42 + i,
            ..plan.clone()
        })
        .collect();
    let par_reps = if smoke { 4 } else { 32 };
    let host = host_threads();
    let serial = par_fault_sweep(&mesh, &phases, &bank, par_reps, 1, sched);
    let mut par_rows = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        // Thread-count-independence gate before timing — on *every*
        // host, including single-core CI (the work-stealing pool still
        // runs real worker threads there; only the timing is
        // meaningless).
        let (swept, report) =
            par_fault_sweep_report(&mesh, &phases, &bank, par_reps, threads, sched);
        assert_eq!(
            swept, serial,
            "parallel sweep diverged from serial at {threads} threads"
        );
        // On a single-core host every multi-thread row is oversubscribed:
        // it times the OS scheduler, not the sweep. Skip those rows
        // outright instead of burning CI minutes on them.
        if threads > 1 && host <= 1 {
            eprintln!("  {threads} threads  skipped (single-core host)");
            par_rows.push(ParRow {
                threads,
                workers: report.workers,
                wall_ns: None,
            });
            continue;
        }
        let wall_ns = median_ns(timing_reps, || {
            par_fault_sweep(&mesh, &phases, &bank, par_reps, threads, sched)
        });
        let speedup = par_rows.first().map_or(1.0, |r: &ParRow| {
            r.wall_ns.unwrap_or(0) as f64 / wall_ns.max(1) as f64
        });
        let oversubscribed = threads > host;
        eprintln!(
            "  {threads} threads ({} used)  wall {wall_ns:>12} ns   x{speedup:.2}   efficiency {:.2}{}",
            report.workers,
            speedup / report.workers.max(1) as f64,
            if oversubscribed {
                "   (oversubscribed)"
            } else {
                ""
            }
        );
        // The efficiency gate only means something when the host can
        // actually run the workers concurrently: oversubscribed rows
        // time the scheduler, not the sweep.
        if !smoke && threads > 1 && !oversubscribed {
            assert!(
                speedup >= 1.1,
                "parallel sweep at {threads} threads on a {host}-thread host \
                 gained only {speedup:.2}x over serial"
            );
        }
        par_rows.push(ParRow {
            threads,
            workers: report.workers,
            wall_ns: Some(wall_ns),
        });
    }

    let t1 = par_rows[0].wall_ns.expect("the 1-thread row always runs");
    let mut doc = JsonDoc::new();
    doc.field("bench", "faultperf")
        .field("mesh", raw("[8, 4]"))
        .field("phases", phases.len())
        .field("messages", messages)
        .field("healthy_makespan_ns", healthy)
        .field("drop_prob", fixed(0.2, 2))
        .field("dup_prob", fixed(0.02, 2))
        .field("host_threads", host)
        .field("schedule_policy", sched.label())
        .field("smoke", smoke);
    let mode_label = sched.healthy_mode().label();
    doc.rows("replay", &replay_rows, |r| {
        vec![
            ("schedule_mode", Val::from(mode_label)),
            ("policy", Val::from(sched.label())),
            ("replications", Val::from(r.replications)),
            ("oracle_ns", Val::from(r.oracle_ns)),
            ("compiled_ns", Val::from(r.compiled_ns)),
            (
                "speedup",
                fixed(r.oracle_ns as f64 / r.compiled_ns.max(1) as f64, 2),
            ),
        ]
    });
    doc.rows("recovering", &[(n, rec_oracle_ns, rec_compiled_ns)], |r| {
        vec![
            ("schedule_mode", Val::from(mode_label)),
            ("policy", Val::from(sched.label())),
            ("replications", Val::from(r.0)),
            ("oracle_ns", Val::from(r.1)),
            ("compiled_ns", Val::from(r.2)),
            ("speedup", fixed(r.1 as f64 / r.2.max(1) as f64, 2)),
        ]
    });
    doc.rows("parallel", &par_rows, |r| {
        let speedup = r.wall_ns.map(|w| t1 as f64 / w.max(1) as f64);
        vec![
            ("schedule_mode", Val::from(mode_label)),
            ("policy", Val::from(sched.label())),
            ("threads", Val::from(r.threads)),
            ("workers_used", Val::from(r.workers)),
            ("plans", Val::from(bank.len())),
            ("replications", Val::from(par_reps)),
            ("wall_ns", r.wall_ns.map_or(raw("null"), Val::from)),
            ("speedup_vs_1", speedup.map_or(raw("null"), |s| fixed(s, 2))),
            (
                "efficiency",
                speedup.map_or(raw("null"), |s| fixed(s / r.workers.max(1) as f64, 2)),
            ),
            ("oversubscribed", Val::from(r.threads > host)),
            ("skipped", Val::from(r.wall_ns.is_none())),
        ]
    });
    doc.write(&out);
}
