//! Regenerate **Figure 8**: ratio of the communication time of a `U(k)`
//! matrix under the standard HPF distributions over the grouped
//! partition, for `k = 1..8`, on three mesh configurations.
//!
//! ```text
//! cargo run -p rescomm-bench --bin figure8 [--bytes N]
//! ```

use rescomm_bench::figure8;

fn main() {
    let bytes = std::env::args()
        .skip_while(|a| a != "--bytes")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256u64);
    for (label, mesh) in [
        ("(a) 4×4 mesh", (4usize, 4usize)),
        ("(b) 8×4 mesh", (8, 4)),
        ("(c) 8×8 mesh", (8, 8)),
    ] {
        println!("Figure 8 {label} — time(scheme)/time(grouped) for U(k), {bytes} B/element");
        println!(
            "{:>3} {:>12} {:>10} {:>10} {:>10}",
            "k", "grouped(ns)", "CYCLIC", "BLOCK", "CYCLIC(2)"
        );
        for r in figure8(mesh, 48, 8, 8, 2, bytes) {
            println!(
                "{:>3} {:>12} {:>10.2} {:>10.2} {:>10.2}",
                r.k, r.grouped, r.cyclic_ratio, r.block_ratio, r.cyclic_block_ratio
            );
        }
        println!();
    }
    println!("paper's qualitative claim: grouped ≥ all standard schemes for k ≥ 2;");
    println!("CYCLIC tracks grouped closely (equal when k is a multiple of P).");
}
