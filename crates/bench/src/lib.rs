//! # rescomm-bench — regenerating every table and figure of the paper
//!
//! Each experiment is a pure function returning structured rows, consumed
//! by (a) the `src/bin/*` harness binaries that print the same rows the
//! paper reports, (b) the Criterion benches, and (c) the integration
//! tests that assert the paper's qualitative claims (who wins, by what
//! rough factor) hold on the simulated machines.
//!
//! | paper artifact | function |
//! |----------------|----------|
//! | Table 1 (CM-5 data-movement ratios)            | [`table1`]   |
//! | Table 2 (decomposing `T = L·U` on the Paragon) | [`table2`]   |
//! | Figure 6/7 (grouped-partition layouts)         | [`figure7_layout`] |
//! | Figure 8 (grouped partition vs HPF schemes)    | [`figure8`]  |
//! | §7.2 Example 5 (ours vs Platonoff)             | [`example5`] |
//! | §2 motivating example end-to-end               | [`motivating`] |
//! | §3.5 message vectorization                     | [`vectorization`] |

pub mod experiments;
pub mod json;
pub mod workload;

pub use experiments::{
    combined, example5, figure7_layout, figure8, motivating, table1, table2, table2_crossover,
    vectorization, CombinedRow, CrossoverRow, Example5Row, Figure8Row, MotivatingRow, Table1Row,
    Table2Row, VectorizationRow,
};
