//! Field-order-stable JSON emission for the benchmark harnesses.
//!
//! Every `src/bin/*` harness writes a committed `BENCH_*.json` artifact
//! whose byte layout is part of the repo's regression surface: top-level
//! scalars first, then named row arrays of flat objects, fields in
//! insertion order, floats at a fixed precision. The emitters used to be
//! hand-rolled per binary; this module is the single shared
//! implementation. [`JsonDoc`] renders exactly that layout:
//!
//! ```text
//! {
//!   "bench": "faults",
//!   "mesh": [8, 4],
//!   "drop_sweep": [
//!     {"drop_pct": 0, "retry": true, "inflation": 1.000},
//!     {"drop_pct": 5, "retry": true, "inflation": 1.413}
//!   ]
//! }
//! ```
//!
//! Field order is **always** insertion order — new columns must be
//! appended after existing ones so downstream diffs of the committed
//! artifacts stay readable.

use std::fmt::Write as _;

/// A JSON value with explicit rendering. Floats carry their precision so
/// the artifact bytes do not depend on default float formatting.
#[derive(Debug, Clone)]
pub enum Val {
    /// An unsigned integer.
    U64(u64),
    /// A boolean.
    Bool(bool),
    /// A string (quoted and escaped on render).
    Str(String),
    /// A float rendered at a fixed number of decimal places.
    Fixed(f64, usize),
    /// Pre-rendered JSON spliced in verbatim (e.g. `[8, 4]`).
    Raw(String),
}

/// Fixed-precision float: `fixed(1.4128, 3)` renders as `1.413`.
pub fn fixed(x: f64, places: usize) -> Val {
    Val::Fixed(x, places)
}

/// Verbatim JSON fragment, e.g. a literal array or nested object.
pub fn raw(json: impl Into<String>) -> Val {
    Val::Raw(json.into())
}

impl From<u64> for Val {
    fn from(x: u64) -> Self {
        Val::U64(x)
    }
}
impl From<u32> for Val {
    fn from(x: u32) -> Self {
        Val::U64(u64::from(x))
    }
}
impl From<usize> for Val {
    fn from(x: usize) -> Self {
        Val::U64(x as u64)
    }
}
impl From<bool> for Val {
    fn from(x: bool) -> Self {
        Val::Bool(x)
    }
}
impl From<&str> for Val {
    fn from(x: &str) -> Self {
        Val::Str(x.to_string())
    }
}
impl From<String> for Val {
    fn from(x: String) -> Self {
        Val::Str(x)
    }
}

fn render_val(out: &mut String, v: &Val) {
    match v {
        Val::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Val::Bool(x) => {
            let _ = write!(out, "{x}");
        }
        Val::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        Val::Fixed(x, p) => {
            let _ = write!(out, "{x:.p$}");
        }
        Val::Raw(s) => out.push_str(s),
    }
}

enum Entry {
    Scalar(Val),
    Array(Vec<Vec<(&'static str, Val)>>),
}

/// An in-order JSON document builder (see the module docs for the exact
/// layout). Keys render in insertion order; [`JsonDoc::finish`] produces
/// the final string including the trailing newline.
#[derive(Default)]
pub struct JsonDoc {
    items: Vec<(&'static str, Entry)>,
}

impl JsonDoc {
    /// Empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a top-level scalar field.
    pub fn field(&mut self, key: &'static str, val: impl Into<Val>) -> &mut Self {
        self.items.push((key, Entry::Scalar(val.into())));
        self
    }

    /// Append a named array of flat row objects; `row` maps each item to
    /// its `(key, value)` columns, rendered in the order returned.
    pub fn rows<T>(
        &mut self,
        key: &'static str,
        items: &[T],
        row: impl Fn(&T) -> Vec<(&'static str, Val)>,
    ) -> &mut Self {
        self.items
            .push((key, Entry::Array(items.iter().map(row).collect())));
        self
    }

    /// Render the document.
    pub fn finish(&self) -> String {
        let mut j = String::from("{\n");
        for (i, (key, entry)) in self.items.iter().enumerate() {
            let _ = write!(j, "  \"{key}\": ");
            match entry {
                Entry::Scalar(v) => render_val(&mut j, v),
                Entry::Array(rows) => {
                    j.push_str("[\n");
                    for (r, fields) in rows.iter().enumerate() {
                        j.push_str("    {");
                        for (f, (k, v)) in fields.iter().enumerate() {
                            if f > 0 {
                                j.push_str(", ");
                            }
                            let _ = write!(j, "\"{k}\": ");
                            render_val(&mut j, v);
                        }
                        j.push('}');
                        j.push_str(if r + 1 < rows.len() { ",\n" } else { "\n" });
                    }
                    j.push_str("  ]");
                }
            }
            j.push_str(if i + 1 < self.items.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        j.push_str("}\n");
        j
    }

    /// Render and write the document to `path`, panicking with a
    /// diagnostic on failure (harness binaries treat I/O errors as
    /// fatal).
    pub fn write(&self, path: &str) {
        std::fs::write(path, self.finish()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_the_committed_artifact_layout() {
        let mut doc = JsonDoc::new();
        doc.field("bench", "faults")
            .field("mesh", raw("[8, 4]"))
            .field("phases", 8u64)
            .field("dup_prob", fixed(0.02, 2));
        doc.rows("drop_sweep", &[(0u32, 1.0f64), (5, 1.4128)], |r| {
            vec![
                ("drop_pct", Val::from(r.0)),
                ("retry", Val::from(true)),
                ("inflation", fixed(r.1, 3)),
            ]
        });
        assert_eq!(
            doc.finish(),
            "{\n  \"bench\": \"faults\",\n  \"mesh\": [8, 4],\n  \"phases\": 8,\n  \
             \"dup_prob\": 0.02,\n  \"drop_sweep\": [\n    \
             {\"drop_pct\": 0, \"retry\": true, \"inflation\": 1.000},\n    \
             {\"drop_pct\": 5, \"retry\": true, \"inflation\": 1.413}\n  ]\n}\n"
        );
    }

    #[test]
    fn last_field_has_no_trailing_comma_and_strings_escape() {
        let mut doc = JsonDoc::new();
        doc.field("name", "a \"b\" \\ c");
        assert_eq!(doc.finish(), "{\n  \"name\": \"a \\\"b\\\" \\\\ c\"\n}\n");
    }

    #[test]
    fn empty_array_renders_flat() {
        let mut doc = JsonDoc::new();
        doc.field("n", 0u64);
        doc.rows("rows", &[] as &[u64], |_| vec![]);
        assert_eq!(doc.finish(), "{\n  \"n\": 0,\n  \"rows\": [\n  ]\n}\n");
    }
}
