//! Stable JSON emission for committed `BENCH_*.json` artifacts.
//!
//! The implementation moved to the bottom-layer `rescomm-json` crate so
//! the machine-layer snapshots and the service protocol can share it;
//! this module re-exports it unchanged for the existing harness bins.

pub use rescomm_json::{fixed, raw, JsonDoc, Val};
