//! Ablation bench: what does each piece of step 2 buy?
//!
//! Compares the estimated end-to-end communication cost of the motivating
//! example on the 8×4 mesh under: the full heuristic, macro-detection
//! only, decomposition only, and step 1 alone — the design choices
//! DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rescomm::{map_nest, MappingOptions};
use rescomm_bench::workload::{mapping_cost_on_mesh, paragon_mesh};
use rescomm_loopnest::examples::motivating_example;
use std::hint::black_box;

fn variants() -> Vec<(&'static str, MappingOptions)> {
    let full = MappingOptions::new(2);
    let mut macro_only = full;
    macro_only.enable_decompose = false;
    macro_only.enable_similarity = false;
    let mut decomp_only = full;
    decomp_only.enable_macro = false;
    vec![
        ("full", full),
        ("macro-only", macro_only),
        ("decompose-only", decomp_only),
        ("step1-only", MappingOptions::step1_only(2)),
    ]
}

fn bench(c: &mut Criterion) {
    let (nest, _) = motivating_example(8, 4);
    let mesh = paragon_mesh();

    eprintln!("\n[Ablation] estimated communication cost, motivating example, 8×4 mesh, 256 B:");
    for (name, opts) in variants() {
        let mapping = map_nest(&nest, &opts).unwrap();
        let cost = mapping_cost_on_mesh(&nest, &mapping, &mesh, (32, 16), 256);
        let r = mapping.report(&nest);
        eprintln!(
            "  {name:>15}: {cost:>10} ns  ({} local, {} macro, {} decomposed, {} general)",
            r.n_local + r.n_translation,
            r.n_macro(),
            r.n_decomposed,
            r.n_general
        );
    }
    eprintln!();

    let mut g = c.benchmark_group("ablation_residual");
    for (name, opts) in variants() {
        g.bench_with_input(BenchmarkId::from_parameter(name), &opts, |b, opts| {
            b.iter(|| {
                let mapping = map_nest(black_box(&nest), opts).unwrap();
                black_box(mapping_cost_on_mesh(&nest, &mapping, &mesh, (32, 16), 256))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
