//! Microbenchmarks of the compiler analysis itself: access-graph
//! construction + Edmonds branching, the full two-step pipeline on the
//! paper's kernels, dataflow decomposition, and the mesh simulator's
//! scheduling loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rescomm::substrate::accessgraph::{maximum_branching, AccessGraph};
use rescomm::{map_nest, MappingOptions};
use rescomm_decompose::decompose_direct;
use rescomm_intlin::{right_hermite, smith_normal_form, IMat};
use rescomm_loopnest::examples;
use rescomm_machine::{CostModel, Mesh2D, PMsg};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("map_nest");
    let cases = [
        ("motivating", examples::motivating_example(8, 4).0),
        ("matmul", examples::matmul(8)),
        ("gauss", examples::gauss_elim(8)),
        ("adi", examples::adi_sweep(8)),
    ];
    for (name, nest) in &cases {
        g.bench_with_input(BenchmarkId::from_parameter(name), nest, |b, nest| {
            b.iter(|| black_box(map_nest(black_box(nest), &MappingOptions::new(2))));
        });
    }
    g.finish();
}

fn bench_graph(c: &mut Criterion) {
    let (nest, _) = examples::motivating_example(8, 4);
    c.bench_function("access_graph_and_branching", |b| {
        b.iter(|| {
            let g = AccessGraph::build(black_box(&nest), 2);
            black_box(maximum_branching(&g))
        });
    });
}

fn bench_decompose(c: &mut Criterion) {
    // A pool of random SL₂(ℤ) matrices.
    let mut seed = 0x1234u64;
    let mut next = move || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(99);
        ((seed >> 33) as i64 % 7) - 3
    };
    let mut pool = Vec::new();
    while pool.len() < 64 {
        let (a, b, cc) = (next(), next(), next());
        if a == 0 {
            continue;
        }
        let num = 1 + b * cc;
        if num % a != 0 {
            continue;
        }
        pool.push(IMat::from_rows(&[&[a, b], &[cc, num / a]]));
    }
    c.bench_function("decompose_direct_sl2", |b| {
        b.iter(|| {
            for t in &pool {
                black_box(decompose_direct(black_box(t)));
            }
        });
    });
}

fn bench_intlin(c: &mut Criterion) {
    let mut seed = 0x777u64;
    let mut next = move || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((seed >> 33) as i64 % 9) - 4
    };
    let mats: Vec<IMat> = (0..32)
        .map(|_| IMat::from_fn(4, 4, |_, _| next()))
        .collect();
    c.bench_function("hermite_4x4", |b| {
        b.iter(|| {
            for m in &mats {
                black_box(right_hermite(black_box(m)));
            }
        });
    });
    c.bench_function("smith_4x4", |b| {
        b.iter(|| {
            for m in &mats {
                black_box(smith_normal_form(black_box(m)));
            }
        });
    });
}

fn bench_mesh(c: &mut Criterion) {
    let mut g = c.benchmark_group("mesh_simulate_phase");
    for n in [64usize, 256, 1024] {
        let mesh = Mesh2D::new(16, 16, CostModel::paragon());
        let msgs: Vec<PMsg> = (0..n)
            .map(|i| PMsg {
                src: i % 256,
                dst: (i * 37 + 11) % 256,
                bytes: 256,
            })
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &msgs, |b, msgs| {
            b.iter(|| black_box(mesh.simulate_phase(black_box(msgs))));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_pipeline,
    bench_graph,
    bench_decompose,
    bench_intlin,
    bench_mesh
);
criterion_main!(benches);
