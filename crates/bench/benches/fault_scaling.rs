//! Criterion bench for the fault/recovery simulator: per-call oracle
//! (`simulate_phases_faulty` / `simulate_phases_recovering`, one plan
//! scan + route walk per call) vs the compiled batch engine
//! ([`FaultSim`]: plan compiled to sorted interval buckets, phases
//! compiled once to flat route slices), across replication counts and
//! outage-schedule densities.
//!
//! `cargo bench -p rescomm-bench --bench fault_scaling`
//!
//! For machine-readable numbers, speedup ratios and the committed
//! artifact, run the `fault_baseline` binary instead (it writes
//! `BENCH_faultperf.json` and asserts bit-identity before timing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rescomm_machine::{
    replication_seed, CheckpointPolicy, CostModel, FaultPlan, FaultSim, LinkOutage, Mesh2D,
    NodeDeath, PMsg, PhaseSim, SchedulePolicy, XorShift64,
};
use std::hint::black_box;

/// Deterministic synthetic phase set on `nodes` processors.
fn synth_phases(nodes: usize, n_phases: usize, per_phase: usize, seed: u64) -> Vec<Vec<PMsg>> {
    let mut rng = XorShift64::new(seed);
    (0..n_phases)
        .map(|_| {
            (0..per_phase)
                .map(|_| PMsg {
                    src: rng.below(nodes as u64) as usize,
                    dst: rng.below(nodes as u64) as usize,
                    bytes: 1 + rng.below(2048),
                })
                .collect()
        })
        .collect()
}

/// A fault plan with `outages` seeded link-outage windows, 20% drop and
/// 2% duplication — the workload the plan compiler is built for.
fn dense_plan(mesh: &Mesh2D, outages: usize) -> FaultPlan {
    let mut rng = XorShift64::new(0xfa17_babe);
    let link_outages = (0..outages)
        .map(|_| {
            let from = rng.below(600_000);
            LinkOutage {
                link: rng.below(mesh.link_count() as u64) as usize,
                from,
                until: from + 50_000 + rng.below(200_000),
            }
        })
        .collect();
    FaultPlan {
        seed: 42,
        drop_prob: 0.2,
        dup_prob: 0.02,
        link_outages,
        ..FaultPlan::none()
    }
}

fn bench_replay(c: &mut Criterion) {
    let mesh = Mesh2D::new(8, 4, CostModel::paragon());
    let phases = synth_phases(mesh.nodes(), 5, 56, 0xfa17);
    let plan = dense_plan(&mesh, 48);
    let mut g = c.benchmark_group("fault_replay");
    for n in [4usize, 16, 64] {
        let seeds: Vec<u64> = (0..n)
            .map(|r| replication_seed(plan.seed, r as u64))
            .collect();
        let mut oracle = PhaseSim::new(mesh.clone());
        g.bench_with_input(BenchmarkId::new("oracle", n), &seeds, |b, seeds| {
            b.iter(|| {
                for &seed in seeds {
                    black_box(oracle.simulate_phases_faulty(
                        &phases,
                        &FaultPlan {
                            seed,
                            ..plan.clone()
                        },
                    ));
                }
            })
        });
        let mut engine = FaultSim::new(&mesh, &phases, &plan);
        g.bench_with_input(BenchmarkId::new("compiled", n), &seeds, |b, seeds| {
            b.iter(|| black_box(engine.replay_faulty(seeds, SchedulePolicy::default())))
        });
    }
    g.finish();
}

fn bench_outage_density(c: &mut Criterion) {
    let mesh = Mesh2D::new(8, 4, CostModel::paragon());
    let phases = synth_phases(mesh.nodes(), 5, 56, 0xfa17);
    let mut g = c.benchmark_group("outage_density");
    for outages in [4usize, 16, 64] {
        let plan = dense_plan(&mesh, outages);
        let mut oracle = PhaseSim::new(mesh.clone());
        g.bench_with_input(BenchmarkId::new("oracle", outages), &plan, |b, plan| {
            b.iter(|| black_box(oracle.simulate_phases_faulty(&phases, plan)))
        });
        let mut engine = FaultSim::new(&mesh, &phases, &plan);
        g.bench_with_input(BenchmarkId::new("compiled", outages), &plan, |b, plan| {
            b.iter(|| black_box(engine.run_faulty(plan.seed, SchedulePolicy::default())))
        });
    }
    g.finish();
}

fn bench_recovering(c: &mut Criterion) {
    let mesh = Mesh2D::new(8, 4, CostModel::paragon());
    let phases = synth_phases(mesh.nodes(), 12, 48, 0x4ec0);
    let healthy = mesh.simulate_phases(&phases);
    let plan = FaultPlan {
        node_deaths: vec![
            NodeDeath {
                node: 5,
                t: healthy / 3,
            },
            NodeDeath {
                node: 19,
                t: 2 * healthy / 3,
            },
        ],
        detection_latency: 5_000,
        ..dense_plan(&mesh, 16)
    };
    let policy = CheckpointPolicy::default();
    let seeds: Vec<u64> = (0..16)
        .map(|r| replication_seed(plan.seed, r as u64))
        .collect();
    let mut g = c.benchmark_group("recovering_replay");
    let mut oracle = PhaseSim::new(mesh.clone());
    g.bench_with_input(BenchmarkId::new("oracle", 16), &seeds, |b, seeds| {
        b.iter(|| {
            for &seed in seeds {
                black_box(oracle.simulate_phases_recovering(
                    &phases,
                    &FaultPlan {
                        seed,
                        ..plan.clone()
                    },
                    &policy,
                ));
            }
        })
    });
    let mut engine = FaultSim::new(&mesh, &phases, &plan);
    g.bench_with_input(BenchmarkId::new("compiled", 16), &seeds, |b, seeds| {
        b.iter(|| black_box(engine.replay_recovering(&policy, seeds, SchedulePolicy::default())))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_replay,
    bench_outage_density,
    bench_recovering
);
criterion_main!(benches);
