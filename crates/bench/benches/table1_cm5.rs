//! Criterion bench regenerating **Table 1** (CM-5 data-movement ratios).
//!
//! The simulated table is printed once at start-up; Criterion then
//! measures the cost of the simulation itself across payload sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rescomm_bench::table1;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Print the regenerated table once.
    let row = table1(1024);
    eprintln!(
        "\n[Table 1] reduction/broadcast/translation/general (ns): {:?}",
        row.times
    );
    eprintln!("[Table 1] ratios to reduction: {:?}\n", row.ratios);

    let mut g = c.benchmark_group("table1_cm5");
    for bytes in [64u64, 1024, 16384] {
        g.bench_with_input(BenchmarkId::from_parameter(bytes), &bytes, |b, &bytes| {
            b.iter(|| black_box(table1(black_box(bytes))));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
