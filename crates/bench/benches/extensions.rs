//! Criterion bench for the extension experiments: §3.5 message
//! vectorization, the Table 2 payload crossover, and the §5.4
//! grouped-vs-cyclic check on undecomposed communications.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rescomm_bench::{table2_crossover, vectorization};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let v = vectorization(64, 64);
    eprintln!(
        "\n[Vectorization] 64 steps: unvectorized {} ns, vectorized {} ns ({:.1}x)",
        v.unvectorized,
        v.vectorized,
        v.unvectorized as f64 / v.vectorized as f64
    );
    let rows = table2_crossover((32, 16), &[64, 1024, 16384]);
    for r in &rows {
        eprintln!(
            "[Crossover] {} B: direct {} ns, decomposed {} ns",
            r.bytes, r.direct, r.decomposed
        );
    }
    eprintln!();

    let mut g = c.benchmark_group("extensions");
    for steps in [16usize, 64, 256] {
        g.bench_with_input(
            BenchmarkId::new("vectorization", steps),
            &steps,
            |b, &steps| {
                b.iter(|| black_box(vectorization(black_box(steps), 64)));
            },
        );
    }
    g.bench_function(BenchmarkId::new("crossover", "sweep"), |b| {
        b.iter(|| black_box(table2_crossover((32, 16), &[64, 1024, 16384])));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
