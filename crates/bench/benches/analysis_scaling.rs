//! Criterion bench for the compiler front-end at scale: the seed passes
//! (`map_nest_reference`) vs the optimized pipeline (`map_nest`) on the
//! synthetic nest families, and warm-cache repeated mapping of the paper
//! kernels (the `map_nest_batch` serving setting).
//!
//! `cargo bench -p rescomm-bench --bench analysis_scaling`
//!
//! For machine-readable numbers and speedup ratios, run the
//! `pipeline_baseline` binary instead (it writes `BENCH_pipeline.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rescomm::{map_nest, map_nest_reference, map_nest_with, AnalysisCache, MappingOptions};
use rescomm_bench::workload::{chained_stencil_nest, pipeline_nest};
use rescomm_loopnest::{examples, LoopNest};
use std::hint::black_box;

/// A synthetic nest family: name + generator `(n_stmts, size)`.
type Family = (&'static str, fn(usize, i64) -> LoopNest);

fn bench_synthetic(c: &mut Criterion) {
    let opts = MappingOptions::new(2);
    let families: [Family; 2] = [
        ("chained_stencil", chained_stencil_nest),
        ("pipeline", pipeline_nest),
    ];
    let mut g = c.benchmark_group("map_nest_synthetic");
    for (family, build) in families {
        for n in [10usize, 50, 200] {
            let nest = build(n, 8);
            g.bench_with_input(
                BenchmarkId::new(format!("{family}/reference"), n),
                &nest,
                |b, nest| b.iter(|| black_box(map_nest_reference(nest, &opts))),
            );
            g.bench_with_input(
                BenchmarkId::new(format!("{family}/optimized"), n),
                &nest,
                |b, nest| b.iter(|| black_box(map_nest(nest, &opts))),
            );
        }
    }
    g.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let opts = MappingOptions::new(2);
    let kernels: Vec<(&str, LoopNest)> = vec![
        ("motivating", examples::motivating_example(8, 4).0),
        ("matmul", examples::matmul(6)),
        ("gauss", examples::gauss_elim(6)),
        ("adi", examples::adi_sweep(8)),
    ];
    let mut g = c.benchmark_group("map_nest_kernels");
    for (name, nest) in &kernels {
        g.bench_with_input(BenchmarkId::new("reference", name), nest, |b, nest| {
            b.iter(|| black_box(map_nest_reference(nest, &opts)))
        });
        let mut cache = AnalysisCache::new();
        g.bench_with_input(BenchmarkId::new("warm_cache", name), nest, |b, nest| {
            b.iter(|| black_box(map_nest_with(nest, &opts, &mut cache)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_synthetic, bench_kernels);
criterion_main!(benches);
