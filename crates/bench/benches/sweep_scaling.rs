//! Criterion bench for the shared work-stealing pool (`machine::pool`):
//! the fault-replay and analysis-batch sweeps across worker counts, plus
//! the grain knob on a deliberately skewed task-cost distribution.
//!
//! `cargo bench -p rescomm-bench --bench sweep_scaling`
//!
//! For machine-readable numbers, the efficiency gates and the committed
//! artifact, run the `scaling_baseline` binary instead (it writes
//! `BENCH_scaling.json` and asserts thread-count bit-identity before
//! timing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rescomm::{map_nest_batch, MappingOptions};
use rescomm_bench::workload::{chained_stencil_nest, host_threads, pipeline_nest};
use rescomm_loopnest::LoopNest;
use rescomm_machine::{
    par_fault_sweep, CostModel, FaultPlan, LinkOutage, Mesh2D, PMsg, PhaseSim, SchedulePolicy,
    XorShift64,
};
use std::hint::black_box;

/// Deterministic synthetic phase set on `nodes` processors.
fn synth_phases(nodes: usize, n_phases: usize, per_phase: usize, seed: u64) -> Vec<Vec<PMsg>> {
    let mut rng = XorShift64::new(seed);
    (0..n_phases)
        .map(|_| {
            (0..per_phase)
                .map(|_| PMsg {
                    src: rng.below(nodes as u64) as usize,
                    dst: rng.below(nodes as u64) as usize,
                    bytes: 1 + rng.below(2048),
                })
                .collect()
        })
        .collect()
}

fn dense_plan(mesh: &Mesh2D, seed: u64) -> FaultPlan {
    let mut rng = XorShift64::new(0xfa17_babe ^ seed);
    let link_outages = (0..24)
        .map(|_| {
            let from = rng.below(600_000);
            LinkOutage {
                link: rng.below(mesh.link_count() as u64) as usize,
                from,
                until: from + 50_000 + rng.below(200_000),
            }
        })
        .collect();
    FaultPlan {
        seed,
        drop_prob: 0.2,
        dup_prob: 0.02,
        link_outages,
        ..FaultPlan::none()
    }
}

/// Worker counts worth timing on this host: 1, and the powers of two up
/// to the hardware thread count (oversubscribed points only measure the
/// OS scheduler).
fn worker_points() -> Vec<usize> {
    let host = host_threads();
    [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&w| w == 1 || w <= host)
        .collect()
}

fn bench_fault_replay(c: &mut Criterion) {
    let mesh = Mesh2D::new(8, 4, CostModel::paragon());
    let phases = synth_phases(mesh.nodes(), 5, 56, 0xfa17);
    let bank: Vec<FaultPlan> = (0..8).map(|i| dense_plan(&mesh, 42 + i)).collect();
    let sched = SchedulePolicy::default();
    let mut g = c.benchmark_group("pool_fault_replay");
    for workers in worker_points() {
        g.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            b.iter(|| black_box(par_fault_sweep(&mesh, &phases, &bank, 8, w, sched)))
        });
    }
    g.finish();
}

fn bench_analysis_batch(c: &mut Criterion) {
    let fleet: Vec<LoopNest> = (0..16)
        .map(|i| {
            if i % 2 == 0 {
                chained_stencil_nest(12 + 3 * i, 8)
            } else {
                pipeline_nest(12 + 3 * i, 8)
            }
        })
        .collect();
    let opts = MappingOptions::new(2);
    let mut g = c.benchmark_group("pool_analysis_batch");
    for workers in worker_points() {
        g.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            b.iter(|| black_box(map_nest_batch(&fleet, &opts, w).unwrap()))
        });
    }
    g.finish();
}

/// The grain knob on a skewed workload: per-task cost rises with the
/// task index, so fine grains lean on the steal path and coarse grains
/// on the initial partition.
fn bench_grain_skew(c: &mut Criterion) {
    let mesh = Mesh2D::new(8, 4, CostModel::paragon());
    let tasks: Vec<u64> = (1..=256).collect();
    let workers = host_threads().clamp(1, 8);
    let mut g = c.benchmark_group("pool_grain_skew");
    for grain in [1usize, 4, 16] {
        g.bench_with_input(BenchmarkId::new("grain", grain), &grain, |b, &grain| {
            b.iter(|| {
                let (r, _) = rescomm_machine::pool::sweep(
                    &tasks,
                    workers,
                    grain,
                    || PhaseSim::new(mesh.clone()),
                    |sim, &scale| {
                        let phases = synth_phases(32, 1, 8 + (scale as usize % 32), scale);
                        sim.simulate_phases(&phases)
                    },
                );
                black_box(r)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fault_replay,
    bench_analysis_batch,
    bench_grain_skew
);
criterion_main!(benches);
