//! Criterion bench regenerating **Figure 8** (grouped partition vs the
//! standard HPF distributions for `U(k)` communications).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rescomm_bench::figure8;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    for (label, mesh) in [("a-4x4", (4, 4)), ("b-8x4", (8, 4)), ("c-8x8", (8, 8))] {
        let rows = figure8(mesh, 48, 8, 8, 2, 256);
        eprintln!("\n[Figure 8 {label}] k, CYCLIC/grouped, BLOCK/grouped, CYCLIC(2)/grouped");
        for r in &rows {
            eprintln!(
                "  k={}  {:.2}  {:.2}  {:.2}",
                r.k, r.cyclic_ratio, r.block_ratio, r.cyclic_block_ratio
            );
        }
    }
    eprintln!();

    let mut g = c.benchmark_group("figure8_grouped");
    for (label, mesh) in [
        ("a-4x4", (4usize, 4usize)),
        ("b-8x4", (8, 4)),
        ("c-8x8", (8, 8)),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &mesh, |b, &mesh| {
            b.iter(|| black_box(figure8(black_box(mesh), 48, 8, 8, 2, 256)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
