//! Criterion bench regenerating **Table 2** (decomposing `T = L·U` on the
//! Paragon mesh).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rescomm_bench::table2;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let row = table2((32, 16), 512);
    eprintln!(
        "\n[Table 2] not-decomposed {} | L {} | U {} | L·U {} (ns); ratios {:?}\n",
        row.not_decomposed,
        row.l_phase,
        row.u_phase,
        row.lu_total,
        row.ratios()
    );

    let mut g = c.benchmark_group("table2_decompose");
    for vrows in [16usize, 32, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(vrows), &vrows, |b, &v| {
            b.iter(|| black_box(table2(black_box((v, v / 2)), 512)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
