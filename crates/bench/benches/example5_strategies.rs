//! Criterion bench regenerating the **§7.2 Example 5** comparison
//! (locality-first two-step heuristic vs Platonoff's macro-first
//! strategy).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rescomm::baselines::platonoff_map;
use rescomm::{map_nest, MappingOptions};
use rescomm_bench::example5;
use rescomm_loopnest::examples::example5_platonoff;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let row = example5(8);
    eprintln!(
        "\n[Example 5] ours non-local: {} | Platonoff non-local: {} (broadcast kept: {})\n",
        row.ours_nonlocal, row.platonoff_nonlocal, row.platonoff_macro
    );

    let (nest, _) = example5_platonoff(8);
    let mut g = c.benchmark_group("example5_strategies");
    g.bench_function(BenchmarkId::from_parameter("two-step"), |b| {
        b.iter(|| black_box(map_nest(black_box(&nest), &MappingOptions::new(2))));
    });
    g.bench_function(BenchmarkId::from_parameter("platonoff"), |b| {
        b.iter(|| black_box(platonoff_map(black_box(&nest), 2)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
