//! Criterion bench for the simulator hot path at production sizes:
//! closed-form vs enumerated message generation, and reused/cached
//! scheduling vs the one-shot oracle.
//!
//! `cargo bench -p rescomm-bench --bench simulator_scaling`
//!
//! For machine-readable numbers and speedup ratios, run the
//! `simulator_baseline` binary instead (it writes `BENCH_simulator.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rescomm_distribution::{fold_general, general_pattern, physical_messages, Dist1D, Dist2D};
use rescomm_intlin::IMat;
use rescomm_machine::{CachedPhase, CostModel, Mesh2D, PMsg, PhaseSim};
use std::hint::black_box;

fn uk() -> IMat {
    IMat::from_rows(&[&[1, 3], &[0, 1]])
}

/// Matrices the old elementary-only fast path could not fold in closed
/// form — before the general segment algebra they hit the dense `O(V)`
/// fallback.
fn previously_dense() -> Vec<(&'static str, IMat)> {
    vec![
        ("coupled", IMat::from_rows(&[&[1, 3], &[2, 7]])),
        ("fib", IMat::from_rows(&[&[1, 1], &[1, 2]])),
        ("rot90", IMat::from_rows(&[&[0, -1], &[1, 0]])),
    ]
}

fn bench_generation(c: &mut Criterion) {
    let dist = Dist2D {
        rows: Dist1D::Grouped(3),
        cols: Dist1D::Block,
    };
    let pshape = (8usize, 4usize);
    let mut g = c.benchmark_group("msgset_generation");
    for side in [64usize, 256, 1024, 4096] {
        let vshape = (side, side);
        let t = uk();
        // The enumerated oracle is O(V log V): past 1024² it stops being
        // a baseline and starts being a stress test, so it is capped.
        if side <= 1024 {
            g.bench_with_input(BenchmarkId::new("enumerated", side), &vshape, |b, &v| {
                b.iter(|| {
                    let pat = general_pattern(&t, v);
                    black_box(physical_messages(&pat, dist, v, pshape, 64))
                })
            });
        }
        g.bench_with_input(BenchmarkId::new("closed_form", side), &vshape, |b, &v| {
            b.iter(|| black_box(fold_general(&t, dist, v, pshape, 64)))
        });
    }
    // The fully-coupled zoo: closed-form cost stays flat in V where the
    // dense fallback these matrices used to take is O(V).
    for (name, t) in previously_dense() {
        for side in [1024usize, 4096, 8192] {
            let vshape = (side, side);
            g.bench_with_input(
                BenchmarkId::new(format!("closed_form_{name}"), side),
                &vshape,
                |b, &v| b.iter(|| black_box(fold_general(&t, dist, v, pshape, 64))),
            );
        }
    }
    g.finish();
}

fn bench_scheduling(c: &mut Criterion) {
    let mesh = Mesh2D::new(8, 4, CostModel::paragon());
    let mut g = c.benchmark_group("phase_scheduling");
    for n in [1_000usize, 10_000, 100_000] {
        let msgs: Vec<PMsg> = (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                PMsg {
                    src: (h % 32) as usize,
                    dst: ((h >> 17) % 32) as usize,
                    bytes: 1 + (h >> 40) % 4096,
                }
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("oneshot", n), &msgs, |b, m| {
            b.iter(|| black_box(mesh.simulate_phase(m)))
        });
        let mut sim = PhaseSim::new(mesh.clone());
        g.bench_with_input(BenchmarkId::new("phasesim", n), &msgs, |b, m| {
            b.iter(|| black_box(sim.simulate_phase(m)))
        });
        let cached = CachedPhase::new(&mesh, &msgs);
        let mut sim2 = PhaseSim::new(mesh.clone());
        g.bench_with_input(BenchmarkId::new("cached_replay", n), &cached, |b, ph| {
            b.iter(|| black_box(sim2.run_cached(ph)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_generation, bench_scheduling);
criterion_main!(benches);
