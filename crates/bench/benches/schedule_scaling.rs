//! Criterion bench for the overlapped phase scheduler: phased barriers
//! vs. dependency-aware overlap (both orders), direct and through the
//! cached-replay path, on multi-phase plans at production message
//! counts.
//!
//! `cargo bench -p rescomm-bench --bench schedule_scaling`
//!
//! For the simulated-makespan comparison (the quantity the scheduler
//! optimizes) and its acceptance gates, run the `schedule_baseline`
//! binary instead — it writes `BENCH_schedule.json`. This bench times
//! the *engines themselves*: the overlapped scheduler does strictly more
//! bookkeeping per message (readiness reads, arrival updates, an index
//! permutation), and this is where a regression in that overhead would
//! show.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rescomm_machine::{CachedPhase, CostModel, Mesh2D, OverlapOrder, PMsg, PhaseSim, ScheduleMode};
use std::hint::black_box;

/// A deterministic multi-phase workload: `phases` phases of `n` random
/// messages each on the 8×4 mesh (same hash mixer as the other benches).
fn workload(phases: usize, n: usize) -> Vec<Vec<PMsg>> {
    (0..phases)
        .map(|k| {
            (0..n)
                .map(|i| {
                    let h = ((k * n + i) as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    PMsg {
                        src: (h % 32) as usize,
                        dst: ((h >> 17) % 32) as usize,
                        bytes: 1 + (h >> 40) % 4096,
                    }
                })
                .collect()
        })
        .collect()
}

fn bench_schedule_modes(c: &mut Criterion) {
    let mesh = Mesh2D::new(8, 4, CostModel::paragon());
    let mut g = c.benchmark_group("schedule_modes");
    for n in [1_000usize, 10_000, 100_000] {
        let phases = workload(4, n);
        let mut sim = PhaseSim::new(mesh.clone());
        g.bench_with_input(BenchmarkId::new("phased", n), &phases, |b, p| {
            b.iter(|| black_box(sim.simulate_phases(p)))
        });
        g.bench_with_input(BenchmarkId::new("overlapped", n), &phases, |b, p| {
            b.iter(|| black_box(sim.simulate_phases_overlapped(p, OverlapOrder::Sorted)))
        });
        g.bench_with_input(
            BenchmarkId::new("overlapped_longest", n),
            &phases,
            |b, p| {
                b.iter(|| black_box(sim.simulate_phases_overlapped(p, OverlapOrder::LongestFirst)))
            },
        );
        let cached: Vec<CachedPhase> = phases.iter().map(|p| CachedPhase::new(&mesh, p)).collect();
        g.bench_with_input(BenchmarkId::new("cached_phased", n), &cached, |b, ph| {
            b.iter(|| black_box(sim.run_cached_phases(ph, ScheduleMode::Phased, 1)))
        });
        g.bench_with_input(
            BenchmarkId::new("cached_overlapped", n),
            &cached,
            |b, ph| b.iter(|| black_box(sim.run_cached_phases(ph, ScheduleMode::overlapped(), 1))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_schedule_modes);
criterion_main!(benches);
