//! # rescomm-alignment — concrete allocation matrices from a branching
//!
//! Turns the symbolic result of the access-graph analysis into concrete
//! affine allocation functions `alloc_v(I) = M_v·I + ρ_v` for every array
//! and statement:
//!
//! * the component root gets a seed `M_root` — the canonical projection
//!   `[Id_m | 0]`, or `m` rows of the constraint kernel when the
//!   augmentation pass recorded a `M_root·K = 0` condition;
//! * allocations propagate along the branching edges
//!   (`M_v = M_u·W`, offsets chased so that the *whole* affine distance of
//!   each local communication is zero, constant term included);
//! * each connected component can afterwards be rotated by a unimodular
//!   matrix ([`Alignment::rotate_component`]) without breaking any local
//!   communication — the degree of freedom §3.1 and §4.2.2 of the paper
//!   exploit;
//! * the remaining accesses are extracted as [`ResidualComm`]s for the
//!   macro-communication detector and the decomposer.

use rescomm_accessgraph::{AccessGraph, Augmented, Component, Vertex};
use rescomm_intlin::{left_kernel_basis, IMat};
use rescomm_loopnest::{Access, AccessId, ArrayId, LoopNest, StmtId};

pub mod reference;

/// Affine allocation `M·I + ρ` of one vertex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alloc {
    /// Allocation matrix (`m × dim`).
    pub mat: IMat,
    /// Allocation offset (`m` entries).
    pub rho: Vec<i64>,
}

impl Alloc {
    /// Virtual processor owning point/index `i`.
    pub fn apply(&self, i: &[i64]) -> Vec<i64> {
        let mut v = self.mat.mul_vec(i);
        for (x, &o) in v.iter_mut().zip(&self.rho) {
            *x += o;
        }
        v
    }
}

/// A residual (non-local) communication, ready for step 2 of the
/// heuristic.
#[derive(Debug, Clone)]
pub struct ResidualComm {
    /// The access that stayed non-local.
    pub access: AccessId,
    /// The statement reading/writing.
    pub stmt: StmtId,
    /// The array touched.
    pub array: ArrayId,
    /// `true` iff statement and array vertices ended in the same branching
    /// component (a rotation then affects both sides together).
    pub same_component: bool,
}

/// The complete alignment of a nest onto an `m`-dimensional virtual grid.
#[derive(Debug, Clone)]
pub struct Alignment {
    /// Target grid dimension.
    pub m: usize,
    /// Allocation per statement (indexed by `StmtId`).
    pub stmt_alloc: Vec<Alloc>,
    /// Allocation per array (indexed by `ArrayId`).
    pub array_alloc: Vec<Alloc>,
    /// Component index per statement (dense; `None` = in no component).
    pub comp_of_stmt: Vec<Option<u32>>,
    /// Component index per array (dense; `None` = in no component).
    pub comp_of_array: Vec<Option<u32>>,
    /// Number of components.
    pub n_components: usize,
}

impl Alignment {
    /// The allocation of a vertex.
    pub fn alloc_of(&self, v: Vertex) -> &Alloc {
        match v {
            Vertex::Stmt(s) => &self.stmt_alloc[s.0],
            Vertex::Array(x) => &self.array_alloc[x.0],
        }
    }

    /// Component index of a vertex, if it belongs to one.
    pub fn component_of(&self, v: Vertex) -> Option<usize> {
        match v {
            Vertex::Stmt(s) => self.comp_of_stmt[s.0].map(|c| c as usize),
            Vertex::Array(x) => self.comp_of_array[x.0].map(|c| c as usize),
        }
    }

    /// Communication distance of `access` at iteration point `i`:
    /// `alloc_S(I) − alloc_x(F·I + c)` (the paper's `Δ(a, S)`); the zero
    /// vector for every `I` iff the communication is local.
    pub fn comm_distance(&self, _nest: &LoopNest, access: &Access, i: &[i64]) -> Vec<i64> {
        let s = self.stmt_alloc[access.stmt.0].apply(i);
        let e = access.subscript(i);
        let x = self.array_alloc[access.array.0].apply(&e);
        s.iter().zip(&x).map(|(&a, &b)| a - b).collect()
    }

    /// Exact locality test of an access: `M_S = M_x·F` and
    /// `ρ_S = M_x·c + ρ_x`.
    pub fn is_local(&self, _nest: &LoopNest, access: &Access) -> bool {
        let ms = &self.stmt_alloc[access.stmt.0];
        let mx = &self.array_alloc[access.array.0];
        if ms.mat != &mx.mat * &access.f {
            return false;
        }
        let mc = mx.mat.mul_vec(&access.c);
        ms.rho
            .iter()
            .zip(mc.iter().zip(&mx.rho))
            .all(|(&rs, (&c, &rx))| rs == c + rx)
    }

    /// Locality of only the *linear* part (`M_S = M_x·F`): the paper's
    /// criterion — a nonzero constant term is a fixed-size translation,
    /// cheap on any DMPC.
    pub fn is_linear_local(&self, _nest: &LoopNest, access: &Access) -> bool {
        let ms = &self.stmt_alloc[access.stmt.0];
        let mx = &self.array_alloc[access.array.0];
        ms.mat == &mx.mat * &access.f
    }

    /// Left-multiply every allocation of component `ci` by the unimodular
    /// matrix `v` (matrices *and* offsets). Preserves every local
    /// communication inside the component.
    pub fn rotate_component(&mut self, ci: usize, v: &IMat) {
        assert!(
            rescomm_intlin::is_unimodular(v),
            "rotation must be unimodular"
        );
        assert_eq!(v.rows(), self.m);
        let rotate = |alloc: &mut Alloc| {
            if alloc.mat.rows() != v.cols() {
                return; // degenerate (dim < m) vertex: cannot rotate
            }
            alloc.mat = v * &alloc.mat;
            alloc.rho = v.mul_vec(&alloc.rho);
        };
        for (alloc, &c) in self.stmt_alloc.iter_mut().zip(&self.comp_of_stmt) {
            if c == Some(ci as u32) {
                rotate(alloc);
            }
        }
        for (alloc, &c) in self.array_alloc.iter_mut().zip(&self.comp_of_array) {
            if c == Some(ci as u32) {
                rotate(alloc);
            }
        }
    }
}

/// Compute the alignment from the graph analysis.
///
/// `augmented` may carry root constraints from the deficient-rank pass;
/// seeds then come from the constraint kernels.
///
/// Dense throughout: allocations and component indices live in
/// `StmtId`/`ArrayId`-indexed tables and the offset fixpoint runs over
/// precomputed `(x, S, M_x·c)` triples — the seed's `HashMap<Vertex, _>`
/// bookkeeping (kept in [`reference`]) re-hashed every vertex on every
/// sweep and recomputed `M_x·c` per edge *per sweep*.
pub fn compute_alignment(
    nest: &LoopNest,
    graph: &AccessGraph,
    components: &[Component],
    augmented: &Augmented,
) -> Alignment {
    let m = graph.m;
    let mut stmt_alloc: Vec<Option<Alloc>> = vec![None; nest.statements.len()];
    let mut array_alloc: Vec<Option<Alloc>> = vec![None; nest.arrays.len()];
    let mut comp_of_stmt: Vec<Option<u32>> = vec![None; nest.statements.len()];
    let mut comp_of_array: Vec<Option<u32>> = vec![None; nest.arrays.len()];
    // Offset slots per graph vertex; components are vertex-disjoint, so
    // one shared table serves every component's fixpoint.
    let mut rho: Vec<Option<Vec<i64>>> = vec![None; graph.vertices.len()];
    let mut edge_info: Vec<(usize, usize, Vec<i64>)> = Vec::new();

    for (ci, comp) in components.iter().enumerate() {
        // Seed the root.
        let root_dim = match comp.root {
            Vertex::Stmt(s) => nest.statement(s).depth,
            Vertex::Array(x) => nest.array(x).dim,
        };
        let seed = match augmented.root_constraints.get(&comp.root) {
            Some(k) => {
                let basis =
                    left_kernel_basis(k).expect("augment accepted an infeasible constraint");
                assert!(basis.rows() >= m, "constraint kernel too small");
                basis.submatrix(0, m, 0, basis.cols())
            }
            None => IMat::from_fn(m.min(root_dim), root_dim, |i, j| i64::from(i == j)),
        };
        for &v in &comp.members {
            match v {
                Vertex::Stmt(s) => comp_of_stmt[s.0] = Some(ci as u32),
                Vertex::Array(x) => comp_of_array[x.0] = Some(ci as u32),
            }
        }
        // Matrices come straight from the relative matrices (valid for
        // plain branching trees AND merged components): M_w = seed·R_w.
        for (&w, r) in &comp.rel {
            let alloc = Alloc {
                mat: &seed * r,
                rho: Vec::new(), // filled below
            };
            match w {
                Vertex::Stmt(s) => stmt_alloc[s.0] = Some(alloc),
                Vertex::Array(x) => array_alloc[x.0] = Some(alloc),
            }
        }
        // Offsets: fixpoint propagation over the component's edges (each
        // edge determines one endpoint's offset from the other; merged
        // components are not parent-before-child ordered, so iterate).
        // Locality: alloc_S(I) = alloc_x(F·I + c), i.e. ρ_S = M_x·c + ρ_x
        // with (x = array side, S = stmt side); M_x·c is constant across
        // sweeps, so hoist it.
        edge_info.clear();
        for &eid in &comp.edges {
            let e = &graph.edges[eid.0];
            let acc = nest.access(e.access);
            let (xv, sv) = match (e.from, e.to) {
                (Vertex::Array(x), Vertex::Stmt(st)) => (x, st),
                (Vertex::Stmt(st), Vertex::Array(x)) => (x, st),
                _ => unreachable!("access graph is bipartite"),
            };
            let mx = array_alloc[xv.0]
                .as_ref()
                .expect("component endpoint has an allocation");
            edge_info.push((
                graph.vertex_index(Vertex::Array(xv)),
                graph.vertex_index(Vertex::Stmt(sv)),
                mx.mat.mul_vec(&acc.c),
            ));
        }
        rho[graph.vertex_index(comp.root)] = Some(vec![0; m.min(root_dim)]);
        let mut progress = true;
        while progress {
            progress = false;
            for (xi, si, mc) in &edge_info {
                match (rho[*xi].is_some(), rho[*si].is_some()) {
                    (true, false) => {
                        let rx = rho[*xi].as_ref().expect("checked");
                        let rs: Vec<i64> = mc.iter().zip(rx).map(|(&a, &b)| a + b).collect();
                        rho[*si] = Some(rs);
                        progress = true;
                    }
                    (false, true) => {
                        let rs = rho[*si].as_ref().expect("checked");
                        let rx: Vec<i64> = rs.iter().zip(mc).map(|(&a, &b)| a - b).collect();
                        rho[*xi] = Some(rx);
                        progress = true;
                    }
                    _ => {}
                }
            }
        }
        for &w in comp.rel.keys() {
            let alloc = match w {
                Vertex::Stmt(s) => stmt_alloc[s.0].as_mut(),
                Vertex::Array(x) => array_alloc[x.0].as_mut(),
            }
            .expect("rel vertex has an allocation");
            if alloc.rho.is_empty() {
                alloc.rho = rho[graph.vertex_index(w)]
                    .clone()
                    .unwrap_or_else(|| vec![0; alloc.mat.rows()]);
            }
        }
    }

    // Materialize dense tables (vertices outside every component keep a
    // canonical projection — untouched arrays/statements).
    let stmt_alloc: Vec<Alloc> = stmt_alloc
        .into_iter()
        .enumerate()
        .map(|(i, a)| a.unwrap_or_else(|| canonical(m, nest.statements[i].depth)))
        .collect();
    let array_alloc: Vec<Alloc> = array_alloc
        .into_iter()
        .enumerate()
        .map(|(i, a)| a.unwrap_or_else(|| canonical(m, nest.arrays[i].dim)))
        .collect();

    Alignment {
        m,
        stmt_alloc,
        array_alloc,
        comp_of_stmt,
        comp_of_array,
        n_components: components.len(),
    }
}

pub(crate) fn canonical(m: usize, dim: usize) -> Alloc {
    let rows = m.min(dim);
    Alloc {
        mat: IMat::from_fn(rows, dim, |i, j| i64::from(i == j)),
        rho: vec![0; rows],
    }
}

/// Extract the residual communications: every access that is not
/// linear-local under the alignment.
pub fn residual_communications(nest: &LoopNest, alignment: &Alignment) -> Vec<ResidualComm> {
    nest.accesses
        .iter()
        .filter(|a| !alignment.is_linear_local(nest, a))
        .map(|a| {
            let cs = alignment.component_of(Vertex::Stmt(a.stmt));
            let cx = alignment.component_of(Vertex::Array(a.array));
            ResidualComm {
                access: a.id,
                stmt: a.stmt,
                array: a.array,
                same_component: matches!((cs, cx), (Some(x), Some(y)) if x == y),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescomm_accessgraph::{augment, component_structure, maximum_branching};
    use rescomm_loopnest::examples;

    fn full(nest: &LoopNest, m: usize) -> (AccessGraph, Alignment) {
        let g = AccessGraph::build(nest, m);
        let b = maximum_branching(&g);
        let comps = component_structure(&g, &b, nest);
        let aug = augment(&g, &b.edges, &comps, m);
        let al = compute_alignment(nest, &g, &comps, &aug);
        (g, al)
    }

    #[test]
    fn motivating_example_five_local_two_residual() {
        let (nest, ids) = examples::motivating_example(8, 4);
        let (_, al) = full(&nest, 2);
        let res = residual_communications(&nest, &al);
        let accs: Vec<_> = res.iter().map(|r| r.access).collect();
        // F3, F6 residual; F8 (rank-deficient, excluded from the graph) is
        // also non-local.
        assert!(accs.contains(&ids.f3), "residuals: {accs:?}");
        assert!(accs.contains(&ids.f6));
        assert!(accs.contains(&ids.f8));
        assert_eq!(accs.len(), 3);
        // The five branching accesses are *fully* local, offsets included.
        for fid in [ids.f1, ids.f2, ids.f4, ids.f5, ids.f7] {
            let a = nest.access(fid);
            assert!(al.is_local(&nest, a), "access {fid:?} must be fully local");
        }
    }

    #[test]
    fn local_distance_is_zero_everywhere() {
        let (nest, ids) = examples::motivating_example(4, 2);
        let (_, al) = full(&nest, 2);
        for fid in [ids.f1, ids.f2, ids.f4, ids.f5, ids.f7] {
            let a = nest.access(fid);
            let dom = &nest.statement(a.stmt).domain;
            for p in dom.points().take(50) {
                assert_eq!(
                    al.comm_distance(&nest, a, &p),
                    vec![0; 2],
                    "nonzero distance for {fid:?} at {p:?}"
                );
            }
        }
    }

    #[test]
    fn all_allocations_full_rank() {
        let (nest, _) = examples::motivating_example(8, 4);
        let (_, al) = full(&nest, 2);
        for a in &al.stmt_alloc {
            assert_eq!(a.mat.rank(), 2, "statement allocation lost rank");
        }
        for a in &al.array_alloc {
            assert_eq!(a.mat.rank(), 2, "array allocation lost rank");
        }
    }

    #[test]
    fn rotation_preserves_locality() {
        let (nest, ids) = examples::motivating_example(8, 4);
        let (_, mut al) = full(&nest, 2);
        let v = IMat::from_rows(&[&[1, 1], &[0, 1]]);
        al.rotate_component(0, &v);
        for fid in [ids.f1, ids.f2, ids.f4, ids.f5, ids.f7] {
            let a = nest.access(fid);
            assert!(al.is_local(&nest, a), "rotation broke locality of {fid:?}");
        }
        let res = residual_communications(&nest, &al);
        assert_eq!(res.len(), 3);
    }

    #[test]
    #[should_panic(expected = "unimodular")]
    fn rotation_rejects_non_unimodular() {
        let (nest, _) = examples::motivating_example(4, 2);
        let (_, mut al) = full(&nest, 2);
        al.rotate_component(0, &IMat::from_rows(&[&[2, 0], &[0, 1]]));
    }

    #[test]
    fn residuals_know_their_component() {
        let (nest, _) = examples::motivating_example(8, 4);
        let (_, al) = full(&nest, 2);
        for r in residual_communications(&nest, &al) {
            assert!(r.same_component, "single-component nest");
        }
        // matmul: B and C end in other components than the statement.
        let nest = examples::matmul(4);
        let (_, al) = full(&nest, 2);
        let res = residual_communications(&nest, &al);
        assert_eq!(res.len(), 2);
        assert!(res.iter().all(|r| !r.same_component));
    }

    #[test]
    fn constrained_root_seed_satisfies_constraint() {
        use rescomm_intlin::IMat;
        use rescomm_loopnest::{Domain, NestBuilder};
        // m = 1 constraint case from the augment tests.
        let mut bld = NestBuilder::new("constrained");
        let x = bld.array("x", 2);
        let s = bld.statement("S", 2, Domain::cube(2, 4));
        bld.read(s, x, IMat::from_rows(&[&[1, 0], &[0, 1]]), &[0, 0]);
        bld.read(s, x, IMat::from_rows(&[&[1, 0], &[1, 1]]), &[0, 0]);
        let nest = bld.build().unwrap();
        let (_, al) = full(&nest, 1);
        for a in &nest.accesses {
            assert!(
                al.is_linear_local(&nest, a),
                "constrained seed failed for {:?}: M_S={:?} M_x={:?}",
                a.id,
                al.stmt_alloc[0].mat,
                al.array_alloc[0].mat
            );
        }
    }

    #[test]
    fn example5_locality_first_is_communication_free() {
        // §7.2: our strategy maps Example 5 without any communication.
        let (nest, _) = examples::example5_platonoff(4);
        let (_, al) = full(&nest, 2);
        let res = residual_communications(&nest, &al);
        assert!(
            res.is_empty(),
            "example 5 must be communication-free: {res:?}"
        );
    }
}
