//! Seed (pre-optimization) alignment computation, kept as a
//! proof-of-equivalence oracle — see `rescomm_accessgraph::reference` for
//! the pattern.
//!
//! The optimized [`crate::compute_alignment`] replaced the
//! `HashMap<Vertex, _>` allocation/offset bookkeeping with dense
//! `StmtId`/`ArrayId`-indexed tables and hoisted the per-edge `M_x·c`
//! product out of the offset fixpoint sweeps. This function preserves the
//! original algorithm verbatim (up to materializing the same dense
//! [`Alignment`] struct at the end, which did not exist then) so
//! differential tests and `pipeline_baseline` can check — and time — old
//! versus new on the same inputs.

use crate::{canonical, Alignment, Alloc};
use rescomm_accessgraph::{AccessGraph, Augmented, Component, Vertex};
use rescomm_intlin::{left_kernel_basis, IMat};
use rescomm_loopnest::{ArrayId, LoopNest, StmtId};
use std::collections::HashMap;

/// Seed `compute_alignment`: per-vertex `HashMap`s for allocations,
/// component indices and offsets, with `M_x·c` recomputed (behind a
/// matrix clone) on every fixpoint sweep.
pub fn compute_alignment_reference(
    nest: &LoopNest,
    graph: &AccessGraph,
    components: &[Component],
    augmented: &Augmented,
) -> Alignment {
    let m = graph.m;
    let mut allocs: HashMap<Vertex, Alloc> = HashMap::new();
    let mut component_of: HashMap<Vertex, usize> = HashMap::new();

    for (ci, comp) in components.iter().enumerate() {
        // Seed the root.
        let root_dim = match comp.root {
            Vertex::Stmt(s) => nest.statement(s).depth,
            Vertex::Array(x) => nest.array(x).dim,
        };
        let seed = match augmented.root_constraints.get(&comp.root) {
            Some(k) => {
                let basis =
                    left_kernel_basis(k).expect("augment accepted an infeasible constraint");
                assert!(basis.rows() >= m, "constraint kernel too small");
                basis.submatrix(0, m, 0, basis.cols())
            }
            None => IMat::from_fn(m.min(root_dim), root_dim, |i, j| i64::from(i == j)),
        };
        for &v in &comp.members {
            component_of.insert(v, ci);
        }
        for (&w, r) in &comp.rel {
            allocs.insert(
                w,
                Alloc {
                    mat: &seed * r,
                    rho: Vec::new(), // filled below
                },
            );
        }
        let mut rho: HashMap<Vertex, Vec<i64>> = HashMap::new();
        rho.insert(comp.root, vec![0; m.min(root_dim)]);
        let mut progress = true;
        while progress {
            progress = false;
            for &eid in &comp.edges {
                let e = &graph.edges[eid.0];
                let acc = nest.access(e.access);
                let (xv, sv) = match (e.from, e.to) {
                    (Vertex::Array(x), Vertex::Stmt(st)) => (Vertex::Array(x), Vertex::Stmt(st)),
                    (Vertex::Stmt(st), Vertex::Array(x)) => (Vertex::Array(x), Vertex::Stmt(st)),
                    _ => unreachable!("access graph is bipartite"),
                };
                let mx = allocs[&xv].mat.clone();
                let mc = mx.mul_vec(&acc.c);
                match (rho.contains_key(&xv), rho.contains_key(&sv)) {
                    (true, false) => {
                        let rx = &rho[&xv];
                        let rs: Vec<i64> = mc.iter().zip(rx).map(|(&a, &b)| a + b).collect();
                        rho.insert(sv, rs);
                        progress = true;
                    }
                    (false, true) => {
                        let rs = &rho[&sv];
                        let rx: Vec<i64> = rs.iter().zip(&mc).map(|(&a, &b)| a - b).collect();
                        rho.insert(xv, rx);
                        progress = true;
                    }
                    _ => {}
                }
            }
        }
        for (&w, alloc) in allocs.iter_mut() {
            if comp.rel.contains_key(&w) && alloc.rho.is_empty() {
                alloc.rho = rho
                    .get(&w)
                    .cloned()
                    .unwrap_or_else(|| vec![0; alloc.mat.rows()]);
            }
        }
    }

    let stmt_alloc: Vec<Alloc> = (0..nest.statements.len())
        .map(|i| {
            let v = Vertex::Stmt(StmtId(i));
            allocs
                .get(&v)
                .cloned()
                .unwrap_or_else(|| canonical(m, nest.statements[i].depth))
        })
        .collect();
    let array_alloc: Vec<Alloc> = (0..nest.arrays.len())
        .map(|i| {
            let v = Vertex::Array(ArrayId(i));
            allocs
                .get(&v)
                .cloned()
                .unwrap_or_else(|| canonical(m, nest.arrays[i].dim))
        })
        .collect();

    // Same struct as the optimized path (dense component bookkeeping is
    // output format, not algorithm).
    let mut comp_of_stmt: Vec<Option<u32>> = vec![None; nest.statements.len()];
    let mut comp_of_array: Vec<Option<u32>> = vec![None; nest.arrays.len()];
    for (v, ci) in component_of {
        match v {
            Vertex::Stmt(s) => comp_of_stmt[s.0] = Some(ci as u32),
            Vertex::Array(x) => comp_of_array[x.0] = Some(ci as u32),
        }
    }
    Alignment {
        m,
        stmt_alloc,
        array_alloc,
        comp_of_stmt,
        comp_of_array,
        n_components: components.len(),
    }
}
