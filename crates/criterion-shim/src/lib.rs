//! # rescomm-criterion — an offline, dependency-free subset of `criterion`
//!
//! The workspace's benches were written against the real
//! [`criterion`](https://docs.rs/criterion) crate; the build environment is
//! fully offline, so this shim re-implements the API surface those benches
//! use and is wired in via a Cargo dependency rename. It measures with
//! `std::time::Instant` (auto-scaled iteration counts, median of samples)
//! and prints one `name ... time: [..]` line per benchmark — enough to
//! compare runs by eye or with a diff, with none of criterion's statistics.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `group/function/parameter` form.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// `group/parameter` form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Per-iteration timing driver handed to the benchmark closure.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    sampled_ns: f64,
}

impl Bencher {
    /// Time `f`, auto-scaling the iteration count so one sample lasts at
    /// least ~2 ms, and keep the median of several samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and per-call estimate.
        let mut n: u64 = 1;
        let estimate = loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let dt = start.elapsed();
            if dt >= Duration::from_millis(2) || n >= 1 << 20 {
                break dt.as_nanos() as f64 / n as f64;
            }
            n *= 4;
        };
        let per_sample = ((2_000_000.0 / estimate.max(0.5)) as u64).clamp(1, 1 << 22);
        let mut samples: Vec<f64> = (0..7)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..per_sample {
                    black_box(f());
                }
                start.elapsed().as_nanos() as f64 / per_sample as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        self.sampled_ns = samples[samples.len() / 2];
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, ns: f64) {
    println!("{name:<52} time: [{}]", human(ns));
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { sampled_ns: 0.0 };
        f(&mut b);
        report(name, b.sampled_ns);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { sampled_ns: 0.0 };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.label), b.sampled_ns);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { sampled_ns: 0.0 };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.label), b.sampled_ns);
        self
    }

    /// End the group (a no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        let mut g = c.benchmark_group("group");
        g.bench_with_input(BenchmarkId::from_parameter(8), &8usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 32).label, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
