//! Property tests for the folding schemes.

use proptest::prelude::*;
use rescomm_decompose::general::{product_general, GenFactor};
use rescomm_distribution::{
    affine_pattern, elementary_pattern, fold_affine_with, fold_general, fold_pattern,
    general_pattern, grouped_rank, locality_fraction, physical_messages, Dist1D, Dist2D, FoldPath,
};
use rescomm_intlin::IMat;

fn any_dist() -> impl Strategy<Value = Dist1D> {
    prop_oneof![
        Just(Dist1D::Block),
        Just(Dist1D::Cyclic),
        (1usize..=4).prop_map(Dist1D::CyclicBlock),
        (1usize..=6).prop_map(Dist1D::Grouped),
    ]
}

/// One unimodular unirow factor: a shear `U(k)`/`L(l)`, or an axis sign
/// flip. Every product of these has `det = ±1`.
fn unimodular_factor() -> impl Strategy<Value = GenFactor> {
    prop_oneof![
        (-4i64..5).prop_map(|k| GenFactor::Unirow {
            row: 0,
            coeffs: vec![1, k],
        }),
        (-4i64..5).prop_map(|l| GenFactor::Unirow {
            row: 1,
            coeffs: vec![l, 1],
        }),
        Just(GenFactor::Unirow {
            row: 0,
            coeffs: vec![-1, 0],
        }),
        Just(GenFactor::Unirow {
            row: 1,
            coeffs: vec![0, -1],
        }),
    ]
}

/// A random unimodular matrix built as a `product_general` of a random
/// factor chain, as the paper's decomposition produces them.
fn unimodular_matrix() -> impl Strategy<Value = IMat> {
    proptest::collection::vec(unimodular_factor(), 0..6).prop_map(|f| product_general(&f, 2))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every scheme is total and in range.
    #[test]
    fn map_total_and_in_range(d in any_dist(), v in 1usize..64, p in 1usize..8) {
        for i in 0..v {
            let q = d.map(i as i64, v, p);
            prop_assert!(q < p, "{d:?} v={v} p={p} i={i} -> {q}");
        }
    }

    /// The grouped permutation is a bijection for every (v, k).
    #[test]
    fn grouped_rank_bijective(v in 1usize..80, k in 1usize..12) {
        let mut seen = vec![false; v];
        for i in 0..v {
            let r = grouped_rank(i, v, k);
            prop_assert!(r < v);
            prop_assert!(!seen[r], "collision v={v} k={k} i={i}");
            seen[r] = true;
        }
    }

    /// owned() partitions the index space.
    #[test]
    fn owned_partitions(d in any_dist(), v in 1usize..48, p in 1usize..6) {
        let mut count = 0;
        for proc in 0..p {
            for i in d.owned(proc, v, p) {
                prop_assert_eq!(d.map(i as i64, v, p), proc);
                count += 1;
            }
        }
        prop_assert_eq!(count, v);
    }

    /// Block load imbalance is at most one block.
    #[test]
    fn block_load_near_balanced(v in 1usize..64, p in 1usize..8) {
        let l = Dist1D::Block.load(v, p);
        let bs = v.div_ceil(p);
        prop_assert!(l.iter().all(|&x| x <= bs));
        prop_assert_eq!(l.iter().sum::<usize>(), v);
    }

    /// The U(k) pattern never leaves its i-mod-k class when k | V.
    #[test]
    fn elementary_class_invariant(k in 1i64..8, mult in 1usize..6, w in 1usize..6) {
        let v = (k as usize) * mult * 2;
        let pat = elementary_pattern(k, (v, w));
        for ((i, _), (i2, _)) in pat {
            prop_assert_eq!(i.rem_euclid(k), i2.rem_euclid(k));
        }
    }

    /// physical_messages drops exactly the local sends and conserves
    /// total bytes of the remote ones.
    #[test]
    fn message_bytes_conserved(
        d in any_dist(),
        k in 1i64..6,
        bytes in 1u64..64,
    ) {
        let vshape = (24usize, 8usize);
        let pshape = (4usize, 2usize);
        let pat = elementary_pattern(k, vshape);
        let dist = Dist2D { rows: d, cols: Dist1D::Block };
        let msgs = physical_messages(&pat, dist, vshape, pshape, bytes);
        let loc = locality_fraction(&pat, dist, vshape, pshape);
        let remote = pat.len() - (loc * pat.len() as f64).round() as usize;
        let total: u64 = msgs.iter().map(|m| m.bytes).sum();
        prop_assert_eq!(total, remote as u64 * bytes);
        // No self-messages survive.
        prop_assert!(msgs.iter().all(|m| m.src != m.dst));
    }

    /// The identity dataflow matrix is always fully local.
    #[test]
    fn identity_pattern_local(d in any_dist(), v in 2usize..24, p in 1usize..4) {
        let pat = general_pattern(&IMat::identity(2), (v, v));
        let dist = Dist2D::uniform(d);
        prop_assert_eq!(locality_fraction(&pat, dist, (v, v), (p, p)), 1.0);
    }

    /// The closed-form generator equals the enumeration oracle for random
    /// dataflow matrices, grids and all four distributions — message set
    /// (order included), locality and send counts.
    #[test]
    fn closed_form_matches_enumeration(
        dr in any_dist(),
        dc in any_dist(),
        t00 in -4i64..5, t01 in -4i64..5, t10 in -4i64..5, t11 in -4i64..5,
        vr in 1usize..28, vc in 1usize..28,
        pr in 1usize..5, pc in 1usize..5,
        bytes in 1u64..32,
    ) {
        let t = IMat::from_rows(&[&[t00, t01], &[t10, t11]]);
        let dist = Dist2D { rows: dr, cols: dc };
        let pat = general_pattern(&t, (vr, vc));
        let want = physical_messages(&pat, dist, (vr, vc), (pr, pc), bytes);
        let want_loc = locality_fraction(&pat, dist, (vr, vc), (pr, pc));
        let got = fold_general(&t, dist, (vr, vc), (pr, pc), bytes);
        prop_assert_eq!(&got.msgs, &want);
        prop_assert!((got.locality_fraction() - want_loc).abs() < 1e-12);
        prop_assert_eq!(got.total_sends, (vr * vc) as u64);
    }

    /// The elementary shapes the paper actually sweeps (U(k)/L(k),
    /// including negative k) hit the closed-form fast path and still
    /// agree with the oracle.
    #[test]
    fn closed_form_matches_on_elementary_family(
        dr in any_dist(),
        dc in any_dist(),
        k in -8i64..9,
        upper in proptest::arbitrary::any::<bool>(),
        vr in 1usize..40, vc in 1usize..40,
        pr in 1usize..5, pc in 1usize..5,
    ) {
        let t = if upper {
            IMat::from_rows(&[&[1, k], &[0, 1]])
        } else {
            IMat::from_rows(&[&[1, 0], &[k, 1]])
        };
        let dist = Dist2D { rows: dr, cols: dc };
        let pat = general_pattern(&t, (vr, vc));
        let want = physical_messages(&pat, dist, (vr, vc), (pr, pc), 8);
        prop_assert_eq!(fold_general(&t, dist, (vr, vc), (pr, pc), 8).msgs, want);
    }

    /// The fused explicit-pattern fold agrees with the two separate
    /// passes it replaces.
    #[test]
    fn fused_fold_matches_separate_passes(
        dr in any_dist(),
        dc in any_dist(),
        k in -5i64..6,
        vr in 1usize..32, vc in 1usize..32,
        pr in 1usize..5, pc in 1usize..5,
        bytes in 1u64..32,
    ) {
        let dist = Dist2D { rows: dr, cols: dc };
        let pat = elementary_pattern(k, (vr, vc));
        let folded = fold_pattern(&pat, dist, (vr, vc), (pr, pc), bytes);
        prop_assert_eq!(
            &folded.msgs,
            &physical_messages(&pat, dist, (vr, vc), (pr, pc), bytes)
        );
        prop_assert_eq!(folded.total_sends, pat.len() as u64);
        let sep = locality_fraction(&pat, dist, (vr, vc), (pr, pc));
        prop_assert!((folded.locality_fraction() - sep).abs() < 1e-12);
    }

    /// Random unimodular `T` (a `product_general` of random shear/flip
    /// chains) through `fold_general` equals the enumeration oracle —
    /// message set (order included), locality and send counts — and the
    /// closed path fires for every one of them.
    #[test]
    fn random_unimodular_chain_matches_enumeration(
        dr in any_dist(),
        dc in any_dist(),
        t in unimodular_matrix(),
        vr in 1usize..26, vc in 1usize..26,
        pr in 1usize..5, pc in 1usize..5,
        bytes in 1u64..32,
    ) {
        let dist = Dist2D { rows: dr, cols: dc };
        let pat = general_pattern(&t, (vr, vc));
        let want = physical_messages(&pat, dist, (vr, vc), (pr, pc), bytes);
        let want_loc = locality_fraction(&pat, dist, (vr, vc), (pr, pc));
        let got = fold_general(&t, dist, (vr, vc), (pr, pc), bytes);
        prop_assert!(got.closed, "unimodular T={t:?} fell back to the dense fold");
        prop_assert_eq!(&got.msgs, &want);
        prop_assert!((got.locality_fraction() - want_loc).abs() < 1e-12);
        prop_assert_eq!(got.total_sends, (vr * vc) as u64);
    }

    /// Forcing the closed path never changes the fold: counts, locality
    /// and message order are bit-identical to the dense fold and the
    /// enumeration oracle for arbitrary affine maps (any `T`, any shift).
    #[test]
    fn forced_paths_agree_on_arbitrary_affine_maps(
        dr in any_dist(),
        dc in any_dist(),
        t00 in -4i64..5, t01 in -4i64..5, t10 in -4i64..5, t11 in -4i64..5,
        s0 in -30i64..31, s1 in -30i64..31,
        vr in 1usize..22, vc in 1usize..22,
        pr in 1usize..5, pc in 1usize..5,
    ) {
        let t = IMat::from_rows(&[&[t00, t01], &[t10, t11]]);
        let dist = Dist2D { rows: dr, cols: dc };
        let pat = affine_pattern(&t, (s0, s1), (vr, vc));
        let want = physical_messages(&pat, dist, (vr, vc), (pr, pc), 8);
        let closed = fold_affine_with(FoldPath::Closed, &t, (s0, s1), dist, (vr, vc), (pr, pc), 8);
        let dense = fold_affine_with(FoldPath::Dense, &t, (s0, s1), dist, (vr, vc), (pr, pc), 8);
        prop_assert!(closed.closed && !dense.closed);
        prop_assert_eq!(&closed.msgs, &want);
        // FoldedPattern equality covers msgs + local_sends + total_sends.
        prop_assert_eq!(closed, dense);
    }
}
