//! # rescomm-distribution — folding virtual processors onto physical grids
//!
//! Section 5 of the paper: after alignment, the virtual processor grid is
//! folded onto a (much smaller) physical grid. HPF offers `BLOCK`,
//! `CYCLIC` and `CYCLIC(B)` distributions; the paper introduces the
//! **grouped partition**, tailored to elementary communications: for a
//! dataflow matrix `U(k)`, virtual processor `(i, j)` sends to
//! `(i + k·j, j)`, so the row splits into `k` independent classes
//! (`class = i mod k`); the grouped partition makes each class contiguous
//! (permute `π(i) = (i mod k)·⌈V/k⌉ + ⌊i/k⌋`, then block), which turns the
//! communication into neighbour traffic inside each class.
//!
//! * [`Dist1D`] — the four one-dimensional schemes;
//! * [`Dist2D`] — per-axis composition (Fig. 7's two-dimensional grouped
//!   partition for `T = L·U`);
//! * [`msgs`] — turning a virtual communication pattern into an aggregated
//!   physical message set for the machine simulator.

pub mod closed;
pub mod msgs;

pub use closed::{fold_affine, fold_affine_with, fold_elementary, fold_general, FoldPath};
pub use msgs::{
    affine_pattern, elementary_pattern, fold_pattern, general_pattern, locality_fraction,
    physical_messages, FoldedPattern, Msg, VSend,
};

/// A one-dimensional virtual→physical folding scheme.
///
/// ```
/// use rescomm_distribution::Dist1D;
/// // Figure 6: 12 virtual processors, 3 classes, 4 physical processors.
/// let d = Dist1D::Grouped(3);
/// assert_eq!(d.map(0, 12, 4), 0);
/// assert_eq!(d.map(3, 12, 4), 0); // same class, same block
/// assert_eq!(d.map(1, 12, 4), 1); // next class starts a new block run
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dist1D {
    /// Contiguous blocks of `⌈V/P⌉` virtual processors.
    Block,
    /// Round-robin: `p = i mod P`.
    Cyclic,
    /// Blocks of `b` dealt round-robin: `p = ⌊i/b⌋ mod P`.
    CyclicBlock(usize),
    /// The paper's grouped partition for class count `k`: permute
    /// `π(i) = start(i mod k) + ⌊i/k⌋` (classes contiguous), then block.
    Grouped(usize),
}

impl Dist1D {
    /// Physical processor for virtual index `i ∈ [0, v)` on `p` physical
    /// processors.
    ///
    /// # Panics
    /// Panics if `i` is out of range or `p == 0`.
    pub fn map(&self, i: i64, v: usize, p: usize) -> usize {
        assert!(p > 0, "no physical processors");
        assert!(
            i >= 0 && (i as usize) < v,
            "virtual index {i} outside [0, {v})"
        );
        let i = i as usize;
        match *self {
            Dist1D::Block => {
                let bs = v.div_ceil(p);
                i / bs
            }
            Dist1D::Cyclic => i % p,
            Dist1D::CyclicBlock(b) => {
                assert!(b > 0, "CYCLIC(0) is meaningless");
                (i / b) % p
            }
            Dist1D::Grouped(k) => {
                assert!(k > 0, "grouped partition needs k ≥ 1");
                let pi = grouped_rank(i, v, k);
                let bs = v.div_ceil(p);
                pi / bs
            }
        }
    }
}

/// Rank of virtual index `i` in the grouped-partition order: classes
/// (`i mod k`) are laid out one after the other, each in increasing
/// `⌊i/k⌋` order. A bijection on `[0, v)` for every `k ≥ 1`.
pub fn grouped_rank(i: usize, v: usize, k: usize) -> usize {
    let c = i % k;
    let class_base = c * (v / k) + c.min(v % k);
    class_base + i / k
}

impl Dist1D {
    /// The virtual indices owned by physical processor `p` (the inverse
    /// of [`Dist1D::map`]), in increasing virtual order.
    pub fn owned(&self, proc: usize, v: usize, nprocs: usize) -> Vec<usize> {
        (0..v)
            .filter(|&i| self.map(i as i64, v, nprocs) == proc)
            .collect()
    }

    /// Number of virtual indices owned by each processor (load balance).
    pub fn load(&self, v: usize, nprocs: usize) -> Vec<usize> {
        let mut l = vec![0usize; nprocs];
        for i in 0..v {
            l[self.map(i as i64, v, nprocs)] += 1;
        }
        l
    }
}

/// A two-dimensional folding: independent schemes per axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dist2D {
    /// Scheme along the first (row-index) axis.
    pub rows: Dist1D,
    /// Scheme along the second (column-index) axis.
    pub cols: Dist1D,
}

impl Dist2D {
    /// Uniform scheme on both axes.
    pub fn uniform(d: Dist1D) -> Self {
        Dist2D { rows: d, cols: d }
    }

    /// Map virtual `(i, j)` on a `vshape` virtual grid to physical `(p, q)`
    /// on a `pshape` grid.
    pub fn map(
        &self,
        ij: (i64, i64),
        vshape: (usize, usize),
        pshape: (usize, usize),
    ) -> (usize, usize) {
        (
            self.rows.map(ij.0, vshape.0, pshape.0),
            self.cols.map(ij.1, vshape.1, pshape.1),
        )
    }
}

/// Derive the distribution best suited to a factor sequence (§5/Fig. 7):
/// for `T = L(l)·U(k)`, group rows by `|k|` (the `U` class count) and
/// columns by `|l|` (the `L` class count); coefficients 0/±1 need no
/// grouping and fall back to BLOCK.
pub fn scheme_for_factors(factors: &[rescomm_intlin::IMat]) -> Dist2D {
    let mut row_k = 1usize;
    let mut col_k = 1usize;
    for f in factors {
        assert_eq!(f.shape(), (2, 2), "factor schemes are 2-D");
        // U(k) = [[1,k],[0,1]] moves rows by k·j; L(l) moves columns.
        let k = f[(0, 1)].unsigned_abs() as usize;
        let l = f[(1, 0)].unsigned_abs() as usize;
        if k > 1 {
            row_k = row_k.max(k);
        }
        if l > 1 {
            col_k = col_k.max(l);
        }
    }
    Dist2D {
        rows: if row_k > 1 {
            Dist1D::Grouped(row_k)
        } else {
            Dist1D::Block
        },
        cols: if col_k > 1 {
            Dist1D::Grouped(col_k)
        } else {
            Dist1D::Block
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_layout() {
        let d = Dist1D::Block;
        // 12 virtuals on 4 procs: blocks of 3.
        let got: Vec<usize> = (0..12).map(|i| d.map(i, 12, 4)).collect();
        assert_eq!(got, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn cyclic_layout() {
        let d = Dist1D::Cyclic;
        let got: Vec<usize> = (0..8).map(|i| d.map(i, 8, 4)).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn cyclic_block_layout() {
        let d = Dist1D::CyclicBlock(2);
        let got: Vec<usize> = (0..12).map(|i| d.map(i, 12, 3)).collect();
        assert_eq!(got, vec![0, 0, 1, 1, 2, 2, 0, 0, 1, 1, 2, 2]);
    }

    /// Figure 6 of the paper: 12 virtual processors, k = 3, P = 4. The
    /// grouped order is 0,3,6,9 | 1,4,7,10 | 2,5,8,11 and blocks of 3 give
    /// processors {0,3,6}, {9,1,4}, {7,10,2}, {5,8,11}.
    #[test]
    fn figure6_grouped_layout() {
        let d = Dist1D::Grouped(3);
        let mut owners: Vec<Vec<usize>> = vec![Vec::new(); 4];
        for i in 0..12 {
            owners[d.map(i, 12, 4)].push(i as usize);
        }
        assert_eq!(owners[0], vec![0, 3, 6]);
        assert_eq!(owners[1], vec![1, 4, 9]); // {9,1,4} as a set
        assert_eq!(owners[2], vec![2, 7, 10]);
        assert_eq!(owners[3], vec![5, 8, 11]);
    }

    #[test]
    fn grouped_rank_is_bijective() {
        for v in 1..40usize {
            for k in 1..=v {
                let mut seen = vec![false; v];
                for i in 0..v {
                    let r = grouped_rank(i, v, k);
                    assert!(r < v, "rank {r} out of range (v={v}, k={k})");
                    assert!(!seen[r], "collision at rank {r} (v={v}, k={k})");
                    seen[r] = true;
                }
            }
        }
    }

    #[test]
    fn grouped_k1_is_block() {
        let g = Dist1D::Grouped(1);
        let b = Dist1D::Block;
        for i in 0..24 {
            assert_eq!(g.map(i, 24, 4), b.map(i, 24, 4));
        }
    }

    #[test]
    fn cyclic_is_grouped_with_k_equal_p() {
        // The paper: "the CYCLIC distribution performs well because it
        // amounts to the grouped partition with k = P" (for V = P·c the
        // class of i is i mod P = its cyclic owner).
        let g = Dist1D::Grouped(4);
        let c = Dist1D::Cyclic;
        for i in 0..16 {
            assert_eq!(g.map(i, 16, 4), c.map(i, 16, 4));
        }
    }

    #[test]
    fn all_schemes_stay_in_range() {
        for d in [
            Dist1D::Block,
            Dist1D::Cyclic,
            Dist1D::CyclicBlock(3),
            Dist1D::Grouped(5),
        ] {
            for v in [7usize, 12, 30] {
                for p in [1usize, 2, 4] {
                    for i in 0..v as i64 {
                        assert!(d.map(i, v, p) < p, "{d:?} v={v} p={p} i={i}");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_rejected() {
        Dist1D::Block.map(12, 12, 4);
    }

    #[test]
    fn owned_inverts_map() {
        for d in [Dist1D::Block, Dist1D::Cyclic, Dist1D::Grouped(3)] {
            let (v, p) = (24usize, 4usize);
            let mut all: Vec<usize> = Vec::new();
            for proc in 0..p {
                for i in d.owned(proc, v, p) {
                    assert_eq!(d.map(i as i64, v, p), proc);
                    all.push(i);
                }
            }
            all.sort();
            assert_eq!(all, (0..v).collect::<Vec<_>>(), "partition must cover");
        }
    }

    #[test]
    fn load_is_balanced_when_divisible() {
        for d in [
            Dist1D::Block,
            Dist1D::Cyclic,
            Dist1D::CyclicBlock(2),
            Dist1D::Grouped(4),
        ] {
            let l = d.load(16, 4);
            assert_eq!(l, vec![4, 4, 4, 4], "{d:?}");
        }
    }

    #[test]
    fn scheme_for_lu_factors_matches_figure7() {
        use rescomm_intlin::IMat;
        // T = L(2)·U(3): rows grouped by 3, columns by 2.
        let l = IMat::from_rows(&[&[1, 0], &[2, 1]]);
        let u = IMat::from_rows(&[&[1, 3], &[0, 1]]);
        let d = scheme_for_factors(&[l, u]);
        assert_eq!(d.rows, Dist1D::Grouped(3));
        assert_eq!(d.cols, Dist1D::Grouped(2));
        // Identity-ish factors need no grouping.
        let d2 = scheme_for_factors(&[IMat::identity(2)]);
        assert_eq!(d2.rows, Dist1D::Block);
        assert_eq!(d2.cols, Dist1D::Block);
    }

    #[test]
    fn dist2d_composes_axes() {
        let d = Dist2D {
            rows: Dist1D::Cyclic,
            cols: Dist1D::Block,
        };
        assert_eq!(d.map((5, 5), (8, 8), (4, 4)), (1, 2));
        let u = Dist2D::uniform(Dist1D::Cyclic);
        assert_eq!(u.map((5, 5), (8, 8), (4, 4)), (1, 1));
    }
}
