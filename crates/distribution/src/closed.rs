//! Closed-form physical message generation for affine dataflow patterns.
//!
//! [`crate::physical_messages`] enumerates every virtual processor and
//! folds it through the distribution — `O(V log V)` with a tree map, which
//! dominates the benchmark harness once the virtual grid reaches
//! production sizes (1024² and up). But the patterns the paper studies are
//! affine (`v → T·v + s mod vshape`), and all four distributions are
//! unions of **arithmetic-progression segments** `{i ≡ r (mod q),
//! i ∈ [lo, hi)}` mapped to one processor each. That structure admits
//! analytic aggregation for *every* integer `T`, not just the paper's
//! `U(k)`/`L(k)` families:
//!
//! Fix a source segment pair `(A, C)` (rows × columns) and a destination
//! segment pair `(B, D)`. Parameterize the sources as `i = r_A + q_A·u`,
//! `j = r_C + q_C·w`; the destination row is `f₁ mod v_r` with
//! `f₁ = t₀₀·i + t₀₁·j + s₀`, so for each wrap count
//! `k_r = ⌊f₁ / v_r⌋` (a small range read off the segment bounding box)
//! membership of the destination in `B` becomes one *linear congruence*
//! `t₀₀q_A·u + t₀₁q_C·w ≡ r_B + k_r·v_r − c (mod q_B)` plus one *linear
//! strip* `lo_B + k_r·v_r ≤ f₁ < hi_B + k_r·v_r`; same for columns. The
//! solution set of the two congruences is an affine sublattice of `ℤ²`,
//! brought to Hermite form `u = p_u + α·x`, `w = p_w + β·x + γ·y`; the
//! box and strip constraints become rational linear bounds on `y` as a
//! function of `x`, and the point count is a sum of `⌈·⌉`-differences,
//! evaluated exactly with the Euclid-style `floor_sum` recursion after
//! splitting the `x`-range at the (few) bound crossings. Total cost is
//! `O(S_r²·S_c²·K·polylog)` where `S` counts segments (a function of the
//! *physical* grid and the grouping factors) and `K` the wrap pairs — flat
//! in the virtual-grid area.
//!
//! A dense fallback (`O(V)` flat-table fold, no tree map) is kept both as
//! a differential oracle and for the rare shapes where it is genuinely
//! cheaper (tiny grids with non-unimodular `T`); [`FoldPath`] selects the
//! path, and every fold records which path fired in
//! [`FoldedPattern::closed`].
//!
//! Both paths return *exactly* the oracle's message set (same aggregation,
//! same sort order) plus the locality statistics of the same fold; the
//! property tests in `tests/proptests.rs` pin the equivalence against
//! [`crate::physical_messages`] over random matrices, random unimodular
//! factor chains, grids and all four distributions.

use crate::msgs::{FoldedPattern, Msg};
use crate::{Dist1D, Dist2D};
use rescomm_intlin::IMat;

/// One arithmetic-progression piece of a distribution's ownership map:
/// all `i ≡ r (mod q)` with `lo ≤ i < hi` belong to processor `proc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Seg {
    q: usize,
    r: usize,
    lo: usize,
    hi: usize,
    proc: usize,
}

/// Decompose a 1-D distribution of `v` virtuals over `p` processors into
/// disjoint segments covering `[0, v)`.
pub(crate) fn segments(d: Dist1D, v: usize, p: usize) -> Vec<Seg> {
    let mut segs = Vec::new();
    match d {
        Dist1D::Block => {
            let bs = v.div_ceil(p);
            for a in 0..p {
                let lo = (a * bs).min(v);
                let hi = ((a + 1) * bs).min(v);
                if lo < hi {
                    segs.push(Seg {
                        q: 1,
                        r: 0,
                        lo,
                        hi,
                        proc: a,
                    });
                }
            }
        }
        Dist1D::Cyclic => {
            for a in 0..p.min(v) {
                segs.push(Seg {
                    q: p,
                    r: a,
                    lo: 0,
                    hi: v,
                    proc: a,
                });
            }
        }
        Dist1D::CyclicBlock(b) => {
            assert!(b > 0, "CYCLIC(0) is meaningless");
            let q = b * p;
            for a in 0..p {
                for t in 0..b {
                    let r = a * b + t;
                    if r < v {
                        segs.push(Seg {
                            q,
                            r,
                            lo: 0,
                            hi: v,
                            proc: a,
                        });
                    }
                }
            }
        }
        Dist1D::Grouped(k) => {
            assert!(k > 0, "grouped partition needs k ≥ 1");
            let bs = v.div_ceil(p);
            for c in 0..k.min(v) {
                // Class c holds i = c, c+k, …; its ranks are contiguous.
                let n_c = (v - c).div_ceil(k);
                let base = c * (v / k) + c.min(v % k);
                let mut m0 = 0usize;
                while m0 < n_c {
                    let proc = (base + m0) / bs;
                    let run_end = ((proc + 1) * bs).saturating_sub(base).min(n_c);
                    segs.push(Seg {
                        q: k,
                        r: c,
                        lo: c + m0 * k,
                        hi: c + (run_end - 1) * k + 1,
                        proc,
                    });
                    m0 = run_end;
                }
            }
        }
    }
    segs
}

fn egcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, x, y) = egcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

/// Floor division for `b > 0` (Rust's `div_euclid` floors exactly then).
fn floor_div(a: i128, b: i128) -> i128 {
    a.div_euclid(b)
}

/// Ceiling division for `b > 0`.
fn ceil_div(a: i128, b: i128) -> i128 {
    a.div_euclid(b) + i128::from(a.rem_euclid(b) != 0)
}

/// `Σ_{x=0}^{n−1} ⌊(a·x + b) / m⌋` for `m > 0` and any signs of `a`, `b`,
/// in `O(log max(a, m))` — the Euclid-style recursion (each round swaps
/// the roles of slope and modulus, like the continued-fraction expansion
/// of `a/m`).
fn floor_sum(n: i128, m: i128, a: i128, b: i128) -> i128 {
    debug_assert!(m > 0 && n >= 0);
    let (mut n, mut m, mut a, mut b) = (n, m, a, b);
    let mut ans: i128 = 0;
    if a < 0 {
        let a2 = a.rem_euclid(m);
        ans -= n * (n - 1) / 2 * ((a2 - a) / m);
        a = a2;
    }
    if b < 0 {
        let b2 = b.rem_euclid(m);
        ans -= n * ((b2 - b) / m);
        b = b2;
    }
    loop {
        if a >= m {
            ans += n * (n - 1) / 2 * (a / m);
            a %= m;
        }
        if b >= m {
            ans += n * (b / m);
            b %= m;
        }
        let y_max = a * n + b;
        if y_max < m {
            return ans;
        }
        n = y_max / m;
        b = y_max % m;
        std::mem::swap(&mut m, &mut a);
    }
}

/// The solution set of linear congruences in two unknowns `(u, w)`, kept
/// as an affine lattice `(u, w) = p + x·v1 + y·v2` with `x, y ∈ ℤ`.
#[derive(Debug, Clone, Copy)]
struct Coset {
    p: (i128, i128),
    v1: (i128, i128),
    v2: (i128, i128),
}

impl Coset {
    /// All of `ℤ²`.
    fn full() -> Self {
        Coset {
            p: (0, 0),
            v1: (1, 0),
            v2: (0, 1),
        }
    }

    /// Intersect with `a·u + b·w ≡ e (mod m)`; `None` when empty.
    ///
    /// In the `(x, y)` coordinates of the current basis the constraint
    /// reads `A·x + B·y ≡ E (mod m)`; with `d = gcd(A, B)` its solutions
    /// are one residue class of `x·(s, t)` along the Bézout direction
    /// (step `m / gcd(d, m)`) plus the full kernel line `(B/d, −A/d)`.
    fn impose(self, a: i128, b: i128, e: i128, m: i128) -> Option<Coset> {
        debug_assert!(m > 0);
        if m == 1 {
            return Some(self);
        }
        let fa = (a * self.v1.0 + b * self.v1.1).rem_euclid(m);
        let fb = (a * self.v2.0 + b * self.v2.1).rem_euclid(m);
        let fe = (e - a * self.p.0 - b * self.p.1).rem_euclid(m);
        if fa == 0 && fb == 0 {
            return (fe == 0).then_some(self);
        }
        let (d, s, t) = egcd(fa, fb);
        let (g, _, _) = egcd(d, m);
        if fe % g != 0 {
            return None;
        }
        let mg = m / g;
        let (_, inv, _) = egcd((d / g) % mg, mg);
        let x0 = ((fe / g) % mg * inv.rem_euclid(mg)).rem_euclid(mg);
        let dir = (s * self.v1.0 + t * self.v2.0, s * self.v1.1 + t * self.v2.1);
        let ker = (
            fb / d * self.v1.0 - fa / d * self.v2.0,
            fb / d * self.v1.1 - fa / d * self.v2.1,
        );
        Some(Coset {
            p: (self.p.0 + x0 * dir.0, self.p.1 + x0 * dir.1),
            v1: (mg * dir.0, mg * dir.1),
            v2: ker,
        })
    }

    /// Hermite form of the basis: `u = p_u + α·x`, `w = p_w + β·x + γ·y`
    /// with `α, γ > 0` and `0 ≤ β < γ` (a unimodular change of `(x, y)`,
    /// so it enumerates exactly the same points).
    fn hnf(&self) -> (i128, i128, i128, i128, i128) {
        let (au, bu) = (self.v1.0, self.v2.0);
        let (mut g, mut s, mut t) = egcd(au, bu);
        if g < 0 {
            (g, s, t) = (-g, -s, -t);
        }
        debug_assert!(g > 0, "congruence lattice lost full rank");
        let beta = s * self.v1.1 + t * self.v2.1;
        let mut gamma = (au / g) * self.v2.1 - (bu / g) * self.v1.1;
        if gamma < 0 {
            gamma = -gamma;
        }
        debug_assert!(gamma > 0, "congruence lattice lost full rank");
        (self.p.0, self.p.1, g, beta.rem_euclid(gamma), gamma)
    }
}

/// A bound on `y` of the form `⌈(m·x + n) / d⌉` with `d > 0` — either an
/// inclusive lower bound or an exclusive upper bound.
#[derive(Debug, Clone, Copy)]
struct Arm {
    m: i128,
    n: i128,
    d: i128,
}

impl Arm {
    /// The underlying rational `(m·x + n)/d` at `x`, compared exactly.
    fn le_at(&self, other: &Arm, x: i128) -> bool {
        (self.m * x + self.n) * other.d <= (other.m * x + other.n) * self.d
    }

    /// `Σ_{x=s}^{e−1} ⌈(m·x + n)/d⌉` via `⌈p/q⌉ = ⌊(p−1)/q⌋ + 1`.
    fn ceil_sum(&self, s: i128, e: i128) -> i128 {
        let cnt = e - s;
        floor_sum(cnt, self.d, self.m, self.m * s + self.n - 1) + cnt
    }
}

/// Count the points of the affine lattice `u = p_u + α·x`,
/// `w = p_w + β·x + γ·y` inside the box `[u_lo, u_hi) × [w_lo, w_hi)`
/// that also satisfy every strip `l ≤ c_u·u + c_w·w < h`.
///
/// Each constraint becomes `l ≤ C + D·x + E·y < h`; constraints with
/// `E ≠ 0` turn into rational bound arms on `y`, constraints with `E = 0`
/// clip the `x`-range. The `x`-range is split at every pairwise crossing
/// of the arms, so within a piece the active max-lower / min-upper arms
/// (and the sign of their gap) are fixed and the piece sums in `O(log)`.
fn count_coset_box(
    (pu, pw, alpha, beta, gamma): (i128, i128, i128, i128, i128),
    (ulo, uhi): (i128, i128),
    (wlo, whi): (i128, i128),
    strips: &[(i128, i128, i128, i128)],
) -> i128 {
    let mut xlo = ceil_div(ulo - pu, alpha);
    let mut xhi = ceil_div(uhi - pu, alpha);
    let mut lowers: Vec<Arm> = Vec::with_capacity(3);
    let mut uppers: Vec<Arm> = Vec::with_capacity(3);
    // The w-box is the strip `w_lo ≤ 0·u + 1·w < w_hi`.
    let all = [&[(0, 1, wlo, whi)], strips].concat();
    for &(cu, cw, l, h) in &all {
        let c = cu * pu + cw * pw;
        let dcoef = cu * alpha + cw * beta;
        let e = cw * gamma;
        if e > 0 {
            lowers.push(Arm {
                m: -dcoef,
                n: l - c,
                d: e,
            });
            uppers.push(Arm {
                m: -dcoef,
                n: h - c,
                d: e,
            });
        } else if e < 0 {
            let d = -e;
            lowers.push(Arm {
                m: dcoef,
                n: c - h + 1,
                d,
            });
            uppers.push(Arm {
                m: dcoef,
                n: c - l + 1,
                d,
            });
        } else if dcoef == 0 {
            if !(l <= c && c < h) {
                return 0;
            }
        } else if dcoef > 0 {
            xlo = xlo.max(ceil_div(l - c, dcoef));
            xhi = xhi.min(ceil_div(h - c, dcoef));
        } else {
            xlo = xlo.max(floor_div(c - h, -dcoef) + 1);
            xhi = xhi.min(floor_div(c - l, -dcoef) + 1);
        }
    }
    if xhi <= xlo {
        return 0;
    }
    // Split at every pairwise rational crossing: between breakpoints the
    // pointwise max of the lower arms and min of the upper arms keep the
    // same witness, and ⌈max·⌉ = max⌈·⌉ (ceil is monotone), so each piece
    // reduces to one pair of floor_sum calls.
    let arms: Vec<Arm> = lowers.iter().chain(uppers.iter()).copied().collect();
    let mut bps: Vec<i128> = vec![xlo];
    for (i, a) in arms.iter().enumerate() {
        for b in arms.iter().skip(i + 1) {
            let mut coef = a.m * b.d - b.m * a.d;
            if coef == 0 {
                continue;
            }
            let mut rhs = b.n * a.d - a.n * b.d;
            if coef < 0 {
                (coef, rhs) = (-coef, -rhs);
            }
            let bp = floor_div(rhs, coef) + 1;
            if bp > xlo && bp < xhi {
                bps.push(bp);
            }
        }
    }
    bps.sort_unstable();
    bps.dedup();
    let mut total: i128 = 0;
    for (idx, &s) in bps.iter().enumerate() {
        let e = bps.get(idx + 1).copied().unwrap_or(xhi);
        let low = lowers
            .iter()
            .copied()
            .reduce(|best, c| if best.le_at(&c, s) { c } else { best })
            .expect("w-box always contributes a lower arm");
        let up = uppers
            .iter()
            .copied()
            .reduce(|best, c| if c.le_at(&best, s) { c } else { best })
            .expect("w-box always contributes an upper arm");
        // Sign of (upper − lower) is constant inside the piece: if the
        // upper rational sits below the lower one, every x counts zero.
        if low.le_at(&up, s) {
            total += up.ceil_sum(s, e) - low.ceil_sum(s, e);
        }
    }
    total
}

/// Range of `coef·x` over `x ∈ [lo, hi]`.
fn axis_range(coef: i128, lo: i128, hi: i128) -> (i128, i128) {
    if coef >= 0 {
        (coef * lo, coef * hi)
    } else {
        (coef * hi, coef * lo)
    }
}

/// Closed-form fold of `v → T·v + s mod vshape`: the flat `(P²)²` count
/// table, produced without enumerating the virtual grid. Works for every
/// integer `T` (unimodular or not, even singular).
fn fold_closed(
    t: &IMat,
    shift: (i64, i64),
    dist: Dist2D,
    (vr, vc): (usize, usize),
    (pr, pc): (usize, usize),
) -> Vec<u64> {
    let np = pr * pc;
    let mut counts = vec![0u64; np * np];
    let segs_r = segments(dist.rows, vr, pr);
    let segs_c = segments(dist.cols, vc, pc);
    let (t00, t01) = (t[(0, 0)] as i128, t[(0, 1)] as i128);
    let (t10, t11) = (t[(1, 0)] as i128, t[(1, 1)] as i128);
    let (s0, s1) = (shift.0 as i128, shift.1 as i128);
    let (vri, vci) = (vr as i128, vc as i128);
    for a in &segs_r {
        let (qa, ra) = (a.q as i128, a.r as i128);
        let ulo = ceil_div(a.lo as i128 - ra, qa);
        let uhi = floor_div(a.hi as i128 - 1 - ra, qa) + 1;
        if uhi <= ulo {
            continue;
        }
        let (imin, imax) = (ra + qa * ulo, ra + qa * (uhi - 1));
        for c in &segs_c {
            let (qc, rc) = (c.q as i128, c.r as i128);
            let wlo = ceil_div(c.lo as i128 - rc, qc);
            let whi = floor_div(c.hi as i128 - 1 - rc, qc) + 1;
            if whi <= wlo {
                continue;
            }
            let (jmin, jmax) = (rc + qc * wlo, rc + qc * (whi - 1));
            // Bounding box of f₁ = t₀₀·i + t₀₁·j + s₀ (destination row
            // before wrap) over this source box, and same for f₂.
            let (r1, r2) = (axis_range(t00, imin, imax), axis_range(t01, jmin, jmax));
            let f1 = (r1.0 + r2.0 + s0, r1.1 + r2.1 + s0);
            let (r3, r4) = (axis_range(t10, imin, imax), axis_range(t11, jmin, jmax));
            let f2 = (r3.0 + r4.0 + s1, r3.1 + r4.1 + s1);
            // Constants of the linear forms in (u, w) coordinates.
            let c1 = t00 * ra + t01 * rc + s0;
            let c2 = t10 * ra + t11 * rc + s1;
            let src = (a.proc * pc + c.proc) * np;
            for kr in floor_div(f1.0, vri)..=floor_div(f1.1, vri) {
                for b in &segs_r {
                    let (blo, bhi) = (b.lo as i128 + kr * vri, b.hi as i128 + kr * vri);
                    if bhi <= f1.0 || blo > f1.1 {
                        continue;
                    }
                    let row = Coset::full().impose(
                        t00 * qa,
                        t01 * qc,
                        b.r as i128 + kr * vri - c1,
                        b.q as i128,
                    );
                    let Some(row) = row else { continue };
                    for kc in floor_div(f2.0, vci)..=floor_div(f2.1, vci) {
                        for d in &segs_c {
                            let (dlo, dhi) = (d.lo as i128 + kc * vci, d.hi as i128 + kc * vci);
                            if dhi <= f2.0 || dlo > f2.1 {
                                continue;
                            }
                            let both = row.impose(
                                t10 * qa,
                                t11 * qc,
                                d.r as i128 + kc * vci - c2,
                                d.q as i128,
                            );
                            let Some(both) = both else { continue };
                            let strips = [
                                (t00 * qa, t01 * qc, blo - c1, bhi - c1),
                                (t10 * qa, t11 * qc, dlo - c2, dhi - c2),
                            ];
                            let n = count_coset_box(both.hnf(), (ulo, uhi), (wlo, whi), &strips);
                            debug_assert!(n >= 0);
                            if n > 0 {
                                counts[src + b.proc * pc + d.proc] += n as u64;
                            }
                        }
                    }
                }
            }
        }
    }
    counts
}

/// Dense fallback for arbitrary `T` and shift: still `O(V)`, but with
/// both axis images and both ownership maps precomputed into flat tables,
/// and the aggregation done in a flat count array — no tree map, no
/// per-element matrix multiply. Kept as a differential oracle for the
/// closed path and for tiny grids where table setup beats the algebra.
fn fold_dense(
    t: &IMat,
    shift: (i64, i64),
    dist: Dist2D,
    (vr, vc): (usize, usize),
    (pr, pc): (usize, usize),
) -> Vec<u64> {
    let np = pr * pc;
    let (t00, t01, t10, t11) = (t[(0, 0)], t[(0, 1)], t[(1, 0)], t[(1, 1)]);
    let (vri, vci) = (vr as i64, vc as i64);
    let rmap: Vec<usize> = (0..vr).map(|i| dist.rows.map(i as i64, vr, pr)).collect();
    let cmap: Vec<usize> = (0..vc).map(|j| dist.cols.map(j as i64, vc, pc)).collect();
    let row_i: Vec<usize> = (0..vri)
        .map(|i| (t00 * i + shift.0).rem_euclid(vri) as usize)
        .collect();
    let row_j: Vec<usize> = (0..vci)
        .map(|j| (t01 * j).rem_euclid(vri) as usize)
        .collect();
    let col_i: Vec<usize> = (0..vri)
        .map(|i| (t10 * i + shift.1).rem_euclid(vci) as usize)
        .collect();
    let col_j: Vec<usize> = (0..vci)
        .map(|j| (t11 * j).rem_euclid(vci) as usize)
        .collect();
    let mut counts = vec![0u64; np * np];
    for i in 0..vr {
        let (ri, ci) = (row_i[i], col_i[i]);
        let src_row = rmap[i] * pc;
        for j in 0..vc {
            let mut di = ri + row_j[j];
            if di >= vr {
                di -= vr;
            }
            let mut dj = ci + col_j[j];
            if dj >= vc {
                dj -= vc;
            }
            let src = src_row + cmap[j];
            let dst = rmap[di] * pc + cmap[dj];
            counts[src * np + dst] += 1;
        }
    }
    counts
}

/// Extract the sorted non-local message list from a flat count table
/// (shared with [`crate::msgs::fold_pattern`]).
pub(crate) fn msgs_from_counts(
    counts: &[u64],
    (pr, pc): (usize, usize),
    elem_bytes: u64,
) -> Vec<Msg> {
    let np = pr * pc;
    let mut msgs = Vec::new();
    for sp in 0..np {
        for dp in 0..np {
            let n = counts[sp * np + dp];
            if n > 0 && sp != dp {
                msgs.push(Msg {
                    src: (sp / pc, sp % pc),
                    dst: (dp / pc, dp % pc),
                    bytes: n * elem_bytes,
                });
            }
        }
    }
    msgs
}

/// Which fold implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FoldPath {
    /// Cost-model choice. Unimodular `T` always takes the closed path
    /// (its cost is flat in the virtual-grid area, which is the whole
    /// point of the simulator); otherwise the closed path is taken when
    /// its op estimate undercuts the dense `O(V)` fold.
    #[default]
    Auto,
    /// Force the closed residue-class path.
    Closed,
    /// Force the dense flat-table fold.
    Dense,
}

/// Rough per-call op weight of one segment-tuple count (lattice solve,
/// crossing analysis, a few `floor_sum`s).
const TUPLE_OPS: u128 = 320;
/// Per-element op weight of the dense fold's inner loop.
const DENSE_OPS: u128 = 6;

/// Upper bound on the closed path's work, in the same op units as
/// [`dense_cost`]. The old heuristic compared a shift count against
/// `V / 2` with truncating integer division, which underestimated the
/// dense side on small grids; this one prices both sides explicitly.
fn closed_cost(
    t: &IMat,
    shift: (i64, i64),
    dist: Dist2D,
    vshape: (usize, usize),
    pshape: (usize, usize),
) -> u128 {
    let (vr, vc) = (vshape.0 as i128, vshape.1 as i128);
    let sr = segments(dist.rows, vshape.0, pshape.0).len() as u128;
    let sc = segments(dist.cols, vshape.1, pshape.1).len() as u128;
    let span = |a: i128, b: i128, s: i128, v: i128| -> u128 {
        let (r1, r2) = (axis_range(a, 0, vr - 1), axis_range(b, 0, vc - 1));
        let (lo, hi) = (r1.0 + r2.0 + s, r1.1 + r2.1 + s);
        (floor_div(hi, v) - floor_div(lo, v) + 1) as u128
    };
    let kr = span(t[(0, 0)] as i128, t[(0, 1)] as i128, shift.0 as i128, vr);
    let kc = span(t[(1, 0)] as i128, t[(1, 1)] as i128, shift.1 as i128, vc);
    (sr * sr)
        .saturating_mul(sc * sc)
        .saturating_mul(kr)
        .saturating_mul(kc)
        .saturating_mul(TUPLE_OPS)
}

/// Op estimate of the dense fold (inner loop plus table setup).
fn dense_cost(vshape: (usize, usize)) -> u128 {
    (vshape.0 as u128) * (vshape.1 as u128) * DENSE_OPS + (vshape.0 + vshape.1) as u128 * 8
}

/// Factor count of `T`'s unirow chain (0 when `T` is singular or the
/// identity) — surfaced in [`FoldedPattern::factors`] so benches can
/// report the decomposition depth alongside the fold path.
fn factor_count(t: &IMat) -> usize {
    rescomm_decompose::decompose_general(t).map_or(0, |f| f.len())
}

/// Generate the physical message set of the affine pattern
/// `v → T·v + shift mod vshape` under `dist` with an explicit path
/// choice. Identical to
/// `physical_messages(&affine_pattern(t, shift, vshape), dist, …)` —
/// same aggregation, same order — and also reports the locality of the
/// fold and which path produced it.
pub fn fold_affine_with(
    path: FoldPath,
    t: &IMat,
    shift: (i64, i64),
    dist: Dist2D,
    vshape: (usize, usize),
    pshape: (usize, usize),
    elem_bytes: u64,
) -> FoldedPattern {
    assert_eq!(t.shape(), (2, 2));
    let use_closed = match path {
        FoldPath::Closed => true,
        FoldPath::Dense => false,
        FoldPath::Auto => {
            let det = t[(0, 0)] as i128 * t[(1, 1)] as i128 - t[(0, 1)] as i128 * t[(1, 0)] as i128;
            det.abs() == 1 || closed_cost(t, shift, dist, vshape, pshape) < dense_cost(vshape)
        }
    };
    let counts = if use_closed {
        fold_closed(t, shift, dist, vshape, pshape)
    } else {
        fold_dense(t, shift, dist, vshape, pshape)
    };
    let np = pshape.0 * pshape.1;
    let mut local = 0u64;
    for p in 0..np {
        local += counts[p * np + p];
    }
    FoldedPattern {
        msgs: msgs_from_counts(&counts, pshape, elem_bytes),
        local_sends: local,
        total_sends: (vshape.0 * vshape.1) as u64,
        closed: use_closed,
        factors: factor_count(t),
    }
}

/// [`fold_affine_with`] under the [`FoldPath::Auto`] cost model.
pub fn fold_affine(
    t: &IMat,
    shift: (i64, i64),
    dist: Dist2D,
    vshape: (usize, usize),
    pshape: (usize, usize),
    elem_bytes: u64,
) -> FoldedPattern {
    fold_affine_with(FoldPath::Auto, t, shift, dist, vshape, pshape, elem_bytes)
}

/// Generate the physical message set of the linear pattern
/// `v → T·v mod vshape` under `dist` **without enumerating the virtual
/// grid** — the closed residue-class path fires for every unimodular `T`
/// (and for any `T` where the cost model favors it).
///
/// Identical to
/// `physical_messages(&general_pattern(t, vshape), dist, …)` — same
/// aggregation, same order — and also reports the locality of the fold.
pub fn fold_general(
    t: &IMat,
    dist: Dist2D,
    vshape: (usize, usize),
    pshape: (usize, usize),
    elem_bytes: u64,
) -> FoldedPattern {
    fold_affine_with(FoldPath::Auto, t, (0, 0), dist, vshape, pshape, elem_bytes)
}

/// Closed-form fold of the elementary `U(k)` pattern
/// (`(i, j) → (i + k·j, j)`, the paper's Figure 6) — a thin delegate to
/// [`fold_general`], so it rides the same closed path.
pub fn fold_elementary(
    k: i64,
    dist: Dist2D,
    vshape: (usize, usize),
    pshape: (usize, usize),
    elem_bytes: u64,
) -> FoldedPattern {
    let t = IMat::from_rows(&[&[1, k], &[0, 1]]);
    fold_general(&t, dist, vshape, pshape, elem_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msgs::{affine_pattern, general_pattern, locality_fraction, physical_messages};

    const DISTS: [Dist1D; 4] = [
        Dist1D::Block,
        Dist1D::Cyclic,
        Dist1D::CyclicBlock(2),
        Dist1D::Grouped(3),
    ];

    fn oracle(
        t: &IMat,
        dist: Dist2D,
        vshape: (usize, usize),
        pshape: (usize, usize),
        elem_bytes: u64,
    ) -> (Vec<Msg>, f64) {
        let pat = general_pattern(t, vshape);
        (
            physical_messages(&pat, dist, vshape, pshape, elem_bytes),
            locality_fraction(&pat, dist, vshape, pshape),
        )
    }

    fn check(t: &IMat, dist: Dist2D, vshape: (usize, usize), pshape: (usize, usize)) {
        let (want, want_loc) = oracle(t, dist, vshape, pshape, 8);
        for path in [FoldPath::Auto, FoldPath::Closed, FoldPath::Dense] {
            let got = fold_affine_with(path, t, (0, 0), dist, vshape, pshape, 8);
            assert_eq!(
                got.msgs, want,
                "{path:?} T={t:?} dist={dist:?} v={vshape:?} p={pshape:?}"
            );
            assert!(
                (got.locality_fraction() - want_loc).abs() < 1e-12,
                "locality mismatch for {path:?} T={t:?} dist={dist:?}"
            );
            assert_eq!(got.total_sends, (vshape.0 * vshape.1) as u64);
        }
    }

    #[test]
    fn segments_partition_every_distribution() {
        for d in DISTS {
            for v in [1usize, 7, 12, 30] {
                for p in [1usize, 2, 4] {
                    let segs = segments(d, v, p);
                    let mut owner = vec![None; v];
                    for s in &segs {
                        let mut i = if s.lo % s.q == s.r {
                            s.lo
                        } else {
                            s.lo + (s.r + s.q - s.lo % s.q) % s.q
                        };
                        while i < s.hi {
                            assert!(owner[i].is_none(), "{d:?} v={v} p={p}: i={i} twice");
                            owner[i] = Some(s.proc);
                            i += s.q;
                        }
                    }
                    for (i, o) in owner.iter().enumerate() {
                        assert_eq!(*o, Some(d.map(i as i64, v, p)), "{d:?} v={v} p={p} i={i}");
                    }
                }
            }
        }
    }

    #[test]
    fn floor_sum_matches_brute_force() {
        for n in 0..8i128 {
            for m in 1..7i128 {
                for a in -9..10i128 {
                    for b in -9..10i128 {
                        let want: i128 = (0..n).map(|x| (a * x + b).div_euclid(m)).sum();
                        assert_eq!(floor_sum(n, m, a, b), want, "n={n} m={m} a={a} b={b}");
                    }
                }
            }
        }
    }

    #[test]
    fn coset_impose_matches_enumeration() {
        // Every (a, b, e, m) system over a window: the coset reproduces
        // exactly the brute-force solution set.
        for m1 in 1..5i128 {
            for m2 in 1..5i128 {
                for a1 in -2..3i128 {
                    for b1 in -2..3i128 {
                        for a2 in -2..3i128 {
                            let (e1, e2, b2) = (1i128, 2i128, 1i128);
                            let coset = Coset::full()
                                .impose(a1, b1, e1, m1)
                                .and_then(|c| c.impose(a2, b2, e2, m2));
                            let mut want = Vec::new();
                            for u in -12..12i128 {
                                for w in -12..12i128 {
                                    if (a1 * u + b1 * w - e1).rem_euclid(m1) == 0
                                        && (a2 * u + b2 * w - e2).rem_euclid(m2) == 0
                                    {
                                        want.push((u, w));
                                    }
                                }
                            }
                            match coset {
                                None => assert!(want.is_empty(), "{a1},{b1},{m1} {a2},{b2},{m2}"),
                                Some(c) => {
                                    let (pu, pw, al, be, ga) = c.hnf();
                                    let mut got = Vec::new();
                                    for x in -40..40i128 {
                                        for y in -40..40i128 {
                                            let (u, w) = (pu + al * x, pw + be * x + ga * y);
                                            if (-12..12).contains(&u) && (-12..12).contains(&w) {
                                                got.push((u, w));
                                            }
                                        }
                                    }
                                    got.sort_unstable();
                                    assert_eq!(got, want, "{a1},{b1},{m1} {a2},{b2},{m2}");
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn uk_matches_oracle_across_distributions() {
        for dr in DISTS {
            for dc in DISTS {
                let dist = Dist2D { rows: dr, cols: dc };
                for k in [0i64, 1, 3, 5, -2] {
                    let t = IMat::from_rows(&[&[1, k], &[0, 1]]);
                    check(&t, dist, (24, 12), (4, 2));
                }
            }
        }
    }

    #[test]
    fn lk_transposed_case_matches_oracle() {
        for d in DISTS {
            let dist = Dist2D::uniform(d);
            for l in [2i64, 4, -3] {
                let t = IMat::from_rows(&[&[1, 0], &[l, 1]]);
                check(&t, dist, (12, 24), (2, 4));
            }
        }
    }

    #[test]
    fn reflections_match_oracle() {
        for d in DISTS {
            let dist = Dist2D::uniform(d);
            check(
                &IMat::from_rows(&[&[-1, 2], &[0, 1]]),
                dist,
                (18, 10),
                (3, 2),
            );
            check(
                &IMat::from_rows(&[&[1, 0], &[3, -1]]),
                dist,
                (10, 18),
                (2, 3),
            );
        }
    }

    #[test]
    fn fully_coupled_matrices_match_oracle() {
        let dist = Dist2D {
            rows: Dist1D::Grouped(3),
            cols: Dist1D::Cyclic,
        };
        // Neither axis pure: previously dense-only, now closed.
        check(
            &IMat::from_rows(&[&[1, 3], &[2, 7]]),
            dist,
            (18, 12),
            (3, 2),
        );
        check(
            &IMat::from_rows(&[&[2, 1], &[1, 2]]),
            dist,
            (16, 16),
            (4, 4),
        );
        // Rotation and coordinate swap.
        check(
            &IMat::from_rows(&[&[0, -1], &[1, 0]]),
            dist,
            (18, 12),
            (3, 2),
        );
        check(
            &IMat::from_rows(&[&[0, 1], &[1, 0]]),
            dist,
            (12, 12),
            (2, 2),
        );
        // Singular and scaling matrices exercise the same counting core.
        check(
            &IMat::from_rows(&[&[2, 4], &[1, 2]]),
            dist,
            (18, 12),
            (3, 2),
        );
        check(
            &IMat::from_rows(&[&[3, 0], &[0, 2]]),
            dist,
            (18, 12),
            (3, 2),
        );
    }

    #[test]
    fn affine_shift_matches_oracle() {
        let dist = Dist2D {
            rows: Dist1D::Grouped(5),
            cols: Dist1D::CyclicBlock(3),
        };
        for t in [
            IMat::identity(2),
            IMat::from_rows(&[&[1, 1], &[1, 2]]),
            IMat::from_rows(&[&[-1, 2], &[3, 1]]),
        ] {
            for shift in [(0i64, 0i64), (5, -3), (-17, 40)] {
                let pat = affine_pattern(&t, shift, (13, 9));
                let want = physical_messages(&pat, dist, (13, 9), (3, 2), 8);
                for path in [FoldPath::Closed, FoldPath::Dense] {
                    let got = fold_affine_with(path, &t, shift, dist, (13, 9), (3, 2), 8);
                    assert_eq!(got.msgs, want, "{path:?} T={t:?} shift={shift:?}");
                }
            }
        }
    }

    #[test]
    fn ragged_and_degenerate_shapes() {
        let dist = Dist2D {
            rows: Dist1D::Grouped(5),
            cols: Dist1D::CyclicBlock(3),
        };
        // v not divisible by p, k, or b; 1-wide axes; single processor.
        check(&IMat::from_rows(&[&[1, 2], &[0, 1]]), dist, (13, 7), (3, 2));
        check(&IMat::from_rows(&[&[1, 1], &[0, 1]]), dist, (1, 7), (1, 2));
        check(&IMat::from_rows(&[&[1, 4], &[0, 1]]), dist, (9, 1), (2, 1));
        check(
            &IMat::from_rows(&[&[1, 2], &[0, 1]]),
            Dist2D::uniform(Dist1D::Block),
            (8, 8),
            (1, 1),
        );
    }

    #[test]
    fn unimodular_always_takes_closed_path() {
        // Even on grids small enough that the dense fold would be cheap:
        // path choice must be a function of T alone so one simulated
        // scenario stands in for a million-VP machine.
        for t in [
            IMat::from_rows(&[&[1, 1], &[1, 2]]),
            IMat::from_rows(&[&[0, -1], &[1, 0]]),
            IMat::from_rows(&[&[0, 1], &[1, 0]]),
            IMat::from_rows(&[&[1, 3], &[2, 7]]),
        ] {
            let got = fold_general(&t, Dist2D::uniform(Dist1D::Block), (8, 8), (2, 2), 8);
            assert!(got.closed, "T={t:?} fell back to the dense fold");
            assert!(got.factors > 0, "T={t:?} reported no factors");
        }
    }

    #[test]
    fn non_unimodular_tiny_grid_prefers_dense() {
        // det = 4 on an 8×8 grid: the dense fold is cheaper than the
        // segment algebra and Auto must say so.
        let t = IMat::from_rows(&[&[2, 0], &[0, 2]]);
        let got = fold_general(&t, Dist2D::uniform(Dist1D::Grouped(3)), (8, 8), (2, 2), 8);
        assert!(!got.closed);
        // …but forcing the closed path still yields identical data.
        let forced = fold_affine_with(
            FoldPath::Closed,
            &t,
            (0, 0),
            Dist2D::uniform(Dist1D::Grouped(3)),
            (8, 8),
            (2, 2),
            8,
        );
        assert!(forced.closed);
        assert_eq!(forced, got, "path metadata must not affect equality");
    }

    #[test]
    fn elementary_helper_matches_general() {
        let dist = Dist2D {
            rows: Dist1D::Grouped(3),
            cols: Dist1D::Block,
        };
        let via_t = fold_general(
            &IMat::from_rows(&[&[1, 3], &[0, 1]]),
            dist,
            (24, 8),
            (4, 2),
            16,
        );
        assert_eq!(fold_elementary(3, dist, (24, 8), (4, 2), 16), via_t);
        assert!(via_t.closed, "U(3) must ride the closed path");
    }

    #[test]
    fn elementary_identity_is_closed_and_fully_local() {
        // Pins fold_elementary's delegation through the general path:
        // U(0) = identity must take the closed path, move nothing, and
        // report a zero-length factor chain.
        let got = fold_elementary(0, Dist2D::uniform(Dist1D::Block), (8, 8), (4, 4), 8);
        assert!(got.msgs.is_empty());
        assert_eq!(got.local_sends, 64);
        assert_eq!(got.locality_fraction(), 1.0);
        assert!(got.closed);
        assert_eq!(got.factors, 0);
    }

    #[test]
    fn identity_is_fully_local() {
        let got = fold_general(
            &IMat::identity(2),
            Dist2D::uniform(Dist1D::Block),
            (8, 8),
            (4, 4),
            8,
        );
        assert!(got.msgs.is_empty());
        assert_eq!(got.local_sends, 64);
        assert_eq!(got.locality_fraction(), 1.0);
    }
}
