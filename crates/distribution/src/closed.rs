//! Closed-form physical message generation for affine dataflow patterns.
//!
//! [`crate::physical_messages`] enumerates every virtual processor and
//! folds it through the distribution — `O(V log V)` with a tree map, which
//! dominates the benchmark harness once the virtual grid reaches
//! production sizes (1024² and up). But the patterns the paper studies are
//! affine (`v → T·v mod vshape`), and all four distributions are unions of
//! **arithmetic-progression segments** `{i ≡ r (mod q), i ∈ [lo, hi)}`
//! mapped to one processor each. That structure admits analytic
//! aggregation:
//!
//! * when one axis of `T` is *pure* (the destination coordinate depends on
//!   one source coordinate only) and the coupled axis is a shift or a
//!   reflection (coefficient ±1) — which covers the paper's `U(k)`,
//!   `L(k)`, identity, transpositions and reflections — each value of the
//!   driving coordinate contributes a whole *shift-transition matrix*
//!   `R_s[a][b] = #{i : owner(i) = a ∧ owner((±i + s) mod v) = b}`,
//!   computed per segment pair with a CRT interval count and memoized per
//!   distinct shift. Cost: `O(vc·P² + D·S²)` instead of `O(V log V)`,
//!   where `D` is the number of distinct shifts and `S` the number of
//!   segments — independent of the grid height;
//! * for general `T` a dense fallback still avoids the tree map: fold
//!   both axes through precomputed per-axis tables into a flat
//!   `P²×P²` count array — `O(V)` with a handful of adds per element.
//!
//! Both paths return *exactly* the oracle's message set (same aggregation,
//! same sort order) plus the locality statistics of the same fold; the
//! property tests in `tests/proptests.rs` pin the equivalence against
//! [`crate::physical_messages`] over random matrices, grids and all four
//! distributions.

use crate::msgs::{FoldedPattern, Msg};
use crate::{Dist1D, Dist2D};
use rescomm_intlin::IMat;
use std::collections::HashMap;

/// One arithmetic-progression piece of a distribution's ownership map:
/// all `i ≡ r (mod q)` with `lo ≤ i < hi` belong to processor `proc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Seg {
    q: usize,
    r: usize,
    lo: usize,
    hi: usize,
    proc: usize,
}

/// Decompose a 1-D distribution of `v` virtuals over `p` processors into
/// disjoint segments covering `[0, v)`.
pub(crate) fn segments(d: Dist1D, v: usize, p: usize) -> Vec<Seg> {
    let mut segs = Vec::new();
    match d {
        Dist1D::Block => {
            let bs = v.div_ceil(p);
            for a in 0..p {
                let lo = (a * bs).min(v);
                let hi = ((a + 1) * bs).min(v);
                if lo < hi {
                    segs.push(Seg {
                        q: 1,
                        r: 0,
                        lo,
                        hi,
                        proc: a,
                    });
                }
            }
        }
        Dist1D::Cyclic => {
            for a in 0..p.min(v) {
                segs.push(Seg {
                    q: p,
                    r: a,
                    lo: 0,
                    hi: v,
                    proc: a,
                });
            }
        }
        Dist1D::CyclicBlock(b) => {
            assert!(b > 0, "CYCLIC(0) is meaningless");
            let q = b * p;
            for a in 0..p {
                for t in 0..b {
                    let r = a * b + t;
                    if r < v {
                        segs.push(Seg {
                            q,
                            r,
                            lo: 0,
                            hi: v,
                            proc: a,
                        });
                    }
                }
            }
        }
        Dist1D::Grouped(k) => {
            assert!(k > 0, "grouped partition needs k ≥ 1");
            let bs = v.div_ceil(p);
            for c in 0..k.min(v) {
                // Class c holds i = c, c+k, …; its ranks are contiguous.
                let n_c = (v - c).div_ceil(k);
                let base = c * (v / k) + c.min(v % k);
                let mut m0 = 0usize;
                while m0 < n_c {
                    let proc = (base + m0) / bs;
                    let run_end = ((proc + 1) * bs).saturating_sub(base).min(n_c);
                    segs.push(Seg {
                        q: k,
                        r: c,
                        lo: c + m0 * k,
                        hi: c + (run_end - 1) * k + 1,
                        proc,
                    });
                    m0 = run_end;
                }
            }
        }
    }
    segs
}

fn egcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, x, y) = egcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

/// `#{ x ∈ [lo, hi) : x ≡ r1 (mod q1) ∧ x ≡ r2 (mod q2) }` via CRT.
fn count_crt(lo: i64, hi: i64, q1: i64, r1: i64, q2: i64, r2: i64) -> u64 {
    if hi <= lo {
        return 0;
    }
    let (q1, r1, q2, r2) = (q1 as i128, r1 as i128, q2 as i128, r2 as i128);
    let (g, inv, _) = egcd(q1, q2);
    if (r2 - r1) % g != 0 {
        return 0;
    }
    let m = q2 / g;
    let l = q1 * m; // lcm(q1, q2)
                    // x ≡ r1 (mod q1), x ≡ r2 (mod q2)  ⇒  x = r1 + q1·t with
                    // t ≡ (r2−r1)/g · inv(q1/g) (mod q2/g); `inv` from the egcd above.
    let t = (((r2 - r1) / g % m) * (inv % m) % m + m) % m;
    let x0 = (r1 + q1 * t).rem_euclid(l);
    let (lo, hi) = (lo as i128, hi as i128);
    let first = lo + (x0 - lo).rem_euclid(l);
    if first >= hi {
        0
    } else {
        ((hi - 1 - first) / l + 1) as u64
    }
}

/// The shift-transition matrix `R[a·p + b] = #{i ∈ [0, v) :
/// owner(i) = a ∧ owner((sign·i + s) mod v) = b}`, counted analytically
/// per segment pair (toroidal wrap split into two linear pieces).
fn shift_transition(segs: &[Seg], v: usize, p: usize, s: usize, sign: i64) -> Vec<u64> {
    let mut m = vec![0u64; p * p];
    let (vi, si) = (v as i64, s as i64);
    for a in segs {
        let (q1, r1, lo1, hi1) = (a.q as i64, a.r as i64, a.lo as i64, a.hi as i64);
        for b in segs {
            let (q2, r2, lo2, hi2) = (b.q as i64, b.r as i64, b.lo as i64, b.hi as i64);
            let n = if sign > 0 {
                // d = i + s (no wrap): i ∈ [lo2−s, hi2−s) and i < v − s.
                count_crt(
                    lo1.max(lo2 - si),
                    hi1.min(hi2 - si).min(vi - si),
                    q1,
                    r1,
                    q2,
                    (r2 - si).rem_euclid(q2),
                ) +
                // d = i + s − v (wrap): i ∈ [lo2+v−s, hi2+v−s).
                count_crt(
                    lo1.max(lo2 + vi - si),
                    hi1.min(hi2 + vi - si),
                    q1,
                    r1,
                    q2,
                    (r2 - si + vi).rem_euclid(q2),
                )
            } else {
                // d = s − i (i ≤ s): i ∈ [s−hi2+1, s−lo2+1).
                count_crt(
                    lo1.max(si - hi2 + 1).max(0),
                    hi1.min(si - lo2 + 1),
                    q1,
                    r1,
                    q2,
                    (si - r2).rem_euclid(q2),
                ) +
                // d = s + v − i (i > s): i ∈ [s+v−hi2+1, s+v−lo2+1).
                count_crt(
                    lo1.max(si + vi - hi2 + 1).max(si + 1),
                    hi1.min(si + vi - lo2 + 1),
                    q1,
                    r1,
                    q2,
                    (si + vi - r2).rem_euclid(q2),
                )
            };
            if n > 0 {
                m[a.proc * p + b.proc] += n;
            }
        }
    }
    m
}

/// Core of the closed form, in "rows are the shifted axis" orientation:
/// `(i, j) → ((sign·i + t01·j) mod vr, (t11·j) mod vc)`. Returns the flat
/// `(P²)²` count table indexed `[src_proc · np + dst_proc]` with
/// `proc = row_proc · pc + col_proc`.
#[allow(clippy::too_many_arguments)]
fn fold_shifted_rows(
    sign: i64,
    t01: i64,
    t11: i64,
    (vr, vc): (usize, usize),
    (pr, pc): (usize, usize),
    drow: Dist1D,
    dcol: Dist1D,
) -> Vec<u64> {
    let np = pr * pc;
    let segs = segments(drow, vr, pr);
    let cmap: Vec<usize> = (0..vc).map(|j| dcol.map(j as i64, vc, pc)).collect();
    let mut memo: HashMap<usize, Vec<u64>> = HashMap::new();
    let mut counts = vec![0u64; np * np];
    for (j, &sc) in cmap.iter().enumerate() {
        let dj = (t11 * j as i64).rem_euclid(vc as i64) as usize;
        let s = (t01 * j as i64).rem_euclid(vr as i64) as usize;
        let dc = cmap[dj];
        let trans = memo
            .entry(s)
            .or_insert_with(|| shift_transition(&segs, vr, pr, s, sign));
        for a in 0..pr {
            for b in 0..pr {
                let n = trans[a * pr + b];
                if n > 0 {
                    counts[(a * pc + sc) * np + (b * pc + dc)] += n;
                }
            }
        }
    }
    counts
}

/// Dense fallback for arbitrary `T`: still `O(V)`, but with both axis
/// images and both ownership maps precomputed into flat tables, and the
/// aggregation done in a flat count array — no tree map, no per-element
/// matrix multiply.
fn fold_dense(
    t: &IMat,
    dist: Dist2D,
    (vr, vc): (usize, usize),
    (pr, pc): (usize, usize),
) -> Vec<u64> {
    let np = pr * pc;
    let (t00, t01, t10, t11) = (t[(0, 0)], t[(0, 1)], t[(1, 0)], t[(1, 1)]);
    let (vri, vci) = (vr as i64, vc as i64);
    let rmap: Vec<usize> = (0..vr).map(|i| dist.rows.map(i as i64, vr, pr)).collect();
    let cmap: Vec<usize> = (0..vc).map(|j| dist.cols.map(j as i64, vc, pc)).collect();
    let row_i: Vec<usize> = (0..vri)
        .map(|i| (t00 * i).rem_euclid(vri) as usize)
        .collect();
    let row_j: Vec<usize> = (0..vci)
        .map(|j| (t01 * j).rem_euclid(vri) as usize)
        .collect();
    let col_i: Vec<usize> = (0..vri)
        .map(|i| (t10 * i).rem_euclid(vci) as usize)
        .collect();
    let col_j: Vec<usize> = (0..vci)
        .map(|j| (t11 * j).rem_euclid(vci) as usize)
        .collect();
    let mut counts = vec![0u64; np * np];
    for i in 0..vr {
        let (ri, ci) = (row_i[i], col_i[i]);
        let src_row = rmap[i] * pc;
        for j in 0..vc {
            let mut di = ri + row_j[j];
            if di >= vr {
                di -= vr;
            }
            let mut dj = ci + col_j[j];
            if dj >= vc {
                dj -= vc;
            }
            let src = src_row + cmap[j];
            let dst = rmap[di] * pc + cmap[dj];
            counts[src * np + dst] += 1;
        }
    }
    counts
}

/// Extract the sorted non-local message list from a flat count table
/// (shared with [`crate::msgs::fold_pattern`]).
pub(crate) fn msgs_from_counts(
    counts: &[u64],
    (pr, pc): (usize, usize),
    elem_bytes: u64,
) -> Vec<Msg> {
    let np = pr * pc;
    let mut msgs = Vec::new();
    for sp in 0..np {
        for dp in 0..np {
            let n = counts[sp * np + dp];
            if n > 0 && sp != dp {
                msgs.push(Msg {
                    src: (sp / pc, sp % pc),
                    dst: (dp / pc, dp % pc),
                    bytes: n * elem_bytes,
                });
            }
        }
    }
    msgs
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Generate the physical message set of the affine pattern
/// `v → T·v mod vshape` under `dist` **without enumerating the virtual
/// grid** whenever `T` has a pure axis with a ±1-coupled partner (the
/// paper's `U(k)`/`L(k)` families, identity, reflections), falling back
/// to a dense `O(V)` flat-table fold otherwise.
///
/// Identical to
/// `physical_messages(&general_pattern(t, vshape), dist, …)` — same
/// aggregation, same order — and also reports the locality of the fold.
pub fn fold_general(
    t: &IMat,
    dist: Dist2D,
    vshape: (usize, usize),
    pshape: (usize, usize),
    elem_bytes: u64,
) -> FoldedPattern {
    assert_eq!(t.shape(), (2, 2));
    let (vr, vc) = vshape;
    let (t00, t01, t10, t11) = (t[(0, 0)], t[(0, 1)], t[(1, 0)], t[(1, 1)]);
    // Estimated closed-form cost: one transition matrix per distinct shift
    // (S² segment pairs each) — worth it only when well below O(V).
    let worth = |shift_coeff: i64, v: usize, other_v: usize, d: Dist1D, p: usize| {
        let distinct = match shift_coeff.rem_euclid(v as i64) as usize {
            0 => 1,
            c => (v / gcd(c, v)).min(other_v),
        };
        let s = segments(d, v, p).len();
        distinct.saturating_mul(s * s) < vr.saturating_mul(vc) / 2
    };
    let (counts, transposed) =
        if t10 == 0 && (t00 == 1 || t00 == -1) && worth(t01, vr, vc, dist.rows, pshape.0) {
            (
                fold_shifted_rows(t00, t01, t11, vshape, pshape, dist.rows, dist.cols),
                false,
            )
        } else if t01 == 0 && (t11 == 1 || t11 == -1) && worth(t10, vc, vr, dist.cols, pshape.1) {
            (
                fold_shifted_rows(
                    t11,
                    t10,
                    t00,
                    (vc, vr),
                    (pshape.1, pshape.0),
                    dist.cols,
                    dist.rows,
                ),
                true,
            )
        } else {
            (fold_dense(t, dist, vshape, pshape), false)
        };
    let np = pshape.0 * pshape.1;
    let mut local = 0u64;
    for p in 0..np {
        local += counts[p * np + p];
    }
    let msgs = if transposed {
        // The core ran with axes swapped: procs come back as (col, row),
        // flattened with the original row count as the minor dimension.
        let pc_t = pshape.0;
        let mut msgs = Vec::new();
        for sp in 0..np {
            for dp in 0..np {
                let n = counts[sp * np + dp];
                if n > 0 && sp != dp {
                    msgs.push(Msg {
                        src: (sp % pc_t, sp / pc_t),
                        dst: (dp % pc_t, dp / pc_t),
                        bytes: n * elem_bytes,
                    });
                }
            }
        }
        msgs.sort_by_key(|m| (m.src, m.dst));
        msgs
    } else {
        msgs_from_counts(&counts, pshape, elem_bytes)
    };
    FoldedPattern {
        msgs,
        local_sends: local,
        total_sends: (vr * vc) as u64,
    }
}

/// Closed-form fold of the elementary `U(k)` pattern
/// (`(i, j) → (i + k·j, j)`, the paper's Figure 6) — the common case of
/// [`fold_general`].
pub fn fold_elementary(
    k: i64,
    dist: Dist2D,
    vshape: (usize, usize),
    pshape: (usize, usize),
    elem_bytes: u64,
) -> FoldedPattern {
    let t = IMat::from_rows(&[&[1, k], &[0, 1]]);
    fold_general(&t, dist, vshape, pshape, elem_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msgs::{general_pattern, locality_fraction, physical_messages};

    const DISTS: [Dist1D; 4] = [
        Dist1D::Block,
        Dist1D::Cyclic,
        Dist1D::CyclicBlock(2),
        Dist1D::Grouped(3),
    ];

    fn oracle(
        t: &IMat,
        dist: Dist2D,
        vshape: (usize, usize),
        pshape: (usize, usize),
        elem_bytes: u64,
    ) -> (Vec<Msg>, f64) {
        let pat = general_pattern(t, vshape);
        (
            physical_messages(&pat, dist, vshape, pshape, elem_bytes),
            locality_fraction(&pat, dist, vshape, pshape),
        )
    }

    fn check(t: &IMat, dist: Dist2D, vshape: (usize, usize), pshape: (usize, usize)) {
        let (want, want_loc) = oracle(t, dist, vshape, pshape, 8);
        let got = fold_general(t, dist, vshape, pshape, 8);
        assert_eq!(
            got.msgs, want,
            "T={t:?} dist={dist:?} v={vshape:?} p={pshape:?}"
        );
        assert!(
            (got.locality_fraction() - want_loc).abs() < 1e-12,
            "locality mismatch for T={t:?} dist={dist:?}"
        );
    }

    #[test]
    fn segments_partition_every_distribution() {
        for d in DISTS {
            for v in [1usize, 7, 12, 30] {
                for p in [1usize, 2, 4] {
                    let segs = segments(d, v, p);
                    let mut owner = vec![None; v];
                    for s in &segs {
                        let mut i = if s.lo % s.q == s.r {
                            s.lo
                        } else {
                            s.lo + (s.r + s.q - s.lo % s.q) % s.q
                        };
                        while i < s.hi {
                            assert!(owner[i].is_none(), "{d:?} v={v} p={p}: i={i} twice");
                            owner[i] = Some(s.proc);
                            i += s.q;
                        }
                    }
                    for (i, o) in owner.iter().enumerate() {
                        assert_eq!(*o, Some(d.map(i as i64, v, p)), "{d:?} v={v} p={p} i={i}");
                    }
                }
            }
        }
    }

    #[test]
    fn count_crt_agrees_with_enumeration() {
        for q1 in 1..6i64 {
            for r1 in 0..q1 {
                for q2 in 1..6i64 {
                    for r2 in 0..q2 {
                        for lo in -3..4i64 {
                            for hi in lo..12 {
                                let want = (lo..hi)
                                    .filter(|x| x.rem_euclid(q1) == r1 && x.rem_euclid(q2) == r2)
                                    .count() as u64;
                                assert_eq!(
                                    count_crt(lo, hi, q1, r1, q2, r2),
                                    want,
                                    "[{lo},{hi}) ≡{r1}({q1}) ≡{r2}({q2})"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn shift_transition_counts_every_index() {
        for d in DISTS {
            let (v, p) = (24usize, 4usize);
            let segs = segments(d, v, p);
            for s in 0..v {
                for sign in [1i64, -1] {
                    let m = shift_transition(&segs, v, p, s, sign);
                    // Brute-force reference.
                    let mut want = vec![0u64; p * p];
                    for i in 0..v {
                        let di = (sign * i as i64 + s as i64).rem_euclid(v as i64);
                        want[d.map(i as i64, v, p) * p + d.map(di, v, p)] += 1;
                    }
                    assert_eq!(m, want, "{d:?} s={s} sign={sign}");
                }
            }
        }
    }

    #[test]
    fn uk_matches_oracle_across_distributions() {
        for dr in DISTS {
            for dc in DISTS {
                let dist = Dist2D { rows: dr, cols: dc };
                for k in [0i64, 1, 3, 5, -2] {
                    let t = IMat::from_rows(&[&[1, k], &[0, 1]]);
                    check(&t, dist, (24, 12), (4, 2));
                }
            }
        }
    }

    #[test]
    fn lk_transposed_case_matches_oracle() {
        for d in DISTS {
            let dist = Dist2D::uniform(d);
            for l in [2i64, 4, -3] {
                let t = IMat::from_rows(&[&[1, 0], &[l, 1]]);
                check(&t, dist, (12, 24), (2, 4));
            }
        }
    }

    #[test]
    fn reflections_match_oracle() {
        // sign = −1 on the shifted axis.
        for d in DISTS {
            let dist = Dist2D::uniform(d);
            check(
                &IMat::from_rows(&[&[-1, 2], &[0, 1]]),
                dist,
                (18, 10),
                (3, 2),
            );
            check(
                &IMat::from_rows(&[&[1, 0], &[3, -1]]),
                dist,
                (10, 18),
                (2, 3),
            );
        }
    }

    #[test]
    fn dense_fallback_matches_oracle() {
        let dist = Dist2D {
            rows: Dist1D::Grouped(3),
            cols: Dist1D::Cyclic,
        };
        // Neither axis pure: must take the dense path.
        check(
            &IMat::from_rows(&[&[1, 3], &[2, 7]]),
            dist,
            (18, 12),
            (3, 2),
        );
        check(
            &IMat::from_rows(&[&[2, 1], &[1, 2]]),
            dist,
            (16, 16),
            (4, 4),
        );
    }

    #[test]
    fn ragged_and_degenerate_shapes() {
        let dist = Dist2D {
            rows: Dist1D::Grouped(5),
            cols: Dist1D::CyclicBlock(3),
        };
        // v not divisible by p, k, or b; 1-wide axes; single processor.
        check(&IMat::from_rows(&[&[1, 2], &[0, 1]]), dist, (13, 7), (3, 2));
        check(&IMat::from_rows(&[&[1, 1], &[0, 1]]), dist, (1, 7), (1, 2));
        check(&IMat::from_rows(&[&[1, 4], &[0, 1]]), dist, (9, 1), (2, 1));
        check(
            &IMat::from_rows(&[&[1, 2], &[0, 1]]),
            Dist2D::uniform(Dist1D::Block),
            (8, 8),
            (1, 1),
        );
    }

    #[test]
    fn elementary_helper_matches_general() {
        let dist = Dist2D {
            rows: Dist1D::Grouped(3),
            cols: Dist1D::Block,
        };
        let via_t = fold_general(
            &IMat::from_rows(&[&[1, 3], &[0, 1]]),
            dist,
            (24, 8),
            (4, 2),
            16,
        );
        assert_eq!(fold_elementary(3, dist, (24, 8), (4, 2), 16), via_t);
    }

    #[test]
    fn identity_is_fully_local() {
        let got = fold_general(
            &IMat::identity(2),
            Dist2D::uniform(Dist1D::Block),
            (8, 8),
            (4, 4),
            8,
        );
        assert!(got.msgs.is_empty());
        assert_eq!(got.local_sends, 64);
        assert_eq!(got.locality_fraction(), 1.0);
    }
}
