//! From virtual communication patterns to physical message sets.
//!
//! The benchmark harness reproduces the paper's Paragon experiments by
//! generating, for a dataflow matrix `T` and a distribution, the set of
//! physical messages (aggregated source→destination byte counts) and
//! feeding it to the mesh simulator.

use crate::Dist2D;
use rescomm_intlin::IMat;

/// One virtual send: `(source, destination)` virtual processor coords.
pub type VSend = ((i64, i64), (i64, i64));

/// An aggregated physical message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Msg {
    /// Source physical processor `(p, q)`.
    pub src: (usize, usize),
    /// Destination physical processor.
    pub dst: (usize, usize),
    /// Payload size in bytes.
    pub bytes: u64,
}

/// The virtual pattern of the affine map `v → T·v + shift mod vshape`:
/// every virtual processor sends one element, with per-axis toroidal
/// wrap. Enumeration oracle for [`crate::closed::fold_affine`].
pub fn affine_pattern(t: &IMat, shift: (i64, i64), vshape: (usize, usize)) -> Vec<VSend> {
    assert_eq!(t.shape(), (2, 2));
    let (vr, vc) = (vshape.0 as i64, vshape.1 as i64);
    let mut out = Vec::with_capacity(vshape.0 * vshape.1);
    for i in 0..vr {
        for j in 0..vc {
            let d = t.mul_vec(&[i, j]);
            out.push((
                (i, j),
                (
                    (d[0] + shift.0).rem_euclid(vr),
                    (d[1] + shift.1).rem_euclid(vc),
                ),
            ));
        }
    }
    out
}

/// The virtual pattern of a dataflow matrix `T`: every virtual processor
/// `v` sends one element to `T·v mod vshape` (toroidal wrap keeps the
/// pattern inside the grid, as the paper's row-length-12 example does).
pub fn general_pattern(t: &IMat, vshape: (usize, usize)) -> Vec<VSend> {
    affine_pattern(t, (0, 0), vshape)
}

/// The virtual pattern of the elementary `U(k)` communication:
/// `(i, j) → (i + k·j mod V, j)` — the paper's Figure 6 pattern.
pub fn elementary_pattern(k: i64, vshape: (usize, usize)) -> Vec<VSend> {
    let t = IMat::from_rows(&[&[1, k], &[0, 1]]);
    general_pattern(&t, vshape)
}

/// Fold a virtual pattern onto the physical grid and aggregate messages.
///
/// Each virtual send contributes `elem_bytes`; sends whose endpoints land
/// on the same physical processor are local and dropped. The result is
/// sorted and deterministic.
pub fn physical_messages(
    pattern: &[VSend],
    dist: Dist2D,
    vshape: (usize, usize),
    pshape: (usize, usize),
    elem_bytes: u64,
) -> Vec<Msg> {
    use std::collections::BTreeMap;
    type PPair = ((usize, usize), (usize, usize));
    let mut agg: BTreeMap<PPair, u64> = BTreeMap::new();
    for &(src_v, dst_v) in pattern {
        let s = dist.map(src_v, vshape, pshape);
        let d = dist.map(dst_v, vshape, pshape);
        if s == d {
            continue;
        }
        *agg.entry((s, d)).or_insert(0) += elem_bytes;
    }
    agg.into_iter()
        .map(|((src, dst), bytes)| Msg { src, dst, bytes })
        .collect()
}

/// A virtual pattern folded onto the physical grid: the aggregated
/// message set **and** the locality statistics of the same fold, computed
/// together so no endpoint is mapped twice.
///
/// Equality compares the *fold data* (`msgs`, `local_sends`,
/// `total_sends`) only; `closed` and `factors` are path diagnostics and
/// never distinguish two patterns, so differential tests can assert
/// bit-identical output across fold implementations directly with `==`.
#[derive(Debug, Clone)]
pub struct FoldedPattern {
    /// Aggregated non-local messages, sorted by `(src, dst)`.
    pub msgs: Vec<Msg>,
    /// Number of virtual sends whose endpoints share a physical processor.
    pub local_sends: u64,
    /// Total number of virtual sends folded.
    pub total_sends: u64,
    /// Whether the closed residue-class path generated this fold (as
    /// opposed to a dense `O(V)` or enumerating fold).
    pub closed: bool,
    /// Length of the unirow factor chain of the dataflow matrix, when the
    /// fold came from one (0 for identity, singular `T`, or explicit
    /// enumeration).
    pub factors: usize,
}

impl PartialEq for FoldedPattern {
    fn eq(&self, other: &Self) -> bool {
        self.msgs == other.msgs
            && self.local_sends == other.local_sends
            && self.total_sends == other.total_sends
    }
}

impl Eq for FoldedPattern {}

impl FoldedPattern {
    /// Fraction of virtual sends that stay on their physical processor
    /// (1.0 for an empty pattern, matching [`locality_fraction`]).
    pub fn locality_fraction(&self) -> f64 {
        if self.total_sends == 0 {
            1.0
        } else {
            self.local_sends as f64 / self.total_sends as f64
        }
    }

    /// Total bytes crossing the network.
    pub fn total_bytes(&self) -> u64 {
        self.msgs.iter().map(|m| m.bytes).sum()
    }
}

/// Fold a virtual pattern in **one fused pass**: each endpoint is mapped
/// exactly once, messages are aggregated in a flat per-processor-pair
/// table (no tree maps), and locality is counted along the way.
///
/// The message set equals [`physical_messages`] exactly (same order, same
/// aggregation); the locality equals [`locality_fraction`]. The old
/// entry points survive as thin wrappers/oracles — benchmarks that need
/// both quantities should call this once instead of each of them.
pub fn fold_pattern(
    pattern: &[VSend],
    dist: Dist2D,
    vshape: (usize, usize),
    pshape: (usize, usize),
    elem_bytes: u64,
) -> FoldedPattern {
    let np = pshape.0 * pshape.1;
    let mut counts = vec![0u64; np * np];
    let mut local = 0u64;
    for &(src_v, dst_v) in pattern {
        let (sp, sq) = dist.map(src_v, vshape, pshape);
        let (dp, dq) = dist.map(dst_v, vshape, pshape);
        let s = sp * pshape.1 + sq;
        let d = dp * pshape.1 + dq;
        if s == d {
            local += 1;
        } else {
            counts[s * np + d] += 1;
        }
    }
    FoldedPattern {
        msgs: crate::closed::msgs_from_counts(&counts, pshape, elem_bytes),
        local_sends: local,
        total_sends: pattern.len() as u64,
        closed: false,
        factors: 0,
    }
}

/// Fraction of virtual sends that stay on their physical processor.
pub fn locality_fraction(
    pattern: &[VSend],
    dist: Dist2D,
    vshape: (usize, usize),
    pshape: (usize, usize),
) -> f64 {
    fold_pattern(pattern, dist, vshape, pshape, 1).locality_fraction()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dist1D;

    #[test]
    fn elementary_pattern_stays_in_class() {
        // U(3) on a 12-wide row: source and destination always share
        // i mod 3 — the class invariant behind the grouped partition.
        let pat = elementary_pattern(3, (12, 6));
        for ((i, _j), (i2, _j2)) in pat {
            assert_eq!(i.rem_euclid(3), i2.rem_euclid(3));
        }
    }

    #[test]
    fn identity_pattern_is_all_local() {
        let t = rescomm_intlin::IMat::identity(2);
        let pat = general_pattern(&t, (8, 8));
        let d = Dist2D::uniform(Dist1D::Block);
        assert_eq!(locality_fraction(&pat, d, (8, 8), (4, 4)), 1.0);
        assert!(physical_messages(&pat, d, (8, 8), (4, 4), 8).is_empty());
    }

    #[test]
    fn grouped_beats_block_on_locality_for_uk() {
        // The headline structural claim behind Figure 8: for the U(k)
        // pattern the grouped partition keeps at least as many sends local
        // as BLOCK, and strictly more for k > 1.
        for k in 2..=6i64 {
            let v = (24usize, 8usize);
            let p = (4usize, 2usize);
            let pat = elementary_pattern(k, v);
            let grouped = Dist2D {
                rows: Dist1D::Grouped(k as usize),
                cols: Dist1D::Block,
            };
            let block = Dist2D::uniform(Dist1D::Block);
            let lg = locality_fraction(&pat, grouped, v, p);
            let lb = locality_fraction(&pat, block, v, p);
            assert!(lg > lb, "k={k}: grouped locality {lg} not above block {lb}");
        }
    }

    #[test]
    fn message_aggregation_sums_bytes() {
        // Two virtual sends over the same physical edge aggregate.
        let pat = vec![((0, 0), (7, 0)), ((1, 0), (6, 0))];
        let d = Dist2D::uniform(Dist1D::Block);
        let msgs = physical_messages(&pat, d, (8, 4), (2, 2), 16);
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].bytes, 32);
        assert_eq!(msgs[0].src, (0, 0));
        assert_eq!(msgs[0].dst, (1, 0));
    }

    #[test]
    fn pattern_covers_whole_grid() {
        let pat = elementary_pattern(2, (8, 4));
        assert_eq!(pat.len(), 32);
        // Destinations stay inside the grid.
        for (_, (i, j)) in pat {
            assert!((0..8).contains(&i) && (0..4).contains(&j));
        }
    }

    #[test]
    fn general_pattern_wraps_toroidally() {
        let t = rescomm_intlin::IMat::from_rows(&[&[1, 3], &[2, 7]]);
        let pat = general_pattern(&t, (6, 6));
        for (_, (i, j)) in pat {
            assert!((0..6).contains(&i) && (0..6).contains(&j));
        }
    }
}
