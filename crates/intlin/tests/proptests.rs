//! Property-based tests for the exact linear-algebra substrate.
//!
//! These check the algebraic identities the paper's analysis relies on
//! (appendix §8): Hermite/Smith factorizations, pseudo-inverse identities,
//! Lemma 1 (rank of products), Lemma 2/3 (the `X·F = S` solver), and
//! kernel-basis correctness.

use proptest::prelude::*;
use rescomm_intlin::{
    gcd, kernel_basis, kernel_subset, left_inverse_int, pseudo_inverse, right_hermite,
    right_inverse_int, smith_normal_form, solve_xf_eq_s, IMat, RMat,
};

/// Strategy: a rows×cols matrix with small entries.
fn small_mat(rows: usize, cols: usize) -> impl Strategy<Value = IMat> {
    proptest::collection::vec(-5i64..=5, rows * cols)
        .prop_map(move |v| IMat::from_vec(rows, cols, v))
}

fn any_shape_mat() -> impl Strategy<Value = IMat> {
    (1usize..=4, 1usize..=4).prop_flat_map(|(r, c)| small_mat(r, c))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn hermite_reconstructs(a in any_shape_mat()) {
        let hf = right_hermite(&a);
        prop_assert!(matches!(hf.q.det(), 1 | -1));
        prop_assert_eq!(&hf.q * &hf.h, a.clone());
        prop_assert_eq!(hf.rank, a.rank());
        for i in hf.rank..a.rows() {
            prop_assert!(hf.h.row(i).iter().all(|&x| x == 0));
        }
    }

    #[test]
    fn smith_reconstructs_with_divisibility(a in any_shape_mat()) {
        let s = smith_normal_form(&a);
        prop_assert!(matches!(s.u.det(), 1 | -1));
        prop_assert!(matches!(s.v.det(), 1 | -1));
        prop_assert_eq!(&(&s.u * &s.d) * &s.v, a.clone());
        let diag = s.diagonal();
        for w in diag.windows(2) {
            prop_assert!(w[0] >= 0);
            if w[0] == 0 {
                prop_assert_eq!(w[1], 0);
            } else {
                prop_assert_eq!(w[1] % w[0], 0);
            }
        }
        prop_assert_eq!(s.rank(), a.rank());
    }

    #[test]
    fn kernel_vectors_are_killed(a in any_shape_mat()) {
        match kernel_basis(&a) {
            None => prop_assert_eq!(a.rank(), a.cols()),
            Some(k) => {
                prop_assert!((&a * &k).is_zero());
                prop_assert_eq!(k.cols(), a.cols() - a.rank());
                prop_assert_eq!(k.rank(), k.cols());
            }
        }
    }

    #[test]
    fn kernel_subset_reflexive(a in any_shape_mat()) {
        prop_assert!(kernel_subset(&a, &a));
    }

    #[test]
    fn pseudo_inverse_identities(a in any_shape_mat()) {
        let (u, v) = a.shape();
        if a.rank() == u.min(v) {
            let p = pseudo_inverse(&a).unwrap();
            let ar = RMat::from_int(&a);
            if u <= v {
                prop_assert!(ar.mul(&p).is_identity(), "F·F⁻ != Id");
            }
            if u >= v {
                prop_assert!(p.mul(&ar).is_identity(), "F⁻·F != Id");
            }
        } else {
            prop_assert!(pseudo_inverse(&a).is_err());
        }
    }

    #[test]
    fn int_one_sided_inverses_verify(a in any_shape_mat()) {
        let (u, v) = a.shape();
        if u <= v {
            if let Ok(x) = right_inverse_int(&a) {
                prop_assert!((&a * &x).is_identity());
            }
        }
        if u >= v {
            if let Ok(g) = left_inverse_int(&a) {
                prop_assert!((&g * &a).is_identity());
            }
        }
    }

    /// Lemma 1: A (m×a, rank m) times F (a×d, rank a) has rank m, m ≤ a ≤ d.
    #[test]
    fn lemma1_rank_of_product(a in small_mat(2, 3), f in small_mat(3, 4)) {
        if a.rank() == 2 && f.rank() == 3 {
            prop_assert_eq!((&a * &f).rank(), 2);
        }
    }

    /// Lemma 3: for F narrow full-rank, X·F = S is always solvable and the
    /// rank of the solution can match rank(S) (here via construction).
    #[test]
    fn lemma3_narrow_always_solvable_rationally(s in small_mat(2, 2), f in small_mat(4, 2)) {
        if f.rank() == 2 {
            // Over ℚ a solution always exists (Lemma 3). Over ℤ it may need
            // divisibility; accept NotIntegral but never Incompatible.
            match solve_xf_eq_s(&s, &f) {
                Ok(fam) => prop_assert_eq!(&fam.particular * &f, s.clone()),
                Err(e) => prop_assert!(
                    e == rescomm_intlin::LinError::NotIntegral,
                    "narrow full-rank must be rationally solvable, got {e}"
                ),
            }
        }
    }

    /// Constructed-solvable systems are always solved exactly.
    #[test]
    fn solver_recovers_constructed_solutions(x in small_mat(2, 3), f in small_mat(3, 3)) {
        let s = &x * &f;
        let fam = solve_xf_eq_s(&s, &f).expect("constructed system must solve");
        prop_assert_eq!(&fam.particular * &f, s);
    }

    #[test]
    fn det_is_multiplicative(a in small_mat(3, 3), b in small_mat(3, 3)) {
        let ab = &a * &b;
        prop_assert_eq!(ab.det() as i128, a.det() as i128 * b.det() as i128);
    }

    #[test]
    fn rank_of_product_bounded(a in small_mat(3, 3), b in small_mat(3, 3)) {
        let ab = &a * &b;
        prop_assert!(ab.rank() <= a.rank().min(b.rank()));
    }

    /// Storage is invisible: every operation on a heap-forced copy must
    /// agree exactly with the inline-stored original.
    #[test]
    fn heap_and_inline_storage_agree(a in any_shape_mat(), b in any_shape_mat()) {
        let (mut ah, mut bh) = (a.clone(), b.clone());
        ah.force_heap();
        bh.force_heap();
        prop_assert!(!ah.is_inline());
        prop_assert_eq!(&a, &ah);
        prop_assert_eq!(a.rank(), ah.rank());
        prop_assert_eq!(a.transpose(), ah.transpose());
        prop_assert_eq!(a.max_abs(), ah.max_abs());
        if a.is_square() {
            prop_assert_eq!(a.det(), ah.det());
        }
        if a.cols() == b.rows() {
            prop_assert_eq!(&a * &b, &ah * &bh);
        }
        if a.rows() == b.rows() {
            prop_assert_eq!(a.hstack(&b), ah.hstack(&bh));
        }
        if a.shape() == b.shape() {
            prop_assert_eq!(&a + &b, &ah + &bh);
            prop_assert_eq!(&a - &b, &ah - &bh);
        }
    }

    /// Scratch-based variants produce the same results as the allocating ones.
    #[test]
    fn scratch_variants_agree(a in any_shape_mat(), b in any_shape_mat()) {
        let mut scratch = Vec::new();
        prop_assert_eq!(a.rank_with(&mut scratch), a.rank());
        if a.cols() == b.rows() {
            let mut out = IMat::zeros(0, 0);
            a.mul_into(&b, &mut out);
            prop_assert_eq!(out, &a * &b);
        }
    }

    #[test]
    fn gcd_divides(a in -100i64..100, b in -100i64..100) {
        let g = gcd(a, b);
        if g != 0 {
            prop_assert_eq!(a % g, 0);
            prop_assert_eq!(b % g, 0);
        } else {
            prop_assert_eq!((a, b), (0, 0));
        }
    }
}
