//! Hermite normal forms with unimodular cofactors.
//!
//! The paper's appendix (Definition 1) uses the *right Hermite form*: for a
//! nonsingular `A ∈ M_n(ℤ)` there is a unimodular `Q` and a triangular `H`
//! with `A = Q·H`; for a tall rectangular full-column-rank `A` (m×p, m ≥ p)
//! the same construction gives `A = Q·[H; 0]`. Section 3.1 uses this to
//! rotate a mapping so that partial-broadcast directions become parallel to
//! the axes of the processor grid: if `D` collects the broadcast directions,
//! left-multiplying all allocation matrices by `Q⁻¹` confines the directions
//! to the first `rank(D)` grid axes.
//!
//! Convention note: we produce the *row-echelon* (upper-staircase) variant —
//! `H` has its pivots on a descending staircase with zeros below, positive
//! pivots, and entries above each pivot reduced into `[0, pivot)`. The
//! paper states the lower-triangular variant; the two differ by a column
//! permutation and are interchangeable everywhere the paper uses the form
//! (only the *zero rows below* structure matters).

use crate::mat::IMat;

/// Result of a Hermite decomposition `A = Q·H` (see [`right_hermite`]) or
/// `A = H·Q` (see [`left_hermite`]).
#[derive(Debug, Clone)]
pub struct HermiteForm {
    /// Unimodular cofactor.
    pub q: IMat,
    /// The Hermite (echelon) form.
    pub h: IMat,
    /// Rank of the input matrix.
    pub rank: usize,
}

/// Row-style Hermite decomposition: returns `(U, H, rank)` with `H = U·A`,
/// `U` unimodular `m×m`, `H` in row-echelon Hermite form (pivots positive,
/// zeros below pivots, entries above pivots reduced).
pub fn row_reduce(a: &IMat) -> (IMat, IMat, usize) {
    let (m, n) = a.shape();
    let mut h = a.clone();
    let mut u = IMat::identity(m);
    let mut r = 0usize;
    for c in 0..n {
        if r == m {
            break;
        }
        // Euclidean elimination in column c among rows r..m.
        loop {
            // Pick the nonzero entry of minimum absolute value as pivot.
            let piv = (r..m)
                .filter(|&i| h[(i, c)] != 0)
                .min_by_key(|&i| h[(i, c)].unsigned_abs());
            let Some(p) = piv else { break };
            if p != r {
                h.swap_rows(p, r);
                u.swap_rows(p, r);
            }
            let mut again = false;
            for i in r + 1..m {
                if h[(i, c)] != 0 {
                    let k = h[(i, c)] / h[(r, c)];
                    h.add_row_multiple(i, r, -k);
                    u.add_row_multiple(i, r, -k);
                    if h[(i, c)] != 0 {
                        again = true;
                    }
                }
            }
            if !again {
                break;
            }
        }
        if h[(r, c)] == 0 {
            continue;
        }
        if h[(r, c)] < 0 {
            h.negate_row(r);
            u.negate_row(r);
        }
        // Reduce the entries above the pivot into [0, pivot).
        for i in 0..r {
            let k = h[(i, c)].div_euclid(h[(r, c)]);
            if k != 0 {
                h.add_row_multiple(i, r, -k);
                u.add_row_multiple(i, r, -k);
            }
        }
        r += 1;
    }
    (u, h, r)
}

/// Right Hermite form `A = Q·H` with `Q` unimodular (`m×m`) and `H` in
/// row-echelon Hermite form. For a full-column-rank tall matrix this is the
/// paper's `A = Q·[H'; 0]` decomposition (appendix Definition 1).
///
/// ```
/// use rescomm_intlin::{right_hermite, IMat};
/// let a = IMat::from_rows(&[&[4, 6], &[2, 2]]);
/// let hf = right_hermite(&a);
/// assert_eq!(&hf.q * &hf.h, a);
/// assert!(matches!(hf.q.det(), 1 | -1));
/// ```
pub fn right_hermite(a: &IMat) -> HermiteForm {
    let (u, h, rank) = row_reduce(a);
    let q = u
        .inverse_unimodular()
        .expect("row_reduce produced a non-unimodular transform");
    HermiteForm { q, h, rank }
}

/// Left Hermite form `A = H·Q` with `Q` unimodular (`n×n`) and `H` in
/// column-echelon Hermite form (the transpose-dual of [`right_hermite`]).
pub fn left_hermite(a: &IMat) -> HermiteForm {
    let hf = right_hermite(&a.transpose());
    HermiteForm {
        q: hf.q.transpose(),
        h: hf.h.transpose(),
        rank: hf.rank,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unimodular::is_unimodular;

    fn m(rows: &[&[i64]]) -> IMat {
        IMat::from_rows(rows)
    }

    fn check_right(a: &IMat) {
        let hf = right_hermite(a);
        assert!(is_unimodular(&hf.q), "Q not unimodular for {a:?}");
        assert_eq!(&hf.q * &hf.h, *a, "A != Q·H for {a:?}");
        assert_eq!(hf.rank, a.rank());
        // Echelon structure: rows past rank are zero.
        for i in hf.rank..a.rows() {
            assert!(
                hf.h.row(i).iter().all(|&x| x == 0),
                "nonzero row below rank"
            );
        }
        // Pivots positive, zeros below pivots, reduced above.
        let mut last_col = None;
        for i in 0..hf.rank {
            let c =
                hf.h.row(i)
                    .iter()
                    .position(|&x| x != 0)
                    .expect("zero pivot row");
            if let Some(lc) = last_col {
                assert!(c > lc, "pivots not strictly staircase");
            }
            last_col = Some(c);
            assert!(hf.h[(i, c)] > 0, "pivot not positive");
            for ii in 0..i {
                let p = hf.h[(i, c)];
                assert!(
                    (0..p).contains(&hf.h[(ii, c)]),
                    "entry above pivot not reduced"
                );
            }
        }
    }

    #[test]
    fn hermite_square_nonsingular() {
        check_right(&m(&[&[2, 1], &[7, 4]]));
        check_right(&m(&[&[4, 6], &[2, 2]]));
        check_right(&m(&[&[1, 2, 3], &[0, 1, 4], &[5, 6, 0]]));
    }

    #[test]
    fn hermite_tall_full_column_rank() {
        // The broadcast-direction use case: D is m×p tall.
        let d = m(&[&[1, 0], &[2, 1], &[3, 5]]);
        let hf = right_hermite(&d);
        assert_eq!(hf.rank, 2);
        assert_eq!(&hf.q * &hf.h, d);
        assert!(hf.h.row(2).iter().all(|&x| x == 0));
    }

    #[test]
    fn hermite_paper_broadcast_rotation() {
        // §2.3 of the paper: M_S2·v = (-1, 1)ᵗ is not axis-parallel; the
        // unimodular V = [[1,1],[0,1]] rotates it to (0,1)ᵗ.
        let d = IMat::col_vec(&[-1, 1]);
        let hf = right_hermite(&d);
        // Q⁻¹·D must be supported on the first axis only.
        let qinv = hf.q.inverse_unimodular().unwrap();
        let rot = &qinv * &d;
        assert_eq!(rot[(0, 0)].abs(), 1);
        assert_eq!(rot[(1, 0)], 0);
    }

    #[test]
    fn hermite_rank_deficient() {
        check_right(&m(&[&[1, 2], &[2, 4]]));
        check_right(&m(&[&[0, 0], &[0, 0]]));
        check_right(&m(&[&[1, 1, 1], &[-1, -1, -1]]));
    }

    #[test]
    fn hermite_flat() {
        check_right(&m(&[&[2, 4, 4], &[6, 6, 12]]));
    }

    #[test]
    fn left_hermite_roundtrip() {
        let a = m(&[&[2, 4, 4], &[-6, 6, 12]]);
        let hf = left_hermite(&a);
        assert!(is_unimodular(&hf.q));
        assert_eq!(&hf.h * &hf.q, a);
        assert_eq!(hf.rank, 2);
        // Columns past the rank are zero in the column-echelon form.
        for j in hf.rank..a.cols() {
            assert!((0..a.rows()).all(|i| hf.h[(i, j)] == 0));
        }
    }

    #[test]
    fn hermite_uniqueness_of_h_square() {
        // H should not depend on elimination order for fixed A (uniqueness
        // of the HNF for nonsingular square matrices): compare against a
        // permuted-row reconstruction.
        let a = m(&[&[3, 1], &[1, 2]]);
        let hf = right_hermite(&a);
        // Reconstruct A with extra unimodular noise, then HNF again: the
        // Hermite form of U·A differs from that of A only through Q.
        let u = m(&[&[1, 4], &[0, 1]]);
        let hf2 = right_hermite(&(&u * &a));
        assert_eq!(hf.h, hf2.h);
    }
}
