//! Exact rational arithmetic over `i128` and dense rational matrices.
//!
//! Pseudo-inverses of integer access matrices are rational in general
//! (appendix §8.2 of the paper): `F⁻ = Fᵗ(F·Fᵗ)⁻¹` for flat `F` and
//! `F⁻ = (Fᵗ·F)⁻¹Fᵗ` for narrow `F`. We keep those exactly and fall back to
//! integers only when the result happens to be integral.

use crate::mat::{IMat, LinError};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number `num/den` with `den > 0`, always stored in
/// lowest terms.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

fn gcd128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// The rational `num/den`, normalized.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert_ne!(den, 0, "rational with zero denominator");
        if num == 0 {
            return Rational { num: 0, den: 1 };
        }
        let g = gcd128(num, den);
        let s = if den < 0 { -1 } else { 1 };
        Rational {
            num: s * num / g,
            den: s * den / g,
        }
    }

    /// The integer `n` as a rational.
    pub fn from_int(n: i64) -> Self {
        Rational {
            num: n as i128,
            den: 1,
        }
    }

    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Numerator (sign-carrying).
    pub fn num(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn den(&self) -> i128 {
        self.den
    }

    /// `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// `true` iff the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// The value as an `i64` if it is an integer in range.
    pub fn to_int(&self) -> Result<i64, LinError> {
        if self.den != 1 {
            return Err(LinError::NotIntegral);
        }
        i64::try_from(self.num).map_err(|_| LinError::Overflow)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on zero.
    pub fn recip(&self) -> Rational {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, r: Rational) -> Rational {
        Rational::new(
            self.num
                .checked_mul(r.den)
                .and_then(|x| x.checked_add(r.num.checked_mul(self.den)?))
                .expect("rational overflow"),
            self.den.checked_mul(r.den).expect("rational overflow"),
        )
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, r: Rational) -> Rational {
        self + (-r)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, r: Rational) -> Rational {
        // Cross-reduce before multiplying to keep magnitudes small.
        let g1 = gcd128(self.num, r.den).max(1);
        let g2 = gcd128(r.num, self.den).max(1);
        Rational::new(
            (self.num / g1)
                .checked_mul(r.num / g2)
                .expect("rational overflow"),
            (self.den / g2)
                .checked_mul(r.den / g1)
                .expect("rational overflow"),
        )
    }
}

impl Div for Rational {
    type Output = Rational;
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal is exact here
    fn div(self, r: Rational) -> Rational {
        self * r.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A dense rational matrix (row-major).
#[derive(Clone, PartialEq, Eq)]
pub struct RMat {
    rows: usize,
    cols: usize,
    data: Vec<Rational>,
}

impl RMat {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        RMat {
            rows,
            cols,
            data: vec![Rational::ZERO; rows * cols],
        }
    }

    /// Identity of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = RMat::zeros(n, n);
        for i in 0..n {
            m.set(i, i, Rational::ONE);
        }
        m
    }

    /// Lift an integer matrix to rationals.
    pub fn from_int(m: &IMat) -> Self {
        RMat {
            rows: m.rows(),
            cols: m.cols(),
            data: m
                .as_slice()
                .iter()
                .map(|&x| Rational::from_int(x))
                .collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry accessor.
    pub fn get(&self, i: usize, j: usize) -> Rational {
        assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Entry mutator.
    pub fn set(&mut self, i: usize, j: usize, v: Rational) {
        assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Matrix product.
    pub fn mul(&self, rhs: &RMat) -> RMat {
        assert_eq!(self.cols, rhs.rows, "rational product shape mismatch");
        let mut out = RMat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for j in 0..rhs.cols {
                let mut acc = Rational::ZERO;
                for k in 0..self.cols {
                    acc = acc + self.get(i, k) * rhs.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> RMat {
        let mut out = RMat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Gauss–Jordan inverse of a square matrix.
    pub fn inverse(&self) -> Result<RMat, LinError> {
        assert_eq!(self.rows, self.cols, "inverse of non-square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = RMat::identity(n);
        for col in 0..n {
            let piv = (col..n).find(|&i| !a.get(i, col).is_zero());
            let Some(p) = piv else {
                return Err(LinError::Singular);
            };
            if p != col {
                for j in 0..n {
                    let (x, y) = (a.get(col, j), a.get(p, j));
                    a.set(col, j, y);
                    a.set(p, j, x);
                    let (x, y) = (inv.get(col, j), inv.get(p, j));
                    inv.set(col, j, y);
                    inv.set(p, j, x);
                }
            }
            let pv = a.get(col, col).recip();
            for j in 0..n {
                a.set(col, j, a.get(col, j) * pv);
                inv.set(col, j, inv.get(col, j) * pv);
            }
            for i in 0..n {
                if i == col {
                    continue;
                }
                let f = a.get(i, col);
                if f.is_zero() {
                    continue;
                }
                for j in 0..n {
                    a.set(i, j, a.get(i, j) - f * a.get(col, j));
                    inv.set(i, j, inv.get(i, j) - f * inv.get(col, j));
                }
            }
        }
        Ok(inv)
    }

    /// `true` iff every entry is an integer.
    pub fn is_integral(&self) -> bool {
        self.data.iter().all(|r| r.is_integer())
    }

    /// Convert to an integer matrix; fails if any entry is fractional.
    pub fn to_int(&self) -> Result<IMat, LinError> {
        let mut out = IMat::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(i, j)] = self.get(i, j).to_int()?;
            }
        }
        Ok(out)
    }

    /// `true` iff this is the identity.
    pub fn is_identity(&self) -> bool {
        self.rows == self.cols
            && (0..self.rows).all(|i| {
                (0..self.cols).all(|j| {
                    self.get(i, j)
                        == if i == j {
                            Rational::ONE
                        } else {
                            Rational::ZERO
                        }
                })
            })
    }
}

impl fmt::Debug for RMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RMat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self.get(i, j))?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rational_normalization() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, -7), Rational::ZERO);
        assert!(Rational::new(3, 1).is_integer());
        assert!(!Rational::new(3, 2).is_integer());
    }

    #[test]
    fn rational_field_ops() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a + b, Rational::new(5, 6));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 6));
        assert_eq!(a / b, Rational::new(3, 2));
        assert_eq!(-a, Rational::new(-1, 2));
        assert_eq!(a.recip(), Rational::from_int(2));
        assert!(b < a);
        assert_eq!(Rational::new(-3, 4).abs(), Rational::new(3, 4));
    }

    #[test]
    fn rational_to_int() {
        assert_eq!(Rational::new(6, 2).to_int(), Ok(3));
        assert_eq!(Rational::new(1, 2).to_int(), Err(LinError::NotIntegral));
    }

    #[test]
    fn rmat_inverse_roundtrip() {
        let a = IMat::from_rows(&[&[2, 1], &[7, 4]]);
        let r = RMat::from_int(&a);
        let inv = r.inverse().unwrap();
        assert!(r.mul(&inv).is_identity());
        assert!(inv.mul(&r).is_identity());
    }

    #[test]
    fn rmat_inverse_fractional() {
        let a = IMat::from_rows(&[&[2, 0], &[0, 3]]);
        let inv = RMat::from_int(&a).inverse().unwrap();
        assert_eq!(inv.get(0, 0), Rational::new(1, 2));
        assert_eq!(inv.get(1, 1), Rational::new(1, 3));
        assert!(!inv.is_integral());
        assert!(inv.to_int().is_err());
    }

    #[test]
    fn rmat_singular() {
        let a = IMat::from_rows(&[&[1, 2], &[2, 4]]);
        assert_eq!(
            RMat::from_int(&a).inverse().unwrap_err(),
            LinError::Singular
        );
    }

    #[test]
    fn rmat_transpose_mul() {
        let a = RMat::from_int(&IMat::from_rows(&[&[1, 2, 3], &[4, 5, 6]]));
        let at = a.transpose();
        let aat = a.mul(&at);
        assert_eq!(aat.get(0, 0), Rational::from_int(14));
        assert_eq!(aat.get(1, 1), Rational::from_int(77));
        assert_eq!(aat.get(0, 1), aat.get(1, 0));
    }
}
