//! # rescomm-intlin — exact integer & rational linear algebra
//!
//! Substrate crate for the `rescomm` workspace (reproduction of Dion,
//! Randriamaro & Robert, *“How to optimize residual communications?”*,
//! IPPS 1996). All of the paper's compiler analysis is exact linear algebra
//! over ℤ and ℚ on small dense matrices: allocation matrices, access
//! matrices, their kernels, pseudo-inverses, Hermite/Smith normal forms and
//! unimodular transformations.
//!
//! The crate provides:
//!
//! * [`IMat`] — dense integer matrices (`i64` entries, `i128` intermediate
//!   arithmetic, overflow-checked);
//! * [`Rational`] / [`RMat`] — exact rationals over `i128` and dense
//!   rational matrices with Gauss–Jordan inversion;
//! * [`hermite`] — left/right Hermite normal forms with unimodular
//!   cofactors (Definition 1 of the paper's appendix);
//! * [`smith`] — Smith normal form `A = U·D·V`;
//! * [`kernel`] — integer bases of null spaces, left null spaces and kernel
//!   intersections (the paper's broadcast/scatter/gather conditions are all
//!   kernel-dimension comparisons);
//! * [`pseudo`] — left/right pseudo-inverses `F⁻` (appendix §8.2), both the
//!   rational Moore–Penrose-style ones and *integer* one-sided inverses
//!   `G·F = Id` obtained from the Hermite form (the access-graph weights);
//! * [`solve`] — the matrix equation `X·F = S` (appendix Lemmas 2 and 3,
//!   used to orient access-graph edges and to propagate allocations);
//! * [`unimodular`] — unimodular completions and generators (used to rotate
//!   mappings so that partial broadcasts become axis-parallel, §3.1, and to
//!   search similarity classes for decomposability, §4.2.2).
//!
//! Everything is deterministic and allocation-light; matrices in this
//! domain are tiny (loop depths and array ranks are ≤ 6 in practice), so
//! the code favours clarity and exactness over asymptotics.

pub mod hermite;
pub mod kernel;
pub mod mat;
pub mod pseudo;
pub mod rat;
pub mod smith;
pub mod solve;
pub mod unimodular;

pub use hermite::{left_hermite, right_hermite, HermiteForm};
pub use kernel::{
    kernel_basis, kernel_dim, kernel_escapes, kernel_intersection, kernel_subset, left_kernel_basis,
};
pub use mat::{IMat, LinError};
pub use pseudo::{left_inverse_int, pseudo_inverse, right_inverse_int, small_left_inverse};
pub use rat::{RMat, Rational};
pub use smith::{smith_normal_form, SmithForm};
pub use solve::{solve_axb_int, solve_xf_eq_s, solve_xf_eq_s_fullrank, SolutionFamily};
pub use unimodular::{complete_to_unimodular, is_unimodular, random_unimodular};

/// Greatest common divisor of two integers (always non-negative;
/// `gcd(0, 0) = 0`).
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a as i64
}

/// Extended gcd: returns `(g, x, y)` with `a·x + b·y = g = gcd(a, b)`,
/// `g ≥ 0`.
pub fn egcd(a: i64, b: i64) -> (i64, i64, i64) {
    if b == 0 {
        if a < 0 {
            (-a, -1, 0)
        } else {
            (a, 1, 0)
        }
    } else {
        let (g, x, y) = egcd(b, a.rem_euclid(b));
        // a = (a div b)·b + (a mod b) with Euclidean division.
        let q = (a - a.rem_euclid(b)) / b;
        (g, y, x - q * y)
    }
}

/// Least common multiple (non-negative; `lcm(0, x) = 0`).
pub fn lcm(a: i64, b: i64) -> i64 {
    if a == 0 || b == 0 {
        return 0;
    }
    (a / gcd(a, b)).checked_mul(b).expect("lcm overflow").abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(-4, 6), 2);
        assert_eq!(gcd(12, 18), 6);
    }

    #[test]
    fn egcd_identity() {
        for a in -20..20i64 {
            for b in -20..20i64 {
                let (g, x, y) = egcd(a, b);
                assert_eq!(a * x + b * y, g, "bezout failed for {a},{b}");
                assert_eq!(g, gcd(a, b));
                assert!(g >= 0);
            }
        }
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 5), 0);
        assert_eq!(lcm(-3, 5), 15);
    }
}
