//! Integer matrix equations `X·F = S`.
//!
//! Appendix Lemmas 2 and 3 of the paper: for `S` (`m×d`, rank `m`) and `F`
//! (`a×d`, rank `d`), `X·F = S` is solvable iff the compatibility condition
//! `S·F⁻·F = S` holds, and then all solutions are
//! `X = S·F⁻ + Y·(Id_a − F·F⁻)` for arbitrary `Y`. We solve over ℤ via the
//! Smith form instead of the rational pseudo-inverse so that allocation
//! matrices stay integral, and we expose the full solution family
//! (particular solution + a basis of the homogeneous solutions) so that
//! callers can hunt for a *full-rank* solution — the requirement the paper
//! imposes on all allocation matrices.

use crate::kernel::left_kernel_basis;
use crate::mat::{IMat, LinError};
use crate::smith::smith_normal_form;

/// The complete integer solution set of `X·F = S`:
/// `X = particular + C·homogeneous` for any integer `C` (row-wise: each row
/// of `X` is the matching row of `particular` plus an integer combination
/// of the rows of `homogeneous`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolutionFamily {
    /// One integer solution.
    pub particular: IMat,
    /// Basis (as rows) of `{y : y·F = 0}`; `None` if the left kernel of `F`
    /// is trivial (the solution is then unique).
    pub homogeneous: Option<IMat>,
}

impl SolutionFamily {
    /// Materialize `particular + C·homogeneous` for a given coefficient
    /// matrix `C` (`m×k`).
    pub fn instantiate(&self, c: &IMat) -> IMat {
        match &self.homogeneous {
            None => self.particular.clone(),
            Some(h) => &self.particular + &(c * h),
        }
    }
}

/// Solve the single linear system `A·x = b` over ℤ.
///
/// Returns a particular solution; `Err(Incompatible)` if no rational
/// solution exists, `Err(NotIntegral)` if solutions exist over ℚ but not ℤ.
pub fn solve_axb_int(a: &IMat, b: &[i64]) -> Result<Vec<i64>, LinError> {
    let (m, n) = a.shape();
    assert_eq!(b.len(), m, "solve_axb_int: rhs length mismatch");
    // A = U·D·V  ⟹  D·(V·x) = U⁻¹·b.
    let s = smith_normal_form(a);
    let uinv = s.u.inverse_unimodular().expect("smith U not unimodular");
    let rhs = uinv.mul_vec(b);
    let mut z = vec![0i64; n];
    let k = m.min(n);
    for i in 0..k {
        let d = s.d[(i, i)];
        if d == 0 {
            if rhs[i] != 0 {
                return Err(LinError::Incompatible);
            }
        } else {
            if rhs[i] % d != 0 {
                return Err(LinError::NotIntegral);
            }
            z[i] = rhs[i] / d;
        }
    }
    for &r in rhs.iter().skip(k) {
        if r != 0 {
            return Err(LinError::Incompatible);
        }
    }
    let vinv = s.v.inverse_unimodular().expect("smith V not unimodular");
    Ok(vinv.mul_vec(&z))
}

/// Solve `X·F = S` over ℤ, returning the full solution family.
///
/// `F` is `a×d`, `S` is `m×d`; the solution `X` is `m×a`.
pub fn solve_xf_eq_s(s: &IMat, f: &IMat) -> Result<SolutionFamily, LinError> {
    assert_eq!(
        s.cols(),
        f.cols(),
        "solve_xf_eq_s: column mismatch (S m×d, F a×d)"
    );
    let ft = f.transpose(); // d×a
    let m = s.rows();
    let a = f.rows();
    let mut x = IMat::zeros(m, a);
    for i in 0..m {
        // Row i of X solves Fᵗ·xᵢᵗ = (row i of S)ᵗ.
        let xi = solve_axb_int(&ft, s.row(i))?;
        for j in 0..a {
            x[(i, j)] = xi[j];
        }
    }
    debug_assert_eq!(&x * f, *s);
    Ok(SolutionFamily {
        particular: x,
        homogeneous: left_kernel_basis(f),
    })
}

/// Solve `X·F = S` over ℤ and insist on a solution of rank `want_rank`.
///
/// Tries the particular solution first, then searches small integer
/// coefficient matrices `C` over the homogeneous family (exhaustively for
/// tiny families, pseudo-randomly otherwise). Returns
/// [`LinError::RankDeficient`] when no full-rank representative is found —
/// this mirrors the paper's caveat that when `F_{p1} − F_{p2}` is
/// rank-deficient "it can or not be possible" to find a suitable matrix.
pub fn solve_xf_eq_s_fullrank(s: &IMat, f: &IMat, want_rank: usize) -> Result<IMat, LinError> {
    let fam = solve_xf_eq_s(s, f)?;
    if fam.particular.rank() >= want_rank {
        return Ok(fam.particular);
    }
    let Some(h) = &fam.homogeneous else {
        return Err(LinError::RankDeficient);
    };
    let m = fam.particular.rows();
    let k = h.rows();
    let cells = m * k;
    if cells <= 6 {
        // Exhaustive odometer over C entries in [-2, 2].
        let mut c = vec![0i64; cells];
        loop {
            let cm = IMat::from_vec(m, k, c.clone());
            let cand = fam.instantiate(&cm);
            if cand.rank() >= want_rank {
                return Ok(cand);
            }
            let mut pos = 0;
            loop {
                if pos == cells {
                    return Err(LinError::RankDeficient);
                }
                c[pos] += 1;
                if c[pos] > 2 {
                    c[pos] = -2;
                    pos += 1;
                } else {
                    break;
                }
            }
        }
    }
    // Pseudo-random search for larger families.
    let mut seed = 0x2545f4914f6cdd1du64;
    for _ in 0..20_000 {
        let cm = IMat::from_fn(m, k, |_, _| {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as i64 % 7) - 3
        });
        let cand = fam.instantiate(&cm);
        if cand.rank() >= want_rank {
            return Ok(cand);
        }
    }
    Err(LinError::RankDeficient)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&[i64]]) -> IMat {
        IMat::from_rows(rows)
    }

    #[test]
    fn axb_unique() {
        let a = m(&[&[2, 1], &[1, 1]]);
        let x = solve_axb_int(&a, &[3, 2]).unwrap();
        assert_eq!(a.mul_vec(&x), vec![3, 2]);
    }

    #[test]
    fn axb_incompatible() {
        let a = m(&[&[1, 1], &[2, 2]]);
        assert_eq!(solve_axb_int(&a, &[1, 3]), Err(LinError::Incompatible));
    }

    #[test]
    fn axb_not_integral() {
        let a = m(&[&[2, 0], &[0, 2]]);
        assert_eq!(solve_axb_int(&a, &[1, 2]), Err(LinError::NotIntegral));
    }

    #[test]
    fn axb_underdetermined() {
        let a = m(&[&[1, 2, 3]]);
        let x = solve_axb_int(&a, &[6]).unwrap();
        assert_eq!(a.mul_vec(&x), vec![6]);
    }

    #[test]
    fn xf_eq_s_narrow_f() {
        // Lemma 3 case: F narrow full rank, solution always exists.
        // F1 of the reconstructed example.
        let f = m(&[&[1, 0], &[0, 1], &[0, 1]]);
        let s = IMat::identity(2);
        let fam = solve_xf_eq_s(&s, &f).unwrap();
        assert_eq!(&fam.particular * &f, s);
        // Homogeneous: left kernel of F is 1-dimensional.
        let h = fam.homogeneous.clone().unwrap();
        assert_eq!(h.rows(), 1);
        assert!((&h * &f).is_zero());
        // Every instantiation solves the equation.
        let c = m(&[&[5], &[-3]]);
        let x2 = fam.instantiate(&c);
        assert_eq!(&x2 * &f, IMat::identity(2));
    }

    #[test]
    fn xf_eq_s_compatibility_violation() {
        // F flat: M_S = M_x·F is not always solvable for M_x — the paper's
        // reason to orient flat-access edges from array to statement.
        let f = m(&[&[1, 0, 0], &[0, 1, 0]]); // 2×3 flat (qx=2 < d=3)
        let s = m(&[&[0, 0, 1], &[1, 0, 0]]); // wants to see column 3
        assert_eq!(solve_xf_eq_s(&s, &f), Err(LinError::Incompatible));
    }

    #[test]
    fn xf_eq_s_fullrank_direct() {
        let f = m(&[&[1, 0], &[0, 1], &[1, 1]]);
        let s = m(&[&[2, 3], &[1, 1]]);
        let x = solve_xf_eq_s_fullrank(&s, &f, 2).unwrap();
        assert_eq!(&x * &f, s);
        assert_eq!(x.rank(), 2);
    }

    #[test]
    fn xf_eq_s_fullrank_needs_homogeneous_shift() {
        // S = 0 forces the particular solution to rank 0; a full-rank
        // solution must come from the homogeneous family (rows of the left
        // kernel). F with a 2-dimensional left kernel makes this feasible.
        let f = m(&[&[1, 0], &[0, 1], &[0, 0], &[0, 0]]);
        let s = IMat::zeros(2, 2);
        let x = solve_xf_eq_s_fullrank(&s, &f, 2).unwrap();
        assert!((&x * &f).is_zero());
        assert_eq!(x.rank(), 2);
    }

    #[test]
    fn xf_eq_s_fullrank_impossible() {
        // F square nonsingular: X = S·F⁻¹ unique; S rank 1 ⟹ no rank-2
        // solution can exist.
        let f = m(&[&[1, 0], &[0, 1]]);
        let s = m(&[&[1, 1], &[1, 1]]);
        assert_eq!(
            solve_xf_eq_s_fullrank(&s, &f, 2),
            Err(LinError::RankDeficient)
        );
    }

    #[test]
    fn xf_random_roundtrip() {
        let mut seed = 0x5555u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(11);
            ((seed >> 33) as i64 % 5) - 2
        };
        for _ in 0..100 {
            // Build S = X·F from random X, F; the solver must recover some
            // solution (not necessarily X).
            let f = IMat::from_fn(3, 2, |_, _| next());
            let x = IMat::from_fn(2, 3, |_, _| next());
            let s = &x * &f;
            match solve_xf_eq_s(&s, &f) {
                Ok(fam) => assert_eq!(&fam.particular * &f, s),
                Err(e) => panic!("constructed-solvable system failed: {e} F={f:?} S={s:?}"),
            }
        }
    }
}
