//! One-sided (pseudo-)inverses of full-rank rectangular matrices.
//!
//! Appendix §8.2 of the paper: a full-rank flat `X` (`u×v`, `u < v`) has a
//! *right* pseudo-inverse `X⁻ = Xᵗ(X·Xᵗ)⁻¹` with `X·X⁻ = Id_u`; a
//! full-rank narrow `X` (`u > v`) has a *left* pseudo-inverse
//! `X⁻ = (Xᵗ·X)⁻¹Xᵗ` with `X⁻·X = Id_v`. Those are rational in general.
//!
//! The access graph instead wants *integer* weight matrices, and the paper
//! remarks (end of §2.2.2) that any `G` with `G·F = Id` works, not just the
//! true pseudo-inverse. [`left_inverse_int`] / [`right_inverse_int`]
//! produce such integer one-sided inverses from the Smith form when they
//! exist (iff all invariant factors are ±1, i.e. the matrix is primitive),
//! and [`small_left_inverse`] searches the affine family
//! `G = G₀ + C·N` (`N` = left-kernel basis) for a small-coefficient
//! representative, mirroring the paper's choice of simple weight matrices.

use crate::kernel::left_kernel_basis;
use crate::mat::{IMat, LinError};
use crate::rat::RMat;
use crate::smith::smith_normal_form;

/// Rational pseudo-inverse of a full-rank matrix (appendix §8.2).
///
/// * square nonsingular: the ordinary inverse;
/// * flat (`u < v`): `Xᵗ(X·Xᵗ)⁻¹`, satisfying `X·X⁻ = Id_u`;
/// * narrow (`u > v`): `(Xᵗ·X)⁻¹Xᵗ`, satisfying `X⁻·X = Id_v`.
///
/// Returns [`LinError::Singular`] if the matrix is not of full rank.
pub fn pseudo_inverse(x: &IMat) -> Result<RMat, LinError> {
    let (u, v) = x.shape();
    let xr = RMat::from_int(x);
    if u == v {
        return xr.inverse();
    }
    if u < v {
        // Flat: Xᵗ(X·Xᵗ)⁻¹.
        let xt = xr.transpose();
        let gram = xr.mul(&xt);
        let inv = gram.inverse().map_err(|_| LinError::Singular)?;
        Ok(xt.mul(&inv))
    } else {
        // Narrow: (Xᵗ·X)⁻¹Xᵗ.
        let xt = xr.transpose();
        let gram = xt.mul(&xr);
        let inv = gram.inverse().map_err(|_| LinError::Singular)?;
        Ok(inv.mul(&xt))
    }
}

/// An integer right inverse: `X` with `F·X = Id_u` for a full-rank flat (or
/// square unimodular) `F` (`u×v`, `u ≤ v`).
///
/// Exists iff every invariant factor of `F` is 1 (`F` primitive). Built
/// from the Smith form `F = U·D·V`: `X = V⁻¹·Y` with
/// `Y_i = (U⁻¹)_i / d_i` on the top `u` rows and zero below.
pub fn right_inverse_int(f: &IMat) -> Result<IMat, LinError> {
    let (u, v) = f.shape();
    if u > v {
        return Err(LinError::Incompatible);
    }
    let s = smith_normal_form(f);
    let uinv = s.u.inverse_unimodular().expect("smith U not unimodular");
    let mut y = IMat::zeros(v, u);
    for i in 0..u {
        let d = s.d[(i, i)];
        if d == 0 {
            return Err(LinError::RankDeficient);
        }
        for j in 0..u {
            let num = uinv[(i, j)];
            if num % d != 0 {
                return Err(LinError::NotIntegral);
            }
            y[(i, j)] = num / d;
        }
    }
    let vinv = s.v.inverse_unimodular().expect("smith V not unimodular");
    Ok(&vinv * &y)
}

/// An integer left inverse: `G` with `G·F = Id_v` for a full-rank narrow
/// (or square unimodular) `F` (`u×v`, `u ≥ v`). See [`right_inverse_int`].
pub fn left_inverse_int(f: &IMat) -> Result<IMat, LinError> {
    right_inverse_int(&f.transpose()).map(|x| x.transpose())
}

/// Search the affine family of integer left inverses
/// `G = G₀ + C·N` (`N` a basis of the left kernel of `F`) for the
/// representative with the smallest maximum absolute coefficient, trying
/// integer combinations with `|C| ≤ bound`. Returns `G₀` unchanged when `F`
/// has a trivial left kernel or the search space is too large.
pub fn small_left_inverse(f: &IMat, bound: i64) -> Result<IMat, LinError> {
    let g0 = left_inverse_int(f)?;
    let Some(n) = left_kernel_basis(f) else {
        return Ok(g0);
    };
    // One row of G at a time: row_i(G) = row_i(G₀) + c·N with c ∈ ℤᵏ.
    let k = n.rows();
    if k > 2 {
        // Exhaustive search is only worthwhile for tiny kernels.
        return Ok(g0);
    }
    let mut best = g0.clone();
    let mut coeffs = vec![0i64; k];
    loop {
        // Enumerate c ∈ [-bound, bound]^k (odometer).
        let mut g = g0.clone();
        for i in 0..g.rows() {
            for (ki, &c) in coeffs.iter().enumerate() {
                if c != 0 {
                    for j in 0..g.cols() {
                        g[(i, j)] += c * n[(ki, j)];
                    }
                }
            }
            // Evaluate per-row independently: keep the better row.
            let row_max = |m: &IMat, r: usize| m.row(r).iter().map(|x| x.abs()).max().unwrap_or(0);
            if row_max(&g, i) < row_max(&best, i) {
                for j in 0..g.cols() {
                    best[(i, j)] = g[(i, j)];
                }
            }
        }
        // Advance odometer.
        let mut pos = 0;
        loop {
            if pos == k {
                debug_assert!((&best * f).is_identity());
                return Ok(best);
            }
            coeffs[pos] += 1;
            if coeffs[pos] > bound {
                coeffs[pos] = -bound;
                pos += 1;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rat::Rational;

    fn m(rows: &[&[i64]]) -> IMat {
        IMat::from_rows(rows)
    }

    #[test]
    fn pseudo_square() {
        let a = m(&[&[2, 1], &[1, 1]]);
        let p = pseudo_inverse(&a).unwrap();
        assert!(RMat::from_int(&a).mul(&p).is_identity());
    }

    #[test]
    fn pseudo_flat_right_identity() {
        // F6 of the reconstructed example (flat 2×3, rank 2).
        let f = m(&[&[1, 1, 0], &[0, 1, 1]]);
        let p = pseudo_inverse(&f).unwrap();
        assert!(RMat::from_int(&f).mul(&p).is_identity());
        assert_eq!(p.rows(), 3);
        assert_eq!(p.cols(), 2);
    }

    #[test]
    fn pseudo_narrow_left_identity() {
        // F1 of the reconstructed example (narrow 3×2, rank 2). Its true
        // pseudo-inverse is rational: [[1,0,0],[0,1/2,1/2]].
        let f = m(&[&[1, 0], &[0, 1], &[0, 1]]);
        let p = pseudo_inverse(&f).unwrap();
        assert!(p.mul(&RMat::from_int(&f)).is_identity());
        assert_eq!(p.get(1, 1), Rational::new(1, 2));
        assert_eq!(p.get(1, 2), Rational::new(1, 2));
    }

    #[test]
    fn pseudo_rank_deficient_fails() {
        let f = m(&[&[1, 1, 1], &[-1, -1, -1]]);
        assert!(pseudo_inverse(&f).is_err());
    }

    #[test]
    fn int_left_inverse_of_primitive() {
        let f = m(&[&[1, 0], &[0, 1], &[0, 1]]);
        let g = left_inverse_int(&f).unwrap();
        assert!((&g * &f).is_identity());
    }

    #[test]
    fn int_right_inverse_of_primitive_flat() {
        let f = m(&[&[1, 1, 0], &[0, 1, 1]]);
        let x = right_inverse_int(&f).unwrap();
        assert!((&f * &x).is_identity());
    }

    #[test]
    fn int_inverse_nonprimitive_fails() {
        // All invariant factors of [[2,0],[0,2],[0,0]]ᵗ-style matrices are
        // not 1: no integer one-sided inverse.
        let f = m(&[&[2, 0], &[0, 2], &[0, 0]]);
        assert_eq!(left_inverse_int(&f), Err(LinError::NotIntegral));
    }

    #[test]
    fn int_inverse_rank_deficient_fails() {
        let f = m(&[&[1, 1], &[2, 2], &[0, 0]]);
        assert!(matches!(
            left_inverse_int(&f),
            Err(LinError::RankDeficient) | Err(LinError::NotIntegral)
        ));
    }

    #[test]
    fn int_inverse_square_unimodular() {
        let f = m(&[&[1, 1], &[0, 1]]);
        let g = left_inverse_int(&f).unwrap();
        assert!((&g * &f).is_identity());
        assert!((&f * &g).is_identity());
    }

    #[test]
    fn small_left_inverse_shrinks_coefficients() {
        // The paper replaces the true (rational) pseudo-inverse of F1 by a
        // simple integer G; the searched G should have |entries| ≤ 1 here.
        let f = m(&[&[1, 0], &[0, 1], &[0, 1]]);
        let g = small_left_inverse(&f, 3).unwrap();
        assert!((&g * &f).is_identity());
        assert!(g.max_abs() <= 1, "G = {g:?}");
    }

    #[test]
    fn small_left_inverse_random_narrow() {
        let mut seed = 0xabcdefu64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(7);
            ((seed >> 33) as i64 % 5) - 2
        };
        let mut found = 0;
        for _ in 0..200 {
            let f = IMat::from_fn(3, 2, |_, _| next());
            if f.rank() < 2 {
                continue;
            }
            if let Ok(g) = small_left_inverse(&f, 2) {
                assert!((&g * &f).is_identity(), "G·F != Id for {f:?}");
                found += 1;
            }
        }
        assert!(found > 10, "too few primitive matrices in the sample");
    }
}
