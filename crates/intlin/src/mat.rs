//! Dense integer matrices over `i64`.
//!
//! Entries are `i64`; all products are computed through `i128` and checked
//! on narrowing so that silent wrap-around is impossible. The matrices in
//! this problem domain (access matrices of affine loop nests, allocation
//! matrices for ≤ 4-dimensional processor grids) are tiny — almost always
//! 2×2 to 4×4 — so the storage is a small-matrix optimised enum: matrices
//! with at most [`IMat::INLINE_CAP`] entries live in a fixed inline buffer
//! (no heap allocation at all), larger ones fall back to a `Vec<i64>`.
//! Equality and hashing see only the logical contents, never the storage
//! variant, so an inline matrix and a heap-backed copy are interchangeable.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// Errors produced by fallible exact linear-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinError {
    /// A square matrix was singular where an inverse was required.
    Singular,
    /// The equation has no solution (compatibility condition failed).
    Incompatible,
    /// A result that had to be integral turned out to be fractional.
    NotIntegral,
    /// Intermediate arithmetic exceeded the representable range.
    Overflow,
    /// A full-rank solution was required but none exists.
    RankDeficient,
}

impl fmt::Display for LinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinError::Singular => write!(f, "matrix is singular"),
            LinError::Incompatible => write!(f, "equation is incompatible"),
            LinError::NotIntegral => write!(f, "solution is not integral"),
            LinError::Overflow => write!(f, "integer overflow in exact arithmetic"),
            LinError::RankDeficient => write!(f, "no full-rank solution exists"),
        }
    }
}

impl std::error::Error for LinError {}

/// Backing storage: inline for small matrices, heap for the rest.
#[derive(Clone)]
enum Store {
    Inline([i64; IMat::INLINE_CAP]),
    Heap(Vec<i64>),
}

/// A dense integer matrix with `i64` entries, stored row-major.
///
/// ```
/// use rescomm_intlin::IMat;
/// let f = IMat::from_rows(&[&[1, 3], &[2, 7]]);
/// assert_eq!(f.det(), 1);
/// assert_eq!(f.rank(), 2);
/// let inv = f.inverse_unimodular().unwrap();
/// assert!((&f * &inv).is_identity());
/// ```
#[derive(Clone)]
pub struct IMat {
    rows: usize,
    cols: usize,
    store: Store,
}

#[inline]
fn try_narrow(v: i128) -> Result<i64, LinError> {
    i64::try_from(v).map_err(|_| LinError::Overflow)
}

#[inline]
fn narrow(v: i128) -> i64 {
    try_narrow(v).expect("i64 overflow in exact integer matrix arithmetic")
}

impl IMat {
    /// Matrices with at most this many entries are stored inline
    /// (no heap allocation).
    pub const INLINE_CAP: usize = 16;

    /// Zero-filled matrix of the given shape with canonical storage.
    #[inline]
    fn alloc(rows: usize, cols: usize) -> Self {
        let len = rows * cols;
        let store = if len <= Self::INLINE_CAP {
            Store::Inline([0; Self::INLINE_CAP])
        } else {
            Store::Heap(vec![0; len])
        };
        IMat { rows, cols, store }
    }

    /// Build with canonical storage from a row-major slice.
    #[inline]
    fn from_slice_raw(rows: usize, cols: usize, data: &[i64]) -> Self {
        debug_assert_eq!(data.len(), rows * cols);
        let mut m = Self::alloc(rows, cols);
        m.as_mut_slice().copy_from_slice(data);
        m
    }

    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::alloc(rows, cols)
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = IMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1;
        }
        m
    }

    /// Build from a closure over `(row, col)` positions.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> i64) -> Self {
        let mut m = Self::alloc(rows, cols);
        {
            let data = m.as_mut_slice();
            let mut k = 0;
            for i in 0..rows {
                for j in 0..cols {
                    data[k] = f(i, j);
                    k += 1;
                }
            }
        }
        m
    }

    /// Build from nested slices; every row must have the same length.
    ///
    /// # Panics
    /// Panics if the rows are ragged or empty.
    pub fn from_rows(rows: &[&[i64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows: no rows");
        let cols = rows[0].len();
        assert!(cols > 0, "from_rows: empty rows");
        let mut m = Self::alloc(rows.len(), cols);
        {
            let data = m.as_mut_slice();
            for (i, r) in rows.iter().enumerate() {
                assert_eq!(r.len(), cols, "from_rows: ragged rows");
                data[i * cols..(i + 1) * cols].copy_from_slice(r);
            }
        }
        m
    }

    /// Build from a flat row-major vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<i64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: shape mismatch");
        if data.len() <= Self::INLINE_CAP {
            Self::from_slice_raw(rows, cols, &data)
        } else {
            IMat {
                rows,
                cols,
                store: Store::Heap(data),
            }
        }
    }

    /// Column vector from a slice.
    pub fn col_vec(v: &[i64]) -> Self {
        Self::from_slice_raw(v.len(), 1, v)
    }

    /// Row vector from a slice.
    pub fn row_vec(v: &[i64]) -> Self {
        Self::from_slice_raw(1, v.len(), v)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` for square matrices.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// `true` iff the entries live in the inline buffer (no heap block).
    #[inline]
    pub fn is_inline(&self) -> bool {
        matches!(self.store, Store::Inline(_))
    }

    /// Force the entries onto the heap, regardless of size.
    ///
    /// Exists so differential tests can exercise the heap code paths on
    /// small matrices; behaviour is identical either way.
    #[doc(hidden)]
    pub fn force_heap(&mut self) {
        if let Store::Inline(buf) = self.store {
            self.store = Store::Heap(buf[..self.rows * self.cols].to_vec());
        }
    }

    /// Raw row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[i64] {
        match &self.store {
            Store::Inline(buf) => &buf[..self.rows * self.cols],
            Store::Heap(v) => v,
        }
    }

    /// Raw row-major data, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [i64] {
        match &mut self.store {
            Store::Inline(buf) => &mut buf[..self.rows * self.cols],
            Store::Heap(v) => v,
        }
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[i64] {
        assert!(i < self.rows);
        &self.as_slice()[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` as an owned vector.
    pub fn col(&self, j: usize) -> Vec<i64> {
        assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> IMat {
        IMat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[i64]) -> Vec<i64> {
        self.try_mul_vec(v)
            .expect("i64 overflow in exact integer matrix arithmetic")
    }

    /// Fallible matrix–vector product: [`LinError::Overflow`] instead of a
    /// panic when a component leaves `i64` (products are accumulated in
    /// `i128`, so only the final narrowing can fail).
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn try_mul_vec(&self, v: &[i64]) -> Result<Vec<i64>, LinError> {
        assert_eq!(v.len(), self.cols, "mul_vec: dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let row = self.row(i);
                let mut acc: i128 = 0;
                for j in 0..self.cols {
                    acc += row[j] as i128 * v[j] as i128;
                }
                try_narrow(acc)
            })
            .collect()
    }

    /// Multiply every entry by the scalar `s`.
    pub fn scale(&self, s: i64) -> IMat {
        IMat::from_fn(self.rows, self.cols, |i, j| {
            narrow(self[(i, j)] as i128 * s as i128)
        })
    }

    /// `true` iff this is exactly the identity matrix.
    pub fn is_identity(&self) -> bool {
        self.is_square()
            && (0..self.rows).all(|i| (0..self.cols).all(|j| self[(i, j)] == i64::from(i == j)))
    }

    /// `true` iff every entry is zero.
    pub fn is_zero(&self) -> bool {
        self.as_slice().iter().all(|&x| x == 0)
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn hstack(&self, other: &IMat) -> IMat {
        assert_eq!(self.rows, other.rows, "hstack: row mismatch");
        IMat::from_fn(self.rows, self.cols + other.cols, |i, j| {
            if j < self.cols {
                self[(i, j)]
            } else {
                other[(i, j - self.cols)]
            }
        })
    }

    /// Vertical concatenation `[self; other]`.
    pub fn vstack(&self, other: &IMat) -> IMat {
        assert_eq!(self.cols, other.cols, "vstack: column mismatch");
        IMat::from_fn(self.rows + other.rows, self.cols, |i, j| {
            if i < self.rows {
                self[(i, j)]
            } else {
                other[(i - self.rows, j)]
            }
        })
    }

    /// Contiguous submatrix `rows r0..r1, cols c0..c1` (half-open).
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> IMat {
        assert!(r0 <= r1 && r1 <= self.rows && c0 <= c1 && c1 <= self.cols);
        IMat::from_fn(r1 - r0, c1 - c0, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Matrix product into a caller-provided output matrix.
    ///
    /// `out` is reshaped to `self.rows × rhs.cols`; reusing one `out`
    /// across many products keeps larger-than-inline results from
    /// re-allocating. Results are identical to `&self * &rhs`.
    ///
    /// # Panics
    /// Panics on shape mismatch or `i64` overflow.
    pub fn mul_into(&self, rhs: &IMat, out: &mut IMat) {
        self.try_mul_into(rhs, out)
            .expect("i64 overflow in exact integer matrix arithmetic")
    }

    /// Fallible [`IMat::mul_into`]: [`LinError::Overflow`] instead of a
    /// panic when an entry of the product leaves `i64` (products are
    /// computed through `i128` and only narrowing can fail). On error,
    /// `out` holds a partial result and must not be read.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn try_mul_into(&self, rhs: &IMat, out: &mut IMat) -> Result<(), LinError> {
        assert_eq!(
            self.cols, rhs.rows,
            "matrix product shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, n, k) = (self.rows, rhs.cols, self.cols);
        out.reshape(m, n);
        let a = self.as_slice();
        let b = rhs.as_slice();
        let c = out.as_mut_slice();
        for i in 0..m {
            for j in 0..n {
                let mut acc: i128 = 0;
                for p in 0..k {
                    acc += a[i * k + p] as i128 * b[p * n + j] as i128;
                }
                c[i * n + j] = try_narrow(acc)?;
            }
        }
        Ok(())
    }

    /// Fallible matrix product (see [`IMat::try_mul_into`]).
    pub fn try_mul(&self, rhs: &IMat) -> Result<IMat, LinError> {
        let mut out = IMat::zeros(0, 0);
        self.try_mul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Reshape in place to `rows × cols`, zero-filling the entries and
    /// keeping (or establishing) canonical storage for the new size.
    fn reshape(&mut self, rows: usize, cols: usize) {
        let len = rows * cols;
        match &mut self.store {
            Store::Heap(v) if len > Self::INLINE_CAP => {
                v.clear();
                v.resize(len, 0);
            }
            store => {
                *store = if len <= Self::INLINE_CAP {
                    Store::Inline([0; Self::INLINE_CAP])
                } else {
                    Store::Heap(vec![0; len])
                };
            }
        }
        self.rows = rows;
        self.cols = cols;
    }

    /// Determinant via the fraction-free Bareiss algorithm (exact).
    ///
    /// All intermediates are `i128`; matrices with at most
    /// [`IMat::INLINE_CAP`] entries are eliminated in a stack buffer.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn det(&self) -> i64 {
        self.try_det().expect("det: integer overflow")
    }

    /// Fallible determinant: [`LinError::Overflow`] when a Bareiss
    /// intermediate leaves `i128` or the result leaves `i64`, instead of
    /// the panic [`IMat::det`] raises.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn try_det(&self) -> Result<i64, LinError> {
        assert!(self.is_square(), "det: non-square matrix");
        let n = self.rows;
        if n == 0 {
            return Ok(1);
        }
        let len = n * n;
        if len <= Self::INLINE_CAP {
            let mut buf = [0i128; Self::INLINE_CAP];
            for (d, &s) in buf[..len].iter_mut().zip(self.as_slice()) {
                *d = s as i128;
            }
            det_impl(&mut buf[..len], n)
        } else {
            let mut a: Vec<i128> = self.as_slice().iter().map(|&x| x as i128).collect();
            det_impl(&mut a, n)
        }
    }

    /// Rank over ℚ (fraction-free Gaussian elimination).
    ///
    /// Matrices with at most [`IMat::INLINE_CAP`] entries are eliminated
    /// in a stack buffer; larger ones can reuse a scratch buffer via
    /// [`IMat::rank_with`].
    pub fn rank(&self) -> usize {
        let len = self.rows * self.cols;
        if len <= Self::INLINE_CAP {
            let mut buf = [0i128; Self::INLINE_CAP];
            for (d, &s) in buf[..len].iter_mut().zip(self.as_slice()) {
                *d = s as i128;
            }
            rank_impl(&mut buf[..len], self.rows, self.cols)
        } else {
            let mut a: Vec<i128> = self.as_slice().iter().map(|&x| x as i128).collect();
            rank_impl(&mut a, self.rows, self.cols)
        }
    }

    /// [`IMat::rank`] with a caller-provided scratch buffer, so repeated
    /// rank computations on larger-than-inline matrices do not allocate.
    pub fn rank_with(&self, scratch: &mut Vec<i128>) -> usize {
        let len = self.rows * self.cols;
        if len <= Self::INLINE_CAP {
            return self.rank();
        }
        scratch.clear();
        scratch.extend(self.as_slice().iter().map(|&x| x as i128));
        rank_impl(scratch, self.rows, self.cols)
    }

    /// `true` iff the matrix has full rank `min(rows, cols)`.
    pub fn is_full_rank(&self) -> bool {
        self.rank() == self.rows.min(self.cols)
    }

    /// Inverse of a square unimodular-or-not integer matrix when the
    /// inverse is itself integral (i.e. `det = ±1`).
    pub fn inverse_unimodular(&self) -> Result<IMat, LinError> {
        assert!(self.is_square(), "inverse: non-square matrix");
        let d = self.det();
        if d != 1 && d != -1 {
            return Err(LinError::NotIntegral);
        }
        // Adjugate method is fine at these sizes: inv = adj / det.
        let n = self.rows;
        let mut inv = IMat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let minor = self.minor(j, i);
                let cof = minor.det();
                let sgn = if (i + j) % 2 == 0 { 1 } else { -1 };
                inv[(i, j)] = sgn * cof * d; // divide by det = multiply, d = ±1
            }
        }
        Ok(inv)
    }

    /// The `(i,j)` minor: the matrix with row `i` and column `j` removed.
    pub fn minor(&self, i: usize, j: usize) -> IMat {
        assert!(self.rows > 0 && self.cols > 0);
        IMat::from_fn(self.rows - 1, self.cols - 1, |r, c| {
            let rr = if r < i { r } else { r + 1 };
            let cc = if c < j { c } else { c + 1 };
            self[(rr, cc)]
        })
    }

    /// Trace of a square matrix.
    pub fn trace(&self) -> i64 {
        assert!(self.is_square());
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Swap two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            let (x, y) = (self[(a, j)], self[(b, j)]);
            self[(a, j)] = y;
            self[(b, j)] = x;
        }
    }

    /// Swap two columns in place.
    pub fn swap_cols(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for i in 0..self.rows {
            let (x, y) = (self[(i, a)], self[(i, b)]);
            self[(i, a)] = y;
            self[(i, b)] = x;
        }
    }

    /// `row[a] += k · row[b]` in place.
    pub fn add_row_multiple(&mut self, a: usize, b: usize, k: i64) {
        assert_ne!(a, b);
        for j in 0..self.cols {
            self[(a, j)] = narrow(self[(a, j)] as i128 + k as i128 * self[(b, j)] as i128);
        }
    }

    /// `col[a] += k · col[b]` in place.
    pub fn add_col_multiple(&mut self, a: usize, b: usize, k: i64) {
        assert_ne!(a, b);
        for i in 0..self.rows {
            self[(i, a)] = narrow(self[(i, a)] as i128 + k as i128 * self[(i, b)] as i128);
        }
    }

    /// Negate a row in place.
    pub fn negate_row(&mut self, i: usize) {
        for j in 0..self.cols {
            self[(i, j)] = -self[(i, j)];
        }
    }

    /// Negate a column in place.
    pub fn negate_col(&mut self, j: usize) {
        for i in 0..self.rows {
            self[(i, j)] = -self[(i, j)];
        }
    }

    /// Maximum absolute value of any entry.
    pub fn max_abs(&self) -> i64 {
        self.as_slice().iter().map(|x| x.abs()).max().unwrap_or(0)
    }
}

/// Equality sees only the logical contents, never the storage variant.
impl PartialEq for IMat {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.as_slice() == other.as_slice()
    }
}

impl Eq for IMat {}

/// Hashing matches [`PartialEq`]: shape plus entries, storage-agnostic.
impl Hash for IMat {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.rows.hash(state);
        self.cols.hash(state);
        self.as_slice().hash(state);
    }
}

/// Bareiss fraction-free determinant of the `n × n` matrix in `a`
/// (row-major, destroyed). Intermediates are checked `i128`; the paper's
/// matrices are tiny, so escalation to `i128` almost always suffices and
/// [`LinError::Overflow`] marks the genuinely pathological instances.
fn det_impl(a: &mut [i128], n: usize) -> Result<i64, LinError> {
    let mut sign: i128 = 1;
    let mut prev: i128 = 1;
    for k in 0..n - 1 {
        if a[k * n + k] == 0 {
            // Find a pivot row below and swap.
            match (k + 1..n).find(|&r| a[r * n + k] != 0) {
                Some(r) => {
                    for j in 0..n {
                        a.swap(k * n + j, r * n + j);
                    }
                    sign = -sign;
                }
                None => return Ok(0),
            }
        }
        for i in k + 1..n {
            for j in k + 1..n {
                let num = a[i * n + j]
                    .checked_mul(a[k * n + k])
                    .and_then(|x| x.checked_sub(a[i * n + k].checked_mul(a[k * n + j])?))
                    .ok_or(LinError::Overflow)?;
                a[i * n + j] = num / prev;
            }
            a[i * n + k] = 0;
        }
        prev = a[k * n + k];
    }
    try_narrow(sign * a[n * n - 1])
}

/// Fraction-free Gaussian rank of the `r × c` matrix in `a`
/// (row-major, destroyed).
fn rank_impl(a: &mut [i128], r: usize, c: usize) -> usize {
    let mut rank = 0;
    let mut row = 0;
    for col in 0..c {
        // Find pivot.
        let piv = (row..r).find(|&i| a[i * c + col] != 0);
        let Some(p) = piv else { continue };
        if p != row {
            for j in 0..c {
                a.swap(row * c + j, p * c + j);
            }
        }
        let pv = a[row * c + col];
        for i in row + 1..r {
            let f = a[i * c + col];
            if f == 0 {
                continue;
            }
            let g = gcd128(pv, f);
            let (m1, m2) = (pv / g, f / g);
            for j in 0..c {
                a[i * c + j] = a[i * c + j]
                    .checked_mul(m1)
                    .and_then(|x| x.checked_sub(a[row * c + j].checked_mul(m2)?))
                    .expect("rank: i128 overflow");
            }
            // Keep entries small to avoid blow-up.
            let rg = row_gcd(&a[i * c..(i + 1) * c]);
            if rg > 1 {
                for j in 0..c {
                    a[i * c + j] /= rg;
                }
            }
        }
        row += 1;
        rank += 1;
        if row == r {
            break;
        }
    }
    rank
}

fn gcd128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

fn row_gcd(row: &[i128]) -> i128 {
    let mut g: i128 = 0;
    for &x in row {
        g = gcd128(g, x.abs());
        if g == 1 {
            return 1;
        }
    }
    g.max(1)
}

impl Index<(usize, usize)> for IMat {
    type Output = i64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &i64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        let idx = i * self.cols + j;
        &self.as_slice()[idx]
    }
}

impl IndexMut<(usize, usize)> for IMat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut i64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        let idx = i * self.cols + j;
        &mut self.as_mut_slice()[idx]
    }
}

impl Mul for &IMat {
    type Output = IMat;
    fn mul(self, rhs: &IMat) -> IMat {
        let mut out = IMat::zeros(0, 0);
        self.mul_into(rhs, &mut out);
        out
    }
}

impl Mul for IMat {
    type Output = IMat;
    fn mul(self, rhs: IMat) -> IMat {
        &self * &rhs
    }
}

impl Add for &IMat {
    type Output = IMat;
    fn add(self, rhs: &IMat) -> IMat {
        assert_eq!(self.shape(), rhs.shape(), "matrix sum shape mismatch");
        IMat::from_fn(self.rows, self.cols, |i, j| {
            narrow(self[(i, j)] as i128 + rhs[(i, j)] as i128)
        })
    }
}

impl Sub for &IMat {
    type Output = IMat;
    fn sub(self, rhs: &IMat) -> IMat {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "matrix difference shape mismatch"
        );
        IMat::from_fn(self.rows, self.cols, |i, j| {
            narrow(self[(i, j)] as i128 - rhs[(i, j)] as i128)
        })
    }
}

impl Neg for &IMat {
    type Output = IMat;
    fn neg(self) -> IMat {
        IMat::from_fn(self.rows, self.cols, |i, j| -self[(i, j)])
    }
}

impl fmt::Debug for IMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "IMat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for IMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths: Vec<usize> = (0..self.cols)
            .map(|j| {
                (0..self.rows)
                    .map(|i| format!("{}", self[(i, j)]).len())
                    .max()
                    .unwrap_or(1)
            })
            .collect();
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>w$}", self[(i, j)], w = widths[j])?;
            }
            write!(f, "]")?;
            if i + 1 < self.rows {
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&[i64]]) -> IMat {
        IMat::from_rows(rows)
    }

    #[test]
    fn identity_and_zero() {
        let id = IMat::identity(3);
        assert!(id.is_identity());
        assert!(!id.is_zero());
        assert!(IMat::zeros(2, 5).is_zero());
        assert_eq!(id.det(), 1);
    }

    #[test]
    fn product_shapes_and_values() {
        let a = m(&[&[1, 2], &[3, 4]]);
        let b = m(&[&[0, 1], &[1, 0]]);
        let ab = &a * &b;
        assert_eq!(ab, m(&[&[2, 1], &[4, 3]]));
        let id = IMat::identity(2);
        assert_eq!(&a * &id, a);
        assert_eq!(&id * &a, a);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn product_shape_mismatch_panics() {
        let a = IMat::zeros(2, 3);
        let b = IMat::zeros(2, 3);
        let _ = &a * &b;
    }

    #[test]
    fn det_small() {
        assert_eq!(m(&[&[2]]).det(), 2);
        assert_eq!(m(&[&[1, 2], &[3, 4]]).det(), -2);
        assert_eq!(m(&[&[2, 0, 0], &[0, 3, 0], &[0, 0, 4]]).det(), 24);
        assert_eq!(m(&[&[1, 2, 3], &[4, 5, 6], &[7, 8, 9]]).det(), 0);
        // Needs a row swap (zero pivot).
        assert_eq!(m(&[&[0, 1], &[1, 0]]).det(), -1);
    }

    #[test]
    fn det_matches_cofactor_on_random() {
        fn cofactor_det(a: &IMat) -> i128 {
            let n = a.rows();
            if n == 1 {
                return a[(0, 0)] as i128;
            }
            let mut acc: i128 = 0;
            for j in 0..n {
                let sgn = if j % 2 == 0 { 1 } else { -1 };
                acc += sgn * a[(0, j)] as i128 * cofactor_det(&a.minor(0, j));
            }
            acc
        }
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as i64 % 7) - 3
        };
        for _ in 0..50 {
            let a = IMat::from_fn(4, 4, |_, _| next());
            assert_eq!(a.det() as i128, cofactor_det(&a));
        }
    }

    #[test]
    fn rank_cases() {
        assert_eq!(IMat::identity(4).rank(), 4);
        assert_eq!(IMat::zeros(3, 5).rank(), 0);
        assert_eq!(m(&[&[1, 2, 3], &[2, 4, 6]]).rank(), 1);
        assert_eq!(m(&[&[1, 2, 3], &[4, 5, 6], &[7, 8, 9]]).rank(), 2);
        // The paper's F6 (deficient rank) from the motivating example:
        // F6 = [[1, 1, 1], [-1, -1, -1]] has rank 1.
        assert_eq!(m(&[&[1, 1, 1], &[-1, -1, -1]]).rank(), 1);
    }

    #[test]
    fn inverse_unimodular_roundtrip() {
        let u = m(&[&[1, 2], &[1, 1]]); // det = -1
        let inv = u.inverse_unimodular().unwrap();
        assert!((&u * &inv).is_identity());
        assert!((&inv * &u).is_identity());
        let v = m(&[&[2, 0], &[0, 2]]);
        assert_eq!(v.inverse_unimodular(), Err(LinError::NotIntegral));
    }

    #[test]
    fn transpose_involution() {
        let a = m(&[&[1, 2, 3], &[4, 5, 6]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
    }

    #[test]
    fn stack_and_sub() {
        let a = m(&[&[1, 2], &[3, 4]]);
        let b = m(&[&[5], &[6]]);
        let h = a.hstack(&b);
        assert_eq!(h, m(&[&[1, 2, 5], &[3, 4, 6]]));
        assert_eq!(h.submatrix(0, 2, 0, 2), a);
        let v = a.vstack(&m(&[&[7, 8]]));
        assert_eq!(v.row(2), &[7, 8]);
        assert_eq!(v.col(1), vec![2, 4, 8]);
    }

    #[test]
    fn mul_vec_matches_matrix_product() {
        let a = m(&[&[1, 2, 0], &[0, 1, -1]]);
        let v = [3, 4, 5];
        assert_eq!(a.mul_vec(&v), vec![11, -1]);
    }

    #[test]
    fn row_ops() {
        let mut a = m(&[&[1, 0], &[0, 1]]);
        a.add_row_multiple(0, 1, 3);
        assert_eq!(a, m(&[&[1, 3], &[0, 1]]));
        a.swap_rows(0, 1);
        assert_eq!(a, m(&[&[0, 1], &[1, 3]]));
        a.negate_row(0);
        assert_eq!(a, m(&[&[0, -1], &[1, 3]]));
        a.add_col_multiple(1, 0, 2);
        assert_eq!(a, m(&[&[0, -1], &[1, 5]]));
        a.swap_cols(0, 1);
        assert_eq!(a, m(&[&[-1, 0], &[5, 1]]));
        a.negate_col(0);
        assert_eq!(a, m(&[&[1, 0], &[-5, 1]]));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn product_overflow_panics_cleanly() {
        // Exact arithmetic must never wrap silently: a product that leaves
        // i64 panics with a clear message instead.
        let big = IMat::from_rows(&[&[i64::MAX / 2, i64::MAX / 2], &[1, 1]]);
        let _ = &big * &big;
    }

    #[test]
    fn try_paths_error_instead_of_panicking() {
        let big = IMat::from_rows(&[&[i64::MAX / 2, i64::MAX / 2], &[1, 1]]);
        assert_eq!(big.try_mul(&big), Err(LinError::Overflow));
        assert_eq!(
            big.try_mul_vec(&[i64::MAX / 2, i64::MAX / 2]),
            Err(LinError::Overflow)
        );
        // A determinant that fits i128 intermediates but not i64.
        let d = IMat::from_rows(&[&[i64::MAX / 2, 0], &[0, 4]]);
        assert_eq!(d.try_det(), Err(LinError::Overflow));
        // And the happy path agrees with the panicking operators.
        let a = m(&[&[1, 2], &[3, 4]]);
        let b = m(&[&[0, 1], &[1, 0]]);
        assert_eq!(a.try_mul(&b).unwrap(), &a * &b);
        assert_eq!(a.try_det().unwrap(), a.det());
        assert_eq!(a.try_mul_vec(&[1, 1]).unwrap(), a.mul_vec(&[1, 1]));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn det_overflow_panics_cleanly() {
        let d = IMat::from_rows(&[&[i64::MAX / 2, 0], &[0, 4]]);
        let _ = d.det();
    }

    #[test]
    fn trace_and_max_abs() {
        let a = m(&[&[1, -7], &[2, 3]]);
        assert_eq!(a.trace(), 4);
        assert_eq!(a.max_abs(), 7);
    }

    #[test]
    fn inline_threshold_and_force_heap() {
        // ≤ 16 entries stays inline through construction paths.
        assert!(IMat::identity(4).is_inline());
        assert!(IMat::zeros(2, 8).is_inline());
        assert!(IMat::from_vec(4, 4, vec![1; 16]).is_inline());
        assert!(!IMat::zeros(5, 5).is_inline());
        assert!(!IMat::from_vec(1, 17, vec![1; 17]).is_inline());
        // force_heap changes storage, not identity.
        let a = m(&[&[1, 2], &[3, 4]]);
        let mut b = a.clone();
        b.force_heap();
        assert!(!b.is_inline());
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        let h = |x: &IMat| {
            let mut s = DefaultHasher::new();
            x.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn heap_and_inline_ops_agree() {
        let a = m(&[&[1, 2, -1], &[0, 3, 4], &[2, -2, 5]]);
        let b = m(&[&[2, 0, 1], &[1, 1, 0], &[-1, 2, 3]]);
        let (mut ah, mut bh) = (a.clone(), b.clone());
        ah.force_heap();
        bh.force_heap();
        assert_eq!(&a * &b, &ah * &bh);
        assert_eq!(a.det(), ah.det());
        assert_eq!(a.rank(), ah.rank());
        assert_eq!(a.transpose(), ah.transpose());
        assert_eq!(a.hstack(&b), ah.hstack(&bh));
        assert_eq!(&a + &b, &ah + &bh);
    }

    #[test]
    fn mul_into_reuses_output() {
        let a = m(&[&[1, 2], &[3, 4]]);
        let b = m(&[&[0, 1], &[1, 0]]);
        let mut out = IMat::zeros(0, 0);
        a.mul_into(&b, &mut out);
        assert_eq!(out, &a * &b);
        // Reuse with a different shape.
        let c = m(&[&[1], &[1]]);
        a.mul_into(&c, &mut out);
        assert_eq!(out, &a * &c);
        assert_eq!(out.shape(), (2, 1));
    }

    #[test]
    fn rank_with_scratch_matches_rank() {
        let big = IMat::from_fn(5, 5, |i, j| ((i * 5 + j) as i64 % 7) - 3);
        let mut scratch = Vec::new();
        assert_eq!(big.rank_with(&mut scratch), big.rank());
        let small = m(&[&[1, 2], &[2, 4]]);
        assert_eq!(small.rank_with(&mut scratch), 1);
    }
}
