//! Unimodular matrices: tests, generators and completions.
//!
//! The paper exploits the degree of freedom that alignment matrices inside
//! a connected component of the branching are only determined *up to
//! left-multiplication by a unimodular matrix* (§2.3 remark). Rotating a
//! component by `V ∈ GL_m(ℤ)` preserves every local communication and is
//! used to (a) make partial broadcasts axis-parallel (§3.1) and (b) move a
//! dataflow matrix into a similarity class that decomposes into elementary
//! communications (§4.2.2).

use crate::egcd;
use crate::hermite::row_reduce;
use crate::mat::{IMat, LinError};

/// `true` iff `a` is square with determinant ±1.
pub fn is_unimodular(a: &IMat) -> bool {
    a.is_square() && matches!(a.det(), 1 | -1)
}

/// Deterministic pseudo-random unimodular matrix of order `n`, built as a
/// product of `steps` random elementary row operations seeded by `seed`.
/// Entry growth is kept in check by bounding the shear coefficients.
pub fn random_unimodular(n: usize, steps: usize, seed: u64) -> IMat {
    let mut m = IMat::identity(n);
    if n < 2 {
        return m;
    }
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    for _ in 0..steps {
        let i = next() % n;
        let mut j = next() % n;
        if i == j {
            j = (j + 1) % n;
        }
        match next() % 3 {
            0 => {
                let k = (next() % 3) as i64 - 1;
                if k != 0 {
                    m.add_row_multiple(i, j, k);
                }
            }
            1 => m.swap_rows(i, j),
            _ => m.negate_row(i),
        }
    }
    debug_assert!(is_unimodular(&m));
    m
}

/// Complete a primitive integer column vector `v` (gcd of entries = 1) to a
/// unimodular matrix whose **first column** is `v`.
///
/// Used in §4.2.2: the basis `(e₁', e₂')` with `f(e₁') = … ` is a
/// unimodular change of basis built from one prescribed vector. Returns
/// [`LinError::NotIntegral`] when `v` is not primitive (then no unimodular
/// completion exists) and [`LinError::Singular`] for `v = 0`.
pub fn complete_to_unimodular(v: &[i64]) -> Result<IMat, LinError> {
    let n = v.len();
    assert!(n > 0, "complete_to_unimodular: empty vector");
    if v.iter().all(|&x| x == 0) {
        return Err(LinError::Singular);
    }
    let col = IMat::col_vec(v);
    // U·v = (g, 0, …, 0)ᵗ with U unimodular; if g = ±1 then the first
    // column of U⁻¹ is ±v.
    let (u, h, _) = row_reduce(&col);
    let g = h[(0, 0)];
    if g != 1 && g != -1 {
        return Err(LinError::NotIntegral);
    }
    let mut uinv = u.inverse_unimodular().expect("row_reduce not unimodular");
    if g == -1 {
        uinv.negate_col(0);
    }
    debug_assert_eq!(uinv.col(0), v);
    debug_assert!(is_unimodular(&uinv));
    Ok(uinv)
}

/// A 2×2 unimodular matrix `[[a, b], [c, d]]` from a Bézout relation
/// `a·d − b·c = 1` for the primitive pair `(a, c)`.
pub fn bezout_unimodular_2x2(a: i64, c: i64) -> Result<IMat, LinError> {
    let (g, x, y) = egcd(a, c);
    if g != 1 {
        return Err(LinError::NotIntegral);
    }
    // a·x + c·y = 1  ⟹  det [[a, -y], [c, x]] = a·x + c·y = 1.
    Ok(IMat::from_rows(&[&[a, -y], &[c, x]]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unimodularity_checks() {
        assert!(is_unimodular(&IMat::identity(3)));
        assert!(is_unimodular(&IMat::from_rows(&[&[1, 1], &[0, 1]])));
        assert!(is_unimodular(&IMat::from_rows(&[&[0, 1], &[1, 0]])));
        assert!(!is_unimodular(&IMat::from_rows(&[&[2, 0], &[0, 1]])));
        assert!(!is_unimodular(&IMat::from_rows(&[&[1, 0, 0], &[0, 1, 0]])));
    }

    #[test]
    fn random_unimodular_is_unimodular() {
        for seed in 0..50u64 {
            for n in 1..5usize {
                let u = random_unimodular(n, 30, seed);
                assert!(is_unimodular(&u), "seed {seed} n {n}: {u:?}");
            }
        }
    }

    #[test]
    fn random_unimodular_varies() {
        let a = random_unimodular(3, 30, 1);
        let b = random_unimodular(3, 30, 2);
        assert_ne!(a, b, "different seeds should give different matrices");
    }

    #[test]
    fn completion_basic() {
        let v = [2, 3];
        let u = complete_to_unimodular(&v).unwrap();
        assert_eq!(u.col(0), vec![2, 3]);
        assert!(is_unimodular(&u));
    }

    #[test]
    fn completion_3d() {
        let v = [6, 10, 15]; // pairwise non-coprime but globally primitive
        let u = complete_to_unimodular(&v).unwrap();
        assert_eq!(u.col(0), vec![6, 10, 15]);
        assert!(is_unimodular(&u));
    }

    #[test]
    fn completion_non_primitive_fails() {
        assert_eq!(complete_to_unimodular(&[2, 4]), Err(LinError::NotIntegral));
        assert_eq!(complete_to_unimodular(&[0, 0]), Err(LinError::Singular));
    }

    #[test]
    fn completion_negative_entries() {
        let v = [-1, 1];
        let u = complete_to_unimodular(&v).unwrap();
        assert_eq!(u.col(0), vec![-1, 1]);
        assert!(is_unimodular(&u));
    }

    #[test]
    fn bezout_2x2() {
        let u = bezout_unimodular_2x2(3, 5).unwrap();
        assert_eq!(u.det(), 1);
        assert_eq!(u[(0, 0)], 3);
        assert_eq!(u[(1, 0)], 5);
        assert!(bezout_unimodular_2x2(2, 4).is_err());
    }
}
