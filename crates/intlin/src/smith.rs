//! Smith normal form `A = U·D·V`.
//!
//! Used to decide solvability of integer matrix equations (`X·F = S` over
//! ℤ) and the existence of *integer* one-sided inverses `G·F = Id`, which
//! the access graph of the paper uses as edge weight matrices.

use crate::mat::IMat;

/// The Smith decomposition `A = U·D·V` with `U` (`m×m`) and `V` (`n×n`)
/// unimodular and `D` diagonal with `d_1 | d_2 | … | d_r`, `d_i ≥ 0`.
#[derive(Debug, Clone)]
pub struct SmithForm {
    /// Left unimodular factor (`m×m`).
    pub u: IMat,
    /// Diagonal middle factor (`m×n`).
    pub d: IMat,
    /// Right unimodular factor (`n×n`).
    pub v: IMat,
}

impl SmithForm {
    /// The diagonal entries `d_1, …, d_min(m,n)`.
    pub fn diagonal(&self) -> Vec<i64> {
        let k = self.d.rows().min(self.d.cols());
        (0..k).map(|i| self.d[(i, i)]).collect()
    }

    /// Rank = number of nonzero invariant factors.
    pub fn rank(&self) -> usize {
        self.diagonal().iter().filter(|&&x| x != 0).count()
    }
}

/// Compute the Smith normal form of `a`.
///
/// Returns [`SmithForm`] `{u, d, v}` with `a = u·d·v` exactly.
pub fn smith_normal_form(a: &IMat) -> SmithForm {
    let (m, n) = a.shape();
    let mut d = a.clone();
    // We accumulate the *inverse* transforms: ui·a·vi = d, so a = ui⁻¹·d·vi⁻¹.
    let mut ui = IMat::identity(m);
    let mut vi = IMat::identity(n);

    let k = m.min(n);
    for t in 0..k {
        loop {
            // Find the nonzero entry of minimal absolute value in the
            // trailing submatrix and move it to (t, t).
            let mut best: Option<(usize, usize)> = None;
            for i in t..m {
                for j in t..n {
                    if d[(i, j)] != 0
                        && best.is_none_or(|(bi, bj)| d[(i, j)].abs() < d[(bi, bj)].abs())
                    {
                        best = Some((i, j));
                    }
                }
            }
            let Some((pi, pj)) = best else {
                // Trailing block is all zero; done.
                return finish(ui, d, vi, t);
            };
            if pi != t {
                d.swap_rows(pi, t);
                ui.swap_rows(pi, t);
            }
            if pj != t {
                d.swap_cols(pj, t);
                vi.swap_cols(pj, t);
            }
            if d[(t, t)] < 0 {
                d.negate_row(t);
                ui.negate_row(t);
            }
            // Eliminate the rest of row t and column t.
            let mut dirty = false;
            for i in t + 1..m {
                if d[(i, t)] != 0 {
                    let q = d[(i, t)].div_euclid(d[(t, t)]);
                    d.add_row_multiple(i, t, -q);
                    ui.add_row_multiple(i, t, -q);
                    if d[(i, t)] != 0 {
                        dirty = true;
                    }
                }
            }
            for j in t + 1..n {
                if d[(t, j)] != 0 {
                    let q = d[(t, j)].div_euclid(d[(t, t)]);
                    d.add_col_multiple(j, t, -q);
                    vi.add_col_multiple(j, t, -q);
                    if d[(t, j)] != 0 {
                        dirty = true;
                    }
                }
            }
            if dirty {
                continue;
            }
            // Divisibility: d[t][t] must divide every trailing entry.
            let mut fixed = true;
            'outer: for i in t + 1..m {
                for j in t + 1..n {
                    if d[(i, j)] % d[(t, t)] != 0 {
                        // Classic trick: add row i to row t, retry.
                        d.add_row_multiple(t, i, 1);
                        ui.add_row_multiple(t, i, 1);
                        fixed = false;
                        break 'outer;
                    }
                }
            }
            if fixed {
                break;
            }
        }
    }
    finish(ui, d, vi, k)
}

fn finish(ui: IMat, d: IMat, vi: IMat, _r: usize) -> SmithForm {
    let u = ui
        .inverse_unimodular()
        .expect("smith: row transform not unimodular");
    let v = vi
        .inverse_unimodular()
        .expect("smith: column transform not unimodular");
    SmithForm { u, d, v }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unimodular::is_unimodular;

    fn m(rows: &[&[i64]]) -> IMat {
        IMat::from_rows(rows)
    }

    fn check(a: &IMat) {
        let s = smith_normal_form(a);
        assert!(is_unimodular(&s.u), "U not unimodular");
        assert!(is_unimodular(&s.v), "V not unimodular");
        assert_eq!(&(&s.u * &s.d) * &s.v, *a, "A != U·D·V for {a:?}");
        // D diagonal with divisibility chain.
        for i in 0..s.d.rows() {
            for j in 0..s.d.cols() {
                if i != j {
                    assert_eq!(s.d[(i, j)], 0, "D not diagonal");
                }
            }
        }
        let diag = s.diagonal();
        for w in diag.windows(2) {
            assert!(w[0] >= 0 && w[1] >= 0, "negative invariant factor");
            if w[0] != 0 {
                assert_eq!(w[1] % w[0].max(1), 0, "divisibility chain broken: {diag:?}");
            } else {
                assert_eq!(w[1], 0, "nonzero after zero in chain");
            }
        }
        assert_eq!(s.rank(), a.rank());
    }

    #[test]
    fn smith_classic() {
        check(&m(&[&[2, 4, 4], &[-6, 6, 12], &[10, 4, 16]]));
        let s = smith_normal_form(&m(&[&[2, 4, 4], &[-6, 6, 12], &[10, 4, 16]]));
        assert_eq!(s.diagonal(), vec![2, 2, 156]);
    }

    #[test]
    fn smith_identity_and_zero() {
        check(&IMat::identity(3));
        assert_eq!(
            smith_normal_form(&IMat::identity(3)).diagonal(),
            vec![1, 1, 1]
        );
        check(&IMat::zeros(2, 3));
        assert_eq!(smith_normal_form(&IMat::zeros(2, 3)).diagonal(), vec![0, 0]);
    }

    #[test]
    fn smith_rectangular() {
        check(&m(&[&[1, 2, 3], &[4, 5, 6]]));
        check(&m(&[&[1, 2], &[3, 4], &[5, 6]]));
        check(&m(&[&[6, 4], &[4, 8], &[2, 2]]));
    }

    #[test]
    fn smith_needs_divisibility_fix() {
        // [[2,0],[0,3]] must become [[1,0],[0,6]].
        let s = smith_normal_form(&m(&[&[2, 0], &[0, 3]]));
        assert_eq!(s.diagonal(), vec![1, 6]);
        check(&m(&[&[2, 0], &[0, 3]]));
    }

    #[test]
    fn smith_rank_deficient() {
        check(&m(&[&[1, 2], &[2, 4]]));
        let s = smith_normal_form(&m(&[&[1, 2], &[2, 4]]));
        assert_eq!(s.diagonal(), vec![1, 0]);
    }

    #[test]
    fn smith_unit_factors_iff_primitive() {
        // F2 from the paper (narrow 3×2 access matrix of statement S2 on b)
        // has all-unit invariant factors, so an integer left inverse exists.
        let f = m(&[&[1, 0], &[0, 1], &[0, 1]]);
        let s = smith_normal_form(&f);
        assert_eq!(s.diagonal(), vec![1, 1]);
    }

    #[test]
    fn smith_random_small() {
        let mut seed = 0xdeadbeefu64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) as i64 % 9) - 4
        };
        for _ in 0..100 {
            let a = IMat::from_fn(3, 3, |_, _| next());
            check(&a);
        }
        for _ in 0..50 {
            let a = IMat::from_fn(2, 4, |_, _| next());
            check(&a);
        }
    }
}
