//! Property tests for the decomposition algebra: every factor sequence
//! any function of this crate emits must multiply back to its input, and
//! the paper's structural conditions must hold on random matrices.

use proptest::prelude::*;
use rescomm_decompose::direct::{decompose2, decompose3, decompose4};
use rescomm_decompose::general::product_general;
use rescomm_decompose::{
    decompose_direct, decompose_general, euclid_decompose, paper_similarity, product,
    search_similarity, shear_decompose, shear_product,
};
use rescomm_intlin::IMat;

/// Strategy: a random SL₂(ℤ) matrix with small entries (built from
/// elementary factors so det = 1 by construction; coefficients stay
/// bounded by the factor count and sizes).
fn sl2() -> impl Strategy<Value = IMat> {
    proptest::collection::vec((-3i64..=3, any::<bool>()), 0..5).prop_map(|fs| {
        let mut acc = IMat::identity(2);
        for (k, upper) in fs {
            let f = if upper {
                IMat::from_rows(&[&[1, k], &[0, 1]])
            } else {
                IMat::from_rows(&[&[1, 0], &[k, 1]])
            };
            acc = &acc * &f;
        }
        acc
    })
}

fn small2x2() -> impl Strategy<Value = IMat> {
    proptest::collection::vec(-6i64..=6, 4).prop_map(|v| IMat::from_vec(2, 2, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn euclid_always_reconstructs_sl2(t in sl2()) {
        let f = euclid_decompose(&t).expect("det = 1 must decompose");
        prop_assert_eq!(product(&f), t);
    }

    #[test]
    fn direct_hierarchy_is_consistent(t in sl2()) {
        // decompose2 ⊆ decompose3 ⊆ decompose4 ⊆ decompose_direct: if a
        // shorter method succeeds, the longer ones must too, with results
        // that reconstruct.
        if let Some(f2) = decompose2(&t) {
            prop_assert_eq!(product(&f2), t.clone());
            prop_assert!(decompose3(&t).is_some());
        }
        if let Some(f3) = decompose3(&t) {
            prop_assert_eq!(product(&f3), t.clone());
            prop_assert!(decompose4(&t).is_some());
        }
        if let Some(f4) = decompose4(&t) {
            prop_assert_eq!(product(&f4), t.clone());
            prop_assert!(f4.len() <= 4);
        }
        let f = decompose_direct(&t).expect("det = 1");
        prop_assert_eq!(product(&f), t);
    }

    #[test]
    fn non_unimodular_never_gets_elementary_factors(t in small2x2()) {
        if t.det() != 1 {
            prop_assert!(decompose_direct(&t).is_none());
            prop_assert!(euclid_decompose(&t).is_none());
        }
    }

    #[test]
    fn general_decomposition_reconstructs(t in small2x2()) {
        if t.det() != 0 {
            let f = decompose_general(&t).expect("2×2 Smith path is total");
            prop_assert_eq!(product_general(&f, 2), t);
        } else {
            prop_assert!(decompose_general(&t).is_err());
        }
    }

    #[test]
    fn similarity_witnesses_verify(t in sl2()) {
        if let Some(s) = paper_similarity(&t) {
            prop_assert!(s.verify(&t), "bad witness for {:?}", t);
            prop_assert!(s.factors.len() <= 2);
        }
        if let Some(s) = search_similarity(&t, 50) {
            prop_assert!(s.verify(&t));
        }
    }

    #[test]
    fn similarity_never_changes_trace_or_det(t in sl2()) {
        if let Some(s) = paper_similarity(&t) {
            prop_assert_eq!(s.conjugate.trace(), t.trace());
            prop_assert_eq!(s.conjugate.det(), t.det());
        }
    }

    #[test]
    fn shear_decomposition_reconstructs_sl3(
        fs in proptest::collection::vec((0usize..3, 0usize..3, -2i64..=2), 0..6)
    ) {
        // Build an SL₃ product of shears, decompose, reconstruct.
        let mut t = IMat::identity(3);
        for (r, c, k) in fs {
            if r == c {
                continue;
            }
            let mut e = IMat::identity(3);
            e[(r, c)] = k;
            t = &t * &e;
        }
        let f = shear_decompose(&t).expect("SL₃ by construction");
        prop_assert_eq!(shear_product(&f, 3), t);
    }

    #[test]
    fn factor_counts_bounded_for_small_matrices(t in sl2()) {
        if t.max_abs() <= 5 {
            // The paper's claim (§4.2.1): ≤ 5 elementary factors suffice.
            // Our constructive pipeline may emit more via the Euclidean
            // fallback, but the *conditions* must certify ≤ 4 or euclid
            // must stay reasonable.
            let f = decompose_direct(&t).unwrap();
            prop_assert!(f.len() <= 12, "factor chain blew up: {} for {:?}", f.len(), t);
        }
    }
}
