//! Elementary (axis-parallel) communication matrices.
//!
//! For a 2-D grid the paper uses
//! `L(l) = [[1, 0], [l, 1]]` — a *horizontal* communication: the row
//! coordinate of the destination shifts by `l` times the column — and
//! `U(k) = [[1, k], [0, 1]]` — a *vertical* one. Implementing a dataflow
//! matrix as a short product of such factors turns one irregular
//! communication into a few conflict-light sweeps along the grid axes.

use rescomm_intlin::IMat;
use std::fmt;

/// An elementary 2×2 communication matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Elementary {
    /// `L(l) = [[1, 0], [l, 1]]`: horizontal communication.
    L(i64),
    /// `U(k) = [[1, k], [0, 1]]`: vertical communication.
    U(i64),
}

impl Elementary {
    /// The 2×2 matrix of this factor.
    pub fn to_mat(self) -> IMat {
        match self {
            Elementary::L(l) => IMat::from_rows(&[&[1, 0], &[l, 1]]),
            Elementary::U(k) => IMat::from_rows(&[&[1, k], &[0, 1]]),
        }
    }

    /// The inverse factor (`L(l)⁻¹ = L(−l)`).
    pub fn inverse(self) -> Elementary {
        match self {
            Elementary::L(l) => Elementary::L(-l),
            Elementary::U(k) => Elementary::U(-k),
        }
    }

    /// The shift amount.
    pub fn coeff(self) -> i64 {
        match self {
            Elementary::L(l) => l,
            Elementary::U(k) => k,
        }
    }

    /// `true` for identity factors (`L(0)`/`U(0)`).
    pub fn is_identity(self) -> bool {
        self.coeff() == 0
    }
}

impl fmt::Display for Elementary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Elementary::L(l) => write!(f, "L({l})"),
            Elementary::U(k) => write!(f, "U({k})"),
        }
    }
}

/// Product of a factor sequence, left to right: `f₁·f₂·…·f_n`.
pub fn product(factors: &[Elementary]) -> IMat {
    let mut acc = IMat::identity(2);
    for f in factors {
        acc = &acc * &f.to_mat();
    }
    acc
}

/// An `n×n` *unirow* matrix: the identity with row `row` replaced by
/// `coeffs` (used for axis-parallel communications on higher-dimensional
/// grids and for `det ≠ ±1` extensions, §4.1/§4.4).
pub fn unirow(n: usize, row: usize, coeffs: &[i64]) -> IMat {
    assert!(row < n && coeffs.len() == n, "unirow shape");
    IMat::from_fn(n, n, |i, j| {
        if i == row {
            coeffs[j]
        } else {
            i64::from(i == j)
        }
    })
}

/// An `n×n` *unicolumn* matrix: identity with column `col` replaced.
pub fn unicolumn(n: usize, col: usize, coeffs: &[i64]) -> IMat {
    assert!(col < n && coeffs.len() == n, "unicolumn shape");
    IMat::from_fn(n, n, |i, j| {
        if j == col {
            coeffs[i]
        } else {
            i64::from(i == j)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrices_match_definition() {
        assert_eq!(
            Elementary::L(3).to_mat(),
            IMat::from_rows(&[&[1, 0], &[3, 1]])
        );
        assert_eq!(
            Elementary::U(-2).to_mat(),
            IMat::from_rows(&[&[1, -2], &[0, 1]])
        );
        assert!(Elementary::L(0).is_identity());
        assert!(!Elementary::U(1).is_identity());
    }

    #[test]
    fn inverse_cancels() {
        for f in [Elementary::L(5), Elementary::U(-3)] {
            let p = &f.to_mat() * &f.inverse().to_mat();
            assert!(p.is_identity());
        }
    }

    #[test]
    fn product_order_is_left_to_right() {
        // The paper's Table 2 example: T = L(2)·U(3) = [[1,3],[2,7]].
        let t = product(&[Elementary::L(2), Elementary::U(3)]);
        assert_eq!(t, IMat::from_rows(&[&[1, 3], &[2, 7]]));
        // And the motivating example: L(1)·U(1) = [[1,1],[1,2]].
        let t2 = product(&[Elementary::L(1), Elementary::U(1)]);
        assert_eq!(t2, IMat::from_rows(&[&[1, 1], &[1, 2]]));
    }

    #[test]
    fn elementary_products_have_det_one() {
        let t = product(&[
            Elementary::L(4),
            Elementary::U(-2),
            Elementary::L(1),
            Elementary::U(7),
        ]);
        assert_eq!(t.det(), 1);
    }

    #[test]
    fn unirow_unicolumn_shapes() {
        let r = unirow(3, 1, &[2, 5, -1]);
        assert_eq!(r, IMat::from_rows(&[&[1, 0, 0], &[2, 5, -1], &[0, 0, 1]]));
        assert_eq!(r.det(), 5);
        let c = unicolumn(3, 0, &[3, 1, 0]);
        assert_eq!(c, IMat::from_rows(&[&[3, 0, 0], &[1, 1, 0], &[0, 0, 1]]));
        assert_eq!(c.det(), 3);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Elementary::L(2)), "L(2)");
        assert_eq!(format!("{}", Elementary::U(-1)), "U(-1)");
    }
}
