//! Decomposing dataflow matrices with `det ≠ ±1` (§4.4 "Extensions").
//!
//! A non-unimodular dataflow matrix cannot be a product of elementary
//! `L`/`U` factors (those have determinant 1). The paper generalizes with
//! *unirow* / *unicolumn* matrices — identity except for one row/column —
//! which still generate axis-parallel communications (the grouped
//! partition implements them efficiently too). We factor
//! `T = R₁·R₂·…·R_n` with one unirow factor per row, by in-place
//! elimination; each factor only mixes one output coordinate, i.e. it is a
//! communication parallel to that grid axis.

use crate::direct::euclid_decompose;
use crate::elementary::{unirow, Elementary};
use rescomm_intlin::{smith_normal_form, IMat, LinError, RMat};

/// A factor of a general decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenFactor {
    /// A unirow matrix: identity except row `row`, whose entries are
    /// `coeffs`. Moves data only along grid axis `row`.
    Unirow {
        /// The affected row/axis.
        row: usize,
        /// The full replacement row.
        coeffs: Vec<i64>,
    },
}

impl GenFactor {
    /// Materialize the factor as a matrix of order `n`.
    pub fn to_mat(&self, n: usize) -> IMat {
        match self {
            GenFactor::Unirow { row, coeffs } => unirow(n, *row, coeffs),
        }
    }
}

/// Decompose a nonsingular `n×n` integer matrix into `n` unirow factors
/// (one per output axis): `T = R₀·R₁·…·R_{n−1}`, where factor `R_i` is the
/// identity outside row `i`.
///
/// This is exactly LU-style Gaussian elimination with the row operations
/// collected per axis; it succeeds whenever all *trailing* principal
/// minors are nonzero and the arising fractions clear (true for the
/// dataflow matrices of the paper's examples). Returns
/// [`LinError::Singular`] / [`LinError::NotIntegral`] otherwise.
pub fn decompose_general(t: &IMat) -> Result<Vec<GenFactor>, LinError> {
    assert!(t.is_square(), "dataflow matrix must be square");
    let n = t.rows();
    if t.det() == 0 {
        return Err(LinError::Singular);
    }
    if n == 2 {
        return decompose_general_2x2(t);
    }
    row_peel(t)
}

/// Elementary 2×2 factors *are* unirow matrices: `U(k)` acts on axis 0,
/// `L(l)` on axis 1.
fn elem_to_unirow(e: Elementary) -> GenFactor {
    match e {
        Elementary::U(k) => GenFactor::Unirow {
            row: 0,
            coeffs: vec![1, k],
        },
        Elementary::L(l) => GenFactor::Unirow {
            row: 1,
            coeffs: vec![l, 1],
        },
    }
}

/// Full-coverage 2×2 path via the Smith form: `T = U·D·V` with `U`, `V`
/// unimodular (→ elementary products, with a sign-flip unirow factor when
/// `det = −1`) and `D` diagonal (→ one unirow factor per nonzero scaling).
fn decompose_general_2x2(t: &IMat) -> Result<Vec<GenFactor>, LinError> {
    let s = smith_normal_form(t);
    let mut factors: Vec<GenFactor> = Vec::new();
    let push_unimodular = |m: &IMat, factors: &mut Vec<GenFactor>| {
        if m.det() == 1 {
            let seq = euclid_decompose(m).expect("det = 1 decomposes");
            factors.extend(seq.into_iter().map(elem_to_unirow));
        } else {
            // det = −1: M = (M·J)·J with J = diag(1, −1) a unirow factor.
            let j = IMat::from_rows(&[&[1, 0], &[0, -1]]);
            let mj = m * &j;
            let seq = euclid_decompose(&mj).expect("det = 1 decomposes");
            factors.extend(seq.into_iter().map(elem_to_unirow));
            factors.push(GenFactor::Unirow {
                row: 1,
                coeffs: vec![0, -1],
            });
        }
    };
    push_unimodular(&s.u, &mut factors);
    for i in 0..2 {
        let d = s.d[(i, i)];
        if d != 1 {
            let mut coeffs = vec![0i64, 0];
            coeffs[i] = d;
            factors.push(GenFactor::Unirow { row: i, coeffs });
        }
    }
    push_unimodular(&s.v, &mut factors);
    debug_assert_eq!(product_general(&factors, 2), *t);
    Ok(factors)
}

/// Row-peel scheme for `n > 2`: one unirow factor per axis, requires the
/// trailing principal structure to clear fractions.
fn row_peel(t: &IMat) -> Result<Vec<GenFactor>, LinError> {
    let n = t.rows();
    let mut factors: Vec<GenFactor> = Vec::new();
    let mut suffix = IMat::identity(n); // product of factors already peeled
                                        // Peel from the last row upward so the suffix stays triangular-ish.
    for i in (0..n).rev() {
        // Need rᵢ with rᵢ·suffix = row i of T. suffix is invertible.
        let suffix_r = RMat::from_int(&suffix);
        let inv = suffix_r.inverse()?;
        let row_t = IMat::row_vec(t.row(i));
        let ri = RMat::from_int(&row_t).mul(&inv);
        let ri = ri.to_int()?;
        let coeffs: Vec<i64> = (0..n).map(|j| ri[(0, j)]).collect();
        let r = unirow(n, i, &coeffs);
        if r.det() == 0 {
            return Err(LinError::Singular);
        }
        suffix = &r * &suffix;
        factors.push(GenFactor::Unirow { row: i, coeffs });
    }
    factors.reverse();
    // factors[0] corresponds to row 0 … — but we built suffix as
    // R_{n−1}, then R_{n−2}·R_{n−1}, … so the product of the reversed list
    // is R₀·R₁·…·R_{n−1} = T.
    debug_assert_eq!(suffix, *t);
    Ok(factors)
}

/// Multiply the factors back (for verification).
pub fn product_general(factors: &[GenFactor], n: usize) -> IMat {
    let mut acc = IMat::identity(n);
    for f in factors {
        acc = &acc * &f.to_mat(n);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&[i64]]) -> IMat {
        IMat::from_rows(rows)
    }

    #[test]
    fn det2_matrix_decomposes() {
        let t = m(&[&[2, 1], &[1, 1]]); // det = 1 — also fine here
        let f = decompose_general(&t).unwrap();
        assert!(!f.is_empty());
        assert_eq!(product_general(&f, 2), t);
    }

    #[test]
    fn non_unimodular_decomposes() {
        let t = m(&[&[2, 1], &[1, 2]]); // det = 3
        let f = decompose_general(&t).unwrap();
        assert_eq!(product_general(&f, 2), t);
        // Every factor moves a single axis.
        for fac in &f {
            let GenFactor::Unirow { row, .. } = fac;
            assert!(*row < 2);
        }
    }

    #[test]
    fn negative_determinant_decomposes() {
        let t = m(&[&[0, 1], &[1, 0]]); // det = −1 (swap)
        let f = decompose_general(&t).unwrap();
        assert_eq!(product_general(&f, 2), t);
    }

    #[test]
    fn three_dimensional_grid() {
        let t = m(&[&[1, 0, 0], &[1, 2, 0], &[0, 1, 3]]); // det = 6
        let f = decompose_general(&t).unwrap();
        assert_eq!(f.len(), 3);
        assert_eq!(product_general(&f, 3), t);
    }

    #[test]
    fn singular_rejected() {
        let t = m(&[&[1, 2], &[2, 4]]);
        assert_eq!(decompose_general(&t), Err(LinError::Singular));
    }

    #[test]
    fn elementary_matrices_decompose_compactly() {
        let t = m(&[&[1, 3], &[0, 1]]);
        let f = decompose_general(&t).unwrap();
        assert_eq!(product_general(&f, 2), t);
        // An elementary matrix should not explode into a long chain.
        assert!(f.len() <= 3, "got {} factors", f.len());
    }

    #[test]
    fn random_nonsingular_roundtrip() {
        let mut seed = 0x2468u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(17);
            ((seed >> 33) as i64 % 5) - 2
        };
        let mut done = 0;
        for _ in 0..500 {
            let t = IMat::from_fn(2, 2, |_, _| next());
            if t.det() == 0 {
                continue;
            }
            // The 2×2 Smith path covers every nonsingular matrix.
            let f = decompose_general(&t).unwrap_or_else(|e| panic!("{e} for {t:?}"));
            assert_eq!(product_general(&f, 2), t, "bad factors for {t:?}");
            done += 1;
        }
        assert!(done > 100, "too few successes: {done}");
    }
}
