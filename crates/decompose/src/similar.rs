//! Decomposition up to unimodular similarity (§4.2.2).
//!
//! Alignment matrices in one component are only fixed up to a unimodular
//! left factor `M`, which turns the dataflow matrix `T` into `M·T·M⁻¹`.
//! Instead of decomposing `T` directly, one may search its similarity
//! class for a matrix that is a product of just two elementary factors.
//! The paper shows by class-number arguments that this is *not* always
//! possible, and gives a sufficient condition — `c | a − 1` — with an
//! explicit change of basis; note it is the same condition as for a
//! 3-factor direct decomposition, so "either strategy could be more
//! interesting depending upon the target machine".

use crate::direct::decompose2;
use crate::elementary::{product, Elementary};
use rescomm_intlin::{random_unimodular, IMat};

/// A decomposition of `M·T·M⁻¹` rather than `T` itself.
#[derive(Debug, Clone)]
pub struct SimilarDecomposition {
    /// The unimodular rotation to apply to the component's allocations.
    pub m: IMat,
    /// The conjugated dataflow matrix `M·T·M⁻¹`.
    pub conjugate: IMat,
    /// Elementary factors of the conjugate.
    pub factors: Vec<Elementary>,
}

impl SimilarDecomposition {
    /// Check internal consistency: `M·T·M⁻¹ = Π factors`.
    pub fn verify(&self, t: &IMat) -> bool {
        let minv = match self.m.inverse_unimodular() {
            Ok(x) => x,
            Err(_) => return false,
        };
        let conj = &(&self.m * t) * &minv;
        conj == self.conjugate && product(&self.factors) == self.conjugate
    }
}

/// The paper's sufficient condition: if `c | a − 1` (with `c ≠ 0`), then
/// `T` is similar to `[[1, c], [μ, μc + 1]]` with `μ = (a + d − 2) / c`,
/// via the unimodular basis `M⁻¹ = [[λ, a], [1, c]]`, `λ = (a − 1)/c`.
pub fn paper_similarity(t: &IMat) -> Option<SimilarDecomposition> {
    let (a, b, c, d) = (t[(0, 0)], t[(0, 1)], t[(1, 0)], t[(1, 1)]);
    if a * d - b * c != 1 {
        return None;
    }
    // Direct conditions first (a = 1 or d = 1 needs no rotation).
    if let Some(factors) = decompose2(t) {
        return Some(SimilarDecomposition {
            m: IMat::identity(2),
            conjugate: t.clone(),
            factors,
        });
    }
    let attempt = |t: &IMat| -> Option<SimilarDecomposition> {
        let (a, _b, c, _d) = (t[(0, 0)], t[(0, 1)], t[(1, 0)], t[(1, 1)]);
        if c == 0 || (a - 1) % c != 0 {
            return None;
        }
        let lambda = (a - 1) / c;
        let minv = IMat::from_rows(&[&[lambda, a], &[1, c]]);
        if !matches!(minv.det(), 1 | -1) {
            return None; // λc − a = −1 always, but stay defensive
        }
        let m = minv.inverse_unimodular().ok()?;
        let conjugate = &(&m * t) * &minv;
        let factors = decompose2(&conjugate)?;
        Some(SimilarDecomposition {
            m,
            conjugate,
            factors,
        })
    };
    if let Some(s) = attempt(t) {
        return Some(s);
    }
    // Symmetric condition through the transpose: Tᵗ similar-decomposable
    // means T is too (conjugate by the transposed inverse), but the factor
    // bookkeeping is simpler by just trying the transposed condition on a
    // swapped basis; the random search below covers what this misses.
    None
}

/// Random search over unimodular conjugations: try `tries` pseudo-random
/// `M` (plus the paper's construction) and return the first conjugate that
/// decomposes into ≤ 2 elementary factors.
pub fn search_similarity(t: &IMat, tries: usize) -> Option<SimilarDecomposition> {
    if let Some(s) = paper_similarity(t) {
        return Some(s);
    }
    for seed in 0..tries as u64 {
        let m = random_unimodular(2, 12, seed.wrapping_mul(0x9e3779b9) | 1);
        let Ok(minv) = m.inverse_unimodular() else {
            continue;
        };
        let conj = &(&m * t) * &minv;
        if conj.max_abs() > 64 {
            continue; // keep the dataflow coefficients tame
        }
        if let Some(factors) = decompose2(&conj) {
            return Some(SimilarDecomposition {
                m,
                conjugate: conj,
                factors,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m2(a: i64, b: i64, c: i64, d: i64) -> IMat {
        IMat::from_rows(&[&[a, b], &[c, d]])
    }

    #[test]
    fn already_decomposable_needs_no_rotation() {
        let t = m2(1, 1, 1, 2);
        let s = paper_similarity(&t).unwrap();
        assert!(s.m.is_identity());
        assert!(s.verify(&t));
        assert_eq!(s.factors.len(), 2);
    }

    #[test]
    fn sufficient_condition_constructs_similarity() {
        // c | a−1 with a ≠ 1, d ≠ 1: [[3, 4], [2, 3]].
        let t = m2(3, 4, 2, 3);
        let s = paper_similarity(&t).expect("c | a−1 must construct");
        assert!(s.verify(&t), "verification failed: {s:?}");
        assert!(s.factors.len() <= 2);
        // The conjugate has a 1 in the corner as predicted.
        assert_eq!(s.conjugate[(0, 0)], 1);
    }

    #[test]
    fn conjugate_trace_preserved() {
        let t = m2(3, 4, 2, 3);
        let s = paper_similarity(&t).unwrap();
        assert_eq!(s.conjugate.trace(), t.trace());
        assert_eq!(s.conjugate.det(), t.det());
    }

    #[test]
    fn search_similarity_extends_reach() {
        // Build a guaranteed-awkward det-1 matrix: conjugate L(1)·U(1) by a
        // random unimodular, then ask the search to undo the twist.
        let v = random_unimodular(2, 10, 42);
        let vinv = v.inverse_unimodular().unwrap();
        let base = product(&[Elementary::L(1), Elementary::U(1)]);
        let twisted = &(&v * &base) * &vinv;
        let s = search_similarity(&twisted, 500).expect("conjugate of LU");
        assert!(s.verify(&twisted));
        assert!(s.factors.len() <= 2);
    }

    #[test]
    fn similarity_fails_for_some_classes() {
        // Trace-2 non-elementary classes: [[1+k, −k],[k, 1−k]] for k = 4 is
        // unipotent with "modulus" 4… conjugates of U(±4)-like classes can
        // never equal a product L(l)U(k) with lk = 0 unless the class is
        // elementary. Our search must give up (return None) on the class of
        // −Id-like or stubborn matrices within the try budget, never return
        // a wrong answer.
        let t = m2(-1, 0, 0, -1); // −Id: conjugation-invariant, never LU.
        assert!(search_similarity(&t, 200).is_none());
    }

    #[test]
    fn verify_rejects_corrupted_witness() {
        let t = m2(3, 4, 2, 3);
        let mut s = paper_similarity(&t).unwrap();
        s.conjugate = m2(1, 0, 0, 1);
        assert!(!s.verify(&t));
    }
}
