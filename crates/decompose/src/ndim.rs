//! Elementary decomposition on `n`-dimensional grids (§4.1 extension).
//!
//! The paper notes that "some current-generation machines have a 3-D
//! topology (Cray T3D), hence the cases m = 2 and m = 3 are of particular
//! practical interest" and that the 2-D ideas "can be obviously extended
//! to higher dimensions". The `n`-dimensional elementary factor is a
//! *shear*: the identity plus a single off-diagonal entry
//! `E(r, c, k) = Id + k·e_r·e_cᵗ` — a communication parallel to grid axis
//! `r` whose stride depends on coordinate `c` only. Every matrix of
//! `SL_n(ℤ)` is a product of such shears; we produce one by integer
//! Gaussian elimination.

use rescomm_intlin::IMat;

/// An `n`-dimensional elementary shear `Id + k·e_row·e_colᵗ`
/// (`row ≠ col`): a communication parallel to axis `row`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NShear {
    /// The moved axis.
    pub row: usize,
    /// The driving coordinate.
    pub col: usize,
    /// The stride multiplier.
    pub k: i64,
}

impl NShear {
    /// Materialize as an `n×n` matrix.
    pub fn to_mat(&self, n: usize) -> IMat {
        assert!(self.row < n && self.col < n && self.row != self.col);
        let mut m = IMat::identity(n);
        m[(self.row, self.col)] = self.k;
        m
    }

    /// Inverse shear.
    pub fn inverse(&self) -> NShear {
        NShear {
            k: -self.k,
            ..*self
        }
    }
}

/// Product of a shear sequence (left to right).
pub fn shear_product(factors: &[NShear], n: usize) -> IMat {
    let mut acc = IMat::identity(n);
    for f in factors {
        acc = &acc * &f.to_mat(n);
    }
    acc
}

/// Decompose a `det = 1` integer matrix into elementary shears.
///
/// Returns `None` when `det T ≠ 1` (for `det = −1` compose with a unirow
/// sign flip first, see [`crate::general`]). The factor count is
/// `O(n² log‖T‖)`; no minimality is claimed (the 2-D module has the sharp
/// ≤ 4-factor conditions).
pub fn shear_decompose(t: &IMat) -> Option<Vec<NShear>> {
    assert!(t.is_square());
    let n = t.rows();
    if t.det() != 1 {
        return None;
    }
    if n == 1 {
        return Some(vec![]); // det 1 ⟹ T = [1]
    }
    // Reduce T to the identity by left-multiplying with shears:
    // T = E₁…E_k ⟺ (E₁…E_k)⁻¹ T = Id. We record the *stripped* factors.
    let mut cur = t.clone();
    let mut factors: Vec<NShear> = Vec::new();
    let strip = |cur: &mut IMat, factors: &mut Vec<NShear>, s: NShear| {
        // prefix ← prefix·s ; cur ← s⁻¹·cur.
        factors.push(s);
        *cur = &s.inverse().to_mat(cur.rows()) * &*cur;
    };
    for col in 0..n {
        // Clear column `col` below and above the diagonal; first create a
        // ±1 pivot at (col, col) by gcd steps within rows col..n.
        for _ in 0..256 {
            // Find the two smallest nonzero entries in this column at
            // rows ≥ col and reduce one by the other.
            let mut nz: Vec<usize> = (col..n).filter(|&r| cur[(r, col)] != 0).collect();
            nz.sort_by_key(|&r| cur[(r, col)].unsigned_abs());
            match nz.len() {
                0 => return None, // singular — cannot happen for det 1
                1 => {
                    let r = nz[0];
                    if r != col {
                        // Move the pivot to the diagonal with two shears
                        // (a swap up to sign): row_col += row_r; then
                        // row_r -= row_col (old col row was 0 there)…
                        strip(
                            &mut cur,
                            &mut factors,
                            NShear {
                                row: col,
                                col: r,
                                k: 1,
                            },
                        );
                        continue;
                    }
                    break;
                }
                _ => {
                    let (small, big) = (nz[0], nz[1]);
                    let q = cur[(big, col)] / cur[(small, col)];
                    strip(
                        &mut cur,
                        &mut factors,
                        NShear {
                            row: big,
                            col: small,
                            k: q,
                        },
                    );
                }
            }
        }
        // Pivot now at (col, col); normalize to +1 if it is −1 using a
        // partner row (n ≥ 2 guarantees one exists).
        let p = cur[(col, col)];
        if p == -1 {
            // Three shears flip the sign of the pivot using a partner row
            // (det = 1 guarantees a −1 pivot never occurs in the last
            // column, so the partner row is always still unreduced):
            //   R_p −= R_c   (partner picks up +1 in this column)
            //   R_c += 2·R_p (pivot becomes −1 + 2 = +1)
            //   R_p −= R_c   (partner's column entry returns to 0)
            let partner = if col + 1 < n { col + 1 } else { col - 1 };
            strip(
                &mut cur,
                &mut factors,
                NShear {
                    row: partner,
                    col,
                    k: 1,
                },
            );
            strip(
                &mut cur,
                &mut factors,
                NShear {
                    row: col,
                    col: partner,
                    k: -2,
                },
            );
            strip(
                &mut cur,
                &mut factors,
                NShear {
                    row: partner,
                    col,
                    k: 1,
                },
            );
        } else if p != 1 {
            return None; // non-unimodular residue — cannot happen
        }
        // Clear the rest of the column with the +1 pivot.
        for r in 0..n {
            if r != col && cur[(r, col)] != 0 {
                let q = cur[(r, col)];
                strip(&mut cur, &mut factors, NShear { row: r, col, k: q });
            }
        }
        // Clear the rest of the *row* right of the diagonal so later
        // columns stay clean.
        for c in col + 1..n {
            if cur[(col, c)] != 0 {
                let q = cur[(col, c)];
                strip(
                    &mut cur,
                    &mut factors,
                    NShear {
                        row: col,
                        col: c,
                        k: q,
                    },
                );
            }
        }
    }
    if !cur.is_identity() {
        return None;
    }
    // Drop identity factors.
    factors.retain(|f| f.k != 0);
    debug_assert_eq!(shear_product(&factors, n), *t);
    Some(factors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescomm_intlin::random_unimodular;

    #[test]
    fn shear_matrices() {
        let s = NShear {
            row: 0,
            col: 2,
            k: 3,
        };
        let m = s.to_mat(3);
        assert_eq!(m[(0, 2)], 3);
        assert_eq!(m.det(), 1);
        assert!((&m * &s.inverse().to_mat(3)).is_identity());
    }

    #[test]
    fn identity_decomposes_empty() {
        assert_eq!(shear_decompose(&IMat::identity(3)), Some(vec![]));
    }

    #[test]
    fn l_and_u_are_single_shears() {
        let l = IMat::from_rows(&[&[1, 0], &[5, 1]]);
        let f = shear_decompose(&l).unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(
            f[0],
            NShear {
                row: 1,
                col: 0,
                k: 5
            }
        );
    }

    #[test]
    fn det_minus_one_rejected() {
        let swap = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        assert!(shear_decompose(&swap).is_none());
    }

    #[test]
    fn non_unimodular_rejected() {
        let m = IMat::from_rows(&[&[2, 0], &[0, 1]]); // det = 2
        assert!(shear_decompose(&m).is_none());
    }

    #[test]
    fn random_sl3_roundtrip() {
        for seed in 0..60u64 {
            let mut u = random_unimodular(3, 25, seed * 7 + 1);
            if u.det() == -1 {
                u.negate_row(0);
                if u.det() != 1 {
                    continue;
                }
            }
            let f = shear_decompose(&u).unwrap_or_else(|| panic!("SL3 must decompose: {u:?}"));
            assert_eq!(shear_product(&f, 3), u, "bad product for {u:?}");
        }
    }

    #[test]
    fn random_sl4_roundtrip() {
        for seed in 0..30u64 {
            let mut u = random_unimodular(4, 30, seed * 13 + 5);
            if u.det() == -1 {
                u.negate_row(0);
            }
            if u.det() != 1 {
                continue;
            }
            let f = shear_decompose(&u).expect("SL4 must decompose");
            assert_eq!(shear_product(&f, 4), u);
        }
    }

    #[test]
    fn factors_are_axis_parallel() {
        // Every emitted factor moves exactly one axis: that is the whole
        // point (communications parallel to one axis of the grid).
        let u = random_unimodular(3, 20, 99);
        let u = if u.det() == 1 {
            u
        } else {
            let mut v = u;
            v.negate_row(2);
            v
        };
        if u.det() != 1 {
            return;
        }
        for f in shear_decompose(&u).unwrap() {
            assert_ne!(f.row, f.col);
            assert_ne!(f.k, 0);
        }
    }
}
