//! # rescomm-proptest — an offline, dependency-free subset of `proptest`
//!
//! The workspace's property tests were written against the real
//! [`proptest`](https://docs.rs/proptest) crate, but the build environment
//! is fully offline, so this shim re-implements exactly the API surface
//! those tests use and is wired in via a Cargo dependency rename
//! (`proptest = { path = "crates/proptest-shim", package = "rescomm-proptest" }`).
//!
//! Covered: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! integer range strategies, tuples, [`collection::vec`], [`Just`],
//! `any::<bool>()`, `prop_map` / `prop_flat_map` / `prop_filter`,
//! [`prop_oneof!`], regex-flavoured string strategies (the small subset the
//! parser fuzz tests use), and the `prop_assert*` family.
//!
//! Deliberately NOT covered: shrinking. A failing case reports the test
//! name, the case index and the deterministic seed; cases are reproducible
//! because every test derives its RNG seed from its own path.

pub mod test_runner {
    /// Deterministic split-mix RNG; every test gets a seed derived from
    /// its module path, so failures are reproducible run over run.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed from a test path (FNV-1a), optionally perturbed by the
        /// `PROPTEST_SEED` environment variable.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(extra) = s.parse::<u64>() {
                    h ^= extra.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                }
            }
            TestRng(h | 1)
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform boolean.
        pub fn gen_bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }

    /// The subset of `proptest::test_runner::Config` the tests touch.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// Construct a config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A value generator: the shim collapses proptest's strategy/value-tree
    /// split into direct generation (no shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Generate an intermediate value, then generate from the strategy
        /// it selects.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Reject values failing `pred` (regenerates; gives up after 1000
        /// attempts).
        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }

        /// Type-erase the strategy (used by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
        }
    }

    /// A type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter: no value satisfied `{}`", self.reason);
        }
    }

    /// Always produce a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between type-erased strategies ([`prop_oneof!`]).
    #[derive(Clone)]
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from the (non-empty) alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty strategy range");
                    let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (*self.start() as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::sample_pattern(self, rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Generate a value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen_bool()
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    /// Strategy form of [`Arbitrary`].
    #[derive(Debug, Clone)]
    pub struct AnyStrategy<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for AnyStrategy<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy of `T`.
    pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive length bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing vectors of values of `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec` — a vector whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod string {
    //! A tiny regex-flavoured *generator* covering the patterns the
    //! workspace's fuzz tests use: literals, escapes, `\PC`, `\d`, `\w`,
    //! `\s`, `.`-any, character classes with ranges and negation, groups
    //! with alternation, and `{m,n}` / `{n}` / `?` / `*` / `+` repetition.

    use crate::test_runner::TestRng;

    enum Node {
        Seq(Vec<Node>),
        Alt(Vec<Node>),
        Class(Vec<char>),
        Rep(Box<Node>, u32, u32),
    }

    fn printable_pool() -> Vec<char> {
        let mut pool: Vec<char> = (' '..='~').collect();
        pool.extend(['é', 'λ', '→', '°', '\u{2028}']);
        pool
    }

    struct Parser {
        chars: Vec<char>,
        pos: usize,
    }

    impl Parser {
        fn peek(&self) -> Option<char> {
            self.chars.get(self.pos).copied()
        }

        fn bump(&mut self) -> Option<char> {
            let c = self.peek();
            if c.is_some() {
                self.pos += 1;
            }
            c
        }

        fn parse_alt(&mut self) -> Node {
            let mut arms = vec![self.parse_seq()];
            while self.peek() == Some('|') {
                self.bump();
                arms.push(self.parse_seq());
            }
            if arms.len() == 1 {
                arms.pop().unwrap()
            } else {
                Node::Alt(arms)
            }
        }

        fn parse_seq(&mut self) -> Node {
            let mut items = Vec::new();
            while let Some(c) = self.peek() {
                if c == ')' || c == '|' {
                    break;
                }
                let atom = self.parse_atom();
                items.push(self.parse_quantifier(atom));
            }
            Node::Seq(items)
        }

        fn parse_atom(&mut self) -> Node {
            match self.bump().expect("pattern atom") {
                '(' => {
                    let inner = self.parse_alt();
                    assert_eq!(self.bump(), Some(')'), "unbalanced group");
                    inner
                }
                '[' => self.parse_class(),
                '\\' => self.parse_escape(),
                '.' => Node::Class(printable_pool()),
                c => Node::Class(vec![c]),
            }
        }

        fn parse_escape(&mut self) -> Node {
            match self.bump().expect("escape") {
                // Unicode category escapes: only the "control" category is
                // used (`\PC` = NOT control = printable).
                'P' | 'p' => {
                    let cat = self.bump().expect("category");
                    assert_eq!(cat, 'C', "only the C category is supported");
                    Node::Class(printable_pool())
                }
                'd' => Node::Class(('0'..='9').collect()),
                'w' => {
                    let mut pool: Vec<char> = ('a'..='z').collect();
                    pool.extend('A'..='Z');
                    pool.extend('0'..='9');
                    pool.push('_');
                    Node::Class(pool)
                }
                's' => Node::Class(vec![' ', '\t', '\n']),
                c => Node::Class(vec![c]),
            }
        }

        fn parse_class(&mut self) -> Node {
            let negate = if self.peek() == Some('^') {
                self.bump();
                true
            } else {
                false
            };
            let mut set = Vec::new();
            loop {
                let c = self.bump().expect("unterminated class");
                if c == ']' {
                    break;
                }
                let lo = if c == '\\' {
                    self.bump().expect("class escape")
                } else {
                    c
                };
                // A range `a-z` (a `-` before `]` is a literal dash).
                if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                    self.bump();
                    let hi = {
                        let h = self.bump().expect("range end");
                        if h == '\\' {
                            self.bump().expect("class escape")
                        } else {
                            h
                        }
                    };
                    set.extend(lo..=hi);
                } else {
                    set.push(lo);
                }
            }
            if negate {
                let pool: Vec<char> = printable_pool()
                    .into_iter()
                    .filter(|c| !set.contains(c))
                    .collect();
                Node::Class(pool)
            } else {
                Node::Class(set)
            }
        }

        fn parse_quantifier(&mut self, atom: Node) -> Node {
            match self.peek() {
                Some('{') => {
                    self.bump();
                    let mut lo = String::new();
                    while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                        lo.push(self.bump().unwrap());
                    }
                    let lo: u32 = lo.parse().expect("repetition bound");
                    let hi = if self.peek() == Some(',') {
                        self.bump();
                        let mut hi = String::new();
                        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                            hi.push(self.bump().unwrap());
                        }
                        hi.parse().expect("repetition bound")
                    } else {
                        lo
                    };
                    assert_eq!(self.bump(), Some('}'), "unterminated repetition");
                    Node::Rep(Box::new(atom), lo, hi)
                }
                Some('?') => {
                    self.bump();
                    Node::Rep(Box::new(atom), 0, 1)
                }
                Some('*') => {
                    self.bump();
                    Node::Rep(Box::new(atom), 0, 8)
                }
                Some('+') => {
                    self.bump();
                    Node::Rep(Box::new(atom), 1, 8)
                }
                _ => atom,
            }
        }
    }

    fn sample(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Seq(items) => items.iter().for_each(|n| sample(n, rng, out)),
            Node::Alt(arms) => {
                let i = rng.below(arms.len() as u64) as usize;
                sample(&arms[i], rng, out);
            }
            Node::Class(pool) => {
                assert!(!pool.is_empty(), "empty character class");
                out.push(pool[rng.below(pool.len() as u64) as usize]);
            }
            Node::Rep(inner, lo, hi) => {
                let n = lo + rng.below((hi - lo + 1) as u64) as u32;
                for _ in 0..n {
                    sample(inner, rng, out);
                }
            }
        }
    }

    /// Generate one string matching `pattern`.
    pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut parser = Parser {
            chars: pattern.chars().collect(),
            pos: 0,
        };
        let node = parser.parse_alt();
        assert!(
            parser.pos == parser.chars.len(),
            "trailing pattern input in {pattern:?}"
        );
        let mut out = String::new();
        sample(&node, rng, &mut out);
        out
    }
}

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// The test-definition macro. Supports an optional leading
/// `#![proptest_config(<expr>)]` followed by `#[test]` functions whose
/// parameters are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let __name = concat!(module_path!(), "::", stringify!($name));
            let mut __rng = $crate::test_runner::TestRng::for_test(__name);
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let __result: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!(
                        "[{}] case {}/{} failed (rerun is deterministic):\n{}",
                        __name,
                        __case + 1,
                        __config.cases,
                        __e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// `assert!` that reports through the proptest failure channel.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// `assert_eq!` that reports through the proptest failure channel.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err(::std::format!(
                        "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                        __l, __r
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err(::std::format!(
                        "{}\nassertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                        ::std::format!($($fmt)+), __l, __r
                    ));
                }
            }
        }
    };
}

/// `assert_ne!` that reports through the proptest failure channel.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err(::std::format!(
                        "assertion failed: `(left != right)`\n  both: `{:?}`",
                        __l
                    ));
                }
            }
        }
    };
}

/// Discard the current case when an assumption does not hold. (The real
/// proptest regenerates; the shim simply counts the case as passed.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("ranges");
        for _ in 0..200 {
            let v = (-5i64..=5).generate(&mut rng);
            assert!((-5..=5).contains(&v));
            let u = (1u64..512).generate(&mut rng);
            assert!((1..512).contains(&u));
        }
    }

    #[test]
    fn vec_lengths_respect_size() {
        let mut rng = crate::test_runner::TestRng::for_test("vec");
        for _ in 0..100 {
            let v = crate::collection::vec(0usize..10, 2..=5).generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
            let exact = crate::collection::vec(-2i64..=2, 9).generate(&mut rng);
            assert_eq!(exact.len(), 9);
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = crate::test_runner::TestRng::for_test("strings");
        for _ in 0..100 {
            let s = "[a-z ]{0,20}".generate(&mut rng);
            assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
            assert!(s.chars().count() <= 20);
            let t = "(read|write) [0-9]{1,3}".generate(&mut rng);
            let (head, tail) = t.split_once(' ').unwrap();
            assert!(head == "read" || head == "write");
            assert!(!tail.is_empty() && tail.chars().all(|c| c.is_ascii_digit()));
            let any = "\\PC{0,200}".generate(&mut rng);
            assert!(any.chars().count() <= 200);
        }
    }

    #[test]
    fn determinism_per_test_name() {
        let mut a = crate::test_runner::TestRng::for_test("same");
        let mut b = crate::test_runner::TestRng::for_test("same");
        assert_eq!(
            (0..16).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..16).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro pipeline itself: bindings, asserts, oneof, map.
        #[test]
        fn macro_roundtrip(
            x in 0usize..10,
            pair in (1i64..4, 1i64..4),
            tag in prop_oneof![Just("a"), Just("b")],
            v in crate::collection::vec(any::<bool>(), 0..6),
        ) {
            prop_assert!(x < 10);
            prop_assert_eq!(pair.0 * pair.1, pair.1 * pair.0);
            prop_assert!(tag == "a" || tag == "b");
            prop_assume!(v.len() != 5);
            prop_assert!(v.len() < 5);
        }
    }
}
