//! Baseline strategies the paper compares against (§7).
//!
//! * [`platonoff_map`] — Platonoff's macro-first strategy: detect the
//!   broadcasts present in the *initial* code, constrain the mapping to
//!   preserve them (axis-parallel), and only then zero out the remaining
//!   communications. On Example 5 this keeps `n` broadcasts where the
//!   locality-first heuristic achieves a communication-free mapping.
//! * [`feautrier_map`] — a volume-first greedy zeroing with no residual
//!   optimization at all (the paper's step 1 alone): what you get from the
//!   classical alignment literature.

use crate::pipeline::{CommOutcome, Mapping, MappingOptions};
use rescomm_alignment::{Alignment, Alloc};
use rescomm_intlin::{kernel_intersection, solve_xf_eq_s_fullrank, IMat};
use rescomm_loopnest::{AccessKind, LoopNest};
use rescomm_macrocomm::{detect, Extent, MacroInput};
use std::collections::HashMap;

/// Feautrier-style baseline: the paper's step 1 with no step 2. Residual
/// communications remain general.
pub fn feautrier_map(nest: &LoopNest, m: usize) -> Result<Mapping, crate::error::RescommError> {
    crate::pipeline::map_nest(nest, &MappingOptions::step1_only(m))
}

/// Platonoff's strategy (as summarized in §7.1):
///
/// 1. locate broadcasts in the initial code (`ker θ ∩ ker F ≠ 0` for a
///    read access);
/// 2. choose statement allocations that *preserve* them: `M_S` must not
///    kill the broadcast direction, and the broadcast must land parallel
///    to a grid axis — we pick canonical projection rows accordingly;
/// 3. zero out the remaining communications where possible
///    (owner-computes style: solve `M_x·F = M_S` per array, preferring
///    high-rank accesses).
pub fn platonoff_map(nest: &LoopNest, m: usize) -> Mapping {
    // Step 1-2: statement allocations preserving broadcast directions.
    let mut stmt_alloc: Vec<Alloc> = Vec::with_capacity(nest.statements.len());
    for (si, st) in nest.statements.iter().enumerate() {
        let d = st.depth;
        // Broadcast directions of this statement's reads.
        let mut dirs: Vec<Vec<i64>> = Vec::new();
        for acc in nest.accesses_of(rescomm_loopnest::StmtId(si)) {
            if acc.kind != AccessKind::Read {
                continue;
            }
            if let Some(k) = kernel_intersection(&[st.schedule.theta(), &acc.f]) {
                for c in 0..k.cols() {
                    dirs.push(k.col(c));
                }
            }
        }
        // Choose m canonical projection rows; make sure at least one row
        // hits each (up to m−1) broadcast direction so the broadcast is
        // preserved *and* axis-parallel.
        let rows = m.min(d);
        let mut chosen: Vec<usize> = Vec::new();
        for v in dirs.iter().take(rows.saturating_sub(0)) {
            if let Some(j) = (0..d).find(|&j| v[j] != 0 && !chosen.contains(&j)) {
                chosen.push(j);
            }
            if chosen.len() == rows {
                break;
            }
        }
        for j in 0..d {
            if chosen.len() == rows {
                break;
            }
            if !chosen.contains(&j) {
                chosen.push(j);
            }
        }
        let mat = IMat::from_fn(rows, d, |i, j| i64::from(chosen[i] == j));
        stmt_alloc.push(Alloc {
            mat,
            rho: vec![0; rows],
        });
    }

    // Step 3: array allocations, owner-computes where solvable.
    let mut array_alloc: Vec<Option<Alloc>> = vec![None; nest.arrays.len()];
    // Prefer writes, then high-rank accesses.
    let mut order: Vec<usize> = (0..nest.accesses.len()).collect();
    order.sort_by_key(|&i| {
        let a = &nest.accesses[i];
        let write = matches!(a.kind, AccessKind::Write | AccessKind::Reduce);
        (
            std::cmp::Reverse(usize::from(write)),
            std::cmp::Reverse(a.f.rank()),
        )
    });
    for i in order {
        let a = &nest.accesses[i];
        if array_alloc[a.array.0].is_some() {
            continue;
        }
        let m_s = &stmt_alloc[a.stmt.0].mat;
        if let Ok(x) = solve_xf_eq_s_fullrank(m_s, &a.f, m.min(nest.array(a.array).dim)) {
            array_alloc[a.array.0] = Some(Alloc {
                rho: vec![0; x.rows()],
                mat: x,
            });
        }
    }
    let array_alloc: Vec<Alloc> = array_alloc
        .into_iter()
        .enumerate()
        .map(|(xi, a)| {
            a.unwrap_or_else(|| {
                let dim = nest.arrays[xi].dim;
                let rows = m.min(dim);
                Alloc {
                    mat: IMat::from_fn(rows, dim, |i, j| i64::from(i == j)),
                    rho: vec![0; rows],
                }
            })
        })
        .collect();

    let alignment = Alignment {
        m,
        stmt_alloc,
        array_alloc,
        comp_of_stmt: vec![None; nest.statements.len()],
        comp_of_array: vec![None; nest.arrays.len()],
        n_components: 0,
    };

    // Classify with the same vocabulary as the main pipeline (macro
    // detection on, decomposition off — Platonoff's algorithm does not
    // decompose).
    let outcomes: Vec<CommOutcome> = nest
        .accesses
        .iter()
        .map(|acc| {
            let st = nest.statement(acc.stmt);
            if alignment.is_local(nest, acc) {
                return CommOutcome::Local;
            }
            if alignment.is_linear_local(nest, acc) {
                return CommOutcome::Translation;
            }
            let mc = detect(MacroInput {
                theta: st.schedule.theta(),
                f: &acc.f,
                m_s: &alignment.stmt_alloc[acc.stmt.0].mat,
                m_x: &alignment.array_alloc[acc.array.0].mat,
                kind: acc.kind,
                stmt_is_reduction: nest
                    .accesses_of(acc.stmt)
                    .any(|a| a.kind == AccessKind::Reduce),
            });
            match mc {
                Some(mc) => match mc.extent {
                    Extent::Total => CommOutcome::Macro {
                        kind: mc.kind,
                        total: true,
                        rotated: false,
                    },
                    Extent::Partial { .. } if mc.axis_parallel => CommOutcome::Macro {
                        kind: mc.kind,
                        total: false,
                        rotated: false,
                    },
                    _ => CommOutcome::General,
                },
                None => CommOutcome::General,
            }
        })
        .collect();

    Mapping {
        alignment,
        outcomes,
        rotations: HashMap::new(),
        incidents: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{map_nest, MappingOptions};
    use rescomm_loopnest::examples;
    use rescomm_macrocomm::MacroKind;

    /// §7.2: on Example 5, Platonoff's strategy keeps a broadcast per
    /// timestep while the locality-first heuristic is communication-free.
    #[test]
    fn example5_platonoff_vs_ours() {
        let (nest, ids) = examples::example5_platonoff(4);

        let ours = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        assert!(ours
            .outcomes
            .iter()
            .all(|o| matches!(o, CommOutcome::Local)));

        let theirs = platonoff_map(&nest, 2);
        // The b-read stays a (preserved, axis-parallel) broadcast.
        match &theirs.outcomes[ids.fb.0] {
            CommOutcome::Macro {
                kind: MacroKind::Broadcast,
                ..
            } => {}
            other => panic!("Platonoff must keep the broadcast, got {other:?}"),
        }
    }

    #[test]
    fn platonoff_preserves_broadcast_direction() {
        let (nest, ids) = examples::example5_platonoff(4);
        let theirs = platonoff_map(&nest, 2);
        // M_S must not kill e4 (the broadcast direction).
        let ms = &theirs.alignment.stmt_alloc[ids.s.0].mat;
        let img = ms.mul_vec(&[0, 0, 0, 1]);
        assert!(img.iter().any(|&x| x != 0), "broadcast direction killed");
    }

    #[test]
    fn feautrier_is_step1_only() {
        let (nest, ids) = examples::motivating_example(8, 4);
        let base = feautrier_map(&nest, 2).unwrap();
        assert!(matches!(base.outcomes[ids.f6.0], CommOutcome::General));
        let ours = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        assert!(matches!(ours.outcomes[ids.f6.0], CommOutcome::Macro { .. }));
    }

    #[test]
    fn platonoff_runs_on_all_examples() {
        for nest in [
            examples::motivating_example(4, 2).0,
            examples::example2_broadcast(4),
            examples::matmul(4),
            examples::gauss_elim(4),
        ] {
            let m = platonoff_map(&nest, 2);
            assert_eq!(m.outcomes.len(), nest.accesses.len());
        }
    }
}
