//! Communication plans: from a [`Mapping`] to concrete message phases.
//!
//! This is the artifact a runtime or code generator consumes: for every
//! access, the ordered list of *phases* (virtual-processor message
//! patterns) that realize its communication — none for a local access,
//! one shift for a translation, one placement phase for a collective,
//! one sweep per elementary factor (plus the paper's final "up to a
//! translation" shift) for a decomposition, a single irregular pattern
//! for a general residual.
//!
//! Patterns are generated **exactly** from the iteration domain and the
//! allocation functions and carry *raw* virtual coordinates;
//! [`CommPlan::simulate_on_mesh`] folds them toroidally onto a physical
//! machine. [`CommPlan::verify_availability`] proves the plan correct:
//! chaining the phases of each access delivers every element to exactly
//! the processor that computes with it.

use crate::pipeline::{dataflow_matrix, CommOutcome, Mapping};
use rescomm_decompose::{product, Elementary};
use rescomm_distribution::{fold_affine, fold_pattern, Dist2D};
use rescomm_intlin::IMat;
use rescomm_loopnest::{AccessId, LoopNest};
use rescomm_machine::{
    replication_seed, CachedPhase, CheckpointPolicy, FaultPlan, FaultReport, FaultSim, Mesh2D,
    PMsg, PhaseSim, ScheduleMode, SchedulePolicy,
};
use std::collections::BTreeSet;

/// What a phase implements (for reporting; the pattern is authoritative).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhaseKind {
    /// A constant-distance shift.
    Translation,
    /// The data-placement phase of a collective (the machine's tree rounds
    /// implement the fan-out/fan-in).
    CollectiveRound,
    /// One elementary factor of a decomposition.
    Elementary(Elementary),
    /// The final constant shift of a decomposition ("up to a
    /// translation", §4.2).
    DecompositionShift,
    /// One unirow factor of a general decomposition.
    UnirowFactor,
    /// An irregular affine pattern executed directly.
    GeneralAffine,
}

/// One virtual endpoint pair `(source, destination)`, raw coordinates.
pub type Endpoints = ((i64, i64), (i64, i64));

/// How a phase's virtual message pattern is represented.
///
/// Explicit patterns are exact endpoint lists read off the iteration
/// domain — `O(domain)` to build and to fold. Affine patterns are
/// *grid-wide* closed forms `v → T·v + shift`: `O(1)` to build and
/// folded through the residue-class segment algebra
/// ([`rescomm_distribution::fold_affine`]) at a cost flat in the
/// virtual-grid area, which is what lets one plan model a million-VP
/// machine. The two differ in which virtual processors participate
/// (an affine phase moves every VP of the grid, the SPMD execution
/// model; an explicit pattern only the data-carrying subset) — the
/// availability proof treats both exactly.
#[derive(Debug, Clone)]
pub enum PhasePattern {
    /// Exact `(source, destination)` endpoint pairs, raw coordinates.
    Explicit(Vec<Endpoints>),
    /// Every virtual processor `v` sends to `T·v + shift` (wrapped into
    /// `vshape` at fold time).
    Affine {
        /// The 2×2 linear part.
        t: IMat,
        /// The constant term.
        shift: (i64, i64),
    },
}

impl PhasePattern {
    /// Where this phase moves the data sitting at `pos` (raw
    /// coordinates; a position absent from an explicit pattern stays).
    pub fn apply(&self, pos: (i64, i64)) -> (i64, i64) {
        match self {
            PhasePattern::Explicit(v) => v
                .iter()
                .find(|&&(from, _)| from == pos)
                .map_or(pos, |&(_, to)| to),
            PhasePattern::Affine { t, shift } => (
                t[(0, 0)] * pos.0 + t[(0, 1)] * pos.1 + shift.0,
                t[(1, 0)] * pos.0 + t[(1, 1)] * pos.1 + shift.1,
            ),
        }
    }

    /// Whether this phase carries the transfer `src → dst`.
    pub fn routes(&self, src: (i64, i64), dst: (i64, i64)) -> bool {
        match self {
            PhasePattern::Explicit(v) => v.contains(&(src, dst)),
            PhasePattern::Affine { .. } => self.apply(src) == dst,
        }
    }

    /// The explicit endpoint list, when there is one.
    pub fn explicit(&self) -> Option<&[Endpoints]> {
        match self {
            PhasePattern::Explicit(v) => Some(v),
            PhasePattern::Affine { .. } => None,
        }
    }
}

/// One communication phase: a set of virtual-processor point-to-point
/// transfers that may all proceed concurrently. Coordinates are raw
/// (unwrapped) virtual grid positions.
#[derive(Debug, Clone)]
pub struct CommPhase {
    /// The access this phase belongs to.
    pub access: AccessId,
    /// Reporting tag.
    pub kind: PhaseKind,
    /// Virtual messages of the phase.
    pub pattern: PhasePattern,
}

/// The full plan of a mapping: phases in execution order.
#[derive(Debug, Clone, Default)]
pub struct CommPlan {
    /// Ordered phases.
    pub phases: Vec<CommPhase>,
}

fn wrap2(p: (i64, i64), vshape: (usize, usize)) -> (i64, i64) {
    (
        p.0.rem_euclid(vshape.0 as i64),
        p.1.rem_euclid(vshape.1 as i64),
    )
}

/// Pad a (possibly degenerate, e.g. 1-D array owner) virtual coordinate
/// to the 2-D grid: missing dimensions live at coordinate 0.
fn coord2(v: &[i64]) -> (i64, i64) {
    (
        v.first().copied().unwrap_or(0),
        v.get(1).copied().unwrap_or(0),
    )
}

impl CommPlan {
    /// Total number of explicitly enumerated virtual messages. Affine
    /// (grid-wide) phases count 0 here — their message volume is a
    /// function of the virtual-grid shape chosen at fold time.
    pub fn message_count(&self) -> usize {
        self.phases
            .iter()
            .map(|p| p.pattern.explicit().map_or(0, |v| v.len()))
            .sum()
    }

    /// Number of phases carried in closed (affine) form.
    pub fn affine_phase_count(&self) -> usize {
        self.phases
            .iter()
            .filter(|p| matches!(p.pattern, PhasePattern::Affine { .. }))
            .count()
    }

    /// Fold every phase onto physical mesh coordinates: toroidal wrap
    /// into `vshape`, distribution fold, node-id flattening. This is the
    /// single lowering step shared by all the mesh simulation entry
    /// points below — the phases it returns feed [`PhaseSim`] and
    /// [`FaultSim`] directly.
    pub fn phases_on_mesh(
        &self,
        mesh: &Mesh2D,
        dist: Dist2D,
        vshape: (usize, usize),
        bytes: u64,
    ) -> Vec<Vec<PMsg>> {
        self.phases
            .iter()
            .map(|phase| {
                let folded = match &phase.pattern {
                    PhasePattern::Explicit(pattern) => {
                        let wrapped: Vec<((i64, i64), (i64, i64))> = pattern
                            .iter()
                            .map(|&(s, d)| (wrap2(s, vshape), wrap2(d, vshape)))
                            .filter(|(s, d)| s != d)
                            .collect();
                        fold_pattern(&wrapped, dist, vshape, (mesh.px, mesh.py), bytes)
                    }
                    // The closed path: no virtual-grid enumeration, cost
                    // flat in the grid area.
                    PhasePattern::Affine { t, shift } => {
                        fold_affine(t, *shift, dist, vshape, (mesh.px, mesh.py), bytes)
                    }
                };
                folded
                    .msgs
                    .iter()
                    .map(|m| PMsg {
                        src: mesh.node_id(m.src.0, m.src.1),
                        dst: mesh.node_id(m.dst.0, m.dst.1),
                        bytes: m.bytes,
                    })
                    .collect()
            })
            .collect()
    }

    /// Fold onto a mesh with a distribution (toroidal wrap into `vshape`)
    /// and simulate the phases under `mode`; returns total time.
    /// [`ScheduleMode::Phased`] runs phases as strict barriers (the
    /// historical behaviour); [`ScheduleMode::Overlapped`] releases each
    /// phase-(k+1) message as soon as its source node has received all of
    /// its phase-k inflows. Both pattern forms go through the same
    /// lowering ([`CommPlan::phases_on_mesh`]): an affine phase folds to
    /// at most `P²` physical messages regardless of virtual-grid size,
    /// so the overlapped engine's per-node readiness tracking works on
    /// the compact folded set without ever materializing the
    /// virtual-processor message list.
    pub fn simulate_on_mesh(
        &self,
        mesh: &Mesh2D,
        dist: Dist2D,
        vshape: (usize, usize),
        bytes: u64,
        mode: ScheduleMode,
    ) -> u64 {
        // One reused scratch engine for the whole plan — the pattern
        // never touches a tree map or a per-phase link table.
        let mut sim = PhaseSim::new(mesh.clone());
        sim.simulate_phases_mode(&self.phases_on_mesh(mesh, dist, vshape, bytes), mode)
    }

    /// Compile the folded phases for repeated replay: the returned
    /// [`CachedPhase`]s feed [`PhaseSim::run_cached_phases`] (or
    /// [`rescomm_machine::par_schedule_sweep`]) under any
    /// [`ScheduleMode`], which is the batch-sweep fast path.
    pub fn compile_on_mesh(
        &self,
        mesh: &Mesh2D,
        dist: Dist2D,
        vshape: (usize, usize),
        bytes: u64,
    ) -> Vec<CachedPhase> {
        self.phases_on_mesh(mesh, dist, vshape, bytes)
            .iter()
            .map(|p| CachedPhase::new(mesh, p))
            .collect()
    }

    /// Compile the plan into a reusable multi-seed fault replay engine:
    /// the folded phases and the fault plan are compiled once, then
    /// [`FaultSim::replay_faulty`] / [`FaultSim::replay_recovering`]
    /// replay any number of seeds at cached-phase speed, bit-identical
    /// to the per-call simulators.
    pub fn fault_engine(
        &self,
        mesh: &Mesh2D,
        dist: Dist2D,
        vshape: (usize, usize),
        bytes: u64,
        plan: &FaultPlan,
    ) -> FaultSim {
        FaultSim::new(mesh, &self.phases_on_mesh(mesh, dist, vshape, bytes), plan)
    }

    /// Fold onto a mesh like [`CommPlan::simulate_on_mesh`], but drive
    /// the phases through the resilient transport under `plan`, with
    /// the phase schedule chosen by `sched` ([`SchedulePolicy::Fixed`]
    /// barriers or overlap, or adaptive degradation). On a zero-fault
    /// plan the makespan equals [`CommPlan::simulate_on_mesh`] under
    /// the policy's healthy mode exactly.
    pub fn simulate_on_mesh_faulty(
        &self,
        mesh: &Mesh2D,
        dist: Dist2D,
        vshape: (usize, usize),
        bytes: u64,
        plan: &FaultPlan,
        sched: SchedulePolicy,
    ) -> FaultReport {
        let phases = self.phases_on_mesh(mesh, dist, vshape, bytes);
        PhaseSim::new(mesh.clone()).simulate_phases_faulty_policy(&phases, plan, sched)
    }

    /// Monte Carlo replication of the faulty simulation: run the plan
    /// under `plan` with `replications` independent seeds derived from
    /// `plan.seed` via [`replication_seed`] (replication 0 reproduces
    /// the classic single-seed run exactly), every replication
    /// scheduled per `sched`. Returns one full [`FaultReport`] per
    /// replication.
    #[allow(clippy::too_many_arguments)]
    pub fn simulate_on_mesh_faulty_replicated(
        &self,
        mesh: &Mesh2D,
        dist: Dist2D,
        vshape: (usize, usize),
        bytes: u64,
        plan: &FaultPlan,
        replications: usize,
        sched: SchedulePolicy,
    ) -> Vec<FaultReport> {
        let seeds: Vec<u64> = (0..replications)
            .map(|r| replication_seed(plan.seed, r as u64))
            .collect();
        self.fault_engine(mesh, dist, vshape, bytes, plan)
            .replay_faulty(&seeds, sched)
    }

    /// Monte Carlo replication of the recovering simulation (checkpoint
    /// and rollback under permanent node deaths); seed derivation as in
    /// [`CommPlan::simulate_on_mesh_faulty_replicated`], schedule per
    /// `sched`.
    #[allow(clippy::too_many_arguments)]
    pub fn simulate_on_mesh_recovering_replicated(
        &self,
        mesh: &Mesh2D,
        dist: Dist2D,
        vshape: (usize, usize),
        bytes: u64,
        plan: &FaultPlan,
        policy: &CheckpointPolicy,
        replications: usize,
        sched: SchedulePolicy,
    ) -> Vec<FaultReport> {
        let seeds: Vec<u64> = (0..replications)
            .map(|r| replication_seed(plan.seed, r as u64))
            .collect();
        self.fault_engine(mesh, dist, vshape, bytes, plan)
            .replay_recovering(policy, &seeds, sched)
    }

    /// Fold onto a mesh like [`CommPlan::simulate_on_mesh`], but drive
    /// the phases through the checkpoint/rollback engine
    /// ([`PhaseSim::simulate_phases_recovering`] or its overlapped
    /// twin, per `sched`) so the plan survives the fault plan's
    /// permanent node deaths. On a death-free plan the committed
    /// makespan equals the faulty run under the same policy exactly.
    #[allow(clippy::too_many_arguments)]
    pub fn simulate_on_mesh_recovering(
        &self,
        mesh: &Mesh2D,
        dist: Dist2D,
        vshape: (usize, usize),
        bytes: u64,
        plan: &FaultPlan,
        policy: &CheckpointPolicy,
        sched: SchedulePolicy,
    ) -> FaultReport {
        let phases = self.phases_on_mesh(mesh, dist, vshape, bytes);
        PhaseSim::new(mesh.clone()).simulate_phases_recovering_policy(&phases, plan, policy, sched)
    }

    /// Verify the plan delivers data correctly: for every non-local access
    /// and every iteration point, following the access's phases from the
    /// element's owner must end at the computing processor.
    ///
    /// Returns `Err` with a witness description on the first violation.
    pub fn verify_availability(&self, nest: &LoopNest, mapping: &Mapping) -> Result<(), String> {
        for (acc, out) in nest.accesses.iter().zip(&mapping.outcomes) {
            if matches!(out, CommOutcome::Local) {
                continue;
            }
            let phases: Vec<&CommPhase> =
                self.phases.iter().filter(|p| p.access == acc.id).collect();
            let dom = &nest.statement(acc.stmt).domain;
            for p in dom.points() {
                let e = acc.subscript(&p);
                let src = coord2(&mapping.alignment.array_alloc[acc.array.0].apply(&e));
                let dst = coord2(&mapping.alignment.stmt_alloc[acc.stmt.0].apply(&p));
                if src == dst {
                    continue;
                }
                // A phase is functional when it moves every position by a
                // well-defined map: affine phases always, explicit ones
                // when they belong to a factor chain.
                let chained = phases.iter().all(|ph| {
                    matches!(ph.pattern, PhasePattern::Affine { .. })
                        || matches!(
                            ph.kind,
                            PhaseKind::Elementary(_) | PhaseKind::DecompositionShift
                        )
                });
                if chained {
                    // Chain the phases (absent entry = stays in place).
                    let mut pos = src;
                    for phase in &phases {
                        pos = phase.pattern.apply(pos);
                    }
                    if pos != dst {
                        return Err(format!(
                            "access {:?} at {:?}: element owner {:?} routed to {:?}, \
                             but the computation runs on {:?}",
                            acc.id, p, src, pos, dst
                        ));
                    }
                } else {
                    // One-shot phases (translation / collective / general)
                    // may fan out: the endpoint pair must be present in
                    // some phase of this access.
                    let present = phases.iter().any(|ph| ph.pattern.routes(src, dst));
                    if !present {
                        return Err(format!(
                            "access {:?} at {:?}: transfer {:?} → {:?} missing \
                             from the plan",
                            acc.id, p, src, dst
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Build the communication plan of a mapping (2-D mappings only — the
/// simulators are 2-D). Coordinates are raw; wrapping happens at fold
/// time.
pub fn build_plan(nest: &LoopNest, mapping: &Mapping) -> CommPlan {
    assert_eq!(mapping.alignment.m, 2, "plans target 2-D grids");
    let mut plan = CommPlan::default();
    for (acc, out) in nest.accesses.iter().zip(&mapping.outcomes) {
        let dom = &nest.statement(acc.stmt).domain;
        // Exact (owner → computer) endpoints per iteration point.
        let endpoints = || {
            let mut seen = BTreeSet::new();
            let mut v = Vec::new();
            for p in dom.points() {
                let e = acc.subscript(&p);
                let src = coord2(&mapping.alignment.array_alloc[acc.array.0].apply(&e));
                let dst = coord2(&mapping.alignment.stmt_alloc[acc.stmt.0].apply(&p));
                if src != dst && seen.insert((src, dst)) {
                    v.push((src, dst));
                }
            }
            v
        };
        match out {
            CommOutcome::Local => {}
            CommOutcome::Translation => plan.phases.push(CommPhase {
                access: acc.id,
                kind: PhaseKind::Translation,
                pattern: PhasePattern::Explicit(endpoints()),
            }),
            CommOutcome::Macro { .. } => plan.phases.push(CommPhase {
                access: acc.id,
                kind: PhaseKind::CollectiveRound,
                pattern: PhasePattern::Explicit(endpoints()),
            }),
            CommOutcome::Decomposed { factors, .. } => {
                // precv = F₁·…·F_n·psend + t₀: one phase per factor (right
                // to left), then the constant shift t₀ (§4.2: the dataflow
                // equality holds "up to a translation").
                let mut sources: Vec<((i64, i64), (i64, i64))> = {
                    // (current position, final destination) pairs.
                    let mut seen = BTreeSet::new();
                    let mut v = Vec::new();
                    for p in dom.points() {
                        let e = acc.subscript(&p);
                        let src = coord2(&mapping.alignment.array_alloc[acc.array.0].apply(&e));
                        let dst = coord2(&mapping.alignment.stmt_alloc[acc.stmt.0].apply(&p));
                        if seen.insert((src, dst)) {
                            v.push((src, dst));
                        }
                    }
                    v
                };
                for f in factors.iter().rev() {
                    let mat = f.to_mat();
                    let mut pattern = Vec::new();
                    for (pos, _) in &mut sources {
                        let q = mat.mul_vec(&[pos.0, pos.1]);
                        let q = (q[0], q[1]);
                        if q != *pos {
                            pattern.push((*pos, q));
                        }
                        *pos = q;
                    }
                    pattern.sort();
                    pattern.dedup();
                    plan.phases.push(CommPhase {
                        access: acc.id,
                        kind: PhaseKind::Elementary(*f),
                        pattern: PhasePattern::Explicit(pattern),
                    });
                }
                // Final constant shift to the true destination.
                let mut shift: Vec<((i64, i64), (i64, i64))> = sources
                    .iter()
                    .filter(|(pos, dst)| pos != dst)
                    .map(|&(pos, dst)| (pos, dst))
                    .collect();
                shift.sort();
                shift.dedup();
                if !shift.is_empty() {
                    // All moves share one offset (affine constant term).
                    let d0 = (shift[0].1 .0 - shift[0].0 .0, shift[0].1 .1 - shift[0].0 .1);
                    debug_assert!(
                        shift.iter().all(|&(s, d)| (d.0 - s.0, d.1 - s.1) == d0),
                        "decomposition residue is not a constant shift"
                    );
                    plan.phases.push(CommPhase {
                        access: acc.id,
                        kind: PhaseKind::DecompositionShift,
                        pattern: PhasePattern::Explicit(shift),
                    });
                }
            }
            CommOutcome::DecomposedGeneral { .. } => plan.phases.push(CommPhase {
                access: acc.id,
                kind: PhaseKind::UnirowFactor,
                pattern: PhasePattern::Explicit(endpoints()),
            }),
            CommOutcome::General => plan.phases.push(CommPhase {
                access: acc.id,
                kind: PhaseKind::GeneralAffine,
                pattern: PhasePattern::Explicit(endpoints()),
            }),
        }
    }
    plan
}

/// Build the plan of a mapping in **closed (affine) form**: every phase
/// whose transfer is an affine map of the sender's position is carried
/// as [`PhasePattern::Affine`] instead of an enumerated endpoint list.
///
/// Construction cost is `O(1)` per affine access — the linear part comes
/// from the dataflow matrix (or the decomposition's factor chain) and the
/// constant term is pinned by sampling a *single* iteration point, since
/// the mapping pipeline already proved `dst = T·src + t₀` holds
/// point-wise. Folding such a plan onto a mesh then goes through
/// [`rescomm_distribution::fold_affine`], flat in the virtual-grid area:
/// this is the entry point for simulating plans on huge grids (4096²,
/// 8192²) where [`build_plan`]'s per-point enumeration is intractable.
///
/// Collectives ([`CommOutcome::Macro`]) stay explicit — their placement
/// phase is data-dependent, not a grid-wide map — as does any access
/// whose dataflow matrix the alignment cannot express (rank-deficient
/// replication); [`CommPlan::verify_availability`] treats both forms
/// exactly, so `build_plan_closed` is proved against the same oracle as
/// [`build_plan`].
pub fn build_plan_closed(nest: &LoopNest, mapping: &Mapping) -> CommPlan {
    assert_eq!(mapping.alignment.m, 2, "plans target 2-D grids");
    let mut plan = CommPlan::default();
    for (acc, out) in nest.accesses.iter().zip(&mapping.outcomes) {
        if matches!(out, CommOutcome::Local) {
            continue;
        }
        let dom = &nest.statement(acc.stmt).domain;
        // One sample pins the affine constant term.
        let Some(p0) = dom.points().next() else {
            continue;
        };
        let e0 = acc.subscript(&p0);
        let src0 = coord2(&mapping.alignment.array_alloc[acc.array.0].apply(&e0));
        let dst0 = coord2(&mapping.alignment.stmt_alloc[acc.stmt.0].apply(&p0));
        let endpoints = || {
            let mut seen = BTreeSet::new();
            let mut v = Vec::new();
            for p in dom.points() {
                let e = acc.subscript(&p);
                let src = coord2(&mapping.alignment.array_alloc[acc.array.0].apply(&e));
                let dst = coord2(&mapping.alignment.stmt_alloc[acc.stmt.0].apply(&p));
                if src != dst && seen.insert((src, dst)) {
                    v.push((src, dst));
                }
            }
            v
        };
        match out {
            CommOutcome::Local => unreachable!(),
            CommOutcome::Translation => {
                let d0 = (dst0.0 - src0.0, dst0.1 - src0.1);
                plan.phases.push(CommPhase {
                    access: acc.id,
                    kind: PhaseKind::Translation,
                    pattern: PhasePattern::Affine {
                        t: IMat::identity(2),
                        shift: d0,
                    },
                });
            }
            // The collective's placement phase is data-dependent (a
            // fan-out/fan-in set, not a position map): keep it explicit.
            CommOutcome::Macro { .. } => plan.phases.push(CommPhase {
                access: acc.id,
                kind: PhaseKind::CollectiveRound,
                pattern: PhasePattern::Explicit(endpoints()),
            }),
            CommOutcome::Decomposed { factors, .. } => {
                // precv = F₁·…·F_n·psend + t₀: factors apply right to
                // left, each one a grid-wide linear sweep, then the
                // constant shift t₀ = dst₀ − (F₁·…·F_n)·src₀.
                for f in factors.iter().rev() {
                    plan.phases.push(CommPhase {
                        access: acc.id,
                        kind: PhaseKind::Elementary(*f),
                        pattern: PhasePattern::Affine {
                            t: f.to_mat(),
                            shift: (0, 0),
                        },
                    });
                }
                let prod = product(factors);
                let moved = prod.mul_vec(&[src0.0, src0.1]);
                let t0 = (dst0.0 - moved[0], dst0.1 - moved[1]);
                if t0 != (0, 0) {
                    plan.phases.push(CommPhase {
                        access: acc.id,
                        kind: PhaseKind::DecompositionShift,
                        pattern: PhasePattern::Affine {
                            t: IMat::identity(2),
                            shift: t0,
                        },
                    });
                }
            }
            CommOutcome::DecomposedGeneral { .. } | CommOutcome::General => {
                let kind = if matches!(out, CommOutcome::General) {
                    PhaseKind::GeneralAffine
                } else {
                    PhaseKind::UnirowFactor
                };
                let pattern = match dataflow_matrix(&mapping.alignment, nest, acc.id) {
                    Some(t) => {
                        let moved = t.mul_vec(&[src0.0, src0.1]);
                        PhasePattern::Affine {
                            t,
                            shift: (dst0.0 - moved[0], dst0.1 - moved[1]),
                        }
                    }
                    // Rank-deficient alignment: no grid-wide map exists.
                    None => PhasePattern::Explicit(endpoints()),
                };
                plan.phases.push(CommPhase {
                    access: acc.id,
                    kind,
                    pattern,
                });
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{map_nest, MappingOptions};
    use rescomm_distribution::Dist1D;
    use rescomm_loopnest::examples;
    use rescomm_machine::CostModel;

    #[test]
    fn local_accesses_produce_no_phase() {
        let (nest, _) = examples::example5_platonoff(4);
        let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        let plan = build_plan(&nest, &mapping);
        assert!(plan.phases.is_empty(), "communication-free nest");
        assert_eq!(plan.message_count(), 0);
        plan.verify_availability(&nest, &mapping).unwrap();
    }

    #[test]
    fn motivating_example_plan_structure() {
        let (nest, ids) = examples::motivating_example(6, 2);
        let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        let plan = build_plan(&nest, &mapping);
        // The decomposed access contributes one phase per factor plus
        // (possibly) the final shift.
        let f3_phases: Vec<_> = plan.phases.iter().filter(|p| p.access == ids.f3).collect();
        assert!(f3_phases.len() >= 2, "{}", f3_phases.len());
        assert!(f3_phases
            .iter()
            .take(2)
            .all(|p| matches!(p.kind, PhaseKind::Elementary(_))));
        assert!(plan
            .phases
            .iter()
            .any(|p| p.access == ids.f6 && p.kind == PhaseKind::CollectiveRound));
        assert!(plan
            .phases
            .iter()
            .all(|p| p.kind != PhaseKind::GeneralAffine));
    }

    #[test]
    fn every_plan_delivers_its_data() {
        // The availability proof across kernels — the strongest
        // correctness statement about the whole pipeline.
        for nest in [
            examples::motivating_example(6, 2).0,
            examples::jacobi2d(6),
            examples::transpose(6),
            examples::matmul(4),
            examples::syrk(4),
            examples::example2_broadcast(6),
            examples::gauss_elim(4),
            examples::adi_sweep(6),
        ] {
            let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
            let plan = build_plan(&nest, &mapping);
            plan.verify_availability(&nest, &mapping)
                .unwrap_or_else(|e| panic!("{}: {e}", nest.name));
        }
    }

    #[test]
    fn jacobi_plan_is_pure_translations() {
        let nest = examples::jacobi2d(8);
        let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        let plan = build_plan(&nest, &mapping);
        assert!(plan.phases.iter().all(|p| p.kind == PhaseKind::Translation));
        assert!(!plan.phases.is_empty());
    }

    #[test]
    fn plan_simulation_runs() {
        let (nest, _) = examples::motivating_example(6, 2);
        let mesh = Mesh2D::new(4, 4, CostModel::paragon());
        let dist = Dist2D::uniform(Dist1D::Cyclic);
        let full = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        let plan = build_plan(&nest, &full);
        let t = plan.simulate_on_mesh(&mesh, dist, (24, 24), 64, ScheduleMode::Phased);
        assert!(t > 0);
        // Relaxing the phase barriers can only help, and the compiled
        // replay reproduces both modes exactly.
        let cached = plan.compile_on_mesh(&mesh, dist, (24, 24), 64);
        let mut sim = PhaseSim::new(mesh.clone());
        for mode in [ScheduleMode::Phased, ScheduleMode::overlapped()] {
            let direct = plan.simulate_on_mesh(&mesh, dist, (24, 24), 64, mode);
            assert!(direct <= t);
            assert_eq!(sim.run_cached_phases(&cached, mode, 1), direct);
        }
    }

    #[test]
    fn recovering_plan_simulation_matches_plain_without_deaths() {
        let (nest, _) = examples::motivating_example(6, 2);
        let mesh = Mesh2D::new(4, 4, CostModel::paragon());
        let dist = Dist2D::uniform(Dist1D::Cyclic);
        let full = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        let plan = build_plan(&nest, &full);
        let t = plan.simulate_on_mesh(&mesh, dist, (24, 24), 64, ScheduleMode::Phased);
        let rep = plan.simulate_on_mesh_recovering(
            &mesh,
            dist,
            (24, 24),
            64,
            &FaultPlan::none(),
            &CheckpointPolicy::default(),
            SchedulePolicy::default(),
        );
        assert_eq!(rep.makespan, t, "zero-death recovery is bit-identical");
        assert_eq!(rep.recovery.rollbacks, 0);
        // Under an overlapped policy the zero-fault recovery matches the
        // fault-free overlapped schedule instead.
        let over = plan.simulate_on_mesh(&mesh, dist, (24, 24), 64, ScheduleMode::overlapped());
        let rep = plan.simulate_on_mesh_recovering(
            &mesh,
            dist,
            (24, 24),
            64,
            &FaultPlan::none(),
            &CheckpointPolicy::default(),
            SchedulePolicy::Fixed(ScheduleMode::overlapped()),
        );
        assert_eq!(rep.makespan, over, "zero-death overlapped recovery");
        assert_eq!(rep.downgrades, 0);

        // And with a mid-run death the plan still completes, exactly once.
        let faulty = FaultPlan {
            node_deaths: vec![rescomm_machine::NodeDeath { node: 6, t: t / 2 }],
            ..FaultPlan::none()
        };
        for sched in [
            SchedulePolicy::default(),
            SchedulePolicy::Fixed(ScheduleMode::overlapped()),
            SchedulePolicy::Adaptive {
                inflation_threshold: 1.2,
            },
        ] {
            let rep = plan.simulate_on_mesh_recovering(
                &mesh,
                dist,
                (24, 24),
                64,
                &faulty,
                &CheckpointPolicy::default(),
                sched,
            );
            assert!(
                rep.recovery.all_recovered(),
                "{sched:?}: {:?}",
                rep.recovery
            );
            assert_eq!(rep.delivered, rep.messages, "{sched:?}");
            assert_eq!(rep.black_holes, 0, "{sched:?}");
        }
    }

    #[test]
    fn replicated_faulty_rep0_matches_classic_run() {
        let (nest, _) = examples::motivating_example(6, 2);
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let dist = Dist2D::uniform(Dist1D::Cyclic);
        let full = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        let plan = build_plan(&nest, &full);
        let fplan = FaultPlan {
            seed: 42,
            drop_prob: 0.2,
            dup_prob: 0.02,
            ..FaultPlan::none()
        };
        let reps = plan.simulate_on_mesh_faulty_replicated(
            &mesh,
            dist,
            (24, 24),
            64,
            &fplan,
            5,
            SchedulePolicy::default(),
        );
        assert_eq!(reps.len(), 5);

        // Replication 0 is the classic single-seed run, bit-identical to
        // the per-call oracle over the same folded phases.
        let phases = plan.phases_on_mesh(&mesh, dist, (24, 24), 64);
        let oracle = PhaseSim::new(mesh.clone()).simulate_phases_faulty(&phases, &fplan);
        assert_eq!(reps[0], oracle);
        // Distinct seeds genuinely vary the runs.
        assert!(reps
            .iter()
            .any(|r| r.retries != reps[0].retries || r != &reps[0]));
        // The overlapped policy threads through to the batch engine and
        // agrees with the per-call policy oracle on replication 0.
        let sched = SchedulePolicy::Fixed(ScheduleMode::overlapped());
        let over =
            plan.simulate_on_mesh_faulty_replicated(&mesh, dist, (24, 24), 64, &fplan, 3, sched);
        assert_eq!(
            over[0],
            plan.simulate_on_mesh_faulty(&mesh, dist, (24, 24), 64, &fplan, sched)
        );
    }

    #[test]
    fn replicated_recovering_rep0_matches_single_run() {
        let (nest, _) = examples::motivating_example(6, 2);
        let mesh = Mesh2D::new(4, 4, CostModel::paragon());
        let dist = Dist2D::uniform(Dist1D::Cyclic);
        let full = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        let plan = build_plan(&nest, &full);
        let healthy = plan.simulate_on_mesh(&mesh, dist, (24, 24), 64, ScheduleMode::Phased);
        let fplan = FaultPlan {
            seed: 7,
            drop_prob: 0.1,
            node_deaths: vec![rescomm_machine::NodeDeath {
                node: 6,
                t: healthy / 2,
            }],
            detection_latency: 5_000,
            ..FaultPlan::none()
        };
        let policy = CheckpointPolicy::default();
        let reps = plan.simulate_on_mesh_recovering_replicated(
            &mesh,
            dist,
            (24, 24),
            64,
            &fplan,
            &policy,
            3,
            SchedulePolicy::default(),
        );
        assert_eq!(reps.len(), 3);
        let single = plan.simulate_on_mesh_recovering(
            &mesh,
            dist,
            (24, 24),
            64,
            &fplan,
            &policy,
            SchedulePolicy::default(),
        );
        assert_eq!(reps[0], single, "replication 0 is the classic run");
        for r in &reps {
            assert!(r.recovery.all_recovered(), "{:?}", r.recovery);
            assert_eq!(r.delivered, r.messages);
        }
    }

    #[test]
    fn patterns_are_deduplicated() {
        let nest = examples::example2_broadcast(8);
        let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        let plan = build_plan(&nest, &mapping);
        for phase in &plan.phases {
            let mut sorted = phase
                .pattern
                .explicit()
                .expect("build_plan is explicit")
                .to_vec();
            sorted.sort();
            let before = sorted.len();
            sorted.dedup();
            assert_eq!(sorted.len(), before, "duplicate virtual messages");
        }
    }

    #[test]
    fn closed_plans_deliver_their_data() {
        // The availability proof holds for affine-form plans on the same
        // kernels as the explicit ones — same oracle, both forms exact.
        for nest in [
            examples::motivating_example(6, 2).0,
            examples::jacobi2d(6),
            examples::transpose(6),
            examples::matmul(4),
            examples::syrk(4),
            examples::example2_broadcast(6),
            examples::gauss_elim(4),
            examples::adi_sweep(6),
        ] {
            let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
            let plan = build_plan_closed(&nest, &mapping);
            plan.verify_availability(&nest, &mapping)
                .unwrap_or_else(|e| panic!("{}: {e}", nest.name));
        }
    }

    #[test]
    fn closed_plan_carries_affine_phases() {
        let (nest, _) = examples::motivating_example(6, 2);
        let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        let plan = build_plan_closed(&nest, &mapping);
        assert!(plan.affine_phase_count() > 0, "no closed phases emitted");
        // Explicit enumeration only survives in collective phases.
        for p in &plan.phases {
            if p.pattern.explicit().is_some() {
                assert_eq!(p.kind, PhaseKind::CollectiveRound, "{:?}", p.kind);
            }
        }
        // Translations are pure shifts: identity linear part.
        let nest = examples::jacobi2d(6);
        let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        let plan = build_plan_closed(&nest, &mapping);
        assert!(!plan.phases.is_empty());
        for p in &plan.phases {
            match &p.pattern {
                PhasePattern::Affine { t, shift } => {
                    assert_eq!(*t, IMat::identity(2));
                    assert_ne!(*shift, (0, 0));
                }
                PhasePattern::Explicit(_) => panic!("jacobi plan should be fully affine"),
            }
        }
    }

    #[test]
    fn closed_plan_simulates_huge_grids() {
        // The point of the closed path: folding a plan at 4096² virtual
        // processors without enumerating 16.8M sends. The explicit plan
        // cannot even be built at this size; the closed one folds in
        // milliseconds and still produces a positive makespan.
        let (nest, _) = examples::motivating_example(6, 2);
        let mesh = Mesh2D::new(8, 8, CostModel::paragon());
        let dist = Dist2D::uniform(Dist1D::Cyclic);
        let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        let plan = build_plan_closed(&nest, &mapping);
        let t = plan.simulate_on_mesh(&mesh, dist, (4096, 4096), 64, ScheduleMode::Phased);
        assert!(t > 0);
        // Affine phases go through the same mode plumbing: overlapping
        // a closed (million-VP) plan never makes it slower.
        let over = plan.simulate_on_mesh(&mesh, dist, (4096, 4096), 64, ScheduleMode::overlapped());
        assert!(over <= t);
    }

    #[test]
    fn closed_plan_fold_matches_explicit_grid_wide_phases() {
        // On a grid the size of the iteration space, an all-affine access
        // folds to the same phase count through either plan form.
        let nest = examples::jacobi2d(8);
        let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        let explicit = build_plan(&nest, &mapping);
        let closed = build_plan_closed(&nest, &mapping);
        assert_eq!(explicit.phases.len(), closed.phases.len());
        for (e, c) in explicit.phases.iter().zip(&closed.phases) {
            assert_eq!(e.kind, c.kind);
            assert_eq!(e.access, c.access);
        }
    }
}
