//! The complete two-step mapping heuristic (§6 of the paper).
//!
//! 1. **Zero out non-local communications**: access graph → maximum
//!    branching → free/constrained edge re-addition → concrete allocation
//!    matrices.
//! 2. **Optimize residual communications**, per connected component:
//!    (a) detect macro-communications; when a partial collective is not
//!    axis-parallel, left-multiply the component's allocations by the
//!    Hermite rotation `Q⁻¹`; (b) decompose what remains into elementary
//!    axis-parallel factors — directly, after a unimodular similarity
//!    rotation, or with unirow factors when `det ≠ ±1`.

use crate::error::{guarded, CancelToken, Cancelled, Incident, RescommError};
use rescomm_accessgraph::{
    augment, component_structure, maximum_branching, merge_cross_components, reference,
    AccessGraph, GraphBuildCache, Vertex,
};
use rescomm_alignment::{compute_alignment, residual_communications, Alignment};
use rescomm_decompose::{
    decompose_direct, decompose_general, search_similarity, shear_decompose, Elementary, GenFactor,
};
use rescomm_intlin::{solve_xf_eq_s, IMat};
use rescomm_loopnest::{AccessId, AccessKind, LoopNest};
use rescomm_machine::sweep::par_sweep_with_report;
use rescomm_machine::SweepReport;
use rescomm_macrocomm::{
    axis_alignment_rotation, detect, Extent, MacroComm, MacroInput, MacroKind,
};
use std::collections::HashMap;

/// Options controlling the pipeline (the `false` settings are the
/// ablations benchmarked in `rescomm-bench`).
#[derive(Debug, Clone, Copy)]
pub struct MappingOptions {
    /// Target virtual grid dimension `m`.
    pub m: usize,
    /// Step 2(a): detect macro-communications and rotate them onto axes.
    pub enable_macro: bool,
    /// Step 2(b): decompose residual general communications.
    pub enable_decompose: bool,
    /// Allow unimodular similarity rotations during decomposition.
    pub enable_similarity: bool,
    /// Weight access-graph edges by `rank F` (the paper's volume
    /// prioritization); `false` uses unit weights (ablation).
    pub weight_by_rank: bool,
    /// Step 1(c) extension: merge compatible cross-component edges so
    /// their communications become local too.
    pub enable_merging: bool,
    /// Self-checking mode: after the fast path succeeds, replay the nest
    /// through [`map_nest_reference`] and compare outcomes. A disagreement
    /// makes the reference result win and is recorded as an
    /// [`Incident`] on the mapping.
    pub self_check: bool,
}

impl MappingOptions {
    /// Defaults: everything on.
    pub fn new(m: usize) -> Self {
        MappingOptions {
            m,
            enable_macro: true,
            enable_decompose: true,
            enable_similarity: true,
            weight_by_rank: true,
            enable_merging: true,
            self_check: false,
        }
    }

    /// Step 1 only (the Feautrier-style greedy baseline): residuals stay
    /// general.
    pub fn step1_only(m: usize) -> Self {
        MappingOptions {
            m,
            enable_macro: false,
            enable_decompose: false,
            enable_similarity: false,
            weight_by_rank: true,
            enable_merging: true,
            self_check: false,
        }
    }

    /// Builder-style toggle for the self-checking mode.
    pub fn with_self_check(mut self) -> Self {
        self.self_check = true;
        self
    }
}

/// Final classification of one access's communication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommOutcome {
    /// `M_S = M_x·F` and the offset term vanishes: no communication.
    Local,
    /// Linear part local, constant offset nonzero: a fixed translation.
    Translation,
    /// An axis-parallel (or total) macro-communication.
    Macro {
        /// Broadcast / scatter / gather / reduction.
        kind: MacroKind,
        /// Total or partial (hidden collectives are reported [`CommOutcome::Local`]).
        total: bool,
        /// `true` when a component rotation was needed to align it.
        rotated: bool,
    },
    /// Decomposed into elementary `L`/`U` factors (2-D grids).
    Decomposed {
        /// The factor sequence.
        factors: Vec<Elementary>,
        /// `true` when a similarity rotation was applied first.
        rotated: bool,
    },
    /// Decomposed into unirow factors (higher dims or `det ≠ ±1`).
    DecomposedGeneral {
        /// Number of unirow factors.
        n_factors: usize,
    },
    /// Still a general affine communication.
    General,
}

/// The result of mapping a nest.
#[derive(Debug, Clone)]
pub struct Mapping {
    /// The allocation functions (after all rotations).
    pub alignment: Alignment,
    /// Outcome per access, indexed like `nest.accesses`.
    pub outcomes: Vec<CommOutcome>,
    /// Unimodular rotations applied per component (composed).
    pub rotations: HashMap<usize, IMat>,
    /// Recoverable fast-path failures: each entry records one guarded
    /// stage that died (or disagreed under self-check) and was replaced
    /// by the reference oracle. Empty on a clean run.
    pub incidents: Vec<Incident>,
}

impl Mapping {
    /// Summarize into a printable report.
    pub fn report(&self, nest: &LoopNest) -> crate::report::MappingReport {
        crate::report::MappingReport::from_mapping(self, nest)
    }
}

fn stmt_is_reduction(nest: &LoopNest, s: rescomm_loopnest::StmtId) -> bool {
    nest.accesses_of(s).any(|a| a.kind == AccessKind::Reduce)
}

/// Memo key for [`detect`]: `(θ, F, M_S, M_x, access kind, reduction?)`.
type DetectKey = (IMat, IMat, IMat, IMat, AccessKind, bool);

/// Memo for the kernel-heavy computations of the pipeline: the per-access
/// graph-build classification ([`GraphBuildCache`] — the integer
/// left-inverse search dominates build time on nests with store
/// accesses), [`detect`]'s collective classification, and the
/// dataflow-matrix solve, keyed by the exact matrices involved. Chained
/// stencil families repeat the same `(θ, F, M_S, M_x)` combinations
/// across hundreds of statements, so one cache entry replaces many
/// Hermite/kernel/adjugate computations.
///
/// The cache is **outcome-transparent**: every memoized function is pure,
/// so a cached run classifies exactly like an uncached one. Reuse a cache
/// across nests mapped with the same options ([`map_nest_batch`] gives
/// each worker thread its own), or keep one per call as [`map_nest`] does.
pub struct AnalysisCache {
    enabled: bool,
    detect: HashMap<DetectKey, Option<MacroComm>>,
    dataflow: HashMap<(IMat, IMat, IMat, usize), Option<IMat>>,
    graph: GraphBuildCache,
}

impl AnalysisCache {
    /// An empty, active cache.
    pub fn new() -> Self {
        AnalysisCache {
            enabled: true,
            detect: HashMap::new(),
            dataflow: HashMap::new(),
            graph: GraphBuildCache::new(),
        }
    }

    /// A cache that never stores or returns anything — the reference path
    /// uses it to time the seed behaviour honestly.
    pub fn disabled() -> Self {
        AnalysisCache {
            enabled: false,
            detect: HashMap::new(),
            dataflow: HashMap::new(),
            graph: GraphBuildCache::new(),
        }
    }

    /// Drop all memoized entries (the `enabled` flag is kept).
    pub fn clear(&mut self) {
        self.detect.clear();
        self.dataflow.clear();
        self.graph.clear();
    }

    /// Number of memoized entries across all tables.
    pub fn len(&self) -> usize {
        self.detect.len() + self.dataflow.len() + self.graph.len()
    }

    /// `true` when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.detect.is_empty() && self.dataflow.is_empty() && self.graph.is_empty()
    }
}

impl Default for AnalysisCache {
    fn default() -> Self {
        AnalysisCache::new()
    }
}

/// [`detect`] through the memo (pure, so cache hits are exact replays).
fn detect_cached(cache: &mut AnalysisCache, input: MacroInput<'_>) -> Option<MacroComm> {
    if !cache.enabled {
        return detect(input);
    }
    let key = (
        input.theta.clone(),
        input.f.clone(),
        input.m_s.clone(),
        input.m_x.clone(),
        input.kind,
        input.stmt_is_reduction,
    );
    if let Some(hit) = cache.detect.get(&key) {
        return hit.clone();
    }
    let out = detect(input);
    cache.detect.insert(key, out.clone());
    out
}

/// Run the complete heuristic on a nest.
///
/// The fast path is *guarded*: an internal panic (overflow in exact
/// arithmetic, a violated invariant) is caught, the nest is replayed
/// through the reference oracle, and the event is recorded as an
/// [`Incident`] on the returned mapping. `Err` is returned only when the
/// reference path fails on the instance too.
pub fn map_nest(nest: &LoopNest, opts: &MappingOptions) -> Result<Mapping, RescommError> {
    map_nest_with(nest, opts, &mut AnalysisCache::new())
}

/// [`map_nest`] with a caller-provided [`AnalysisCache`], so repeated
/// mappings (sweeps, experiment tables, batch serving) share kernel
/// computations across nests.
pub fn map_nest_with(
    nest: &LoopNest,
    opts: &MappingOptions,
    cache: &mut AnalysisCache,
) -> Result<Mapping, RescommError> {
    map_nest_cancellable(nest, opts, cache, &CancelToken::none())
}

/// [`map_nest_with`] under a [`CancelToken`]: the pipeline checks the
/// token between passes and returns [`RescommError::Cancelled`] from the
/// first checkpoint past the deadline — cooperative cancellation for
/// servers enforcing per-request deadlines. A fired token also suppresses
/// the reference-oracle fallback (falling back to a *slower* path after
/// the deadline would invert the point of having one). With the inert
/// token this is exactly [`map_nest_with`].
pub fn map_nest_cancellable(
    nest: &LoopNest,
    opts: &MappingOptions,
    cache: &mut AnalysisCache,
    cancel: &CancelToken,
) -> Result<Mapping, RescommError> {
    match guarded("map_nest_fast", || {
        map_nest_impl(nest, opts, cache, false, cancel)
    }) {
        Ok(Err(c)) => Err(c.into()),
        Ok(Ok(mut mapping)) => {
            if opts.self_check {
                match guarded("map_nest_reference", || {
                    map_nest_impl(nest, opts, &mut AnalysisCache::disabled(), true, cancel)
                }) {
                    Ok(Err(c)) => Err(c.into()),
                    Ok(Ok(reference)) if reference.outcomes != mapping.outcomes => {
                        // The oracle wins; keep the evidence.
                        let mut m = reference;
                        m.incidents.push(Incident::fallback(
                            "self_check",
                            format!(
                                "fast path disagreed with the reference oracle on {}: \
                                 fell back to the reference mapping",
                                nest.name
                            ),
                        ));
                        Ok(m)
                    }
                    Ok(Ok(_)) => Ok(mapping),
                    Err(inc) => {
                        // The fast result stands, but the failed check is
                        // on the record.
                        mapping.incidents.push(Incident::fallback(
                            "self_check",
                            format!("reference oracle failed: {}", inc.detail),
                        ));
                        Ok(mapping)
                    }
                }
            } else {
                Ok(mapping)
            }
        }
        Err(incident) => {
            // Past the deadline the fallback is pointless work; report
            // the cancellation, not the panic that raced with it.
            if let Err(c) = cancel.check("fallback") {
                return Err(c.into());
            }
            match guarded("map_nest_reference", || {
                map_nest_impl(nest, opts, &mut AnalysisCache::disabled(), true, cancel)
            }) {
                Ok(Err(c)) => Err(c.into()),
                Ok(Ok(mut m)) => {
                    m.incidents.push(incident);
                    Ok(m)
                }
                Err(ref_inc) => Err(RescommError::Analysis {
                    stage: "map_nest",
                    detail: format!(
                        "fast path: {}; reference fallback: {}",
                        incident.detail, ref_inc.detail
                    ),
                }),
            }
        }
    }
}

/// The seed implementation end to end: reference branching / augment /
/// merge (see [`rescomm_accessgraph::reference`]) and no memoization.
/// Kept as the proof-of-equivalence oracle, the fallback target of the
/// guarded [`map_nest`], and the `pipeline_baseline` "old" timing path.
/// Unlike [`map_nest`] it is unguarded — it panics where the seed did.
pub fn map_nest_reference(nest: &LoopNest, opts: &MappingOptions) -> Mapping {
    map_nest_impl(
        nest,
        opts,
        &mut AnalysisCache::disabled(),
        true,
        &CancelToken::none(),
    )
    .expect("the inert token never cancels")
}

/// Map every nest, fanning out over `threads` workers on the shared
/// work-stealing pool with one [`AnalysisCache`] per worker (the
/// `par_sweep_with` scratch pattern). Results are in input order and
/// identical to mapping each nest alone; the first failing nest's error
/// is returned.
pub fn map_nest_batch(
    nests: &[LoopNest],
    opts: &MappingOptions,
    threads: usize,
) -> Result<Vec<Mapping>, RescommError> {
    map_nest_batch_report(nests, opts, threads).0
}

/// [`map_nest_batch`] plus the pool's execution report (workers actually
/// used, grain, steal count) — the analysis-batch scaling bench computes
/// efficiency against [`SweepReport::workers`], never the request.
pub fn map_nest_batch_report(
    nests: &[LoopNest],
    opts: &MappingOptions,
    threads: usize,
) -> (Result<Vec<Mapping>, RescommError>, SweepReport) {
    let (results, report) =
        par_sweep_with_report(nests, threads, AnalysisCache::new, |cache, nest| {
            Some(map_nest_with(nest, opts, cache))
        });
    let mappings = results
        .into_iter()
        .map(|r| r.expect("map_nest_batch worker produced no mapping"))
        .collect();
    (mappings, report)
}

/// Alias for [`map_nest_batch`] with one worker per available core.
pub fn par_map_nests(
    nests: &[LoopNest],
    opts: &MappingOptions,
) -> Result<Vec<Mapping>, RescommError> {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    map_nest_batch(nests, opts, threads)
}

fn map_nest_impl(
    nest: &LoopNest,
    opts: &MappingOptions,
    cache: &mut AnalysisCache,
    use_reference: bool,
    cancel: &CancelToken,
) -> Result<Mapping, Cancelled> {
    let m = opts.m;
    cancel.check("graph_build")?;
    // ---- Step 1: zero out what we can. ----
    let graph = if cache.enabled {
        AccessGraph::build_weighted_cached(nest, m, opts.weight_by_rank, &mut cache.graph)
    } else {
        AccessGraph::build_weighted(nest, m, opts.weight_by_rank)
    };
    cancel.check("branching")?;
    let branching = if use_reference {
        reference::maximum_branching_reference(&graph)
    } else {
        maximum_branching(&graph)
    };
    let mut comps = component_structure(&graph, &branching, nest);
    cancel.check("augment")?;
    let mut aug = if use_reference {
        reference::augment_reference(&graph, &branching.edges, &comps, m)
    } else {
        augment(&graph, &branching.edges, &comps, m)
    };
    if opts.enable_merging {
        cancel.check("merge")?;
        if use_reference {
            reference::merge_cross_components_reference(&graph, &mut comps, &mut aug, m);
        } else {
            merge_cross_components(&graph, &mut comps, &mut aug, m);
        }
    }
    cancel.check("alignment")?;
    let mut alignment = if use_reference {
        rescomm_alignment::reference::compute_alignment_reference(nest, &graph, &comps, &aug)
    } else {
        compute_alignment(nest, &graph, &comps, &aug)
    };
    let mut rotations: HashMap<usize, IMat> = HashMap::new();

    // ---- Step 2(a): macro-communications, rotating components. ----
    if opts.enable_macro {
        cancel.check("macro_scan")?;
        // Process residuals; rotate each component at most once, driven by
        // the first partial collective that needs it.
        let residuals = residual_communications(nest, &alignment);
        for r in &residuals {
            let acc = nest.access(r.access);
            let st = nest.statement(r.stmt);
            let mc = detect_cached(
                cache,
                MacroInput {
                    theta: st.schedule.theta(),
                    f: &acc.f,
                    m_s: &alignment.stmt_alloc[r.stmt.0].mat,
                    m_x: &alignment.array_alloc[r.array.0].mat,
                    kind: acc.kind,
                    stmt_is_reduction: stmt_is_reduction(nest, r.stmt),
                },
            );
            let Some(mc) = mc else { continue };
            if let Extent::Partial { .. } = mc.extent {
                if !mc.axis_parallel && r.same_component {
                    let ci = alignment
                        .component_of(Vertex::Stmt(r.stmt))
                        .expect("same-component residual has a component");
                    if rotations.contains_key(&ci) {
                        continue; // one rotation per component
                    }
                    let d = mc.directions.as_ref().expect("partial has directions");
                    let (qinv, _) = axis_alignment_rotation(d);
                    alignment.rotate_component(ci, &qinv);
                    rotations.insert(ci, qinv);
                }
            }
        }
    }

    // ---- Classify every access under the (possibly rotated) alignment,
    //      decomposing leftover general communications. ----
    cancel.check("classify")?;
    let outcomes = classify_outcomes(nest, &mut alignment, &mut rotations, opts, cache);

    Ok(Mapping {
        alignment,
        outcomes,
        rotations,
        incidents: Vec::new(),
    })
}

/// Classify every access under `alignment`, decomposing leftover general
/// communications (and possibly applying similarity rotations). Shared
/// between [`map_nest`] and the degraded-grid remapper
/// ([`crate::recover::remap_for_survivors`]), which re-derives outcomes
/// after a node-loss fold rotation.
pub(crate) fn classify_outcomes(
    nest: &LoopNest,
    alignment: &mut Alignment,
    rotations: &mut HashMap<usize, IMat>,
    opts: &MappingOptions,
    cache: &mut AnalysisCache,
) -> Vec<CommOutcome> {
    let mut outcomes: Vec<CommOutcome> = Vec::with_capacity(nest.accesses.len());
    for acc in &nest.accesses {
        let st = nest.statement(acc.stmt);
        if alignment.is_local(nest, acc) {
            outcomes.push(CommOutcome::Local);
            continue;
        }
        if alignment.is_linear_local(nest, acc) {
            outcomes.push(CommOutcome::Translation);
            continue;
        }
        // Macro-communication?
        if opts.enable_macro {
            let mc = detect_cached(
                cache,
                MacroInput {
                    theta: st.schedule.theta(),
                    f: &acc.f,
                    m_s: &alignment.stmt_alloc[acc.stmt.0].mat,
                    m_x: &alignment.array_alloc[acc.array.0].mat,
                    kind: acc.kind,
                    stmt_is_reduction: stmt_is_reduction(nest, acc.stmt),
                },
            );
            if let Some(mc) = mc {
                match mc.extent {
                    Extent::Total => {
                        outcomes.push(CommOutcome::Macro {
                            kind: mc.kind,
                            total: true,
                            rotated: false,
                        });
                        continue;
                    }
                    Extent::Partial { .. } if mc.axis_parallel => {
                        let ci = alignment.component_of(Vertex::Stmt(acc.stmt));
                        outcomes.push(CommOutcome::Macro {
                            kind: mc.kind,
                            total: false,
                            rotated: ci.is_some_and(|c| rotations.contains_key(&c)),
                        });
                        continue;
                    }
                    _ => { /* hidden or misaligned: fall through */ }
                }
            }
        }
        // Decomposition?
        if opts.enable_decompose {
            if let Some(outcome) = try_decompose(nest, alignment, rotations, acc, opts, cache) {
                outcomes.push(outcome);
                continue;
            }
        }
        outcomes.push(CommOutcome::General);
    }
    outcomes
}

/// Dataflow matrix of a residual communication: the `T` with
/// `T·(M_x·F) = M_S`, when it exists.
pub fn dataflow_matrix(alignment: &Alignment, nest: &LoopNest, access: AccessId) -> Option<IMat> {
    dataflow_matrix_cached(&mut AnalysisCache::disabled(), alignment, nest, access)
}

/// [`dataflow_matrix`] through the memo, keyed on the exact
/// `(M_S, M_x, F, m)` — the rank check and the linear solve both depend
/// only on those, so hits are exact replays.
pub fn dataflow_matrix_cached(
    cache: &mut AnalysisCache,
    alignment: &Alignment,
    nest: &LoopNest,
    access: AccessId,
) -> Option<IMat> {
    let acc = nest.access(access);
    let m_s = &alignment.stmt_alloc[acc.stmt.0].mat;
    let m_x = &alignment.array_alloc[acc.array.0].mat;
    if cache.enabled {
        let key = (m_s.clone(), m_x.clone(), acc.f.clone(), alignment.m);
        if let Some(hit) = cache.dataflow.get(&key) {
            return hit.clone();
        }
        let out = dataflow_solve(m_s, m_x, &acc.f, alignment.m);
        cache.dataflow.insert(key, out.clone());
        out
    } else {
        dataflow_solve(m_s, m_x, &acc.f, alignment.m)
    }
}

fn dataflow_solve(m_s: &IMat, m_x: &IMat, f: &IMat, m: usize) -> Option<IMat> {
    let mxf = m_x * f;
    if mxf.rank() < m.min(mxf.rows()) {
        return None;
    }
    solve_xf_eq_s(m_s, &mxf).ok().map(|fam| fam.particular)
}

fn try_decompose(
    nest: &LoopNest,
    alignment: &mut Alignment,
    rotations: &mut HashMap<usize, IMat>,
    acc: &rescomm_loopnest::Access,
    opts: &MappingOptions,
    cache: &mut AnalysisCache,
) -> Option<CommOutcome> {
    let t = dataflow_matrix_cached(cache, alignment, nest, acc.id)?;
    if !t.is_square() {
        return None;
    }
    // A dataflow matrix whose determinant overflows even i128-checked
    // arithmetic is not decomposable by any strategy here: report the
    // access as general instead of panicking.
    let det = t.try_det().ok()?;
    if t.rows() == 2 {
        if matches!(det, 1 | -1) {
            // det −1 is handled through the general (unirow) path below.
            if det == 1 {
                if let Some(factors) = decompose_direct(&t) {
                    if factors.len() <= 4 {
                        return Some(CommOutcome::Decomposed {
                            factors,
                            rotated: false,
                        });
                    }
                    // Long chain: try a similarity rotation first — only
                    // when statement and array share an unrotated
                    // component.
                    if opts.enable_similarity {
                        if let Some(ci) =
                            alignment
                                .component_of(Vertex::Stmt(acc.stmt))
                                .filter(|&ci| {
                                    alignment.component_of(Vertex::Array(acc.array)) == Some(ci)
                                        && !rotations.contains_key(&ci)
                                })
                        {
                            if let Some(sim) = search_similarity(&t, 200) {
                                alignment.rotate_component(ci, &sim.m);
                                rotations.insert(ci, sim.m.clone());
                                return Some(CommOutcome::Decomposed {
                                    factors: sim.factors,
                                    rotated: true,
                                });
                            }
                        }
                    }
                    return Some(CommOutcome::Decomposed {
                        factors,
                        rotated: false,
                    });
                }
            }
        }
        // det ≠ 1: unirow decomposition.
        if det != 0 {
            if let Ok(f) = decompose_general(&t) {
                return Some(CommOutcome::DecomposedGeneral { n_factors: f.len() });
            }
        }
        return None;
    }
    // Higher-dimensional grids: elementary shears for det = 1 (§4.1's
    // n-dimensional extension), unirow factors otherwise.
    if det == 1 {
        if let Some(f) = shear_decompose(&t) {
            return Some(CommOutcome::DecomposedGeneral { n_factors: f.len() });
        }
    }
    if det != 0 {
        if let Ok(f) = decompose_general(&t) {
            let n = f
                .iter()
                .filter(|g| {
                    let GenFactor::Unirow { coeffs, row } = g;
                    // Identity rows are free.
                    coeffs
                        .iter()
                        .enumerate()
                        .any(|(j, &c)| c != i64::from(j == *row))
                })
                .count();
            return Some(CommOutcome::DecomposedGeneral { n_factors: n });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescomm_loopnest::examples;

    #[test]
    fn motivating_example_full_narrative() {
        // The paper's §2 summary: "5 local communications, one broadcast
        // and one residual communication decomposed into two elementary
        // communications" (plus the footnoted F8 bonus broadcast).
        let (nest, ids) = examples::motivating_example(8, 4);
        let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        let out = |id: rescomm_loopnest::AccessId| &mapping.outcomes[id.0];
        for fid in [ids.f1, ids.f2, ids.f4, ids.f5, ids.f7] {
            assert_eq!(*out(fid), CommOutcome::Local, "{fid:?} must be local");
        }
        // F6: partial broadcast, made axis-parallel by a rotation.
        match out(ids.f6) {
            CommOutcome::Macro {
                kind: MacroKind::Broadcast,
                total: false,
                rotated,
            } => assert!(*rotated, "F6 needs the V rotation"),
            other => panic!("F6 expected partial broadcast, got {other:?}"),
        }
        // F8: the lucky coincidence — axis-parallel after the same V.
        match out(ids.f8) {
            CommOutcome::Macro {
                kind: MacroKind::Broadcast,
                total: false,
                ..
            } => {}
            other => panic!("F8 expected partial broadcast, got {other:?}"),
        }
        // F3: decomposed into exactly two elementary factors.
        match out(ids.f3) {
            CommOutcome::Decomposed { factors, .. } => {
                assert_eq!(factors.len(), 2, "factors: {factors:?}");
            }
            other => panic!("F3 expected decomposition, got {other:?}"),
        }
    }

    #[test]
    fn motivating_example_dataflow_matrix_is_paper_t() {
        // After the broadcast rotation V, T = V·M_S1·(M_a·F3)⁻¹·V⁻¹ is in
        // the similarity class of the paper's [[1,1],[1,2]] = L(1)·U(1):
        // det 1, trace 3, and a direct 2-factor decomposition (the exact
        // entries depend on which axis the Hermite rotation picks).
        let (nest, ids) = examples::motivating_example(8, 4);
        let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        let t = dataflow_matrix(&mapping.alignment, &nest, ids.f3).unwrap();
        assert_eq!(t.det(), 1);
        assert_eq!(t.trace(), 3);
        let f = rescomm_decompose::direct::decompose2(&t).expect("2-factor form");
        assert_eq!(f.len(), 2);
        // And without any rotation (identity-seeded alignment) the raw
        // dataflow matrix V·T₀·V⁻¹ with V = [[1,1],[0,1]] is exactly the
        // paper's [[1,1],[1,2]].
        let v = IMat::from_rows(&[&[1, 1], &[0, 1]]);
        let vinv = v.inverse_unimodular().unwrap();
        let base = map_nest(&nest, &MappingOptions::step1_only(2)).unwrap();
        let t0 = dataflow_matrix(&base.alignment, &nest, ids.f3).unwrap();
        assert_eq!(&(&v * &t0) * &vinv, IMat::from_rows(&[&[1, 1], &[1, 2]]));
    }

    #[test]
    fn rotation_preserves_step1_locality() {
        let (nest, _) = examples::motivating_example(8, 4);
        let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        assert_eq!(mapping.rotations.len(), 1, "exactly one component rotation");
        let n_local = mapping
            .outcomes
            .iter()
            .filter(|o| matches!(o, CommOutcome::Local))
            .count();
        assert_eq!(n_local, 5);
    }

    #[test]
    fn step1_only_leaves_generals() {
        let (nest, ids) = examples::motivating_example(8, 4);
        let mapping = map_nest(&nest, &MappingOptions::step1_only(2)).unwrap();
        assert!(matches!(mapping.outcomes[ids.f3.0], CommOutcome::General));
        assert!(matches!(mapping.outcomes[ids.f6.0], CommOutcome::General));
        assert!(mapping.rotations.is_empty());
    }

    #[test]
    fn example5_communication_free() {
        let (nest, _) = examples::example5_platonoff(4);
        let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        assert!(
            mapping
                .outcomes
                .iter()
                .all(|o| matches!(o, CommOutcome::Local)),
            "outcomes: {:?}",
            mapping.outcomes
        );
    }

    #[test]
    fn matmul_keeps_reduction_structure() {
        let nest = examples::matmul(6);
        let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        // One access local; the others cross components → macro or general
        // (never panic); at least the C access should be recognized.
        assert!(mapping
            .outcomes
            .iter()
            .any(|o| matches!(o, CommOutcome::Local)));
        assert_eq!(mapping.outcomes.len(), 3);
    }

    #[test]
    fn example2_broadcast_detected_end_to_end() {
        let nest = examples::example2_broadcast(8);
        let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        assert!(
            mapping.outcomes.iter().any(|o| matches!(
                o,
                CommOutcome::Macro {
                    kind: MacroKind::Broadcast,
                    ..
                }
            ) || matches!(o, CommOutcome::Local)),
            "outcomes: {:?}",
            mapping.outcomes
        );
    }

    #[test]
    fn gauss_maps_without_panic_and_mostly_local() {
        let nest = examples::gauss_elim(6);
        let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        let n_local = mapping
            .outcomes
            .iter()
            .filter(|o| matches!(o, CommOutcome::Local | CommOutcome::Translation))
            .count();
        assert!(n_local >= 2, "outcomes: {:?}", mapping.outcomes);
    }

    #[test]
    fn cross_component_merge_zeroes_compatible_reads_end_to_end() {
        use rescomm_loopnest::{Domain, NestBuilder};
        // Without merging only the square c-access aligns; with the step
        // 1(c) extension both flat reads become local too.
        let mut bld = NestBuilder::new("mergeable");
        let a = bld.array("a", 2);
        let b2 = bld.array("b", 2);
        let c = bld.array("c", 3);
        let s = bld.statement("S", 3, Domain::cube(3, 4));
        bld.write(s, c, IMat::identity(3), &[0, 0, 0]);
        bld.read(s, a, IMat::from_rows(&[&[1, 0, 0], &[0, 1, 0]]), &[0, 0]);
        bld.read(s, b2, IMat::from_rows(&[&[0, 1, 0], &[1, 0, 0]]), &[0, 0]);
        let nest = bld.build().unwrap();

        let with = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        let locals = with
            .outcomes
            .iter()
            .filter(|o| matches!(o, CommOutcome::Local))
            .count();
        assert_eq!(locals, 3, "all three accesses local: {:?}", with.outcomes);

        let mut opts = MappingOptions::new(2);
        opts.enable_merging = false;
        let without = map_nest(&nest, &opts).unwrap();
        let locals0 = without
            .outcomes
            .iter()
            .filter(|o| matches!(o, CommOutcome::Local))
            .count();
        assert!(
            locals0 < 3,
            "merging must be the difference: {:?}",
            without.outcomes
        );
    }

    #[test]
    fn independent_components_rotate_independently() {
        use rescomm_loopnest::{Domain, NestBuilder};
        // Two disjoint copies of the motivating example's broadcast
        // gadget, with different skews: each component needs its own
        // unimodular rotation.
        let mut b = NestBuilder::new("two-gadgets");
        let gadget = |b: &mut NestBuilder, tag: usize, f_skew: IMat| {
            let a = b.array(&format!("a{tag}"), 2);
            let w = b.array(&format!("w{tag}"), 3);
            let p = b.statement(&format!("P{tag}"), 2, Domain::cube(2, 4));
            let q = b.statement(&format!("Q{tag}"), 3, Domain::cube(3, 4));
            b.read(p, a, IMat::identity(2), &[0, 0]);
            b.write(
                p,
                w,
                IMat::from_rows(&[&[1, 0], &[0, 1], &[0, 0]]),
                &[0, 0, 0],
            );
            b.write(q, w, IMat::identity(3), &[0, 0, 1]);
            b.read(q, a, f_skew, &[0, 0]);
        };
        gadget(&mut b, 1, IMat::from_rows(&[&[1, 1, 0], &[0, 1, 1]])); // ker (1,−1,1)
        gadget(&mut b, 2, IMat::from_rows(&[&[1, 2, 0], &[0, 1, 1]])); // ker (2,−1,1)
        let nest = b.build().unwrap();
        let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        assert_eq!(mapping.rotations.len(), 2, "one rotation per gadget");
        let broadcasts = mapping
            .outcomes
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    CommOutcome::Macro {
                        kind: MacroKind::Broadcast,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(broadcasts, 2, "outcomes: {:?}", mapping.outcomes);
        // All other accesses local.
        let locals = mapping
            .outcomes
            .iter()
            .filter(|o| matches!(o, CommOutcome::Local))
            .count();
        assert_eq!(locals, 6);
    }

    #[test]
    fn three_dimensional_target_grid() {
        // Map a depth-3 nest onto a 3-D virtual grid: the depth-3
        // statements keep full-rank 3×3 allocations and any residual
        // dataflow decomposes into n-dimensional shears.
        let (nest, _) = examples::motivating_example(6, 2);
        let mapping = map_nest(&nest, &MappingOptions::new(3)).unwrap();
        assert_eq!(mapping.outcomes.len(), 8);
        // Depth-3 statements get rank-3 allocations.
        for (si, st) in nest.statements.iter().enumerate() {
            let mat = &mapping.alignment.stmt_alloc[si].mat;
            assert_eq!(mat.rank(), st.depth.min(3), "statement {}", st.name);
        }
        // Nothing may panic and the counts must cover all accesses.
        let r = mapping.report(&nest);
        assert_eq!(
            r.n_local + r.n_translation + r.n_macro() + r.n_decomposed + r.n_general,
            8
        );
    }

    #[test]
    fn one_dimensional_target_grid() {
        let nest = examples::matmul(4);
        let mapping = map_nest(&nest, &MappingOptions::new(1)).unwrap();
        assert_eq!(mapping.outcomes.len(), 3);
        for a in &mapping.alignment.stmt_alloc {
            assert_eq!(a.mat.rows(), 1);
        }
    }

    #[test]
    fn shear_decomposition_used_for_3d_unimodular_dataflow() {
        use rescomm_loopnest::{Domain, NestBuilder};
        // A depth-3 nest with a unimodular 3×3 twist between two reads of
        // the same array: one read aligns, the other's dataflow matrix is
        // an SL₃ element → shear decomposition.
        let mut b = NestBuilder::new("twist3");
        let x = b.array("x", 3);
        let st = b.statement("S", 3, Domain::cube(3, 4));
        b.read(st, x, IMat::identity(3), &[0, 0, 0]);
        let twist = IMat::from_rows(&[&[1, 1, 0], &[0, 1, 1], &[0, 0, 1]]);
        b.read(st, x, twist, &[0, 0, 0]);
        let nest = b.build().unwrap();
        let mapping = map_nest(&nest, &MappingOptions::new(3)).unwrap();
        assert!(
            mapping.outcomes.iter().any(
                |o| matches!(o, CommOutcome::DecomposedGeneral { n_factors } if *n_factors >= 1)
            ),
            "outcomes: {:?}",
            mapping.outcomes
        );
    }

    #[test]
    fn clean_runs_record_no_incidents() {
        let (nest, _) = examples::motivating_example(8, 4);
        let plain = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        assert!(plain.incidents.is_empty());
        // Self-checking mode replays through the oracle, agrees, and adds
        // nothing to the record.
        let checked = map_nest(&nest, &MappingOptions::new(2).with_self_check()).unwrap();
        assert_eq!(plain.outcomes, checked.outcomes);
        assert!(checked.incidents.is_empty());
    }

    #[test]
    fn huge_coefficients_error_instead_of_panicking() {
        use rescomm_loopnest::{Domain, NestBuilder};
        // Access coefficients near i64::MAX force the exact arithmetic
        // into its overflow paths. The guarded pipeline must return — a
        // mapping (possibly via the oracle fallback, with the incident on
        // record) or a typed error — never unwind.
        let big = i64::MAX / 2;
        let mut b = NestBuilder::new("huge");
        let x = b.array("x", 2);
        let s = b.statement("S", 2, Domain::cube(2, 4));
        b.write(s, x, IMat::identity(2), &[0, 0]);
        b.read(s, x, IMat::from_rows(&[&[big, big], &[1, big]]), &[0, 0]);
        let nest = b.build().unwrap();
        match map_nest(&nest, &MappingOptions::new(2)) {
            Ok(m) => {
                assert_eq!(m.outcomes.len(), 2);
                for inc in &m.incidents {
                    assert!(!inc.stage.is_empty());
                }
            }
            Err(e) => assert!(!format!("{e}").is_empty()),
        }
    }

    #[test]
    fn batch_results_match_singles_and_propagate_ok() {
        let nests = vec![
            examples::matmul(4),
            examples::gauss_elim(4),
            examples::adi_sweep(4),
        ];
        let opts = MappingOptions::new(2);
        let batch = map_nest_batch(&nests, &opts, 2).unwrap();
        assert_eq!(batch.len(), 3);
        for (nest, got) in nests.iter().zip(&batch) {
            let solo = map_nest(nest, &opts).unwrap();
            assert_eq!(solo.outcomes, got.outcomes);
            assert!(got.incidents.is_empty());
        }
    }

    #[test]
    fn adi_sweep_maps() {
        let nest = examples::adi_sweep(8);
        let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        assert_eq!(mapping.outcomes.len(), 4);
        // The two statements want transposed layouts; at least two accesses
        // become local/translation.
        let ok = mapping
            .outcomes
            .iter()
            .filter(|o| matches!(o, CommOutcome::Local | CommOutcome::Translation))
            .count();
        assert!(ok >= 2, "outcomes: {:?}", mapping.outcomes);
    }
}
