//! Snapshot/restore for [`CommPlan`] — the core half of the service's
//! durability contract (see [`rescomm_machine::snapshot`] for the
//! machine half and the shared design rules).
//!
//! A plan serializes phase by phase: the reporting kind as a tagged
//! string, the pattern either as its explicit endpoint list or as the
//! affine closed form `(T, shift)`. Restore validates structure (a 2×2
//! `T`, 4-tuple endpoint rows) and rebuilds a plan that simulates
//! bit-identically to the original on every mesh, distribution, and
//! schedule mode — the property-test suite pins this.

use crate::plan::{CommPhase, CommPlan, Endpoints, PhaseKind, PhasePattern};
use rescomm_decompose::Elementary;
use rescomm_intlin::IMat;
use rescomm_json::JsonValue;
use rescomm_loopnest::AccessId;
use rescomm_machine::snapshot::SnapshotError;

type Restore<T> = Result<T, SnapshotError>;

fn err<T>(msg: impl Into<String>) -> Restore<T> {
    Err(SnapshotError { msg: msg.into() })
}

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn ints(xs: &[i64]) -> JsonValue {
    JsonValue::Array(xs.iter().map(|&x| JsonValue::Int(x)).collect())
}

fn int_row(v: &JsonValue, n: usize, what: &str) -> Restore<Vec<i64>> {
    let arr = match v.as_array() {
        Some(a) if a.len() == n => a,
        _ => return err(format!("{what}: expected array of {n} integers")),
    };
    arr.iter()
        .map(|e| {
            e.as_i64().ok_or_else(|| SnapshotError {
                msg: format!("{what}: expected integer"),
            })
        })
        .collect()
}

fn kind_to_json(k: &PhaseKind) -> JsonValue {
    let (tag, arg) = match k {
        PhaseKind::Translation => ("translation", None),
        PhaseKind::CollectiveRound => ("collective_round", None),
        PhaseKind::Elementary(Elementary::L(l)) => ("elementary_l", Some(*l)),
        PhaseKind::Elementary(Elementary::U(u)) => ("elementary_u", Some(*u)),
        PhaseKind::DecompositionShift => ("decomposition_shift", None),
        PhaseKind::UnirowFactor => ("unirow_factor", None),
        PhaseKind::GeneralAffine => ("general_affine", None),
    };
    let mut fields = vec![("kind", JsonValue::Str(tag.to_string()))];
    if let Some(a) = arg {
        fields.push(("arg", JsonValue::Int(a)));
    }
    obj(fields)
}

fn kind_from_json(v: &JsonValue) -> Restore<PhaseKind> {
    let tag = v
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| SnapshotError {
            msg: "phase: missing kind tag".into(),
        })?;
    let arg = || {
        v.get("arg")
            .and_then(JsonValue::as_i64)
            .ok_or_else(|| SnapshotError {
                msg: format!("phase kind {tag:?}: missing integer arg"),
            })
    };
    Ok(match tag {
        "translation" => PhaseKind::Translation,
        "collective_round" => PhaseKind::CollectiveRound,
        "elementary_l" => PhaseKind::Elementary(Elementary::L(arg()?)),
        "elementary_u" => PhaseKind::Elementary(Elementary::U(arg()?)),
        "decomposition_shift" => PhaseKind::DecompositionShift,
        "unirow_factor" => PhaseKind::UnirowFactor,
        "general_affine" => PhaseKind::GeneralAffine,
        other => return err(format!("phase: unknown kind {other:?}")),
    })
}

fn pattern_to_json(p: &PhasePattern) -> (JsonValue, Vec<(&'static str, JsonValue)>) {
    match p {
        PhasePattern::Explicit(pairs) => (
            JsonValue::Str("explicit".into()),
            vec![(
                "pairs",
                JsonValue::Array(
                    pairs
                        .iter()
                        .map(|&((sx, sy), (dx, dy))| ints(&[sx, sy, dx, dy]))
                        .collect(),
                ),
            )],
        ),
        PhasePattern::Affine { t, shift } => (
            JsonValue::Str("affine".into()),
            vec![
                ("t", ints(&[t[(0, 0)], t[(0, 1)], t[(1, 0)], t[(1, 1)]])),
                ("shift", ints(&[shift.0, shift.1])),
            ],
        ),
    }
}

fn pattern_from_json(v: &JsonValue) -> Restore<PhasePattern> {
    let tag = v
        .get("pattern")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| SnapshotError {
            msg: "phase: missing pattern tag".into(),
        })?;
    match tag {
        "explicit" => {
            let rows = v
                .get("pairs")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| SnapshotError {
                    msg: "explicit pattern: missing pairs array".into(),
                })?;
            let pairs = rows
                .iter()
                .map(|row| {
                    let f = int_row(row, 4, "explicit pair")?;
                    Ok::<Endpoints, SnapshotError>(((f[0], f[1]), (f[2], f[3])))
                })
                .collect::<Restore<Vec<_>>>()?;
            Ok(PhasePattern::Explicit(pairs))
        }
        "affine" => {
            let t = int_row(
                v.get("t").unwrap_or(&JsonValue::Null),
                4,
                "affine pattern t",
            )?;
            let s = int_row(
                v.get("shift").unwrap_or(&JsonValue::Null),
                2,
                "affine pattern shift",
            )?;
            Ok(PhasePattern::Affine {
                t: IMat::from_rows(&[&[t[0], t[1]], &[t[2], t[3]]]),
                shift: (s[0], s[1]),
            })
        }
        other => err(format!("phase: unknown pattern {other:?}")),
    }
}

/// Serialize a [`CommPlan`].
pub fn plan_to_json(plan: &CommPlan) -> JsonValue {
    obj(vec![(
        "phases",
        JsonValue::Array(
            plan.phases
                .iter()
                .map(|ph| {
                    let (pattern_tag, rest) = pattern_to_json(&ph.pattern);
                    let mut fields = vec![
                        ("access", JsonValue::Int(ph.access.0 as i64)),
                        ("k", kind_to_json(&ph.kind)),
                        ("pattern", pattern_tag),
                    ];
                    fields.extend(rest);
                    obj(fields)
                })
                .collect(),
        ),
    )])
}

/// Restore a [`CommPlan`].
pub fn plan_from_json(v: &JsonValue) -> Restore<CommPlan> {
    let phases = v
        .get("phases")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| SnapshotError {
            msg: "plan: missing phases array".into(),
        })?
        .iter()
        .map(|ph| {
            let access = ph
                .get("access")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| SnapshotError {
                    msg: "phase: missing access id".into(),
                })?;
            Ok(CommPhase {
                access: AccessId(access as usize),
                kind: kind_from_json(ph.get("k").unwrap_or(&JsonValue::Null))?,
                pattern: pattern_from_json(ph)?,
            })
        })
        .collect::<Restore<Vec<_>>>()?;
    Ok(CommPlan { phases })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescomm_distribution::{Dist1D, Dist2D};
    use rescomm_json::parse;
    use rescomm_machine::{CostModel, Mesh2D, OverlapOrder, ScheduleMode};

    fn sample_plan() -> CommPlan {
        CommPlan {
            phases: vec![
                CommPhase {
                    access: AccessId(0),
                    kind: PhaseKind::Translation,
                    pattern: PhasePattern::Explicit(vec![((0, 0), (1, 0)), ((2, 3), (3, 3))]),
                },
                CommPhase {
                    access: AccessId(1),
                    kind: PhaseKind::Elementary(Elementary::L(2)),
                    pattern: PhasePattern::Affine {
                        t: IMat::from_rows(&[&[1, 0], &[2, 1]]),
                        shift: (0, 0),
                    },
                },
                CommPhase {
                    access: AccessId(1),
                    kind: PhaseKind::Elementary(Elementary::U(-1)),
                    pattern: PhasePattern::Affine {
                        t: IMat::from_rows(&[&[1, -1], &[0, 1]]),
                        shift: (3, -2),
                    },
                },
                CommPhase {
                    access: AccessId(2),
                    kind: PhaseKind::GeneralAffine,
                    pattern: PhasePattern::Explicit(vec![]),
                },
            ],
        }
    }

    #[test]
    fn plan_round_trips_and_simulates_identically() {
        let plan = sample_plan();
        let text = plan_to_json(&plan).render();
        let back = plan_from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back.phases.len(), plan.phases.len());
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let dist = Dist2D::uniform(Dist1D::Block);
        for mode in [
            ScheduleMode::Phased,
            ScheduleMode::Overlapped(OverlapOrder::default()),
        ] {
            assert_eq!(
                back.simulate_on_mesh(&mesh, dist, (8, 4), 512, mode),
                plan.simulate_on_mesh(&mesh, dist, (8, 4), 512, mode),
                "{mode:?}"
            );
        }
        // Kinds and access ids survive too (the report surface).
        for (a, b) in plan.phases.iter().zip(&back.phases) {
            assert_eq!(a.access, b.access);
            assert_eq!(a.kind, b.kind);
        }
    }

    #[test]
    fn restore_rejects_malformed_plans() {
        for (src, needle) in [
            ("{}", "missing phases"),
            ("{\"phases\": [{}]}", "missing access"),
            (
                "{\"phases\": [{\"access\": 0, \"k\": {\"kind\": \"warp\"}, \
                 \"pattern\": \"explicit\", \"pairs\": []}]}",
                "unknown kind",
            ),
            (
                "{\"phases\": [{\"access\": 0, \"k\": {\"kind\": \"translation\"}, \
                 \"pattern\": \"affine\", \"t\": [1, 0], \"shift\": [0, 0]}]}",
                "expected array of 4",
            ),
            (
                "{\"phases\": [{\"access\": 0, \"k\": {\"kind\": \"elementary_l\"}, \
                 \"pattern\": \"explicit\", \"pairs\": []}]}",
                "missing integer arg",
            ),
        ] {
            let e = plan_from_json(&parse(src).unwrap()).unwrap_err();
            assert!(e.msg.contains(needle), "{src}: {e}");
        }
    }
}
