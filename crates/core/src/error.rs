//! The typed error taxonomy of the public pipeline API.
//!
//! The pipeline must stay well-defined on adversarial instances, not just
//! the paper's kernels: malformed nest sources, accesses whose exact
//! integer arithmetic overflows `i64`, analysis stages that hit an
//! internal inconsistency. Instead of panicking, the public entry points
//! ([`crate::map_nest`], [`rescomm_loopnest::parse_nest`]) surface a
//! [`RescommError`], and the fast path is additionally *guarded*: an
//! internal panic is caught, the mapping transparently falls back to the
//! reference oracle ([`crate::map_nest_reference`]), and the event is
//! recorded as an [`Incident`] in the mapping (surfaced by the run
//! report).

use rescomm_intlin::LinError;
use rescomm_loopnest::ParseError;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Any error the public pipeline API can return.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RescommError {
    /// The nest source was malformed (line/column in the payload).
    Parse(ParseError),
    /// Exact integer linear algebra failed (overflow, singularity, …).
    Lin(LinError),
    /// An analysis stage failed internally — raised only when both the
    /// fast path *and* the reference fallback died on the instance.
    Analysis {
        /// The pipeline stage that failed.
        stage: &'static str,
        /// What happened.
        detail: String,
    },
    /// Distributed execution failed: the functional check disagreed with
    /// the sequential reference, or a degraded-grid constraint was
    /// violated (work placed on a dead node, no survivors to remap onto).
    Exec {
        /// What happened.
        detail: String,
    },
    /// The request was cancelled cooperatively — its deadline expired (or
    /// its [`CancelToken`] was cancelled) and the pipeline stopped at the
    /// named checkpoint instead of finishing the work.
    Cancelled {
        /// The checkpoint that observed the cancellation.
        stage: &'static str,
    },
}

impl RescommError {
    /// Process exit code for scripted callers: each variant gets a
    /// distinct nonzero code so a wrapper script can tell a malformed
    /// nest from an analysis failure without parsing stderr. Code 1 is
    /// left to usage/I-O errors.
    pub fn exit_code(&self) -> u8 {
        match self {
            RescommError::Parse(_) => 2,
            RescommError::Lin(_) => 3,
            RescommError::Analysis { .. } => 4,
            RescommError::Exec { .. } => 5,
            RescommError::Cancelled { .. } => 6,
        }
    }
}

impl fmt::Display for RescommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RescommError::Parse(e) => write!(f, "parse error: {e}"),
            RescommError::Lin(e) => write!(f, "linear algebra error: {e}"),
            RescommError::Analysis { stage, detail } => {
                write!(f, "analysis error in {stage}: {detail}")
            }
            RescommError::Exec { detail } => write!(f, "execution error: {detail}"),
            RescommError::Cancelled { stage } => {
                write!(f, "cancelled at {stage}: deadline exceeded")
            }
        }
    }
}

impl std::error::Error for RescommError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RescommError::Parse(e) => Some(e),
            RescommError::Lin(e) => Some(e),
            RescommError::Analysis { .. }
            | RescommError::Exec { .. }
            | RescommError::Cancelled { .. } => None,
        }
    }
}

/// Witness that a [`CancelToken`] fired: carries the checkpoint that
/// observed it. Converted into [`RescommError::Cancelled`] at the API
/// boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled {
    /// The pipeline checkpoint that observed the cancellation.
    pub stage: &'static str,
}

impl From<Cancelled> for RescommError {
    fn from(c: Cancelled) -> Self {
        RescommError::Cancelled { stage: c.stage }
    }
}

#[derive(Debug)]
struct CancelInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// Cooperative cancellation for long-running pipeline work.
///
/// The mapping pipeline has no natural preemption points — its passes
/// are exact integer algebra — so cancellation is *cooperative*: the
/// pipeline calls [`CancelToken::check`] between passes and returns
/// [`Cancelled`] from the first checkpoint past the deadline. A token is
/// either inert ([`CancelToken::none`], zero-cost, never fires), armed
/// with a wall-clock deadline ([`CancelToken::with_deadline`]), or
/// manual ([`CancelToken::manual`] + [`CancelToken::cancel`], e.g. a
/// server draining on shutdown). Clones share state, so one token can be
/// handed to a worker and cancelled from the accept loop.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<CancelInner>>,
}

impl CancelToken {
    /// The inert token: never cancels, adds no overhead.
    pub fn none() -> Self {
        CancelToken { inner: None }
    }

    /// A token that fires once `deadline` from now has passed.
    pub fn with_deadline(deadline: Duration) -> Self {
        CancelToken {
            inner: Some(Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: Instant::now().checked_add(deadline),
            })),
        }
    }

    /// A token that fires only when [`CancelToken::cancel`] is called.
    pub fn manual() -> Self {
        CancelToken {
            inner: Some(Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// Cancel now (all clones observe it). Inert tokens ignore this.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Release);
        }
    }

    /// Has the token fired (explicitly or by deadline)?
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                inner.cancelled.load(Ordering::Acquire)
                    || inner.deadline.is_some_and(|d| Instant::now() >= d)
            }
        }
    }

    /// Checkpoint: return [`Cancelled`] at `stage` if the token fired.
    #[inline]
    pub fn check(&self, stage: &'static str) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled { stage })
        } else {
            Ok(())
        }
    }
}

impl From<ParseError> for RescommError {
    fn from(e: ParseError) -> Self {
        RescommError::Parse(e)
    }
}

impl From<LinError> for RescommError {
    fn from(e: LinError) -> Self {
        RescommError::Lin(e)
    }
}

/// What kind of recoverable event an [`Incident`] records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum IncidentKind {
    /// A guarded fast-path stage failed and the reference oracle took
    /// over (or a self-check replay disagreed).
    #[default]
    Fallback,
    /// A permanent node loss forced a degraded-grid remap of the mapping
    /// (see [`crate::recover::remap_for_survivors`]).
    NodeLoss,
}

/// A recoverable event on a mapping: a guarded fast-path failure the
/// pipeline absorbed by falling back to the reference oracle, or a node
/// loss the recovery path survived by remapping. Incidents ride along on
/// the [`crate::Mapping`] and are counted by the run report, so silent
/// degradation is impossible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incident {
    /// What happened, categorically.
    pub kind: IncidentKind,
    /// The stage that failed (e.g. `"map_nest_fast"`).
    pub stage: &'static str,
    /// The captured panic message, disagreement description, or the list
    /// of lost nodes.
    pub detail: String,
}

impl Incident {
    /// A fallback incident (the default kind).
    pub fn fallback(stage: &'static str, detail: String) -> Self {
        Incident {
            kind: IncidentKind::Fallback,
            stage,
            detail,
        }
    }

    /// A node-loss incident recorded by the recovery path.
    pub fn node_loss(dead: &[usize]) -> Self {
        Incident {
            kind: IncidentKind::NodeLoss,
            stage: "recover",
            detail: format!("remapped around dead node(s) {dead:?}"),
        }
    }
}

impl fmt::Display for Incident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.stage, self.detail)
    }
}

/// Run `f`, converting an internal panic into an [`Incident`] instead of
/// unwinding through the public API. The closure is treated as unwind-safe
/// because every guarded stage either owns its state or mutates only
/// memo caches whose partial contents remain valid (pure keyed entries).
pub fn guarded<T>(stage: &'static str, f: impl FnOnce() -> T) -> Result<T, Incident> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        let detail = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        Incident::fallback(stage, detail)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarded_passes_values_through() {
        assert_eq!(guarded("ok", || 42).unwrap(), 42);
    }

    #[test]
    fn guarded_captures_panic_messages() {
        let inc = guarded("boom", || panic!("exact integer overflow")).unwrap_err();
        assert_eq!(inc.stage, "boom");
        assert!(inc.detail.contains("overflow"));
        let inc = guarded("fmt", || panic!("value was {}", 7)).unwrap_err();
        assert!(inc.detail.contains("value was 7"));
        assert!(format!("{inc}").contains("[fmt]"));
    }

    #[test]
    fn error_conversions_and_display() {
        let lin: RescommError = LinError::Overflow.into();
        assert!(format!("{lin}").contains("overflow"));
        let parse: RescommError = ParseError {
            line: 3,
            col: 8,
            msg: "unknown array x".into(),
        }
        .into();
        assert!(format!("{parse}").contains("line 3, col 8"));
        let analysis = RescommError::Analysis {
            stage: "map_nest",
            detail: "both paths failed".into(),
        };
        assert!(format!("{analysis}").contains("map_nest"));
        use std::error::Error;
        assert!(lin.source().is_some());
        assert!(analysis.source().is_none());
    }

    #[test]
    fn exit_codes_are_distinct_and_nonzero() {
        let errors = [
            RescommError::Parse(ParseError {
                line: 1,
                col: 1,
                msg: "x".into(),
            }),
            RescommError::Lin(LinError::Overflow),
            RescommError::Analysis {
                stage: "s",
                detail: "d".into(),
            },
            RescommError::Exec { detail: "d".into() },
            RescommError::Cancelled { stage: "classify" },
        ];
        let codes: Vec<u8> = errors.iter().map(|e| e.exit_code()).collect();
        let mut unique = codes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), codes.len(), "codes collide: {codes:?}");
        assert!(codes.iter().all(|&c| c > 1), "0/1 are reserved: {codes:?}");
    }

    #[test]
    fn inert_token_never_fires() {
        let t = CancelToken::none();
        t.cancel();
        assert!(!t.is_cancelled());
        assert!(t.check("anywhere").is_ok());
        assert!(!CancelToken::default().is_cancelled());
    }

    #[test]
    fn manual_token_fires_for_all_clones() {
        let t = CancelToken::manual();
        let clone = t.clone();
        assert!(clone.check("before").is_ok());
        t.cancel();
        let c = clone.check("augment").unwrap_err();
        assert_eq!(c.stage, "augment");
        let e: RescommError = c.into();
        assert_eq!(e.exit_code(), 6);
        assert!(format!("{e}").contains("augment"));
    }

    #[test]
    fn deadline_token_fires_after_expiry() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(t.check("early").is_ok());
        let expired = CancelToken::with_deadline(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        assert!(expired.is_cancelled());
        assert_eq!(expired.check("late").unwrap_err().stage, "late");
    }
}
