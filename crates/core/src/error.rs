//! The typed error taxonomy of the public pipeline API.
//!
//! The pipeline must stay well-defined on adversarial instances, not just
//! the paper's kernels: malformed nest sources, accesses whose exact
//! integer arithmetic overflows `i64`, analysis stages that hit an
//! internal inconsistency. Instead of panicking, the public entry points
//! ([`crate::map_nest`], [`rescomm_loopnest::parse_nest`]) surface a
//! [`RescommError`], and the fast path is additionally *guarded*: an
//! internal panic is caught, the mapping transparently falls back to the
//! reference oracle ([`crate::map_nest_reference`]), and the event is
//! recorded as an [`Incident`] in the mapping (surfaced by the run
//! report).

use rescomm_intlin::LinError;
use rescomm_loopnest::ParseError;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Any error the public pipeline API can return.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RescommError {
    /// The nest source was malformed (line/column in the payload).
    Parse(ParseError),
    /// Exact integer linear algebra failed (overflow, singularity, …).
    Lin(LinError),
    /// An analysis stage failed internally — raised only when both the
    /// fast path *and* the reference fallback died on the instance.
    Analysis {
        /// The pipeline stage that failed.
        stage: &'static str,
        /// What happened.
        detail: String,
    },
    /// Distributed execution failed: the functional check disagreed with
    /// the sequential reference, or a degraded-grid constraint was
    /// violated (work placed on a dead node, no survivors to remap onto).
    Exec {
        /// What happened.
        detail: String,
    },
}

impl fmt::Display for RescommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RescommError::Parse(e) => write!(f, "parse error: {e}"),
            RescommError::Lin(e) => write!(f, "linear algebra error: {e}"),
            RescommError::Analysis { stage, detail } => {
                write!(f, "analysis error in {stage}: {detail}")
            }
            RescommError::Exec { detail } => write!(f, "execution error: {detail}"),
        }
    }
}

impl std::error::Error for RescommError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RescommError::Parse(e) => Some(e),
            RescommError::Lin(e) => Some(e),
            RescommError::Analysis { .. } | RescommError::Exec { .. } => None,
        }
    }
}

impl From<ParseError> for RescommError {
    fn from(e: ParseError) -> Self {
        RescommError::Parse(e)
    }
}

impl From<LinError> for RescommError {
    fn from(e: LinError) -> Self {
        RescommError::Lin(e)
    }
}

/// What kind of recoverable event an [`Incident`] records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum IncidentKind {
    /// A guarded fast-path stage failed and the reference oracle took
    /// over (or a self-check replay disagreed).
    #[default]
    Fallback,
    /// A permanent node loss forced a degraded-grid remap of the mapping
    /// (see [`crate::recover::remap_for_survivors`]).
    NodeLoss,
}

/// A recoverable event on a mapping: a guarded fast-path failure the
/// pipeline absorbed by falling back to the reference oracle, or a node
/// loss the recovery path survived by remapping. Incidents ride along on
/// the [`crate::Mapping`] and are counted by the run report, so silent
/// degradation is impossible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incident {
    /// What happened, categorically.
    pub kind: IncidentKind,
    /// The stage that failed (e.g. `"map_nest_fast"`).
    pub stage: &'static str,
    /// The captured panic message, disagreement description, or the list
    /// of lost nodes.
    pub detail: String,
}

impl Incident {
    /// A fallback incident (the default kind).
    pub fn fallback(stage: &'static str, detail: String) -> Self {
        Incident {
            kind: IncidentKind::Fallback,
            stage,
            detail,
        }
    }

    /// A node-loss incident recorded by the recovery path.
    pub fn node_loss(dead: &[usize]) -> Self {
        Incident {
            kind: IncidentKind::NodeLoss,
            stage: "recover",
            detail: format!("remapped around dead node(s) {dead:?}"),
        }
    }
}

impl fmt::Display for Incident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.stage, self.detail)
    }
}

/// Run `f`, converting an internal panic into an [`Incident`] instead of
/// unwinding through the public API. The closure is treated as unwind-safe
/// because every guarded stage either owns its state or mutates only
/// memo caches whose partial contents remain valid (pure keyed entries).
pub fn guarded<T>(stage: &'static str, f: impl FnOnce() -> T) -> Result<T, Incident> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        let detail = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        Incident::fallback(stage, detail)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarded_passes_values_through() {
        assert_eq!(guarded("ok", || 42).unwrap(), 42);
    }

    #[test]
    fn guarded_captures_panic_messages() {
        let inc = guarded("boom", || panic!("exact integer overflow")).unwrap_err();
        assert_eq!(inc.stage, "boom");
        assert!(inc.detail.contains("overflow"));
        let inc = guarded("fmt", || panic!("value was {}", 7)).unwrap_err();
        assert!(inc.detail.contains("value was 7"));
        assert!(format!("{inc}").contains("[fmt]"));
    }

    #[test]
    fn error_conversions_and_display() {
        let lin: RescommError = LinError::Overflow.into();
        assert!(format!("{lin}").contains("overflow"));
        let parse: RescommError = ParseError {
            line: 3,
            col: 8,
            msg: "unknown array x".into(),
        }
        .into();
        assert!(format!("{parse}").contains("line 3, col 8"));
        let analysis = RescommError::Analysis {
            stage: "map_nest",
            detail: "both paths failed".into(),
        };
        assert!(format!("{analysis}").contains("map_nest"));
        use std::error::Error;
        assert!(lin.source().is_some());
        assert!(analysis.source().is_none());
    }
}
