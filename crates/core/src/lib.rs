//! # rescomm — how to optimize residual communications
//!
//! A faithful reimplementation of Dion, Randriamaro & Robert,
//! *"How to optimize residual communications?"* (IPPS 1996 / LIP RR-95-27):
//! mapping affine loop nests onto distributed-memory parallel computers by
//! (1) zeroing out as many communications as possible — access graph,
//! maximum branching, multiple-path/cycle augmentation — and (2) turning
//! the residual communications into cheap ones: macro-communications
//! (broadcast / scatter / gather / reduction, rotated parallel to the grid
//! axes) or decompositions into elementary axis-parallel factors.
//!
//! ## Quickstart
//!
//! ```
//! use rescomm::{map_nest, MappingOptions};
//! use rescomm_loopnest::examples::motivating_example;
//!
//! let (nest, _) = motivating_example(8, 4);
//! let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
//! let report = mapping.report(&nest);
//! println!("{report}");
//! assert_eq!(report.n_local, 5);
//! assert_eq!(report.n_broadcast, 2); // F6 + the "lucky coincidence" F8
//! assert_eq!(report.n_decomposed, 1); // F3 = L(1)·U(1) after rotation
//! ```
//!
//! The crate re-exports the substrates (`rescomm_intlin`, …) under
//! [`substrate`] so downstream users need a single dependency.

pub mod baselines;
pub mod error;
pub mod exec;
pub mod pipeline;
pub mod plan;
pub mod recover;
pub mod report;
pub mod serve;
pub mod snapshot;

pub use error::{guarded, CancelToken, Cancelled, Incident, IncidentKind, RescommError};
pub use exec::{
    run_distributed, run_distributed_on, run_sequential, verify_execution, verify_execution_on,
    ExecStats,
};
pub use pipeline::{
    dataflow_matrix, dataflow_matrix_cached, map_nest, map_nest_batch, map_nest_batch_report,
    map_nest_cancellable, map_nest_reference, map_nest_with, par_map_nests, AnalysisCache,
    CommOutcome, Mapping, MappingOptions,
};
pub use plan::{build_plan, build_plan_closed, CommPhase, CommPlan, PhaseKind, PhasePattern};
pub use recover::{remap_for_survivors, DegradedGrid};
pub use report::MappingReport;
// The schedule-mode knob of `CommPlan::simulate_on_mesh`, re-exported so
// plan consumers don't need a direct `rescomm_machine` dependency.
pub use rescomm_machine::{OverlapOrder, ScheduleMode, SchedulePolicy};

/// Re-exports of the substrate crates.
pub mod substrate {
    pub use rescomm_accessgraph as accessgraph;
    pub use rescomm_alignment as alignment;
    pub use rescomm_decompose as decompose;
    pub use rescomm_distribution as distribution;
    pub use rescomm_intlin as intlin;
    pub use rescomm_loopnest as loopnest;
    pub use rescomm_machine as machine;
    pub use rescomm_macrocomm as macrocomm;
}
