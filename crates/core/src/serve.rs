//! # `rescomm::serve` — the crash-safe mapping service
//!
//! A std-only, long-lived JSON-lines-over-TCP server around the mapping
//! pipeline: clients send affine nest sources plus machine/schedule
//! specs, the server maps them ([`map_nest_cancellable`] /
//! [`crate::map_nest_batch`]) with warm [`AnalysisCache`]s, builds the
//! communication plan, simulates it, and answers with the mapping report
//! counts and the simulated makespan. See `DESIGN.md` §15 for the full
//! wire protocol and state machine; the short version:
//!
//! * **One request per line, one response per line.** Requests are
//!   strict JSON objects (`rescomm_json::parse` — duplicate keys and
//!   trailing garbage are protocol errors with line/col positions).
//!   Ops: `map`, `map_batch`, `ping`, `stats`, `snapshot`, `shutdown`.
//! * **Responses** are `{"id": …, "ok": true, "served": s, "result": …}`
//!   with `served` ∈ `fresh | cache | snapshot`, or `{"id": …, "ok":
//!   false, "error": {"code": …, "exit_code": …, "detail": …}}` — the
//!   server never answers a malformed or hostile request with anything
//!   but a structured error, and never crashes on one (every compute is
//!   wrapped in [`crate::guarded`]).
//! * **Admission control.** At most `workers` map computations run
//!   concurrently; up to `max_queue` more wait on a condvar. Beyond
//!   that the request is rejected with a structured `overload` error
//!   (`retry_after_ms` included), 429-style. Plan-cache hits bypass
//!   admission entirely — under overload the server degrades to serving
//!   cached results before it starts rejecting.
//! * **Bounded plan cache.** The cache holds at most `plan_cache_cap`
//!   entries; past the cap the least-recently-used entry is evicted
//!   (hits refresh recency). Hit/miss/eviction counters surface in the
//!   `stats` op.
//! * **Deadlines.** A request's `deadline_ms` arms a [`CancelToken`];
//!   the pipeline checks it between passes and the first checkpoint
//!   past the deadline aborts the work with a `deadline` error.
//!   Requests that exhaust their deadline while *queued* are abandoned
//!   without ever computing.
//! * **Snapshots.** The plan cache checkpoints to disk (atomic
//!   write-then-rename) every `snapshot_every` completed computations,
//!   on an interval, on `shutdown` (drain first), and on demand. A
//!   restarted server — even after `kill -9` — reloads the snapshot,
//!   re-simulates every restored [`CommPlan`] (fanned out over the
//!   shared work-stealing pool) to verify bit-identical makespans, and
//!   serves the same bytes with `"served": "snapshot"`.

use crate::error::{CancelToken, RescommError};
use crate::pipeline::{map_nest_batch, map_nest_cancellable, AnalysisCache, MappingOptions};
use crate::plan::CommPlan;
use crate::snapshot::{plan_from_json, plan_to_json};
use crate::{build_plan, guarded};
use rescomm_distribution::{Dist1D, Dist2D};
use rescomm_json::{parse, JsonValue};
use rescomm_loopnest::parser::parse_nest;
use rescomm_loopnest::LoopNest;
use rescomm_machine::snapshot::{mesh_from_json, mesh_to_json};
use rescomm_machine::sweep::par_sweep_with;
use rescomm_machine::{CostModel, Mesh2D, ScheduleMode};
use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Magic of the snapshot file format.
const SNAPSHOT_FORMAT: &str = "rescomm-snapshot";
/// Version of the snapshot file format; mismatches are rejected on load.
const SNAPSHOT_VERSION: i64 = 1;

/// Server tuning knobs. [`ServerConfig::default`] is sized for tests and
/// local use; the bin exposes every field as a flag.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Map computations allowed to run concurrently.
    pub workers: usize,
    /// Requests allowed to wait for a worker before overload rejection.
    pub max_queue: usize,
    /// Plan-cache snapshot file; `None` disables durability.
    pub snapshot_path: Option<PathBuf>,
    /// Flush the snapshot after this many completed computations
    /// (0 = only on interval/shutdown/demand).
    pub snapshot_every: u64,
    /// Flush the snapshot at this interval when dirty.
    pub snapshot_interval: Option<Duration>,
    /// Deadline applied to requests that don't carry their own.
    pub default_deadline: Option<Duration>,
    /// Hard cap on one request line; longer lines get a structured
    /// rejection and the connection is closed.
    pub max_line_bytes: usize,
    /// Plan-cache entry cap; the least-recently-used entry is evicted
    /// past it (0 = unbounded). Evictions are counted in `stats`.
    pub plan_cache_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            max_queue: 16,
            snapshot_path: None,
            snapshot_every: 32,
            snapshot_interval: Some(Duration::from_secs(5)),
            default_deadline: None,
            max_line_bytes: 1 << 20,
            plan_cache_cap: 1024,
        }
    }
}

/// One served result, ready to replay byte-identically.
#[derive(Debug, Clone)]
struct PlanEntry {
    /// The rendered `result` object — the bytes every later response
    /// splices verbatim.
    result_json: String,
    /// Serialized [`CommPlan`] (the durable artifact).
    plan_json: String,
    /// Serialized mesh the plan was simulated on.
    mesh_json: String,
    vshape: (usize, usize),
    bytes: u64,
    mode: ScheduleMode,
    makespan: u64,
    /// Entry came from a snapshot restore, not this process's compute.
    from_snapshot: bool,
}

/// The bounded LRU plan cache. Recency is a monotonically increasing
/// clock stamp per entry; `by_age` indexes stamp → key so eviction pops
/// the stalest entry in O(log n) instead of scanning the whole map.
struct PlanCache {
    cap: usize,
    clock: u64,
    map: HashMap<String, (u64, PlanEntry)>,
    by_age: BTreeMap<u64, String>,
}

impl PlanCache {
    fn new(cap: usize) -> PlanCache {
        PlanCache {
            cap,
            clock: 0,
            map: HashMap::new(),
            by_age: BTreeMap::new(),
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    /// Look up an entry and refresh its recency.
    fn touch(&mut self, key: &str) -> Option<&PlanEntry> {
        self.clock += 1;
        let clock = self.clock;
        let (stamp, entry) = self.map.get_mut(key)?;
        self.by_age.remove(stamp);
        self.by_age.insert(clock, key.to_string());
        *stamp = clock;
        Some(entry)
    }

    /// Insert (or replace) an entry, evicting least-recently-used
    /// entries past the cap. Returns how many were evicted.
    fn insert(&mut self, key: String, entry: PlanEntry) -> u64 {
        self.clock += 1;
        if let Some((old_stamp, _)) = self.map.insert(key.clone(), (self.clock, entry)) {
            self.by_age.remove(&old_stamp);
        }
        self.by_age.insert(self.clock, key);
        let mut evicted = 0;
        while self.cap > 0 && self.map.len() > self.cap {
            // Smallest stamp = least recently used.
            let (_, victim) = self
                .by_age
                .pop_first()
                .expect("cache over cap is non-empty");
            self.map.remove(&victim);
            evicted += 1;
        }
        evicted
    }
}

#[derive(Default)]
struct AdmState {
    active: usize,
    waiting: usize,
}

/// Monotonic counters surfaced by the `stats` op.
#[derive(Default)]
struct Stats {
    requests: AtomicU64,
    computed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    snapshot_hits: AtomicU64,
    rejected_overload: AtomicU64,
    deadline_cancelled: AtomicU64,
    protocol_errors: AtomicU64,
    pipeline_errors: AtomicU64,
    panics_absorbed: AtomicU64,
    restored_entries: AtomicU64,
    snapshot_flushes: AtomicU64,
}

struct Shared {
    cfg: ServerConfig,
    /// Pool of warm analysis caches, one checked out per computation.
    caches: Mutex<Vec<AnalysisCache>>,
    plans: Mutex<PlanCache>,
    adm: Mutex<AdmState>,
    adm_cv: Condvar,
    shutdown: AtomicBool,
    /// Completed computations since the last flush.
    dirty: AtomicU64,
    stats: Stats,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panic while holding a lock is already absorbed upstream; the
    // data is still consistent (every critical section is a plain
    // insert/lookup), so poisoning must not take the server down.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// `u64` as JSON without squeezing through f64 (see the snapshot rules).
fn ju(x: u64) -> JsonValue {
    if x <= i64::MAX as u64 {
        JsonValue::Int(x as i64)
    } else {
        JsonValue::Str(x.to_string())
    }
}

fn jobj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Wire code + exit code for a pipeline error.
fn error_code(e: &RescommError) -> &'static str {
    match e {
        RescommError::Parse(_) => "parse",
        RescommError::Lin(_) => "lin",
        RescommError::Analysis { .. } => "analysis",
        RescommError::Exec { .. } => "exec",
        RescommError::Cancelled { .. } => "deadline",
    }
}

fn err_response(id: &JsonValue, code: &str, exit_code: u8, detail: &str) -> String {
    let mut error = vec![
        ("code", JsonValue::Str(code.to_string())),
        ("exit_code", JsonValue::Int(i64::from(exit_code))),
        ("detail", JsonValue::Str(detail.to_string())),
    ];
    if code == "overload" {
        error.push(("retry_after_ms", JsonValue::Int(50)));
    }
    jobj(vec![
        ("id", id.clone()),
        ("ok", JsonValue::Bool(false)),
        ("error", jobj(error)),
    ])
    .render()
}

fn ok_response(id: &JsonValue, served: &str, result_json: &str) -> String {
    // `result_json` is spliced verbatim so cache/snapshot replays are
    // byte-identical to the fresh computation that produced them.
    format!(
        "{{\"id\": {}, \"ok\": true, \"served\": \"{served}\", \"result\": {result_json}}}",
        id.render()
    )
}

/// Everything a `map` request pins down, in canonical form.
struct MapParams {
    src: String,
    mesh: Mesh2D,
    cost_label: String,
    vshape: (usize, usize),
    bytes: u64,
    mode: ScheduleMode,
}

impl MapParams {
    /// Canonical plan-cache key: the exact inputs, rendered as JSON (so
    /// distinct nests/specs can never collide).
    fn key(&self) -> String {
        JsonValue::Array(vec![
            JsonValue::Str(self.src.clone()),
            ju(self.mesh.px as u64),
            ju(self.mesh.py as u64),
            JsonValue::Str(self.cost_label.clone()),
            ju(self.vshape.0 as u64),
            ju(self.vshape.1 as u64),
            ju(self.bytes),
            JsonValue::Str(self.mode.label().to_string()),
        ])
        .render()
    }
}

fn get_pair(v: &JsonValue, key: &str, default: (usize, usize)) -> Result<(usize, usize), String> {
    match v.get(key) {
        None => Ok(default),
        Some(JsonValue::Array(a)) if a.len() == 2 => {
            let x = a[0]
                .as_u64()
                .ok_or_else(|| format!("{key}[0] must be a positive integer"))?;
            let y = a[1]
                .as_u64()
                .ok_or_else(|| format!("{key}[1] must be a positive integer"))?;
            if x == 0 || y == 0 || x > 1 << 20 || y > 1 << 20 {
                return Err(format!("{key} out of range"));
            }
            Ok((x as usize, y as usize))
        }
        Some(_) => Err(format!("{key} must be a [w, h] pair")),
    }
}

fn parse_map_params(req: &JsonValue) -> Result<MapParams, String> {
    let src = req
        .get("nest")
        .and_then(JsonValue::as_str)
        .ok_or("map needs a \"nest\" string (the nest source)")?
        .to_string();
    if let Some(m) = req.get("m") {
        if m.as_i64() != Some(2) {
            return Err("only m=2 (2-D virtual grids) is served".to_string());
        }
    }
    let (px, py) = get_pair(req, "mesh", (8, 4))?;
    let cost_label = match req.get("cost").and_then(JsonValue::as_str) {
        None | Some("paragon") => "paragon",
        Some("cm5") => "cm5",
        Some(other) => return Err(format!("unknown cost model {other:?} (paragon|cm5)")),
    }
    .to_string();
    let cost = if cost_label == "cm5" {
        CostModel::cm5()
    } else {
        CostModel::paragon()
    };
    let vshape = get_pair(req, "vshape", (px, py))?;
    let bytes = match req.get("bytes") {
        None => 1024,
        Some(b) => b.as_u64().ok_or("bytes must be a positive integer")?,
    };
    let mode = match req.get("mode").and_then(JsonValue::as_str) {
        None => ScheduleMode::Phased,
        Some(s) => ScheduleMode::parse(s)
            .ok_or_else(|| format!("unknown mode {s:?} (phased|overlapped|overlapped-longest)"))?,
    };
    Ok(MapParams {
        src,
        mesh: Mesh2D::new(px, py, cost),
        cost_label,
        vshape,
        bytes,
        mode,
    })
}

/// Build the stable `result` object for one mapped nest.
fn render_result(
    nest: &LoopNest,
    mapping: &crate::Mapping,
    plan: &CommPlan,
    p: &MapParams,
    makespan: u64,
) -> String {
    let r = mapping.report(nest);
    jobj(vec![
        ("nest", JsonValue::Str(r.nest.clone())),
        ("accesses", ju(nest.accesses.len() as u64)),
        ("local", ju(r.n_local as u64)),
        ("translation", ju(r.n_translation as u64)),
        ("broadcast", ju(r.n_broadcast as u64)),
        ("scatter", ju(r.n_scatter as u64)),
        ("gather", ju(r.n_gather as u64)),
        ("reduction", ju(r.n_reduction as u64)),
        ("decomposed", ju(r.n_decomposed as u64)),
        ("factors", ju(r.n_factors as u64)),
        ("general", ju(r.n_general as u64)),
        ("incidents", ju(r.n_incidents as u64)),
        ("phases", ju(plan.phases.len() as u64)),
        ("mode", JsonValue::Str(p.mode.label().to_string())),
        ("makespan", ju(makespan)),
    ])
    .render()
}

/// The admission decision for one computation slot.
enum Admit {
    Granted,
    Overload,
    DeadlineExpired,
}

fn admit(shared: &Shared, deadline: Option<Instant>) -> Admit {
    let mut st = lock(&shared.adm);
    if shared.shutdown.load(Ordering::Acquire) {
        return Admit::Overload;
    }
    if st.active < shared.cfg.workers {
        st.active += 1;
        return Admit::Granted;
    }
    if st.waiting >= shared.cfg.max_queue {
        return Admit::Overload;
    }
    st.waiting += 1;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            st.waiting -= 1;
            return Admit::Overload;
        }
        if st.active < shared.cfg.workers {
            st.waiting -= 1;
            st.active += 1;
            return Admit::Granted;
        }
        // Queued past the deadline: abandon without computing — a
        // doomed request must not occupy a worker.
        let wait_for = match deadline {
            Some(d) => {
                let now = Instant::now();
                if now >= d {
                    st.waiting -= 1;
                    return Admit::DeadlineExpired;
                }
                (d - now).min(Duration::from_millis(50))
            }
            None => Duration::from_millis(50),
        };
        let (guard, _) = shared
            .adm_cv
            .wait_timeout(st, wait_for)
            .unwrap_or_else(|e| e.into_inner());
        st = guard;
    }
}

fn release(shared: &Shared) {
    let mut st = lock(&shared.adm);
    st.active = st.active.saturating_sub(1);
    drop(st);
    shared.adm_cv.notify_all();
}

fn checkout_cache(shared: &Shared) -> AnalysisCache {
    lock(&shared.caches).pop().unwrap_or_default()
}

fn checkin_cache(shared: &Shared, cache: AnalysisCache) {
    let mut pool = lock(&shared.caches);
    if pool.len() < shared.cfg.workers.max(1) {
        pool.push(cache);
    }
}

/// Parse + map + plan + simulate one nest under a token. Returns the
/// entry to cache. Runs inside a `guarded` wrapper upstream.
fn compute_entry(
    shared: &Shared,
    p: &MapParams,
    cancel: &CancelToken,
) -> Result<PlanEntry, RescommError> {
    let nest = parse_nest(&p.src)?;
    let mut cache = checkout_cache(shared);
    let mapped = map_nest_cancellable(&nest, &MappingOptions::new(2), &mut cache, cancel);
    checkin_cache(shared, cache);
    let mapping = mapped?;
    cancel.check("build_plan")?;
    let plan = build_plan(&nest, &mapping);
    cancel.check("simulate")?;
    let dist = Dist2D::uniform(Dist1D::Block);
    let makespan = plan.simulate_on_mesh(&p.mesh, dist, p.vshape, p.bytes, p.mode);
    Ok(PlanEntry {
        result_json: render_result(&nest, &mapping, &plan, p, makespan),
        plan_json: plan_to_json(&plan).render(),
        mesh_json: mesh_to_json(&p.mesh).render(),
        vshape: p.vshape,
        bytes: p.bytes,
        mode: p.mode,
        makespan,
        from_snapshot: false,
    })
}

fn handle_map(shared: &Shared, id: &JsonValue, req: &JsonValue) -> String {
    let p = match parse_map_params(req) {
        Ok(p) => p,
        Err(detail) => {
            shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return err_response(id, "protocol", 1, &detail);
        }
    };
    let key = p.key();

    // Cached path first: hits are served even under full overload — the
    // degradation ladder is fresh → cached → rejected. `touch` also
    // refreshes recency so hot plans survive LRU eviction.
    if let Some(entry) = lock(&shared.plans).touch(&key) {
        let (served, ctr) = if entry.from_snapshot {
            ("snapshot", &shared.stats.snapshot_hits)
        } else {
            ("cache", &shared.stats.cache_hits)
        };
        ctr.fetch_add(1, Ordering::Relaxed);
        return ok_response(id, served, &entry.result_json);
    }
    shared.stats.cache_misses.fetch_add(1, Ordering::Relaxed);

    let deadline_ms = req.get("deadline_ms").and_then(JsonValue::as_u64);
    let deadline = deadline_ms
        .map(Duration::from_millis)
        .or(shared.cfg.default_deadline)
        .and_then(|d| Instant::now().checked_add(d));

    match admit(shared, deadline) {
        Admit::Overload => {
            shared
                .stats
                .rejected_overload
                .fetch_add(1, Ordering::Relaxed);
            return err_response(
                id,
                "overload",
                1,
                "admission queue full (or draining); retry later",
            );
        }
        Admit::DeadlineExpired => {
            shared
                .stats
                .deadline_cancelled
                .fetch_add(1, Ordering::Relaxed);
            return err_response(
                id,
                "deadline",
                6,
                "deadline expired while queued for admission",
            );
        }
        Admit::Granted => {}
    }

    let cancel = match deadline {
        Some(d) => CancelToken::with_deadline(d.saturating_duration_since(Instant::now())),
        None => CancelToken::none(),
    };
    // `guarded` so an internal panic becomes a structured `internal`
    // error — the worker slot is released either way.
    let outcome = guarded("serve_map", || compute_entry(shared, &p, &cancel));
    release(shared);

    match outcome {
        Ok(Ok(entry)) => {
            let response = ok_response(id, "fresh", &entry.result_json);
            let evicted = lock(&shared.plans).insert(key, entry);
            shared
                .stats
                .cache_evictions
                .fetch_add(evicted, Ordering::Relaxed);
            shared.stats.computed.fetch_add(1, Ordering::Relaxed);
            let dirty = shared.dirty.fetch_add(1, Ordering::AcqRel) + 1;
            if shared.cfg.snapshot_every > 0 && dirty >= shared.cfg.snapshot_every {
                flush_snapshot(shared);
            }
            response
        }
        Ok(Err(e)) => {
            let ctr = if matches!(e, RescommError::Cancelled { .. }) {
                &shared.stats.deadline_cancelled
            } else {
                &shared.stats.pipeline_errors
            };
            ctr.fetch_add(1, Ordering::Relaxed);
            err_response(id, error_code(&e), e.exit_code(), &e.to_string())
        }
        Err(incident) => {
            shared.stats.panics_absorbed.fetch_add(1, Ordering::Relaxed);
            err_response(
                id,
                "internal",
                1,
                &format!("absorbed internal panic: {}", incident.detail),
            )
        }
    }
}

fn handle_map_batch(shared: &Shared, id: &JsonValue, req: &JsonValue) -> String {
    let sources = match req.get("nests").and_then(JsonValue::as_array) {
        Some(a) if !a.is_empty() => a,
        _ => {
            shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return err_response(id, "protocol", 1, "map_batch needs a non-empty nests array");
        }
    };
    // Reuse the single-map parameter surface: all nests in a batch share
    // one machine/schedule spec.
    let mut proto = match req.get("nests") {
        Some(_) => req.clone(),
        None => unreachable!(),
    };
    if let JsonValue::Object(fields) = &mut proto {
        fields.retain(|(k, _)| k != "nest" && k != "nests");
        fields.push(("nest".to_string(), JsonValue::Str(String::new())));
    }
    let mut params = Vec::with_capacity(sources.len());
    let mut nests = Vec::with_capacity(sources.len());
    for (i, s) in sources.iter().enumerate() {
        let Some(src) = s.as_str() else {
            shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return err_response(id, "protocol", 1, &format!("nests[{i}] must be a string"));
        };
        if let JsonValue::Object(fields) = &mut proto {
            if let Some(slot) = fields.iter_mut().find(|(k, _)| k == "nest") {
                slot.1 = JsonValue::Str(src.to_string());
            }
        }
        let p = match parse_map_params(&proto) {
            Ok(p) => p,
            Err(detail) => {
                shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return err_response(id, "protocol", 1, &detail);
            }
        };
        match parse_nest(src) {
            Ok(n) => nests.push(n),
            Err(e) => {
                let e = RescommError::from(e);
                shared.stats.pipeline_errors.fetch_add(1, Ordering::Relaxed);
                return err_response(
                    id,
                    error_code(&e),
                    e.exit_code(),
                    &format!("nests[{i}]: {e}"),
                );
            }
        }
        params.push(p);
    }

    match admit(shared, None) {
        Admit::Granted => {}
        _ => {
            shared
                .stats
                .rejected_overload
                .fetch_add(1, Ordering::Relaxed);
            return err_response(id, "overload", 1, "admission queue full; retry later");
        }
    }
    let outcome = guarded("serve_map_batch", || {
        let mappings = map_nest_batch(&nests, &MappingOptions::new(2), shared.cfg.workers.max(1))?;
        let mut entries = Vec::with_capacity(nests.len());
        for ((nest, mapping), p) in nests.iter().zip(&mappings).zip(&params) {
            let plan = build_plan(nest, mapping);
            let dist = Dist2D::uniform(Dist1D::Block);
            let makespan = plan.simulate_on_mesh(&p.mesh, dist, p.vshape, p.bytes, p.mode);
            entries.push(PlanEntry {
                result_json: render_result(nest, mapping, &plan, p, makespan),
                plan_json: plan_to_json(&plan).render(),
                mesh_json: mesh_to_json(&p.mesh).render(),
                vshape: p.vshape,
                bytes: p.bytes,
                mode: p.mode,
                makespan,
                from_snapshot: false,
            });
        }
        Ok::<_, RescommError>(entries)
    });
    release(shared);

    match outcome {
        Ok(Ok(entries)) => {
            let results: Vec<&str> = entries.iter().map(|e| e.result_json.as_str()).collect();
            let body = format!("{{\"results\": [{}]}}", results.join(", "));
            let count = results.len() as u64;
            drop(results);
            {
                let mut plans = lock(&shared.plans);
                let mut evicted = 0;
                for (p, entry) in params.iter().zip(entries) {
                    evicted += plans.insert(p.key(), entry);
                }
                shared
                    .stats
                    .cache_evictions
                    .fetch_add(evicted, Ordering::Relaxed);
            }
            shared.stats.computed.fetch_add(count, Ordering::Relaxed);
            let dirty = shared.dirty.fetch_add(count, Ordering::AcqRel) + count;
            if shared.cfg.snapshot_every > 0 && dirty >= shared.cfg.snapshot_every {
                flush_snapshot(shared);
            }
            ok_response(id, "fresh", &body)
        }
        Ok(Err(e)) => {
            shared.stats.pipeline_errors.fetch_add(1, Ordering::Relaxed);
            err_response(id, error_code(&e), e.exit_code(), &e.to_string())
        }
        Err(incident) => {
            shared.stats.panics_absorbed.fetch_add(1, Ordering::Relaxed);
            err_response(
                id,
                "internal",
                1,
                &format!("absorbed internal panic: {}", incident.detail),
            )
        }
    }
}

fn handle_stats(shared: &Shared, id: &JsonValue) -> String {
    let s = &shared.stats;
    let plan_entries = lock(&shared.plans).len();
    let analysis_entries: usize = lock(&shared.caches).iter().map(|c| c.len()).sum();
    let result = jobj(vec![
        ("requests", ju(s.requests.load(Ordering::Relaxed))),
        ("computed", ju(s.computed.load(Ordering::Relaxed))),
        ("cache_hits", ju(s.cache_hits.load(Ordering::Relaxed))),
        ("cache_misses", ju(s.cache_misses.load(Ordering::Relaxed))),
        (
            "cache_evictions",
            ju(s.cache_evictions.load(Ordering::Relaxed)),
        ),
        ("snapshot_hits", ju(s.snapshot_hits.load(Ordering::Relaxed))),
        (
            "rejected_overload",
            ju(s.rejected_overload.load(Ordering::Relaxed)),
        ),
        (
            "deadline_cancelled",
            ju(s.deadline_cancelled.load(Ordering::Relaxed)),
        ),
        (
            "protocol_errors",
            ju(s.protocol_errors.load(Ordering::Relaxed)),
        ),
        (
            "pipeline_errors",
            ju(s.pipeline_errors.load(Ordering::Relaxed)),
        ),
        (
            "panics_absorbed",
            ju(s.panics_absorbed.load(Ordering::Relaxed)),
        ),
        (
            "restored_entries",
            ju(s.restored_entries.load(Ordering::Relaxed)),
        ),
        (
            "snapshot_flushes",
            ju(s.snapshot_flushes.load(Ordering::Relaxed)),
        ),
        ("plan_entries", ju(plan_entries as u64)),
        ("plan_cache_cap", ju(shared.cfg.plan_cache_cap as u64)),
        ("analysis_entries", ju(analysis_entries as u64)),
    ])
    .render();
    ok_response(id, "fresh", &result)
}

/// Route one request line to its handler. Never panics; always returns
/// one response line.
fn handle_line(shared: &Shared, line: &str) -> String {
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    let req = match parse(line) {
        Ok(v) => v,
        Err(e) => {
            shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return err_response(
                &JsonValue::Null,
                "protocol",
                1,
                &format!("bad request: {e}"),
            );
        }
    };
    let id = req.get("id").cloned().unwrap_or(JsonValue::Null);
    if !matches!(req, JsonValue::Object(_)) {
        shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
        return err_response(&id, "protocol", 1, "request must be a JSON object");
    }
    match req.get("op").and_then(JsonValue::as_str) {
        Some("ping") => ok_response(&id, "fresh", "{\"pong\": true}"),
        Some("map") => handle_map(shared, &id, &req),
        Some("map_batch") => handle_map_batch(shared, &id, &req),
        Some("stats") => handle_stats(shared, &id),
        Some("snapshot") => {
            let flushed = flush_snapshot(shared);
            let entries = lock(&shared.plans).len();
            ok_response(
                &id,
                "fresh",
                &jobj(vec![
                    ("flushed", JsonValue::Bool(flushed)),
                    ("entries", ju(entries as u64)),
                ])
                .render(),
            )
        }
        Some("shutdown") => {
            shared.shutdown.store(true, Ordering::Release);
            shared.adm_cv.notify_all();
            ok_response(&id, "fresh", "{\"draining\": true}")
        }
        Some(other) => {
            shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            err_response(&id, "protocol", 1, &format!("unknown op {other:?}"))
        }
        None => {
            shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            err_response(&id, "protocol", 1, "request needs an \"op\" string")
        }
    }
}

// --- snapshot persistence --------------------------------------------------

/// Render the plan cache as one snapshot document.
fn snapshot_doc(plans: &PlanCache) -> String {
    // Deterministic entry order so back-to-back flushes of the same
    // state write the same bytes.
    let mut keys: Vec<&String> = plans.map.keys().collect();
    keys.sort();
    let entries: Vec<JsonValue> = keys
        .iter()
        .filter_map(|k| {
            let (_, e) = &plans.map[*k];
            // Self-produced JSON: reparse for embedding. An entry that
            // fails (cannot happen short of memory corruption) is
            // dropped rather than poisoning the whole snapshot.
            let result = parse(&e.result_json).ok()?;
            let plan = parse(&e.plan_json).ok()?;
            let mesh = parse(&e.mesh_json).ok()?;
            Some(jobj(vec![
                ("key", JsonValue::Str((*k).clone())),
                (
                    "vshape",
                    JsonValue::Array(vec![ju(e.vshape.0 as u64), ju(e.vshape.1 as u64)]),
                ),
                ("bytes", ju(e.bytes)),
                ("mode", JsonValue::Str(e.mode.label().to_string())),
                ("makespan", ju(e.makespan)),
                ("result", result),
                ("plan", plan),
                ("mesh", mesh),
            ]))
        })
        .collect();
    jobj(vec![
        ("format", JsonValue::Str(SNAPSHOT_FORMAT.to_string())),
        ("version", JsonValue::Int(SNAPSHOT_VERSION)),
        ("entries", JsonValue::Array(entries)),
    ])
    .render()
}

/// Write the snapshot atomically (tmp + rename). Returns `true` when a
/// file was written. Failures are reported to stderr, never raised — a
/// full disk must not take the serving path down.
fn flush_snapshot(shared: &Shared) -> bool {
    let Some(path) = &shared.cfg.snapshot_path else {
        return false;
    };
    let doc = snapshot_doc(&lock(&shared.plans));
    let tmp = path.with_extension("tmp");
    let result = std::fs::write(&tmp, &doc).and_then(|()| std::fs::rename(&tmp, path));
    match result {
        Ok(()) => {
            shared.dirty.store(0, Ordering::Release);
            shared
                .stats
                .snapshot_flushes
                .fetch_add(1, Ordering::Relaxed);
            true
        }
        Err(e) => {
            eprintln!(
                "rescomm-serve: snapshot write to {} failed: {e}",
                path.display()
            );
            false
        }
    }
}

/// One parsed-but-unverified snapshot entry awaiting its restore proof.
struct RestoredEntry {
    key: String,
    entry: PlanEntry,
    plan: CommPlan,
    mesh: Mesh2D,
}

/// Load and *verify* a snapshot: every entry's [`CommPlan`] is restored
/// and re-simulated (fanned out over `workers` on the shared pool), and
/// only entries whose recomputed makespan is bit-identical to the
/// recorded one are accepted — a corrupted or stale-format snapshot
/// degrades to a cold start, never to wrong answers. Returns the
/// accepted entries.
fn load_snapshot(path: &PathBuf, workers: usize) -> Result<Vec<(String, PlanEntry)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("parse: {e}"))?;
    if doc.get("format").and_then(JsonValue::as_str) != Some(SNAPSHOT_FORMAT) {
        return Err("not a rescomm snapshot".to_string());
    }
    if doc.get("version").and_then(JsonValue::as_i64) != Some(SNAPSHOT_VERSION) {
        return Err(format!(
            "unsupported snapshot version (want {SNAPSHOT_VERSION})"
        ));
    }
    let entries = doc
        .get("entries")
        .and_then(JsonValue::as_array)
        .ok_or("missing entries")?;
    let mut parsed = Vec::with_capacity(entries.len());
    for (i, e) in entries.iter().enumerate() {
        parsed.push(restore_entry(e).map_err(|err| format!("entries[{i}]: {err}"))?);
    }
    // The restore proof: each deserialized plan must replay to the exact
    // recorded makespan on its deserialized mesh. Entries are
    // independent, so verification rides the work-stealing pool.
    let verdicts = par_sweep_with(
        &parsed,
        workers,
        || (),
        |(), r| {
            let dist = Dist2D::uniform(Dist1D::Block);
            let replayed = guarded("snapshot_verify", || {
                r.plan
                    .simulate_on_mesh(&r.mesh, dist, r.entry.vshape, r.entry.bytes, r.entry.mode)
            });
            replayed == Ok(r.entry.makespan)
        },
    );
    Ok(parsed
        .into_iter()
        .zip(verdicts)
        .filter(|(_, ok)| *ok)
        .map(|(r, _)| (r.key, r.entry))
        .collect())
}

/// Parse one snapshot entry (no verification yet); `Err` = structurally
/// broken snapshot.
fn restore_entry(e: &JsonValue) -> Result<RestoredEntry, String> {
    let key = e
        .get("key")
        .and_then(JsonValue::as_str)
        .ok_or("missing key")?
        .to_string();
    let vs = e
        .get("vshape")
        .and_then(JsonValue::as_array)
        .ok_or("missing vshape")?;
    let (vw, vh) = match (
        vs.first().and_then(JsonValue::as_u64),
        vs.get(1).and_then(JsonValue::as_u64),
    ) {
        (Some(a), Some(b)) if a > 0 && b > 0 => (a as usize, b as usize),
        _ => return Err("bad vshape".to_string()),
    };
    let bytes = e
        .get("bytes")
        .and_then(JsonValue::as_u64)
        .ok_or("missing bytes")?;
    let mode = e
        .get("mode")
        .and_then(JsonValue::as_str)
        .and_then(ScheduleMode::parse)
        .ok_or("bad mode")?;
    let makespan = e
        .get("makespan")
        .and_then(JsonValue::as_u64)
        .ok_or("missing makespan")?;
    let result = e.get("result").ok_or("missing result")?;
    let plan_v = e.get("plan").ok_or("missing plan")?;
    let mesh_v = e.get("mesh").ok_or("missing mesh")?;
    let plan = plan_from_json(plan_v).map_err(|err| err.to_string())?;
    let mesh = mesh_from_json(mesh_v).map_err(|err| err.to_string())?;
    Ok(RestoredEntry {
        key,
        entry: PlanEntry {
            result_json: result.render(),
            plan_json: plan_v.render(),
            mesh_json: mesh_v.render(),
            vshape: (vw, vh),
            bytes,
            mode,
            makespan,
            from_snapshot: true,
        },
        plan,
        mesh,
    })
}

// --- the server ------------------------------------------------------------

/// A bound (not yet running) server. [`Server::bind`] restores the
/// snapshot, [`Server::run`] serves until a `shutdown` op drains it.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

/// Handle to a server running on a background thread (in-process tests
/// and the bench harness).
pub struct ServerHandle {
    /// The bound address (real port even when 0 was requested).
    pub addr: SocketAddr,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Ask the server to drain and stop (as the `shutdown` op does),
    /// then wait for it.
    pub fn stop(self) -> std::io::Result<()> {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.adm_cv.notify_all();
        self.thread.join().unwrap_or(Ok(()))
    }
}

impl Server {
    /// Bind the listener and (when configured) restore the snapshot.
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let mut plans = PlanCache::new(cfg.plan_cache_cap);
        let mut restored = 0u64;
        if let Some(path) = &cfg.snapshot_path {
            if path.exists() {
                match load_snapshot(path, cfg.workers.max(1)) {
                    Ok(p) => {
                        restored = p.len() as u64;
                        for (key, entry) in p {
                            // A snapshot larger than the cap degrades to
                            // the freshest cap entries, silently.
                            plans.insert(key, entry);
                        }
                    }
                    Err(e) => {
                        // Cold start beats refusing to serve.
                        eprintln!(
                            "rescomm-serve: ignoring unusable snapshot {}: {e}",
                            path.display()
                        );
                    }
                }
            }
        }
        let shared = Arc::new(Shared {
            cfg,
            caches: Mutex::new(Vec::new()),
            plans: Mutex::new(plans),
            adm: Mutex::new(AdmState::default()),
            adm_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            dirty: AtomicU64::new(0),
            stats: Stats::default(),
        });
        shared
            .stats
            .restored_entries
            .store(restored, Ordering::Relaxed);
        Ok(Server {
            listener,
            addr,
            shared,
        })
    }

    /// The bound address (the real port when 0 was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Entries restored from the snapshot at bind time.
    pub fn restored_entries(&self) -> u64 {
        self.shared.stats.restored_entries.load(Ordering::Relaxed)
    }

    /// Serve until a `shutdown` op (or [`ServerHandle::stop`]) drains the
    /// server; flushes a final snapshot on the way out.
    pub fn run(self) -> std::io::Result<()> {
        let Server {
            listener, shared, ..
        } = self;
        listener.set_nonblocking(true)?;

        // Interval flusher.
        if shared.cfg.snapshot_path.is_some() {
            if let Some(interval) = shared.cfg.snapshot_interval {
                let flusher = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let mut last = Instant::now();
                    while !flusher.shutdown.load(Ordering::Acquire) {
                        std::thread::sleep(Duration::from_millis(25).min(interval));
                        if last.elapsed() >= interval && flusher.dirty.load(Ordering::Acquire) > 0 {
                            flush_snapshot(&flusher);
                            last = Instant::now();
                        }
                    }
                });
            }
        }

        while !shared.shutdown.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let conn = Arc::clone(&shared);
                    std::thread::spawn(move || serve_connection(&conn, stream));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Drain: wait for in-flight computations, then flush.
        loop {
            let st = lock(&shared.adm);
            if st.active == 0 && st.waiting == 0 {
                break;
            }
            drop(st);
            std::thread::sleep(Duration::from_millis(5));
        }
        flush_snapshot(&shared);
        Ok(())
    }

    /// [`Server::run`] on a background thread.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        let shared = Arc::clone(&self.shared);
        let thread = std::thread::spawn(move || self.run());
        ServerHandle {
            addr,
            thread,
            shared,
        }
    }
}

/// Serve one connection: bounded line reads, one response per line.
fn serve_connection(shared: &Shared, stream: TcpStream) {
    // Request/response lines are tiny; Nagle + delayed ACK would add
    // ~40ms to every round trip on loopback.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let max = shared.cfg.max_line_bytes as u64;
    let mut buf = Vec::new();
    loop {
        buf.clear();
        // `take` bounds a single hostile line; the +1 distinguishes
        // "exactly max" from "over max".
        let n = match (&mut reader).take(max + 1).read_until(b'\n', &mut buf) {
            Ok(0) => return, // client closed
            Ok(n) => n,
            Err(_) => return,
        };
        if n as u64 > max && !buf.ends_with(b"\n") {
            let resp = err_response(
                &JsonValue::Null,
                "protocol",
                1,
                &format!("request line exceeds {max} bytes"),
            );
            let _ = writeln!(writer, "{resp}");
            return; // the rest of the line is garbage: drop the conn
        }
        let line = String::from_utf8_lossy(&buf);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let shutdown_before = shared.shutdown.load(Ordering::Acquire);
        let resp = handle_line(shared, line);
        if writeln!(writer, "{resp}").is_err() || writer.flush().is_err() {
            return;
        }
        // A shutdown op was just handled: stop reading so the drain can
        // finish.
        if !shutdown_before && shared.shutdown.load(Ordering::Acquire) {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    fn client(addr: SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(addr).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        (reader, stream)
    }

    fn roundtrip(reader: &mut BufReader<TcpStream>, w: &mut TcpStream, req: &str) -> JsonValue {
        writeln!(w, "{req}").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        parse(line.trim()).expect("response must be valid JSON")
    }

    const NEST: &str = "nest demo\narray a 2\nstmt S depth 2 domain 0..3 0..3\n  \
                        write a [1 0; 0 1] + [0 0]\n  read a [0 1; 1 0] + [1 0]\n";

    fn map_req(id: u64) -> String {
        let nest = JsonValue::Str(NEST.to_string()).render();
        format!("{{\"id\": {id}, \"op\": \"map\", \"nest\": {nest}, \"mesh\": [4, 4]}}")
    }

    #[test]
    fn serves_map_ping_stats_and_shuts_down() {
        let handle = Server::bind(ServerConfig::default()).unwrap().spawn();
        let (mut r, mut w) = client(handle.addr);
        let pong = roundtrip(&mut r, &mut w, "{\"id\": 1, \"op\": \"ping\"}");
        assert_eq!(pong.get("ok"), Some(&JsonValue::Bool(true)));

        let first = roundtrip(&mut r, &mut w, &map_req(2));
        assert_eq!(first.get("ok"), Some(&JsonValue::Bool(true)), "{first:?}");
        assert_eq!(
            first.get("served").and_then(JsonValue::as_str),
            Some("fresh")
        );
        let result = first.get("result").unwrap();
        assert!(result.get("makespan").is_some());
        assert_eq!(result.get("accesses").and_then(JsonValue::as_u64), Some(2));

        // Second identical request: served from cache, byte-identical
        // result.
        let second = roundtrip(&mut r, &mut w, &map_req(3));
        assert_eq!(
            second.get("served").and_then(JsonValue::as_str),
            Some("cache")
        );
        assert_eq!(second.get("result").unwrap().render(), result.render());

        let stats = roundtrip(&mut r, &mut w, "{\"id\": 4, \"op\": \"stats\"}");
        let sr = stats.get("result").unwrap();
        assert_eq!(sr.get("computed").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(sr.get("cache_hits").and_then(JsonValue::as_u64), Some(1));

        let bye = roundtrip(&mut r, &mut w, "{\"id\": 5, \"op\": \"shutdown\"}");
        assert_eq!(bye.get("ok"), Some(&JsonValue::Bool(true)));
        handle.stop().unwrap();
    }

    #[test]
    fn malformed_requests_get_structured_errors_not_crashes() {
        let handle = Server::bind(ServerConfig::default()).unwrap().spawn();
        let (mut r, mut w) = client(handle.addr);
        for hostile in [
            "not json at all",
            "{\"op\": \"map\"}",              // missing nest
            "{\"op\": \"warp\"}",             // unknown op
            "{\"a\": 1, \"a\": 2}",           // duplicate keys
            "{\"op\": \"map\", \"nest\": 7}", // wrong type
            "{\"op\": \"map\", \"nest\": \"nest x\\nbogus line\"}", // bad nest source
            "{\"op\": \"map\", \"nest\": \"\", \"mesh\": [0, 4]}", // zero mesh
            "[1, 2, 3]",                      // not an object
        ] {
            let resp = roundtrip(&mut r, &mut w, hostile);
            assert_eq!(
                resp.get("ok"),
                Some(&JsonValue::Bool(false)),
                "hostile input {hostile:?} must be rejected: {resp:?}"
            );
            assert!(resp.get("error").and_then(|e| e.get("code")).is_some());
        }
        // The server is still alive and serving.
        let pong = roundtrip(&mut r, &mut w, "{\"id\": 9, \"op\": \"ping\"}");
        assert_eq!(pong.get("ok"), Some(&JsonValue::Bool(true)));
        handle.stop().unwrap();
    }

    #[test]
    fn zero_deadline_is_cancelled_and_reported() {
        let handle = Server::bind(ServerConfig::default()).unwrap().spawn();
        let (mut r, mut w) = client(handle.addr);
        let nest = JsonValue::Str(NEST.to_string()).render();
        let req = format!("{{\"id\": 1, \"op\": \"map\", \"nest\": {nest}, \"deadline_ms\": 0}}");
        let resp = roundtrip(&mut r, &mut w, &req);
        assert_eq!(resp.get("ok"), Some(&JsonValue::Bool(false)), "{resp:?}");
        let err = resp.get("error").unwrap();
        assert_eq!(
            err.get("code").and_then(JsonValue::as_str),
            Some("deadline")
        );
        assert_eq!(err.get("exit_code").and_then(JsonValue::as_i64), Some(6));
        // And the server still answers.
        let pong = roundtrip(&mut r, &mut w, "{\"id\": 2, \"op\": \"ping\"}");
        assert_eq!(pong.get("ok"), Some(&JsonValue::Bool(true)));
        handle.stop().unwrap();
    }

    #[test]
    fn snapshot_round_trip_serves_identical_bytes() {
        let dir = std::env::temp_dir().join(format!("rescomm-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let _ = std::fs::remove_file(&path);

        let cfg = ServerConfig {
            snapshot_path: Some(path.clone()),
            snapshot_every: 1, // flush after every computation
            ..ServerConfig::default()
        };
        let handle = Server::bind(cfg.clone()).unwrap().spawn();
        let (mut r, mut w) = client(handle.addr);
        let fresh = roundtrip(&mut r, &mut w, &map_req(1));
        assert_eq!(
            fresh.get("served").and_then(JsonValue::as_str),
            Some("fresh")
        );
        let fresh_bytes = fresh.get("result").unwrap().render();
        // Hard stop — no drain, no shutdown op. The per-compute flush
        // already persisted the entry.
        drop((r, w));
        handle.stop().unwrap();
        assert!(path.exists(), "snapshot must exist after the first compute");

        let server = Server::bind(cfg).unwrap();
        assert_eq!(server.restored_entries(), 1);
        let handle = server.spawn();
        let (mut r, mut w) = client(handle.addr);
        let replay = roundtrip(&mut r, &mut w, &map_req(2));
        assert_eq!(
            replay.get("served").and_then(JsonValue::as_str),
            Some("snapshot"),
            "{replay:?}"
        );
        assert_eq!(replay.get("result").unwrap().render(), fresh_bytes);
        handle.stop().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn map_batch_maps_all_and_warms_the_plan_cache() {
        let handle = Server::bind(ServerConfig::default()).unwrap().spawn();
        let (mut r, mut w) = client(handle.addr);
        let nest = JsonValue::Str(NEST.to_string()).render();
        let req = format!(
            "{{\"id\": 1, \"op\": \"map_batch\", \"nests\": [{nest}, {nest}], \"mesh\": [4, 4]}}"
        );
        let resp = roundtrip(&mut r, &mut w, &req);
        assert_eq!(resp.get("ok"), Some(&JsonValue::Bool(true)), "{resp:?}");
        let results = resp
            .get("result")
            .and_then(|r| r.get("results"))
            .and_then(JsonValue::as_array)
            .unwrap();
        assert_eq!(results.len(), 2);
        // The batch warmed the plan cache for the single-map path.
        let single = roundtrip(&mut r, &mut w, &map_req(2));
        assert_eq!(
            single.get("served").and_then(JsonValue::as_str),
            Some("cache")
        );
        assert_eq!(single.get("result").unwrap().render(), results[0].render());
        handle.stop().unwrap();
    }

    #[test]
    fn overload_rejections_are_structured() {
        // workers=0 would deadlock admission; use a 1-worker server and
        // verify the queue-full rejection arithmetic directly instead.
        let cfg = ServerConfig {
            workers: 1,
            max_queue: 0,
            ..ServerConfig::default()
        };
        let server = Server::bind(cfg).unwrap();
        let shared = Arc::clone(&server.shared);
        let handle = server.spawn();
        // Occupy the only worker slot from the outside.
        {
            let mut st = lock(&shared.adm);
            st.active = 1;
        }
        let (mut r, mut w) = client(handle.addr);
        let resp = roundtrip(&mut r, &mut w, &map_req(1));
        assert_eq!(resp.get("ok"), Some(&JsonValue::Bool(false)));
        let err = resp.get("error").unwrap();
        assert_eq!(
            err.get("code").and_then(JsonValue::as_str),
            Some("overload")
        );
        assert!(err.get("retry_after_ms").is_some());
        {
            let mut st = lock(&shared.adm);
            st.active = 0;
        }
        shared.adm_cv.notify_all();
        // With the slot free the same request computes fine.
        let resp = roundtrip(&mut r, &mut w, &map_req(2));
        assert_eq!(resp.get("ok"), Some(&JsonValue::Bool(true)), "{resp:?}");
        handle.stop().unwrap();
    }

    #[test]
    fn plan_cache_evicts_lru_and_counts() {
        let cfg = ServerConfig {
            plan_cache_cap: 2,
            ..ServerConfig::default()
        };
        let handle = Server::bind(cfg).unwrap().spawn();
        let (mut r, mut w) = client(handle.addr);
        // `bytes` participates in the cache key, so each value is a
        // distinct plan-cache entry.
        let req = |id: u64, bytes: u64| {
            let nest = JsonValue::Str(NEST.to_string()).render();
            format!(
                "{{\"id\": {id}, \"op\": \"map\", \"nest\": {nest}, \
                 \"mesh\": [4, 4], \"bytes\": {bytes}}}"
            )
        };
        let served = |resp: &JsonValue| {
            resp.get("served")
                .and_then(JsonValue::as_str)
                .unwrap()
                .to_string()
        };
        assert_eq!(served(&roundtrip(&mut r, &mut w, &req(1, 64))), "fresh");
        assert_eq!(served(&roundtrip(&mut r, &mut w, &req(2, 128))), "fresh");
        // Touch 64 so 128 becomes the LRU entry...
        assert_eq!(served(&roundtrip(&mut r, &mut w, &req(3, 64))), "cache");
        // ...and the third insert evicts 128, not 64 (FIFO would evict
        // 64, the oldest insert).
        assert_eq!(served(&roundtrip(&mut r, &mut w, &req(4, 256))), "fresh");
        assert_eq!(served(&roundtrip(&mut r, &mut w, &req(5, 64))), "cache");
        assert_eq!(served(&roundtrip(&mut r, &mut w, &req(6, 128))), "fresh");

        let stats = roundtrip(&mut r, &mut w, "{\"id\": 7, \"op\": \"stats\"}");
        let sr = stats.get("result").unwrap();
        let field = |k: &str| sr.get(k).and_then(JsonValue::as_u64).unwrap();
        assert_eq!(field("cache_hits"), 2);
        assert_eq!(field("cache_misses"), 4);
        // Insert of 256 evicted 128; re-insert of 128 evicted 256 (64
        // stayed resident — its recency was refreshed by the hits).
        assert_eq!(field("cache_evictions"), 2);
        assert_eq!(field("plan_entries"), 2);
        assert_eq!(field("plan_cache_cap"), 2);
        handle.stop().unwrap();
    }

    #[test]
    fn oversized_lines_are_rejected_gracefully() {
        let cfg = ServerConfig {
            max_line_bytes: 256,
            ..ServerConfig::default()
        };
        let handle = Server::bind(cfg).unwrap().spawn();
        let (mut r, mut w) = client(handle.addr);
        let huge = format!("{{\"op\": \"map\", \"nest\": \"{}\"}}", "x".repeat(1024));
        writeln!(w, "{huge}").unwrap();
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        let resp = parse(line.trim()).unwrap();
        assert_eq!(resp.get("ok"), Some(&JsonValue::Bool(false)));
        assert!(resp
            .get("error")
            .and_then(|e| e.get("detail"))
            .and_then(JsonValue::as_str)
            .is_some_and(|d| d.contains("exceeds")));
        handle.stop().unwrap();
    }
}
