//! `rescomm-serve` — the crash-safe mapping service (JSON lines over
//! TCP; see `rescomm::serve` and `DESIGN.md` §15 for the protocol).
//!
//! ```text
//! rescomm-serve [--addr HOST:PORT] [--workers N] [--queue N]
//!               [--snapshot PATH] [--snapshot-every N]
//!               [--snapshot-interval-ms N] [--deadline-ms N]
//!               [--max-line-bytes N] [--cache-cap N]
//! ```
//!
//! * `--addr`          bind address (default `127.0.0.1:7457`; port 0
//!   picks an ephemeral port — the real one is printed)
//! * `--workers N`     concurrent map computations (default 2)
//! * `--queue N`       admission queue depth before overload
//!   rejections (default 16)
//! * `--snapshot PATH` plan-cache snapshot file; enables crash-safe
//!   restarts (restored entries are re-verified by re-simulation)
//! * `--snapshot-every N`        flush after every N computations
//!   (default 32; 0 = interval/shutdown only)
//! * `--snapshot-interval-ms N`  flush interval when dirty
//!   (default 5000; 0 = no interval flushes)
//! * `--deadline-ms N` default per-request deadline for requests that
//!   don't set their own (default: none)
//! * `--max-line-bytes N`        request line cap (default 1 MiB)
//! * `--cache-cap N`   plan-cache entry cap; LRU eviction past it
//!   (default 1024; 0 = unbounded)
//!
//! On startup the server prints exactly one line
//! `listening on HOST:PORT` to stdout, then serves until a `shutdown`
//! op drains it (flushing a final snapshot).

use rescomm::serve::{Server, ServerConfig};
use std::process::ExitCode;
use std::time::Duration;

fn parse_args() -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:7457".to_string(),
        ..ServerConfig::default()
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut num = |what: &str| -> Result<u64, String> {
            it.next()
                .and_then(|v| v.parse().ok())
                .ok_or(format!("{what} needs a non-negative integer"))
        };
        match a.as_str() {
            "--addr" => {
                cfg.addr = it.next().ok_or("--addr needs HOST:PORT")?;
            }
            "--workers" => {
                cfg.workers = num("--workers")?.max(1) as usize;
            }
            "--queue" => {
                cfg.max_queue = num("--queue")? as usize;
            }
            "--snapshot" => {
                cfg.snapshot_path = Some(it.next().ok_or("--snapshot needs a path")?.into());
            }
            "--snapshot-every" => {
                cfg.snapshot_every = num("--snapshot-every")?;
            }
            "--snapshot-interval-ms" => {
                let ms = num("--snapshot-interval-ms")?;
                cfg.snapshot_interval = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--deadline-ms" => {
                cfg.default_deadline = Some(Duration::from_millis(num("--deadline-ms")?));
            }
            "--max-line-bytes" => {
                cfg.max_line_bytes = num("--max-line-bytes")?.max(64) as usize;
            }
            "--cache-cap" => {
                cfg.plan_cache_cap = num("--cache-cap")? as usize;
            }
            "--help" | "-h" => {
                return Err("usage: rescomm-serve [--addr HOST:PORT] [--workers N] \
                            [--queue N] [--snapshot PATH] [--snapshot-every N] \
                            [--snapshot-interval-ms N] [--deadline-ms N] \
                            [--max-line-bytes N] [--cache-cap N]"
                    .to_string())
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let cfg = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rescomm-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if server.restored_entries() > 0 {
        eprintln!(
            "rescomm-serve: restored {} plan-cache entries from snapshot",
            server.restored_entries()
        );
    }
    // The one line tooling (tests, bench harness) keys on.
    println!("listening on {}", server.local_addr());
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rescomm-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
