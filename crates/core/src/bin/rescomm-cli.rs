//! `rescomm-cli` — map an affine loop nest (textual format) and report
//! what happens to every communication.
//!
//! ```text
//! rescomm-cli <nest-file> [--m N] [--no-macro] [--no-decompose]
//!             [--unit-weights] [--dot] [--compare]
//! ```
//!
//! * `--m N`           target virtual-grid dimension (default 2)
//! * `--no-macro`      disable step 2(a) (macro-communication detection)
//! * `--no-decompose`  disable step 2(b) (decomposition)
//! * `--unit-weights`  unit edge weights instead of rank weights
//! * `--dot`           print the access graph (with the branching in
//!   bold) as Graphviz DOT instead of the report
//! * `--compare`       also run the Platonoff and step-1-only baselines
//!
//! The nest format is documented in `rescomm_loopnest::parser`.

use rescomm::baselines::{feautrier_map, platonoff_map};
use rescomm::substrate::accessgraph::{maximum_branching, to_dot, AccessGraph};
use rescomm::{map_nest, MappingOptions};
use rescomm_loopnest::parser::parse_nest;
use std::process::ExitCode;

struct Args {
    file: String,
    m: usize,
    no_macro: bool,
    no_decompose: bool,
    unit_weights: bool,
    dot: bool,
    compare: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        file: String::new(),
        m: 2,
        no_macro: false,
        no_decompose: false,
        unit_weights: false,
        dot: false,
        compare: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--m" => {
                args.m = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--m needs an integer")?;
            }
            "--no-macro" => args.no_macro = true,
            "--no-decompose" => args.no_decompose = true,
            "--unit-weights" => args.unit_weights = true,
            "--dot" => args.dot = true,
            "--compare" => args.compare = true,
            "--help" | "-h" => {
                return Err("usage: rescomm-cli <nest-file> [--m N] [--no-macro] \
                            [--no-decompose] [--unit-weights] [--dot] [--compare]"
                    .to_string())
            }
            f if !f.starts_with('-') && args.file.is_empty() => args.file = f.to_string(),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.file.is_empty() {
        return Err("missing nest file (try --help)".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let src = match std::fs::read_to_string(&args.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    let nest = match parse_nest(&src) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{}: parse error: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };

    if args.dot {
        let g = AccessGraph::build_weighted(&nest, args.m, !args.unit_weights);
        let b = maximum_branching(&g);
        print!("{}", to_dot(&g, &nest, Some(&b)));
        return ExitCode::SUCCESS;
    }

    let mut opts = MappingOptions::new(args.m);
    opts.enable_macro = !args.no_macro;
    opts.enable_decompose = !args.no_decompose;
    opts.weight_by_rank = !args.unit_weights;

    println!("{nest}");
    let mapping = map_nest(&nest, &opts);
    println!("{}", mapping.report(&nest));

    if args.compare {
        println!("--- baseline: step 1 only (greedy zeroing) ---");
        println!("{}", feautrier_map(&nest, args.m).report(&nest));
        println!("--- baseline: Platonoff (macro-first) ---");
        println!("{}", platonoff_map(&nest, args.m).report(&nest));
    }
    ExitCode::SUCCESS
}
