//! `rescomm-cli` — map an affine loop nest (textual format) and report
//! what happens to every communication.
//!
//! ```text
//! rescomm-cli <nest-file> [--m N] [--no-macro] [--no-decompose]
//!             [--unit-weights] [--dot] [--compare] [--self-check]
//!             [--recover N,N,...] [--grid WxH] [--replications N]
//!             [--drop P] [--closed-plan] [--vgrid WxH]
//!             [--schedule phased|overlapped|overlapped-longest|adaptive[:T]]
//! ```
//!
//! * `--m N`           target virtual-grid dimension (default 2)
//! * `--no-macro`      disable step 2(a) (macro-communication detection)
//! * `--no-decompose`  disable step 2(b) (decomposition)
//! * `--unit-weights`  unit edge weights instead of rank weights
//! * `--dot`           print the access graph (with the branching in
//!   bold) as Graphviz DOT instead of the report
//! * `--compare`       also run the Platonoff and step-1-only baselines
//! * `--self-check`    replay through the reference oracle and flag any
//!   disagreement as an incident in the report
//! * `--recover N,...` treat the listed physical nodes as permanently
//!   dead: remap the mapping onto the survivors and verify the degraded
//!   execution end-to-end
//! * `--grid WxH`      physical grid shape for `--recover` and
//!   `--replications` (default 4x4)
//! * `--replications N` Monte Carlo: build the communication plan,
//!   compile it into the batch fault engine, replay it under a lossy
//!   transport with `N` independent seeds and print makespan/delivery
//!   statistics (replication 0 is the classic single-seed run)
//! * `--drop P`        per-message drop probability for
//!   `--replications` (default 0.1)
//! * `--closed-plan`   build the communication plan in closed (affine)
//!   form, verify it, and fold/simulate it on the virtual grid given by
//!   `--vgrid` — construction and fold cost stay flat in the grid area,
//!   so grids like 4096x4096 are practical
//! * `--vgrid WxH`     virtual grid shape for `--closed-plan`
//!   (default 1024x1024)
//! * `--schedule M`    schedule policy for the `--closed-plan` and
//!   `--replications` simulations: `phased` (strict barriers between
//!   phases, the default), `overlapped` (a phase-k+1 message starts as
//!   soon as its source node has all phase-k inflows; never slower than
//!   phased on healthy runs), `overlapped-longest` (overlapped with a
//!   longest-route-first priority heuristic), or `adaptive[:T]` (run
//!   overlapped, fall back to phased barriers for the remaining phases
//!   once fault inflation over the healthy overlapped baseline exceeds
//!   `T`, default 1.5). Overlapped modes also print the phased makespan
//!   and the reduction achieved. The policy composes with `--drop`,
//!   `--recover` and `--replications`: the Monte Carlo healthy baseline
//!   and every faulty replication are scheduled under the same policy,
//!   and with `--recover` the closed plan is additionally folded onto
//!   the survivor set and re-simulated
//!
//! Malformed nests and arithmetic overflow exit with a diagnostic
//! (line/column for parse errors) instead of a panic. The exit code
//! tells scripts *which* stage failed: `0` success, `1` usage or I/O,
//! then one distinct code per [`rescomm::RescommError`] variant —
//! `2` parse, `3` linear algebra, `4` analysis, `5` execution,
//! `6` cancelled (see `RescommError::exit_code`). Incidents absorbed
//! during mapping (oracle fallbacks, failed self-checks, node-loss
//! remaps) are printed to stderr, one `incident:` line each.
//!
//! The nest format is documented in `rescomm_loopnest::parser`.

use rescomm::baselines::{feautrier_map, platonoff_map};
use rescomm::substrate::accessgraph::{maximum_branching, to_dot, AccessGraph};
use rescomm::{
    map_nest, remap_for_survivors, verify_execution_on, DegradedGrid, Mapping, MappingOptions,
    RescommError,
};
use rescomm_loopnest::parser::parse_nest;
use std::process::ExitCode;

/// Exit with the stage-specific code for a pipeline error.
fn fail(file: &str, e: RescommError) -> ExitCode {
    eprintln!("{file}: {e}");
    ExitCode::from(e.exit_code())
}

/// Surface every absorbed incident on stderr (the report only counts
/// them; scripts watching stderr get the details).
fn print_incidents(mapping: &Mapping) {
    for inc in &mapping.incidents {
        eprintln!("incident: {inc}");
    }
}

struct Args {
    file: String,
    m: usize,
    no_macro: bool,
    no_decompose: bool,
    unit_weights: bool,
    dot: bool,
    compare: bool,
    self_check: bool,
    recover: Vec<usize>,
    grid: (usize, usize),
    replications: usize,
    drop_prob: f64,
    closed_plan: bool,
    vgrid: (usize, usize),
    schedule: rescomm::SchedulePolicy,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        file: String::new(),
        m: 2,
        no_macro: false,
        no_decompose: false,
        unit_weights: false,
        dot: false,
        compare: false,
        self_check: false,
        recover: Vec::new(),
        grid: (4, 4),
        replications: 0,
        drop_prob: 0.1,
        closed_plan: false,
        vgrid: (1024, 1024),
        schedule: rescomm::SchedulePolicy::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--m" => {
                args.m = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--m needs an integer")?;
            }
            "--no-macro" => args.no_macro = true,
            "--no-decompose" => args.no_decompose = true,
            "--unit-weights" => args.unit_weights = true,
            "--dot" => args.dot = true,
            "--compare" => args.compare = true,
            "--self-check" => args.self_check = true,
            "--recover" => {
                let list = it.next().ok_or("--recover needs a node list")?;
                for part in list.split(',') {
                    args.recover.push(
                        part.trim()
                            .parse()
                            .map_err(|_| format!("--recover: bad node id {part:?}"))?,
                    );
                }
            }
            "--grid" => {
                let spec = it.next().ok_or("--grid needs WxH")?;
                let (w, h) = spec.split_once('x').ok_or("--grid needs WxH, e.g. 4x4")?;
                args.grid = (
                    w.parse().map_err(|_| format!("--grid: bad width {w:?}"))?,
                    h.parse().map_err(|_| format!("--grid: bad height {h:?}"))?,
                );
            }
            "--replications" => {
                args.replications = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--replications needs an integer")?;
            }
            "--closed-plan" => args.closed_plan = true,
            "--schedule" => {
                let spec = it.next().ok_or("--schedule needs a mode")?;
                args.schedule = rescomm::SchedulePolicy::parse(&spec).ok_or(format!(
                    "--schedule: unknown policy {spec:?} \
                     (expected phased, overlapped, overlapped-longest or \
                     adaptive[:threshold], threshold >= 1)"
                ))?;
            }
            "--vgrid" => {
                let spec = it.next().ok_or("--vgrid needs WxH")?;
                let (w, h) = spec
                    .split_once('x')
                    .ok_or("--vgrid needs WxH, e.g. 4096x4096")?;
                args.vgrid = (
                    w.parse().map_err(|_| format!("--vgrid: bad width {w:?}"))?,
                    h.parse()
                        .map_err(|_| format!("--vgrid: bad height {h:?}"))?,
                );
            }
            "--drop" => {
                args.drop_prob = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|p| (0.0..=1.0).contains(p))
                    .ok_or("--drop needs a probability in [0, 1]")?;
            }
            "--help" | "-h" => {
                return Err("usage: rescomm-cli <nest-file> [--m N] [--no-macro] \
                            [--no-decompose] [--unit-weights] [--dot] [--compare] \
                            [--self-check] [--recover N,N,...] [--grid WxH] \
                            [--replications N] [--drop P] [--closed-plan] \
                            [--vgrid WxH] \
                            [--schedule phased|overlapped|overlapped-longest|adaptive[:T]]"
                    .to_string())
            }
            f if !f.starts_with('-') && args.file.is_empty() => args.file = f.to_string(),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.file.is_empty() {
        return Err("missing nest file (try --help)".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let src = match std::fs::read_to_string(&args.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    let nest = match parse_nest(&src) {
        Ok(n) => n,
        Err(e) => return fail(&args.file, RescommError::from(e)),
    };

    if args.dot {
        let g = AccessGraph::build_weighted(&nest, args.m, !args.unit_weights);
        let b = maximum_branching(&g);
        print!("{}", to_dot(&g, &nest, Some(&b)));
        return ExitCode::SUCCESS;
    }

    let mut opts = MappingOptions::new(args.m);
    opts.enable_macro = !args.no_macro;
    opts.enable_decompose = !args.no_decompose;
    opts.weight_by_rank = !args.unit_weights;
    opts.self_check = args.self_check;

    println!("{nest}");
    let mapping = match map_nest(&nest, &opts) {
        Ok(m) => m,
        Err(e) => return fail(&args.file, e),
    };
    print_incidents(&mapping);
    println!("{}", mapping.report(&nest));

    if !args.recover.is_empty() {
        let (w, h) = args.grid;
        println!(
            "--- recovery: remapping around dead node(s) {:?} on a {w}x{h} grid ---",
            args.recover
        );
        let remapped = match remap_for_survivors(&nest, &mapping, &opts, &args.recover, args.grid) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("{}: recovery failed", args.file);
                return fail(&args.file, e);
            }
        };
        print_incidents(&remapped);
        println!("{}", remapped.report(&nest));
        let grid = match DegradedGrid::new(w, h, &args.recover) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("{}: {e}", args.file);
                return ExitCode::FAILURE;
            }
        };
        match verify_execution_on(&nest, &remapped, Some(&grid)) {
            Ok(stats) => println!(
                "degraded run verified: {} instances on {} survivors, \
                 {} displaced, read locality {:.3}",
                stats.instances,
                grid.survivors(),
                stats.remapped_placements,
                stats.read_locality()
            ),
            Err(e) => {
                eprintln!("{}: degraded verification failed", args.file);
                return fail(&args.file, e);
            }
        }
    }

    if args.closed_plan {
        use rescomm::substrate::distribution::{Dist1D, Dist2D};
        use rescomm::substrate::machine::{CostModel, Mesh2D};
        use rescomm::{build_plan_closed, PhasePattern};
        let (w, h) = args.grid;
        let (vw, vh) = args.vgrid;
        let plan = build_plan_closed(&nest, &mapping);
        println!(
            "--- closed plan: {} phases ({} affine) on a {w}x{h} mesh, \
             virtual grid {vw}x{vh} ---",
            plan.phases.len(),
            plan.affine_phase_count()
        );
        for ph in &plan.phases {
            match &ph.pattern {
                PhasePattern::Affine { t, shift } => println!(
                    "  {:?} {:?}: affine T=[[{},{}],[{},{}]] shift=({},{})",
                    ph.access,
                    ph.kind,
                    t[(0, 0)],
                    t[(0, 1)],
                    t[(1, 0)],
                    t[(1, 1)],
                    shift.0,
                    shift.1
                ),
                PhasePattern::Explicit(v) => println!(
                    "  {:?} {:?}: explicit, {} endpoint pairs",
                    ph.access,
                    ph.kind,
                    v.len()
                ),
            }
        }
        if let Err(e) = plan.verify_availability(&nest, &mapping) {
            eprintln!("{}: closed plan availability failed: {e}", args.file);
            return ExitCode::FAILURE;
        }
        let mesh = Mesh2D::new(w, h, CostModel::paragon());
        let dist = Dist2D::uniform(Dist1D::Cyclic);
        let mode = args.schedule.healthy_mode();
        let t = plan.simulate_on_mesh(&mesh, dist, (vw, vh), 64, mode);
        println!(
            "closed-plan makespan at {vw}x{vh} ({}): {t} ns",
            mode.label()
        );
        if mode != rescomm::ScheduleMode::Phased {
            let phased =
                plan.simulate_on_mesh(&mesh, dist, (vw, vh), 64, rescomm::ScheduleMode::Phased);
            let pct = if phased > 0 {
                100.0 * (phased.saturating_sub(t)) as f64 / phased as f64
            } else {
                0.0
            };
            println!("phased makespan:  {phased} ns (overlap saves {pct:.1}%)");
        }
        if !args.recover.is_empty() {
            // Compose with --recover: fold the lowered phases onto the
            // survivor set (the compiler-side twin of the simulator's
            // post-death folding) and re-simulate under the same mode.
            use rescomm::substrate::machine::PhaseSim;
            match DegradedGrid::new(w, h, &args.recover) {
                Ok(grid) => {
                    let (folded, redirected) =
                        grid.fold_phases(&plan.phases_on_mesh(&mesh, dist, (vw, vh), 64));
                    let td = PhaseSim::new(mesh.clone()).simulate_phases_mode(&folded, mode);
                    println!(
                        "degraded makespan on {} survivors ({}): {td} ns \
                         ({redirected} endpoints folded)",
                        grid.survivors(),
                        mode.label()
                    );
                }
                Err(e) => {
                    eprintln!("{}: {e}", args.file);
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    if args.replications > 0 {
        use rescomm::build_plan;
        use rescomm::substrate::distribution::{Dist1D, Dist2D};
        use rescomm::substrate::machine::{CostModel, FaultPlan, Mesh2D, OnlineStats};
        let (w, h) = args.grid;
        let mesh = Mesh2D::new(w, h, CostModel::paragon());
        let dist = Dist2D::uniform(Dist1D::Cyclic);
        let plan = build_plan(&nest, &mapping);
        // The healthy reference for inflation runs under the same
        // policy's fault-free mode as the replications themselves.
        let healthy =
            plan.simulate_on_mesh(&mesh, dist, (24, 24), 64, args.schedule.healthy_mode());
        let fplan = FaultPlan {
            seed: 42,
            drop_prob: args.drop_prob,
            ..FaultPlan::none()
        };
        let reports = plan.simulate_on_mesh_faulty_replicated(
            &mesh,
            dist,
            (24, 24),
            64,
            &fplan,
            args.replications,
            args.schedule,
        );
        let mut makespan = OnlineStats::default();
        let mut delivered = OnlineStats::default();
        let mut total_msgs = 0u64;
        let mut downgrades = 0u64;
        for r in &reports {
            makespan.push(r.makespan as f64);
            delivered.push(r.delivered as f64);
            total_msgs = r.messages as u64;
            downgrades += r.downgrades;
        }
        println!(
            "--- monte carlo: {} replications on a {w}x{h} mesh, drop {:.2}, schedule {} ---",
            args.replications,
            args.drop_prob,
            args.schedule.label()
        );
        println!("healthy makespan: {healthy} ns");
        println!(
            "faulty makespan:  mean {:.0} ns, std {:.0}, min {}, max {} (inflation {:.3}x)",
            makespan.mean(),
            makespan.std_dev(),
            makespan.min() as u64,
            makespan.max() as u64,
            if healthy > 0 {
                makespan.mean() / healthy as f64
            } else {
                1.0
            }
        );
        println!(
            "delivered:        mean {:.1} of {} messages (min {}, max {})",
            delivered.mean(),
            total_msgs,
            delivered.min() as u64,
            delivered.max() as u64
        );
        if let rescomm::SchedulePolicy::Adaptive { .. } = args.schedule {
            println!(
                "adaptive:         {downgrades} downgrade(s) to phased barriers \
                 across {} replications",
                args.replications
            );
        }
    }

    if args.compare {
        println!("--- baseline: step 1 only (greedy zeroing) ---");
        match feautrier_map(&nest, args.m) {
            Ok(m) => println!("{}", m.report(&nest)),
            Err(e) => eprintln!("{}: {e}", args.file),
        }
        println!("--- baseline: Platonoff (macro-first) ---");
        println!("{}", platonoff_map(&nest, args.m).report(&nest));
    }
    ExitCode::SUCCESS
}
