//! Human-readable mapping reports.

use crate::pipeline::{CommOutcome, Mapping};
use rescomm_loopnest::LoopNest;
use rescomm_macrocomm::MacroKind;
use std::fmt;

/// Aggregated counts plus per-access lines for one mapping.
#[derive(Debug, Clone)]
pub struct MappingReport {
    /// Nest name.
    pub nest: String,
    /// Fully local accesses.
    pub n_local: usize,
    /// Linear-local accesses with a constant offset (translations).
    pub n_translation: usize,
    /// Broadcasts (partial or total).
    pub n_broadcast: usize,
    /// Scatters.
    pub n_scatter: usize,
    /// Gathers.
    pub n_gather: usize,
    /// Reductions.
    pub n_reduction: usize,
    /// Communications decomposed into elementary factors.
    pub n_decomposed: usize,
    /// Total elementary factors across all decompositions.
    pub n_factors: usize,
    /// Residual general communications.
    pub n_general: usize,
    /// Recoverable events on the mapping (see [`crate::error::Incident`]):
    /// guarded fast-path failures plus node-loss remaps; 0 on a clean run.
    pub n_incidents: usize,
    /// How many of the incidents are node-loss remaps.
    pub n_node_loss: usize,
    /// One line per access: `(array, statement, outcome)`.
    pub lines: Vec<(String, String, String)>,
    /// Human-readable incident descriptions, parallel to `n_incidents`.
    pub incident_lines: Vec<String>,
}

impl MappingReport {
    /// Build from a mapping.
    pub fn from_mapping(mapping: &Mapping, nest: &LoopNest) -> Self {
        let mut r = MappingReport {
            nest: nest.name.clone(),
            n_local: 0,
            n_translation: 0,
            n_broadcast: 0,
            n_scatter: 0,
            n_gather: 0,
            n_reduction: 0,
            n_decomposed: 0,
            n_factors: 0,
            n_general: 0,
            n_incidents: mapping.incidents.len(),
            n_node_loss: mapping
                .incidents
                .iter()
                .filter(|i| i.kind == crate::error::IncidentKind::NodeLoss)
                .count(),
            lines: Vec::new(),
            incident_lines: mapping.incidents.iter().map(|i| i.to_string()).collect(),
        };
        for (acc, out) in nest.accesses.iter().zip(&mapping.outcomes) {
            let desc = match out {
                CommOutcome::Local => {
                    r.n_local += 1;
                    "local".to_string()
                }
                CommOutcome::Translation => {
                    r.n_translation += 1;
                    "translation".to_string()
                }
                CommOutcome::Macro {
                    kind,
                    total,
                    rotated,
                } => {
                    let k = match kind {
                        MacroKind::Broadcast => {
                            r.n_broadcast += 1;
                            "broadcast"
                        }
                        MacroKind::Scatter => {
                            r.n_scatter += 1;
                            "scatter"
                        }
                        MacroKind::Gather => {
                            r.n_gather += 1;
                            "gather"
                        }
                        MacroKind::Reduction => {
                            r.n_reduction += 1;
                            "reduction"
                        }
                    };
                    format!(
                        "{}{}{}",
                        if *total { "total " } else { "partial " },
                        k,
                        if *rotated { " (rotated onto axis)" } else { "" }
                    )
                }
                CommOutcome::Decomposed { factors, rotated } => {
                    r.n_decomposed += 1;
                    r.n_factors += factors.len();
                    let fs: Vec<String> = factors.iter().map(|f| f.to_string()).collect();
                    format!(
                        "decomposed: {}{}",
                        fs.join("·"),
                        if *rotated {
                            " (after similarity rotation)"
                        } else {
                            ""
                        }
                    )
                }
                CommOutcome::DecomposedGeneral { n_factors } => {
                    r.n_decomposed += 1;
                    r.n_factors += n_factors;
                    format!("decomposed into {n_factors} unirow factors")
                }
                CommOutcome::General => {
                    r.n_general += 1;
                    "general affine communication".to_string()
                }
            };
            r.lines.push((
                nest.array(acc.array).name.clone(),
                nest.statement(acc.stmt).name.clone(),
                desc,
            ));
        }
        r
    }

    /// Total macro-communications of any kind.
    pub fn n_macro(&self) -> usize {
        self.n_broadcast + self.n_scatter + self.n_gather + self.n_reduction
    }

    /// Total accesses.
    pub fn n_accesses(&self) -> usize {
        self.lines.len()
    }
}

impl fmt::Display for MappingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "mapping report for `{}`:", self.nest)?;
        writeln!(
            f,
            "  {} local, {} translation, {} macro (bc {}, sc {}, ga {}, red {}), \
             {} decomposed ({} factors), {} general",
            self.n_local,
            self.n_translation,
            self.n_macro(),
            self.n_broadcast,
            self.n_scatter,
            self.n_gather,
            self.n_reduction,
            self.n_decomposed,
            self.n_factors,
            self.n_general
        )?;
        for (arr, stmt, desc) in &self.lines {
            writeln!(f, "    {arr} in {stmt}: {desc}")?;
        }
        if self.n_incidents > 0 {
            if self.n_node_loss > 0 {
                writeln!(f, "  {} node-loss remap(s) survived:", self.n_node_loss)?;
            }
            if self.n_incidents > self.n_node_loss {
                writeln!(
                    f,
                    "  {} fast-path incident(s), recovered via the reference oracle:",
                    self.n_incidents - self.n_node_loss
                )?;
            }
            for line in &self.incident_lines {
                writeln!(f, "  ! {line}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::pipeline::{map_nest, MappingOptions};
    use rescomm_loopnest::examples;

    #[test]
    fn report_counts_consistent() {
        let (nest, _) = examples::motivating_example(8, 4);
        let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        let r = mapping.report(&nest);
        assert_eq!(r.n_accesses(), 8);
        assert_eq!(
            r.n_local + r.n_translation + r.n_macro() + r.n_decomposed + r.n_general,
            8
        );
        assert_eq!(r.n_local, 5);
        assert_eq!(r.n_broadcast, 2);
        assert_eq!(r.n_decomposed, 1);
        assert_eq!(r.n_factors, 2);
        assert_eq!(r.n_general, 0);
    }

    #[test]
    fn incidents_surface_in_the_report() {
        let (nest, _) = examples::motivating_example(4, 2);
        let mut mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        assert_eq!(mapping.report(&nest).n_incidents, 0);
        mapping.incidents.push(crate::error::Incident::fallback(
            "map_nest_fast",
            "synthetic overflow for the report test".into(),
        ));
        let r = mapping.report(&nest);
        assert_eq!(r.n_incidents, 1);
        let text = format!("{r}");
        assert!(text.contains("1 fast-path incident"));
        assert!(text.contains("[map_nest_fast]"));
    }

    #[test]
    fn display_mentions_every_access() {
        let (nest, _) = examples::motivating_example(4, 2);
        let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        let text = format!("{}", mapping.report(&nest));
        assert!(text.contains("broadcast"));
        assert!(text.contains("decomposed"));
        assert!(text.contains("local"));
        assert_eq!(text.matches("\n    ").count(), 8);
    }
}
