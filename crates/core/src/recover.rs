//! Degraded-grid recovery: remap a mapped nest around permanently dead
//! nodes.
//!
//! The paper's allocation functions `alloc(I) = M·I + ρ` have one degree
//! of freedom the heuristic already exploits for macro-communications:
//! every allocation of a connected component can be left-multiplied by a
//! unimodular matrix without breaking any locality the branching
//! established (§4.2.2's Hermite rotations). Recovery reuses exactly that
//! freedom. When node(s) die:
//!
//! 1. the physical grid degrades — a [`DegradedGrid`] folds every virtual
//!    processor onto the **nearest survivor** (the same
//!    [`rescomm_machine::fold_target`] rule the simulator's rollback path
//!    uses, so compiler and machine agree on where dead work lands);
//! 2. every component whose placements touch a dead node is re-rotated:
//!    a small deterministic family of unimodular candidates (identity,
//!    axis swap, shears, and the Hermite axis-alignment rotation of the
//!    fold direction — `rescomm_macrocomm::axis_alignment_rotation` over
//!    `rescomm_intlin`'s Hermite machinery) is scored by remote traffic
//!    and load imbalance on the degraded grid, **rejecting any candidate
//!    that breaks an access the branching zeroed out** (identity always
//!    survives, so the search cannot fail);
//! 3. residual communications are re-derived for the rotated alignment
//!    (the same classification pass [`crate::map_nest`] runs), a
//!    [`IncidentKind::NodeLoss`] incident is recorded on the mapping, and
//!    the remap is validated end-to-end through
//!    [`crate::exec::verify_execution_on`] — the distributed run must
//!    reproduce the sequential state *with every placement on a live
//!    node*.

use crate::error::{Incident, IncidentKind, RescommError};
use crate::exec::verify_execution_on;
use crate::pipeline::{classify_outcomes, AnalysisCache, Mapping, MappingOptions};
use rescomm_accessgraph::Vertex;
use rescomm_alignment::Alignment;
use rescomm_intlin::{is_unimodular, IMat};
use rescomm_loopnest::{LoopNest, StmtId};
use rescomm_machine::{fold_target, PMsg};
use rescomm_macrocomm::axis_alignment_rotation;

/// Domain points sampled per statement when scoring candidate rotations
/// and locating affected components (full domains are checked again by
/// the final [`verify_execution_on`] validation).
const SAMPLE_CAP: usize = 64;

/// A physical `px × py` grid with a set of permanently dead nodes.
///
/// Virtual processor coordinates fold onto it toroidally (the same
/// `rem_euclid` wrap [`crate::plan`] uses) and then chase to the nearest
/// survivor when the wrapped node is dead — deterministically, by
/// (Manhattan distance, node id).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedGrid {
    px: usize,
    py: usize,
    dead: Vec<usize>,
}

impl DegradedGrid {
    /// Build a degraded grid; errors when a dead id is out of range or no
    /// survivor remains.
    pub fn new(px: usize, py: usize, dead: &[usize]) -> Result<Self, RescommError> {
        if px == 0 || py == 0 {
            return Err(RescommError::Exec {
                detail: format!("degenerate grid {px}x{py}"),
            });
        }
        let nodes = px * py;
        let mut dead: Vec<usize> = dead.to_vec();
        dead.sort_unstable();
        dead.dedup();
        if let Some(&bad) = dead.iter().find(|&&d| d >= nodes) {
            return Err(RescommError::Exec {
                detail: format!("dead node {bad} outside the {px}x{py} grid ({nodes} nodes)"),
            });
        }
        if dead.len() == nodes {
            return Err(RescommError::Exec {
                detail: format!("all {nodes} nodes of the {px}x{py} grid are dead"),
            });
        }
        Ok(DegradedGrid { px, py, dead })
    }

    /// Grid shape `(px, py)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.px, self.py)
    }

    /// Dead node ids, sorted and deduplicated.
    pub fn dead(&self) -> &[usize] {
        &self.dead
    }

    /// Number of surviving nodes.
    pub fn survivors(&self) -> usize {
        self.px * self.py - self.dead.len()
    }

    /// Is `node` permanently dead?
    pub fn is_dead(&self, node: usize) -> bool {
        self.dead.binary_search(&node).is_ok()
    }

    /// Toroidal wrap of a virtual coordinate onto the grid, dead or not
    /// (missing dimensions live at coordinate 0, like the plan's fold).
    pub fn wrap(&self, v: &[i64]) -> usize {
        let x = v.first().copied().unwrap_or(0).rem_euclid(self.px as i64) as usize;
        let y = v.get(1).copied().unwrap_or(0).rem_euclid(self.py as i64) as usize;
        y * self.px + x
    }

    /// Physical home of a virtual coordinate: the toroidal wrap, chased
    /// to the nearest survivor when the wrapped node is dead. Never
    /// returns a dead node.
    pub fn place(&self, v: &[i64]) -> usize {
        let node = self.wrap(v);
        if !self.is_dead(node) {
            node
        } else {
            fold_target(self.px, self.py, node, &self.dead)
                .expect("a validated DegradedGrid has at least one survivor")
        }
    }

    /// `true` when the survivor chase moved this coordinate off its
    /// toroidal home (i.e. the wrap landed on a dead node).
    pub fn displaced(&self, v: &[i64]) -> bool {
        self.is_dead(self.wrap(v))
    }

    /// Fold already-lowered physical phases onto the survivor set: every
    /// endpoint on a dead node is chased to its [`fold_target`] survivor,
    /// and messages that collapse to self-sends are dropped. This is the
    /// compiler-side twin of the simulator's post-death folding — running
    /// the folded phases on a healthy mesh (any schedule mode) models
    /// steady-state traffic after recovery has committed. Returns the
    /// folded phases and the number of messages redirected or absorbed.
    pub fn fold_phases(&self, phases: &[Vec<PMsg>]) -> (Vec<Vec<PMsg>>, usize) {
        let mut touched = 0;
        let folded = phases
            .iter()
            .map(|phase| {
                phase
                    .iter()
                    .filter_map(|m| {
                        let mut msg = *m;
                        if self.is_dead(msg.src) {
                            msg.src = fold_target(self.px, self.py, msg.src, &self.dead)
                                .expect("a validated DegradedGrid has at least one survivor");
                        }
                        if self.is_dead(msg.dst) {
                            msg.dst = fold_target(self.px, self.py, msg.dst, &self.dead)
                                .expect("a validated DegradedGrid has at least one survivor");
                        }
                        if msg.src != m.src || msg.dst != m.dst {
                            touched += 1;
                        }
                        (msg.src != msg.dst).then_some(msg)
                    })
                    .collect()
            })
            .collect();
        (folded, touched)
    }
}

/// Sampled domain points of a statement (deterministic prefix).
fn sample(nest: &LoopNest, si: usize) -> impl Iterator<Item = Vec<i64>> + '_ {
    nest.statements[si].domain.points().take(SAMPLE_CAP)
}

/// Components whose sampled placements (statement instances or the array
/// elements they touch) wrap onto a dead node — the ones worth
/// re-rotating.
fn affected_components(nest: &LoopNest, alignment: &Alignment, grid: &DegradedGrid) -> Vec<usize> {
    let mut affected = Vec::new();
    let mark = |ci: Option<usize>, affected: &mut Vec<usize>| {
        if let Some(ci) = ci {
            if !affected.contains(&ci) {
                affected.push(ci);
            }
        }
    };
    for si in 0..nest.statements.len() {
        for p in sample(nest, si) {
            if grid.displaced(&alignment.stmt_alloc[si].apply(&p)) {
                mark(
                    alignment.component_of(Vertex::Stmt(StmtId(si))),
                    &mut affected,
                );
            }
            for acc in nest.accesses_of(StmtId(si)) {
                let e = acc.subscript(&p);
                if grid.displaced(&alignment.array_alloc[acc.array.0].apply(&e)) {
                    mark(
                        alignment.component_of(Vertex::Array(acc.array)),
                        &mut affected,
                    );
                }
            }
        }
    }
    affected.sort_unstable();
    affected
}

/// The deterministic unimodular candidate family for an `m`-dimensional
/// grid: identity first (so the search can never regress), then the
/// axis swap, the four elementary shears on the first two axes, and the
/// Hermite axis-alignment rotation of each dead node's fold direction.
fn candidates(m: usize, grid: &DegradedGrid) -> Vec<IMat> {
    let mut out = vec![IMat::identity(m)];
    if m < 2 {
        return out;
    }
    let push = |mat: IMat, out: &mut Vec<IMat>| {
        if is_unimodular(&mat) && !out.contains(&mat) {
            out.push(mat);
        }
    };
    let mut swap = IMat::identity(m);
    swap[(0, 0)] = 0;
    swap[(1, 1)] = 0;
    swap[(0, 1)] = 1;
    swap[(1, 0)] = 1;
    push(swap, &mut out);
    for (i, j) in [(0, 1), (1, 0)] {
        for s in [1i64, -1] {
            let mut shear = IMat::identity(m);
            shear[(i, j)] = s;
            push(shear, &mut out);
        }
    }
    // Fold-direction rotations: align the displacement from each dead
    // node to its survivor with a grid axis (the macro-communication
    // rotation trick, §4.2.2).
    let (px, py) = grid.shape();
    for &d in grid.dead() {
        let Some(t) = fold_target(px, py, d, grid.dead()) else {
            continue;
        };
        let (dx, dy) = (
            (t % px) as i64 - (d % px) as i64,
            (t / px) as i64 - (d / px) as i64,
        );
        if dx == 0 && dy == 0 {
            continue;
        }
        let dir = IMat::from_fn(m, 1, |r, _| match r {
            0 => dx,
            1 => dy,
            _ => 0,
        });
        let (qinv, _) = axis_alignment_rotation(&dir);
        push(qinv, &mut out);
    }
    out
}

/// Score a trial alignment on the degraded grid over sampled instances:
/// `(remote access pairs, heaviest survivor load)` — lexicographic, lower
/// is better.
fn degraded_score(nest: &LoopNest, trial: &Alignment, grid: &DegradedGrid) -> (usize, usize) {
    let mut remote = 0usize;
    let mut load = vec![0usize; grid.px * grid.py];
    for si in 0..nest.statements.len() {
        for p in sample(nest, si) {
            let here = grid.place(&trial.stmt_alloc[si].apply(&p));
            load[here] += 1;
            for acc in nest.accesses_of(StmtId(si)) {
                let e = acc.subscript(&p);
                if grid.place(&trial.array_alloc[acc.array.0].apply(&e)) != here {
                    remote += 1;
                }
            }
        }
    }
    (remote, load.into_iter().max().unwrap_or(0))
}

/// `true` when every access local under `before` is still local under
/// `after` — the property the fold rotation must never break (satellite
/// of §3.1: the branching's zeroed-out edges stay zeroed out).
fn preserves_locality(nest: &LoopNest, before: &Alignment, after: &Alignment) -> bool {
    nest.accesses
        .iter()
        .all(|acc| !before.is_local(nest, acc) || after.is_local(nest, acc))
}

/// Remap a mapping for the survivors of permanent node deaths on a
/// `grid`-shaped physical mesh.
///
/// Every connected component whose placements touch a dead node is
/// left-multiplied by the best unimodular fold from [`candidates`]
/// (identity when nothing better exists), residual communications are
/// re-derived for the rotated alignment, an [`IncidentKind::NodeLoss`]
/// incident is recorded, and the result is validated through
/// [`verify_execution_on`] — the distributed execution must reproduce the
/// sequential state with the dead nodes excluded from every placement.
pub fn remap_for_survivors(
    nest: &LoopNest,
    mapping: &Mapping,
    opts: &MappingOptions,
    dead: &[usize],
    grid_shape: (usize, usize),
) -> Result<Mapping, RescommError> {
    let grid = DegradedGrid::new(grid_shape.0, grid_shape.1, dead)?;
    let mut out = mapping.clone();
    if dead.is_empty() {
        return Ok(out);
    }
    let m = out.alignment.m;
    for ci in affected_components(nest, &out.alignment, &grid) {
        let mut best: Option<((usize, usize), IMat)> = None;
        for cand in candidates(m, &grid) {
            let mut trial = out.alignment.clone();
            trial.rotate_component(ci, &cand);
            if !preserves_locality(nest, &out.alignment, &trial) {
                continue;
            }
            let score = degraded_score(nest, &trial, &grid);
            if best.as_ref().is_none_or(|(b, _)| score < *b) {
                best = Some((score, cand));
            }
        }
        let (_, fold) = best.expect("identity preserves locality, so a candidate survives");
        if fold != IMat::identity(m) {
            out.alignment.rotate_component(ci, &fold);
            let composed = match out.rotations.remove(&ci) {
                Some(prev) => &fold * &prev,
                None => fold,
            };
            out.rotations.insert(ci, composed);
        }
    }
    // Re-derive the residual-communication outcomes for the degraded
    // alignment with the same classification pass map_nest runs.
    let mut cache = AnalysisCache::new();
    out.outcomes = classify_outcomes(
        nest,
        &mut out.alignment,
        &mut out.rotations,
        opts,
        &mut cache,
    );
    out.incidents.push(Incident::node_loss(grid.dead()));
    debug_assert!(out
        .incidents
        .iter()
        .any(|i| i.kind == IncidentKind::NodeLoss));
    // End-to-end functional validation on the degraded grid.
    verify_execution_on(nest, &out, Some(&grid))?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_distributed_on;
    use crate::pipeline::map_nest;
    use rescomm_loopnest::examples;

    #[test]
    fn degraded_grid_validates_inputs() {
        assert!(DegradedGrid::new(0, 4, &[]).is_err());
        assert!(DegradedGrid::new(4, 4, &[16]).is_err());
        let all: Vec<usize> = (0..4).collect();
        assert!(DegradedGrid::new(2, 2, &all).is_err());
        let g = DegradedGrid::new(4, 4, &[5, 5, 1]).unwrap();
        assert_eq!(g.dead(), &[1, 5]);
        assert_eq!(g.survivors(), 14);
    }

    #[test]
    fn fold_phases_redirects_onto_survivors() {
        let g = DegradedGrid::new(4, 4, &[5]).unwrap();
        let phases = vec![
            vec![
                PMsg {
                    src: 0,
                    dst: 5,
                    bytes: 64,
                },
                PMsg {
                    src: 5,
                    dst: 9,
                    bytes: 32,
                },
                PMsg {
                    src: 1,
                    dst: 2,
                    bytes: 8,
                },
            ],
            // A message that collapses onto itself after folding is
            // absorbed rather than kept as a self-send.
            vec![PMsg {
                src: 5,
                dst: fold_target(4, 4, 5, &[5]).unwrap(),
                bytes: 16,
            }],
        ];
        let (folded, touched) = g.fold_phases(&phases);
        assert_eq!(touched, 3);
        assert_eq!(folded.len(), 2);
        assert!(folded[1].is_empty(), "self-send absorbed");
        for m in folded.iter().flatten() {
            assert!(!g.is_dead(m.src) && !g.is_dead(m.dst));
            assert_ne!(m.src, m.dst);
        }
        // Untouched messages pass through byte-identical.
        assert!(folded[0].contains(&phases[0][2]));
        // A healthy grid folds nothing.
        let whole = DegradedGrid::new(4, 4, &[]).unwrap();
        let (same, zero) = whole.fold_phases(&phases);
        assert_eq!((same, zero), (phases, 0));
    }

    #[test]
    fn place_never_lands_on_a_dead_node() {
        let g = DegradedGrid::new(4, 4, &[0, 5, 10]).unwrap();
        for x in -9..9i64 {
            for y in -9..9i64 {
                let n = g.place(&[x, y]);
                assert!(!g.is_dead(n), "({x},{y}) placed on dead {n}");
                assert!(n < 16);
            }
        }
        // A live wrap is left where it lands.
        assert_eq!(g.place(&[1, 0]), 1);
        // Virtual (1,1) wraps to node 5 (dead): nodes 1, 4, 6, 9 are all
        // at distance 1 and alive — smallest id wins the tie.
        assert_eq!(g.place(&[1, 1]), 1);
        assert!(g.displaced(&[1, 1]));
        assert!(!g.displaced(&[2, 1]));
    }

    #[test]
    fn degraded_grid_agrees_with_machine_fold_rule() {
        // The compiler-side chase and the simulator-side fold must send a
        // dead node's work to the same survivor.
        let dead = [5usize, 6];
        let g = DegradedGrid::new(4, 4, &dead).unwrap();
        for node in 0..16usize {
            let v = [(node % 4) as i64, (node / 4) as i64];
            let machine = rescomm_machine::fold_target(4, 4, node, &dead).unwrap();
            assert_eq!(g.place(&v), machine, "node {node}");
        }
    }

    #[test]
    fn candidates_are_unimodular_and_start_with_identity() {
        let g = DegradedGrid::new(4, 4, &[5]).unwrap();
        let cands = candidates(2, &g);
        assert_eq!(cands[0], IMat::identity(2));
        assert!(cands.len() > 4, "swap, shears and fold rotation expected");
        for c in &cands {
            assert!(is_unimodular(c), "{c:?}");
        }
        // 1-D grids only get the identity.
        assert_eq!(candidates(1, &g).len(), 1);
    }

    #[test]
    fn remap_motivating_example_survives_node_loss() {
        let (nest, _) = examples::motivating_example(4, 2);
        let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        let dead = [5usize];
        let remapped =
            remap_for_survivors(&nest, &mapping, &MappingOptions::new(2), &dead, (4, 4)).unwrap();
        // The incident is on record.
        assert!(remapped
            .incidents
            .iter()
            .any(|i| i.kind == IncidentKind::NodeLoss));
        // And the degraded run puts nothing on the dead node.
        let grid = DegradedGrid::new(4, 4, &dead).unwrap();
        let (_, stats) = run_distributed_on(&nest, &remapped, Some(&grid));
        assert!(stats.instances > 0);
    }

    #[test]
    fn remap_preserves_zeroed_out_edges() {
        for (nest, opts) in [
            (examples::motivating_example(4, 2).0, MappingOptions::new(2)),
            (examples::jacobi2d(6), MappingOptions::new(2)),
            (examples::matmul(4), MappingOptions::new(2)),
        ] {
            let mapping = map_nest(&nest, &opts).unwrap();
            let remapped = remap_for_survivors(&nest, &mapping, &opts, &[3], (4, 4))
                .unwrap_or_else(|e| panic!("{}: {e}", nest.name));
            for (i, acc) in nest.accesses.iter().enumerate() {
                if mapping.alignment.is_local(&nest, acc) {
                    assert!(
                        remapped.alignment.is_local(&nest, acc),
                        "{}: access {i} lost locality in the remap",
                        nest.name
                    );
                }
            }
        }
    }

    #[test]
    fn remap_rejects_hopeless_inputs() {
        let (nest, _) = examples::motivating_example(4, 2);
        let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        let all: Vec<usize> = (0..16).collect();
        assert!(
            remap_for_survivors(&nest, &mapping, &MappingOptions::new(2), &all, (4, 4)).is_err()
        );
        assert!(
            remap_for_survivors(&nest, &mapping, &MappingOptions::new(2), &[99], (4, 4)).is_err()
        );
    }
}
