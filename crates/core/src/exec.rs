//! Distributed execution of a mapped nest — the end-to-end functional
//! check. A mapping is only correct if running the nest *distributed*
//! (every statement instance on its virtual processor, every array
//! element in its owner's memory, reads fetched from owners) produces
//! exactly the array contents of a sequential execution.
//!
//! Values are deterministic 64-bit mixes of whatever flows in, so any
//! misrouted element, lost reduction contribution or schedule violation
//! changes the final state and is caught. Reductions fold with a
//! commutative-associative operation (wrapping add), making the result
//! independent of contribution order — the property that licenses the
//! paper's reduction macro-communication in the first place.

use crate::error::RescommError;
use crate::pipeline::Mapping;
use crate::recover::DegradedGrid;
use rescomm_loopnest::{AccessKind, ArrayId, LoopNest};
use std::collections::{BTreeMap, HashMap};

/// Final array contents: `(array, element subscript) → value`.
pub type ArrayState = HashMap<(ArrayId, Vec<i64>), u64>;

/// Statistics of a distributed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecStats {
    /// Statement instances executed.
    pub instances: usize,
    /// Element reads served from the executing processor's own memory.
    pub local_reads: usize,
    /// Element reads fetched from another virtual processor.
    pub remote_reads: usize,
    /// Element writes stored to another virtual processor.
    pub remote_writes: usize,
    /// Distinct timesteps.
    pub timesteps: usize,
    /// Statement instances whose physical node differs from the healthy
    /// grid's (folded onto a survivor); always 0 without a degraded grid.
    pub remapped_placements: usize,
}

impl ExecStats {
    /// Fraction of reads that were local.
    pub fn read_locality(&self) -> f64 {
        let total = self.local_reads + self.remote_reads;
        if total == 0 {
            1.0
        } else {
            self.local_reads as f64 / total as f64
        }
    }
}

/// Deterministic value mixing (FNV-ish, good enough to expose routing
/// bugs; not cryptographic).
fn mix(seed: u64, xs: &[u64]) -> u64 {
    let mut h = seed ^ 0xcbf29ce484222325;
    for &x in xs {
        h ^= x;
        h = h.wrapping_mul(0x100000001b3);
        h ^= h >> 29;
    }
    h
}

/// Initial value of an array element (inputs are well-defined everywhere).
fn initial(array: ArrayId, subscript: &[i64]) -> u64 {
    let mut xs: Vec<u64> = vec![array.0 as u64 + 1];
    xs.extend(subscript.iter().map(|&v| v as u64 ^ 0x9e37_79b9_7f4a_7c15));
    mix(0x6a09e667f3bcc908, &xs)
}

/// All statement instances grouped by (lexicographic) timestep.
fn instances_by_time(nest: &LoopNest) -> BTreeMap<Vec<i64>, Vec<(usize, Vec<i64>)>> {
    let mut by_time: BTreeMap<Vec<i64>, Vec<(usize, Vec<i64>)>> = BTreeMap::new();
    for (si, st) in nest.statements.iter().enumerate() {
        for p in st.domain.points() {
            by_time
                .entry(st.schedule.time(&p))
                .or_default()
                .push((si, p));
        }
    }
    by_time
}

/// Execute one statement instance against a state: returns the list of
/// `(array, subscript, value, is_reduce)` writes.
fn execute_instance(
    nest: &LoopNest,
    si: usize,
    point: &[i64],
    read_value: &mut impl FnMut(ArrayId, &[i64]) -> u64,
) -> Vec<(ArrayId, Vec<i64>, u64, bool)> {
    // Reads first (a statement reads its inputs before writing).
    let mut inputs: Vec<u64> = vec![si as u64 + 101];
    inputs.extend(point.iter().map(|&v| v as u64 ^ 0xdead_beef));
    for acc in nest.accesses_of(rescomm_loopnest::StmtId(si)) {
        if acc.kind == AccessKind::Read {
            let e = acc.subscript(point);
            inputs.push(read_value(acc.array, &e));
        }
    }
    let value = mix(0xbb67ae8584caa73b, &inputs);
    let mut writes = Vec::new();
    for acc in nest.accesses_of(rescomm_loopnest::StmtId(si)) {
        match acc.kind {
            AccessKind::Write => writes.push((acc.array, acc.subscript(point), value, false)),
            AccessKind::Reduce => writes.push((acc.array, acc.subscript(point), value, true)),
            AccessKind::Read => {}
        }
    }
    writes
}

/// Sequential reference execution (timestep order, then statement order).
pub fn run_sequential(nest: &LoopNest) -> ArrayState {
    let mut state: ArrayState = HashMap::new();
    for (_, instances) in instances_by_time(nest) {
        // Within a timestep everything is parallel: reads see the state
        // from before the timestep. Buffer the writes.
        let snapshot = state.clone();
        let mut writes = Vec::new();
        for (si, p) in instances {
            let mut read = |x: ArrayId, e: &[i64]| {
                snapshot
                    .get(&(x, e.to_vec()))
                    .copied()
                    .unwrap_or_else(|| initial(x, e))
            };
            writes.extend(execute_instance(nest, si, &p, &mut read));
        }
        apply_writes(&mut state, writes);
    }
    state
}

fn apply_writes(state: &mut ArrayState, writes: Vec<(ArrayId, Vec<i64>, u64, bool)>) {
    // Reductions combine commutatively; plain writes must be unique per
    // element per timestep (guaranteed for dependence-free nests).
    for (x, e, v, reduce) in writes {
        let key = (x, e);
        if reduce {
            let base = state
                .get(&key)
                .copied()
                .unwrap_or_else(|| initial(key.0, &key.1));
            state.insert(key, base.wrapping_add(v));
        } else {
            state.insert(key, v);
        }
    }
}

/// Distributed execution: every element lives on its owner (the array
/// allocation), every instance runs on its virtual processor (the
/// statement allocation); remote reads/writes are counted.
pub fn run_distributed(nest: &LoopNest, mapping: &Mapping) -> (ArrayState, ExecStats) {
    run_distributed_on(nest, mapping, None)
}

/// Distributed execution, optionally on a degraded grid. Without a grid
/// this is [`run_distributed`]: locality is judged on *virtual* processor
/// coordinates. With a grid, coordinates are first folded onto the
/// physical survivor nodes ([`DegradedGrid::place`]), so an access is
/// local exactly when producer and consumer land on the same live node —
/// folding can only *create* locality, never destroy it, and instances
/// displaced off their healthy-grid home are counted.
pub fn run_distributed_on(
    nest: &LoopNest,
    mapping: &Mapping,
    grid: Option<&DegradedGrid>,
) -> (ArrayState, ExecStats) {
    // One global element store, but tagged with owners so we can classify
    // each access as local or remote — the memory is distributed, the
    // bookkeeping central.
    let mut state: ArrayState = HashMap::new();
    let mut stats = ExecStats {
        instances: 0,
        local_reads: 0,
        remote_reads: 0,
        remote_writes: 0,
        timesteps: 0,
        remapped_placements: 0,
    };
    for (_, instances) in instances_by_time(nest) {
        stats.timesteps += 1;
        let snapshot = state.clone();
        let mut writes = Vec::new();
        for (si, p) in instances {
            stats.instances += 1;
            let here_v = mapping.alignment.stmt_alloc[si].apply(&p);
            let here_node = grid.map(|g| g.place(&here_v));
            if let Some(g) = grid {
                if g.displaced(&here_v) {
                    stats.remapped_placements += 1;
                }
            }
            let colocated = |owner_v: &[i64]| match (grid, here_node) {
                (Some(g), Some(n)) => g.place(owner_v) == n,
                _ => owner_v == here_v.as_slice(),
            };
            let mut read = |x: ArrayId, e: &[i64]| {
                let owner = mapping.alignment.array_alloc[x.0].apply(e);
                if colocated(&owner) {
                    stats.local_reads += 1;
                } else {
                    stats.remote_reads += 1;
                }
                snapshot
                    .get(&(x, e.to_vec()))
                    .copied()
                    .unwrap_or_else(|| initial(x, e))
            };
            let ws = execute_instance(nest, si, &p, &mut read);
            for (x, e, _v, _r) in &ws {
                let owner = mapping.alignment.array_alloc[x.0].apply(e);
                if !colocated(&owner) {
                    stats.remote_writes += 1;
                }
            }
            writes.extend(ws);
        }
        apply_writes(&mut state, writes);
    }
    (state, stats)
}

/// Run both executions and compare the final array states.
pub fn verify_execution(nest: &LoopNest, mapping: &Mapping) -> Result<ExecStats, RescommError> {
    verify_execution_on(nest, mapping, None)
}

/// [`verify_execution`] on an optionally degraded grid. With a grid, the
/// functional check additionally asserts that no statement instance is
/// physically placed on a dead node — the end-to-end guarantee that the
/// recovery remap actually routed all work onto survivors.
pub fn verify_execution_on(
    nest: &LoopNest,
    mapping: &Mapping,
    grid: Option<&DegradedGrid>,
) -> Result<ExecStats, RescommError> {
    let exec_err = |detail: String| RescommError::Exec { detail };
    let reference = run_sequential(nest);
    let (distributed, stats) = run_distributed_on(nest, mapping, grid);
    if reference.len() != distributed.len() {
        return Err(exec_err(format!(
            "state size mismatch: sequential {} vs distributed {}",
            reference.len(),
            distributed.len()
        )));
    }
    for (key, &v) in &reference {
        match distributed.get(key) {
            Some(&w) if w == v => {}
            Some(&w) => {
                return Err(exec_err(format!(
                    "value mismatch at {:?}: sequential {v:#x} vs distributed {w:#x}",
                    key
                )))
            }
            None => {
                return Err(exec_err(format!(
                    "element {key:?} missing from distributed state"
                )))
            }
        }
    }
    if let Some(g) = grid {
        for (si, st) in nest.statements.iter().enumerate() {
            for p in st.domain.points() {
                let node = g.place(&mapping.alignment.stmt_alloc[si].apply(&p));
                if g.is_dead(node) {
                    return Err(exec_err(format!(
                        "instance {p:?} of `{}` placed on dead node {node}",
                        st.name
                    )));
                }
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{map_nest, MappingOptions};
    use rescomm_loopnest::examples;

    #[test]
    fn sequential_is_deterministic() {
        let nest = examples::jacobi2d(6);
        assert_eq!(run_sequential(&nest), run_sequential(&nest));
    }

    #[test]
    fn distributed_matches_sequential_on_all_kernels() {
        for nest in [
            examples::motivating_example(4, 2).0,
            examples::jacobi2d(6),
            examples::transpose(5),
            examples::matmul(4),
            examples::syrk(4),
            examples::stencil1d(8, 4),
            examples::gauss_elim(4),
            examples::adi_sweep(5),
            examples::example2_broadcast(5),
            examples::example4_reduction(5),
            examples::example5_platonoff(3).0,
        ] {
            let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
            let stats =
                verify_execution(&nest, &mapping).unwrap_or_else(|e| panic!("{}: {e}", nest.name));
            assert!(stats.instances > 0);
        }
    }

    #[test]
    fn locality_stats_reflect_the_mapping() {
        // Example 5 is communication-free: every read local.
        let (nest, _) = examples::example5_platonoff(3);
        let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        let (_, stats) = run_distributed(&nest, &mapping);
        assert_eq!(stats.remote_reads, 0, "{stats:?}");
        assert_eq!(stats.remote_writes, 0);
        assert!((stats.read_locality() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn motivating_example_locality_fraction() {
        // S1's F2/F4 reads are local, its F3 read and the deep-loop
        // F6/F8 reads are remote; with the deep loops dominating the
        // instance count the overall locality lands low but nonzero.
        let (nest, _) = examples::motivating_example(4, 2);
        let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        let (_, stats) = run_distributed(&nest, &mapping);
        assert!(stats.remote_reads > 0);
        assert!(stats.local_reads > 0);
        let f = stats.read_locality();
        assert!(f > 0.05 && f < 0.5, "locality fraction {f}");
        // The step-1-only baseline has identical locality (step 2 only
        // restructures the remote traffic, it does not create locality).
        let base = crate::baselines::feautrier_map(&nest, 2).unwrap();
        let (_, bstats) = run_distributed(&nest, &base);
        assert_eq!(stats.local_reads, bstats.local_reads);
    }

    #[test]
    fn reductions_are_order_independent() {
        // The sequential fold and the (conceptually parallel) distributed
        // fold must agree — wrapping add commutes.
        let nest = examples::example4_reduction(6);
        let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        verify_execution(&nest, &mapping).unwrap();
    }

    #[test]
    fn stencil_timesteps_counted() {
        let nest = examples::stencil1d(8, 5);
        let mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        let (_, stats) = run_distributed(&nest, &mapping);
        assert_eq!(stats.timesteps, 5, "one timestep per t iteration");
    }

    #[test]
    fn corrupted_mapping_is_caught() {
        // Break an allocation on purpose: the functional check must fail…
        // unless the statement has no reads of that array. We shift the
        // owner of `a` in the motivating example, which de-localizes F2
        // but does NOT change any value (reads still fetch the right
        // element, just remotely) — so the check must still PASS: the
        // functional semantics of a mapping never depends on placement.
        let (nest, _) = examples::motivating_example(4, 2);
        let mut mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        mapping.alignment.array_alloc[0].rho = vec![7, -3];
        verify_execution(&nest, &mapping).expect("placement cannot change values");
        // What placement DOES change is the locality statistics.
        let (_, bad) = run_distributed(&nest, &mapping);
        let good_mapping = map_nest(&nest, &MappingOptions::new(2)).unwrap();
        let (_, good) = run_distributed(&nest, &good_mapping);
        assert!(bad.remote_reads > good.remote_reads);
    }
}
