//! Property tests for the `CommPlan` snapshot half of the service
//! durability contract: any plan → JSON → restore must simulate
//! bit-identically under phased *and* overlapped scheduling.

use proptest::prelude::*;
use rescomm::snapshot::{plan_from_json, plan_to_json};
use rescomm::substrate::distribution::{Dist1D, Dist2D};
use rescomm::substrate::intlin::IMat;
use rescomm::substrate::loopnest::AccessId;
use rescomm::substrate::machine::{CostModel, Mesh2D, OverlapOrder, ScheduleMode};
use rescomm::{CommPhase, CommPlan, PhaseKind, PhasePattern};
use rescomm_decompose::Elementary;

fn kinds(idx: u32, arg: i64) -> PhaseKind {
    match idx % 7 {
        0 => PhaseKind::Translation,
        1 => PhaseKind::CollectiveRound,
        2 => PhaseKind::Elementary(Elementary::L(arg)),
        3 => PhaseKind::Elementary(Elementary::U(arg)),
        4 => PhaseKind::DecompositionShift,
        5 => PhaseKind::UnirowFactor,
        _ => PhaseKind::GeneralAffine,
    }
}

fn patterns() -> impl Strategy<Value = PhasePattern> {
    prop_oneof![
        proptest::collection::vec(((-8i64..16, -8i64..16), (-8i64..16, -8i64..16)), 0..12)
            .prop_map(PhasePattern::Explicit),
        (
            (-3i64..4, -3i64..4, -3i64..4, -3i64..4),
            (-16i64..17, -16i64..17)
        )
            .prop_map(|((t00, t01, t10, t11), shift)| PhasePattern::Affine {
                t: IMat::from_rows(&[&[t00, t01], &[t10, t11]]),
                shift,
            }),
    ]
}

fn plans() -> impl Strategy<Value = CommPlan> {
    proptest::collection::vec((0usize..8, 0u32..7, -4i64..5, patterns()), 0..6).prop_map(|v| {
        CommPlan {
            phases: v
                .into_iter()
                .map(|(access, kind_idx, arg, pattern)| CommPhase {
                    access: AccessId(access),
                    kind: kinds(kind_idx, arg),
                    pattern,
                })
                .collect(),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Round-trip: serialize, reparse, restore — the restored plan's
    /// simulated makespan is bit-identical on every mode, and the
    /// report surface (access ids, kinds) survives.
    #[test]
    fn comm_plan_snapshot_simulates_bit_identical(plan in plans(), longest in 0u32..2) {
        let text = plan_to_json(&plan).render();
        let reparsed = rescomm_json::parse(&text).expect("self-produced JSON parses");
        let back = plan_from_json(&reparsed).expect("restore");
        prop_assert_eq!(back.phases.len(), plan.phases.len());
        for (a, b) in plan.phases.iter().zip(&back.phases) {
            prop_assert_eq!(a.access, b.access);
            prop_assert_eq!(&a.kind, &b.kind);
        }
        let mesh = Mesh2D::new(8, 4, CostModel::paragon());
        let dist = Dist2D::uniform(Dist1D::Block);
        let order = if longest == 1 { OverlapOrder::LongestFirst } else { OverlapOrder::Sorted };
        for mode in [ScheduleMode::Phased, ScheduleMode::Overlapped(order)] {
            prop_assert_eq!(
                back.simulate_on_mesh(&mesh, dist, (8, 4), 256, mode),
                plan.simulate_on_mesh(&mesh, dist, (8, 4), 256, mode),
                "{:?}", mode
            );
        }
        // And serialization is deterministic: a second trip writes the
        // same bytes (the snapshot-diff property).
        prop_assert_eq!(plan_to_json(&back).render(), text);
    }
}
