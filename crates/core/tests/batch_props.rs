//! Property tests for the batched analysis front-end on the shared
//! work-stealing pool: `map_nest_batch` must be bit-identical to serial
//! per-nest mapping at any worker count and any task-cost skew (mixed
//! kernel families of mixed sizes), and its [`SweepReport`] must tell
//! the truth about the workers actually used.

use proptest::prelude::*;
use rescomm::substrate::loopnest::examples;
use rescomm::{map_nest, map_nest_batch_report, MappingOptions};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn map_nest_batch_is_bit_identical_to_serial_at_any_worker_count(
        fleet_spec in proptest::collection::vec((0u32..4, 2i64..8), 1..10),
        workers in 1usize..9,
    ) {
        // Mixed families at mixed sizes: the per-task cost skew the
        // steal path has to level out without changing any answer.
        let nests: Vec<_> = fleet_spec
            .iter()
            .map(|&(kind, n)| match kind {
                0 => examples::matmul(n),
                1 => examples::gauss_elim(n),
                2 => examples::adi_sweep(n),
                _ => examples::motivating_example(n, 2).0,
            })
            .collect();
        let opts = MappingOptions::new(2);
        let serial: Vec<_> = nests
            .iter()
            .map(|n| map_nest(n, &opts).unwrap())
            .collect();
        let (batch, report) = map_nest_batch_report(&nests, &opts, workers);
        let batch = batch.unwrap();
        prop_assert_eq!(report.requested, workers);
        prop_assert_eq!(report.workers, workers.clamp(1, nests.len()));
        prop_assert_eq!(report.tasks, nests.len());
        prop_assert_eq!(batch.len(), serial.len());
        for (i, (s, b)) in serial.iter().zip(&batch).enumerate() {
            prop_assert_eq!(&s.outcomes, &b.outcomes, "outcomes diverged on nest {}", i);
            prop_assert_eq!(&s.rotations, &b.rotations, "rotations diverged on nest {}", i);
            for (sa, ba) in s.alignment.stmt_alloc.iter().zip(&b.alignment.stmt_alloc) {
                prop_assert_eq!(&sa.mat, &ba.mat, "statement allocation diverged on nest {}", i);
            }
        }
    }
}
