//! Integration tests of the `rescomm-cli` binary (run end to end via
//! `CARGO_BIN_EXE_*`, the standard Cargo mechanism).

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rescomm-cli"))
}

fn write_nest(contents: &str) -> tempfile_path::TempPath {
    tempfile_path::write(contents)
}

/// Minimal self-cleaning temp-file helper (no external crates).
mod tempfile_path {
    use std::path::PathBuf;

    pub struct TempPath(pub PathBuf);

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    impl TempPath {
        pub fn as_str(&self) -> &str {
            self.0.to_str().unwrap()
        }
    }

    pub fn write(contents: &str) -> TempPath {
        let mut p = std::env::temp_dir();
        let unique = format!(
            "rescomm-cli-test-{}-{}.nest",
            std::process::id(),
            contents.len()
        );
        p.push(unique);
        std::fs::write(&p, contents).unwrap();
        TempPath(p)
    }
}

const NEST: &str = "\
nest demo
array a 2
array r 2
stmt S depth 2 domain 0..7 0..7
  write r [1 0; 0 1]
  read  a [1 0; 0 1] + [1 0]
";

#[test]
fn maps_a_nest_and_reports() {
    let f = write_nest(NEST);
    let out = cli().arg(f.as_str()).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("mapping report for `demo`"));
    assert!(text.contains("local"));
}

#[test]
fn dot_output_is_graphviz() {
    let f = write_nest(NEST);
    let out = cli().arg(f.as_str()).arg("--dot").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.starts_with("digraph"));
    assert!(text.contains("style=bold"), "branching edges in bold");
}

#[test]
fn compare_runs_baselines() {
    let f = write_nest(NEST);
    let out = cli().arg(f.as_str()).arg("--compare").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Platonoff"));
    assert!(text.contains("step 1 only"));
}

#[test]
fn parse_error_is_reported_with_line() {
    let f = write_nest("nest x\narray a 2\nstmt S depth 2 domain 0..3\n");
    let out = cli().arg(f.as_str()).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("line 3"), "stderr: {err}");
}

#[test]
fn missing_file_fails_gracefully() {
    let out = cli().arg("/nonexistent/nest.file").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("cannot read"));
}

#[test]
fn unknown_flag_rejected() {
    let out = cli().arg("--bogus").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn m_flag_changes_target_dimension() {
    let f = write_nest(NEST);
    let out = cli().arg(f.as_str()).args(["--m", "1"]).output().unwrap();
    assert!(out.status.success());
}

#[test]
fn recover_remaps_and_verifies_on_survivors() {
    let f = write_nest(NEST);
    let out = cli()
        .arg(f.as_str())
        .args(["--recover", "5", "--grid", "4x4"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("remapping around dead node(s) [5]"), "{text}");
    assert!(text.contains("node-loss remap(s) survived"), "{text}");
    assert!(text.contains("degraded run verified"), "{text}");
    assert!(text.contains("15 survivors"), "{text}");
}

#[test]
fn recover_rejects_killing_every_node() {
    let f = write_nest(NEST);
    let out = cli()
        .arg(f.as_str())
        .args(["--recover", "0,1,2,3", "--grid", "2x2"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("recovery failed"), "stderr: {err}");
}

#[test]
fn replications_prints_monte_carlo_stats() {
    let f = write_nest(NEST);
    let out = cli()
        .arg(f.as_str())
        .args(["--replications", "4", "--grid", "4x4", "--drop", "0.2"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("monte carlo: 4 replications on a 4x4 mesh, drop 0.20"),
        "{text}"
    );
    assert!(text.contains("healthy makespan:"), "{text}");
    assert!(text.contains("faulty makespan:"), "{text}");
    assert!(text.contains("delivered:"), "{text}");
}

#[test]
fn replications_is_deterministic_across_runs() {
    let f = write_nest(NEST);
    let run = || {
        let out = cli()
            .arg(f.as_str())
            .args(["--replications", "3", "--drop", "0.3"])
            .output()
            .unwrap();
        assert!(out.status.success(), "{out:?}");
        String::from_utf8(out.stdout).unwrap()
    };
    assert_eq!(run(), run(), "seeded Monte Carlo must be reproducible");
}

#[test]
fn replications_rejects_bad_drop_probability() {
    let f = write_nest(NEST);
    let out = cli()
        .arg(f.as_str())
        .args(["--replications", "2", "--drop", "1.5"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--drop"), "stderr: {err}");
}

#[test]
fn closed_plan_simulates_huge_virtual_grid() {
    let f = write_nest(NEST);
    let out = cli()
        .arg(f.as_str())
        .args(["--closed-plan", "--vgrid", "4096x4096", "--grid", "8x8"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("closed plan:"), "{text}");
    assert!(text.contains("affine"), "{text}");
    assert!(
        text.contains("closed-plan makespan at 4096x4096 (phased):"),
        "{text}"
    );
}

#[test]
fn closed_plan_overlapped_schedule_reports_both_makespans() {
    let f = write_nest(NEST);
    let out = cli()
        .arg(f.as_str())
        .args([
            "--closed-plan",
            "--vgrid",
            "256x256",
            "--grid",
            "8x4",
            "--schedule",
            "overlapped",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("closed-plan makespan at 256x256 (overlapped):"),
        "{text}"
    );
    assert!(text.contains("phased makespan:"), "{text}");
}

#[test]
fn schedule_rejects_unknown_mode() {
    let f = write_nest(NEST);
    let out = cli()
        .arg(f.as_str())
        .args(["--closed-plan", "--schedule", "chaotic"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--schedule"), "stderr: {err}");
}

#[test]
fn closed_plan_rejects_malformed_vgrid_spec() {
    let f = write_nest(NEST);
    let out = cli()
        .arg(f.as_str())
        .args(["--closed-plan", "--vgrid", "huge"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--vgrid"), "stderr: {err}");
}

#[test]
fn recover_rejects_malformed_grid_spec() {
    let f = write_nest(NEST);
    let out = cli()
        .arg(f.as_str())
        .args(["--recover", "1", "--grid", "banana"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
