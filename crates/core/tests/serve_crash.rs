//! Crash-recovery integration test for `rescomm-serve`: warm the cache,
//! `kill -9` the server, restart it from the snapshot, and require the
//! restarted process to serve byte-identical responses carrying the
//! served-from-snapshot marker.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

const NEST: &str = "nest crashdemo\narray a 2\nstmt S depth 2 domain 0..5 0..5\n  \
                    write a [1 0; 0 1] + [0 0]\n  read a [0 1; 1 0] + [2 0]\n";

struct Serve {
    child: Child,
    addr: String,
}

impl Serve {
    /// Start the real binary and wait for its `listening on ADDR` line.
    fn start(snapshot: &std::path::Path) -> Serve {
        let mut child = Command::new(env!("CARGO_BIN_EXE_rescomm-serve"))
            .args([
                "--addr",
                "127.0.0.1:0",
                "--snapshot",
                snapshot.to_str().unwrap(),
                "--snapshot-every",
                "1",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn rescomm-serve");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read listening line");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected startup line {line:?}"))
            .to_string();
        Serve { child, addr }
    }

    fn request(&self, req: &str) -> String {
        let mut stream = TcpStream::connect(&self.addr).expect("connect");
        writeln!(stream, "{req}").expect("send");
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).expect("recv");
        line.trim().to_string()
    }

    /// The crash under test: SIGKILL, no drain, no warning.
    fn kill9(mut self) {
        self.child.kill().expect("kill -9");
        self.child.wait().expect("reap");
    }

    fn shutdown(self) {
        let _ = self.request("{\"op\": \"shutdown\"}");
        let mut child = self.child;
        child.wait().expect("reap");
    }
}

/// Extract `"field": "…"` (string) or splice out an object field from a
/// response line without depending on the json crate (the test checks
/// raw bytes on purpose).
fn field<'a>(line: &'a str, key: &str) -> &'a str {
    let tag = format!("\"{key}\": ");
    let start = line
        .find(&tag)
        .unwrap_or_else(|| panic!("no {key} in {line}"))
        + tag.len();
    &line[start..]
}

#[test]
fn sigkill_then_restart_serves_identical_bytes_from_snapshot() {
    let dir = std::env::temp_dir().join(format!("rescomm-crash-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("plans.json");
    let _ = std::fs::remove_file(&snap);

    let nest_json = NEST.replace('\n', "\\n");
    let map_req =
        format!("{{\"id\": 1, \"op\": \"map\", \"nest\": \"{nest_json}\", \"mesh\": [4, 4]}}");

    // Round 1: cold server computes fresh and flushes per compute.
    let server = Serve::start(&snap);
    let fresh = server.request(&map_req);
    assert!(
        fresh.contains("\"ok\": true") && fresh.contains("\"served\": \"fresh\""),
        "first response must be fresh: {fresh}"
    );
    let fresh_result = field(&fresh, "result").to_string();
    // Same request again: now from the in-process cache, same bytes.
    let cached = server.request(&map_req);
    assert!(cached.contains("\"served\": \"cache\""), "{cached}");
    assert_eq!(field(&cached, "result"), fresh_result);

    // The crash: no shutdown op, no drain — the per-compute flush is all
    // the durability the server gets.
    server.kill9();
    assert!(snap.exists(), "snapshot must exist before the crash");

    // Round 2: a fresh process restores the snapshot and replays the
    // exact bytes with the snapshot marker.
    let server = Serve::start(&snap);
    let replay = server.request(&map_req);
    assert!(
        replay.contains("\"served\": \"snapshot\""),
        "restarted server must serve from snapshot: {replay}"
    );
    assert_eq!(
        field(&replay, "result"),
        fresh_result,
        "snapshot-restored response must be byte-identical"
    );
    let stats = server.request("{\"id\": 2, \"op\": \"stats\"}");
    assert!(
        stats.contains("\"restored_entries\": 1") && stats.contains("\"snapshot_hits\": 1"),
        "{stats}"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshot_degrades_to_cold_start_not_a_crash() {
    let dir = std::env::temp_dir().join(format!("rescomm-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("plans.json");
    std::fs::write(
        &snap,
        "{\"format\": \"rescomm-snapshot\", \"version\": 1, garbage",
    )
    .unwrap();

    let server = Serve::start(&snap);
    let nest_json = NEST.replace('\n', "\\n");
    let resp = server.request(&format!(
        "{{\"id\": 1, \"op\": \"map\", \"nest\": \"{nest_json}\"}}"
    ));
    assert!(
        resp.contains("\"ok\": true") && resp.contains("\"served\": \"fresh\""),
        "corrupt snapshot must cold-start, then serve: {resp}"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
