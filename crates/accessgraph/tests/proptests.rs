//! Property tests for the access graph and the maximum branching on
//! randomly generated nests.

use proptest::prelude::*;
use rescomm_accessgraph::branching::is_valid_branching;
use rescomm_accessgraph::{augment, component_structure, maximum_branching, AccessGraph, Vertex};
use rescomm_intlin::IMat;
use rescomm_loopnest::{Domain, LoopNest, NestBuilder};

fn random_nest() -> impl Strategy<Value = LoopNest> {
    (
        proptest::collection::vec(1usize..=3, 1..=3), // array dims
        proptest::collection::vec(2usize..=3, 1..=2), // stmt depths
        proptest::collection::vec(
            (
                0usize..100,
                0usize..100,
                proptest::collection::vec(-2i64..=2, 9),
                any::<bool>(),
            ),
            1..=6,
        ),
    )
        .prop_map(|(dims, depths, accs)| {
            let mut b = NestBuilder::new("rand");
            let arrays: Vec<_> = dims
                .iter()
                .enumerate()
                .map(|(i, &d)| b.array(&format!("x{i}"), d))
                .collect();
            let stmts: Vec<_> = depths
                .iter()
                .enumerate()
                .map(|(i, &d)| b.statement(&format!("S{i}"), d, Domain::cube(d, 4)))
                .collect();
            for (ai, si, coeffs, write) in accs {
                let x = arrays[ai % arrays.len()];
                let s = stmts[si % stmts.len()];
                let q = dims[ai % arrays.len()];
                let d = depths[si % stmts.len()];
                let f = IMat::from_fn(q, d, |i, j| coeffs[(i * d + j) % coeffs.len()]);
                if write {
                    b.write(s, x, f, &vec![0; q]);
                } else {
                    b.read(s, x, f, &vec![0; q]);
                }
            }
            b.build().expect("random nest valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Orientation rules of §2.2.2 hold on every edge.
    #[test]
    fn edge_orientation_rules(nest in random_nest()) {
        let g = AccessGraph::build(&nest, 2);
        for e in &g.edges {
            let acc = nest.access(e.access);
            let (q, d) = acc.f.shape();
            // Full rank ≥ m.
            prop_assert_eq!(acc.f.rank(), q.min(d));
            prop_assert!(q.min(d) >= 2);
            match (q.cmp(&d), e.from) {
                (std::cmp::Ordering::Less, Vertex::Array(_)) => {
                    // Flat: array → statement, weight = F.
                    prop_assert_eq!(&e.weight, &acc.f);
                }
                (std::cmp::Ordering::Greater, Vertex::Stmt(_)) => {
                    // Narrow: statement → array, weight·F = Id.
                    prop_assert!((&e.weight * &acc.f).is_identity());
                }
                (std::cmp::Ordering::Equal, _) => {
                    prop_assert!(e.twin_of_square);
                }
                other => prop_assert!(false, "bad orientation {:?}", other),
            }
        }
    }

    /// The branching is always structurally valid and weight-maximal
    /// against brute force (on the raw integer weights).
    #[test]
    fn branching_valid_and_maximal(nest in random_nest()) {
        let g = AccessGraph::build(&nest, 2);
        let b = maximum_branching(&g);
        prop_assert!(is_valid_branching(&g, &b));
        if g.edges.len() <= 12 {
            let raw: Vec<(usize, usize, i64)> = g
                .edges
                .iter()
                .map(|e| {
                    (
                        g.vertex_index(e.from),
                        g.vertex_index(e.to),
                        e.int_weight,
                    )
                })
                .collect();
            let best = rescomm_accessgraph::branching::brute_force_branching(
                g.vertices.len(),
                &raw,
            );
            prop_assert_eq!(b.total_weight, best, "suboptimal branching");
        }
    }

    /// Components cover each vertex exactly once and the relative
    /// matrices satisfy every branching edge.
    #[test]
    fn components_consistent(nest in random_nest()) {
        let g = AccessGraph::build(&nest, 2);
        let b = maximum_branching(&g);
        let comps = component_structure(&g, &b, &nest);
        let mut seen = std::collections::HashSet::new();
        for c in &comps {
            for &v in &c.members {
                prop_assert!(seen.insert(v), "vertex {v:?} in two components");
            }
            for &eid in &c.edges {
                let e = &g.edges[eid.0];
                prop_assert_eq!(c.rel[&e.to].clone(), &c.rel[&e.from] * &e.weight);
            }
        }
        prop_assert_eq!(seen.len(), g.vertices.len());
    }

    /// Whatever augment accepts as local must be certified: free edges
    /// satisfy R_u·W = R_v exactly; constrained roots keep a kernel of
    /// dimension ≥ m.
    #[test]
    fn augmentation_certificates(nest in random_nest()) {
        let g = AccessGraph::build(&nest, 2);
        let b = maximum_branching(&g);
        let comps = component_structure(&g, &b, &nest);
        let aug = augment(&g, &b.edges, &comps, 2);
        for k in aug.root_constraints.values() {
            let basis = rescomm_intlin::left_kernel_basis(k)
                .expect("accepted constraint must have kernel");
            prop_assert!(basis.rows() >= 2);
        }
        // local ∪ residual covers all non-twin edges; no overlap.
        let locals: std::collections::HashSet<_> =
            aug.local_edges.iter().copied().collect();
        for e in &aug.residual_edges {
            prop_assert!(!locals.contains(e), "edge both local and residual");
        }
    }

    /// The indexed branching is bit-for-bit identical to the seed
    /// implementation (positional scans + per-start cycle rescans).
    #[test]
    fn branching_matches_reference(nest in random_nest()) {
        let g = AccessGraph::build(&nest, 2);
        let new = maximum_branching(&g);
        let old = rescomm_accessgraph::reference::maximum_branching_reference(&g);
        prop_assert_eq!(new, old);
    }

    /// The dense-index augment and union-find merge produce exactly the
    /// seed implementation's outcomes, locals, residuals and constraints.
    #[test]
    fn augment_and_merge_match_reference(nest in random_nest(), m in 1usize..=2) {
        use rescomm_accessgraph::reference;
        let g = AccessGraph::build(&nest, 2);
        let b = maximum_branching(&g);
        let mut comps_new = component_structure(&g, &b, &nest);
        let mut comps_old = comps_new.clone();
        let mut aug_new = augment(&g, &b.edges, &comps_new, m);
        let mut aug_old = reference::augment_reference(&g, &b.edges, &comps_old, m);
        prop_assert_eq!(&aug_new.outcomes, &aug_old.outcomes);
        prop_assert_eq!(&aug_new.local_edges, &aug_old.local_edges);
        prop_assert_eq!(&aug_new.residual_edges, &aug_old.residual_edges);
        prop_assert_eq!(&aug_new.root_constraints, &aug_old.root_constraints);
        rescomm_accessgraph::merge_cross_components(&g, &mut comps_new, &mut aug_new, m);
        reference::merge_cross_components_reference(&g, &mut comps_old, &mut aug_old, m);
        prop_assert_eq!(&aug_new.outcomes, &aug_old.outcomes);
        prop_assert_eq!(&aug_new.local_edges, &aug_old.local_edges);
        prop_assert_eq!(&aug_new.residual_edges, &aug_old.residual_edges);
        prop_assert_eq!(comps_new.len(), comps_old.len());
        for (cn, co) in comps_new.iter().zip(&comps_old) {
            prop_assert_eq!(cn.root, co.root);
            prop_assert_eq!(&cn.members, &co.members);
            prop_assert_eq!(&cn.rel, &co.rel);
            prop_assert_eq!(&cn.edges, &co.edges);
        }
    }
}
