//! Construction of the access graph `G(V, E, m)`.
//!
//! Definition (§2.2.2 of the paper): one vertex per array and per
//! statement; for every access `x[F·I + c]` of statement `S` with `F` of
//! full rank `min(q_x, d) ≥ m`:
//!
//! * `q_x < d` (flat `F`): edge `x → S`, weight matrix `F` — given `M_x` of
//!   rank `m` one can always set `M_S = M_x·F` (Lemma 1);
//! * `q_x > d` (narrow `F`): edge `S → x`, weight matrix any `G` with
//!   `G·F = Id` (remark at the end of §2.2.2; the true pseudo-inverse is
//!   rational in general, so we search a small *integer* one) — given `M_S`
//!   one sets `M_x = M_S·G`;
//! * `q_x = d` (square): a double-arrow edge; direction `x → S` always
//!   works with weight `F`, direction `S → x` needs `F` unimodular for the
//!   allocation to stay integral.
//!
//! Accesses whose matrix is rank-deficient or of rank < `m` are *excluded*
//! (they are dealt with later: a rank-deficient access can still turn into
//! a broadcast, cf. the motivating example's `F8`).

use rescomm_intlin::{small_left_inverse, IMat};
use rescomm_loopnest::{AccessId, ArrayId, LoopNest, StmtId};
use std::collections::HashMap;
use std::fmt;

/// A vertex of the access graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Vertex {
    /// An array variable.
    Array(ArrayId),
    /// A statement.
    Stmt(StmtId),
}

/// Identifier of a directed edge in the access graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub usize);

/// A directed edge of the access graph: choosing it makes the underlying
/// communication local by setting `M_to = M_from · weight`.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Edge identifier (index into [`AccessGraph::edges`]).
    pub id: EdgeId,
    /// The access this edge represents.
    pub access: AccessId,
    /// Source vertex.
    pub from: Vertex,
    /// Destination vertex.
    pub to: Vertex,
    /// Weight matrix `W`: local iff `M_to = M_from · W`.
    pub weight: IMat,
    /// Integer weight for the branching: `rank F`, a consistent estimate of
    /// the communication volume (§2.2.3).
    pub int_weight: i64,
    /// `true` if this edge is one direction of a square (double-arrow)
    /// access; its twin has the same `access`.
    pub twin_of_square: bool,
}

/// Why an access did not produce a graph edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Exclusion {
    /// `F` is rank-deficient.
    RankDeficient,
    /// `rank F < m`: the communication is too small to distribute over the
    /// full target grid; the heuristic ignores it.
    RankBelowTarget,
    /// Narrow `F` with no integer left inverse (non-primitive lattice).
    NoIntegerInverse,
}

/// The access graph of a nest for target dimension `m`.
#[derive(Debug, Clone)]
pub struct AccessGraph {
    /// Target virtual-grid dimension.
    pub m: usize,
    /// All vertices (arrays first, then statements; order is stable).
    pub vertices: Vec<Vertex>,
    /// All directed edges (a square access contributes two).
    pub edges: Vec<Edge>,
    /// Accesses that produced no edge, with the reason.
    pub excluded: Vec<(AccessId, Exclusion)>,
    /// Number of array vertices; statement vertices follow them in
    /// [`AccessGraph::vertices`], making [`AccessGraph::vertex_index`] O(1).
    pub n_arrays: usize,
    /// Number of accesses in the source nest (edge ids per access live in
    /// `access_edge_span`).
    pub n_accesses: usize,
    /// Per access id, the half-open range of edge ids it produced (edges of
    /// one access are pushed contiguously; excluded accesses get an empty
    /// range). This is the access → edges adjacency used by `augment`.
    access_edge_span: Vec<(u32, u32)>,
}

/// What one access contributes to the graph, as a pure function of
/// `(F, m)` — classification (excluded or not, and why), edge directions,
/// and weight matrices. Everything position-dependent (which statement,
/// which array, edge ids) is applied at materialization time.
#[derive(Debug, Clone)]
enum CachedAccess {
    /// The access produces no edge.
    Excluded(Exclusion),
    /// The access produces these directed edges.
    Edges {
        /// `min(q, d)` = `rank F` (full by construction): the by-rank
        /// integer weight.
        full: i64,
        /// `true` iff the access is square (its edges are twins).
        square: bool,
        /// `(array_to_stmt, weight matrix)` per directed edge.
        dirs: Vec<(bool, IMat)>,
    },
}

/// Classify one access matrix: exclusion or edge set. The expensive parts
/// (rank, the integer left-inverse search, unimodular inversion) all live
/// here, and depend only on `(f, m)`.
fn classify_access(f: &IMat, m: usize) -> CachedAccess {
    let (q, d) = f.shape();
    let full = q.min(d);
    if f.rank() < full {
        return CachedAccess::Excluded(Exclusion::RankDeficient);
    }
    if full < m {
        return CachedAccess::Excluded(Exclusion::RankBelowTarget);
    }
    if q < d {
        // Flat: array → statement with weight F.
        CachedAccess::Edges {
            full: full as i64,
            square: false,
            dirs: vec![(true, f.clone())],
        }
    } else if q > d {
        // Narrow: statement → array with an integer G, G·F = Id.
        match small_left_inverse(f, 2) {
            Ok(g) => CachedAccess::Edges {
                full: full as i64,
                square: false,
                dirs: vec![(false, g)],
            },
            Err(_) => CachedAccess::Excluded(Exclusion::NoIntegerInverse),
        }
    } else {
        // Square: x → S always; S → x only if F is unimodular.
        let mut dirs = vec![(true, f.clone())];
        if matches!(f.det(), 1 | -1) {
            let inv = f.inverse_unimodular().expect("unimodular inverse");
            dirs.push((false, inv));
        }
        CachedAccess::Edges {
            full: full as i64,
            square: true,
            dirs,
        }
    }
}

/// Memo for the per-access work of [`AccessGraph::build_weighted`].
///
/// Exclusion checks and edge-weight matrices are pure functions of the
/// access matrix `F` and the target dimension `m` — in particular the
/// integer left-inverse search for narrow accesses, which dominates build
/// time on nests with store accesses. Repeated builds (batch serving,
/// parameter sweeps, `map_nest_with` under a warm [`AnalysisCache`])
/// replay them from here via [`AccessGraph::build_weighted_cached`].
#[derive(Debug, Default, Clone)]
pub struct GraphBuildCache {
    map: HashMap<(IMat, usize), CachedAccess>,
}

impl GraphBuildCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoized `(F, m)` classifications.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drop all memoized classifications.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

impl AccessGraph {
    /// Build the access graph of `nest` for an `m`-dimensional target grid
    /// (integer edge weights = `rank F`, the paper's volume estimate).
    pub fn build(nest: &LoopNest, m: usize) -> Self {
        Self::build_weighted(nest, m, true)
    }

    /// Build with a choice of weighting: `by_rank = true` gives the
    /// paper's volume-prioritized weights, `false` gives unit weights
    /// (the ablation: a plain maximum-cardinality branching).
    pub fn build_weighted(nest: &LoopNest, m: usize, by_rank: bool) -> Self {
        Self::build_impl(nest, m, by_rank, None)
    }

    /// [`AccessGraph::build_weighted`] with per-access memoization: the
    /// classification and weight matrices of each distinct `(F, m)` pair
    /// are computed once and replayed from `cache` thereafter.
    pub fn build_weighted_cached(
        nest: &LoopNest,
        m: usize,
        by_rank: bool,
        cache: &mut GraphBuildCache,
    ) -> Self {
        Self::build_impl(nest, m, by_rank, Some(cache))
    }

    fn build_impl(
        nest: &LoopNest,
        m: usize,
        by_rank: bool,
        mut cache: Option<&mut GraphBuildCache>,
    ) -> Self {
        assert!(m >= 1, "target dimension must be at least 1");
        let mut vertices = Vec::new();
        for i in 0..nest.arrays.len() {
            vertices.push(Vertex::Array(ArrayId(i)));
        }
        for i in 0..nest.statements.len() {
            vertices.push(Vertex::Stmt(StmtId(i)));
        }

        let mut edges: Vec<Edge> = Vec::new();
        let mut excluded = Vec::new();
        let mut access_edge_span = Vec::with_capacity(nest.accesses.len());
        for acc in &nest.accesses {
            let start = edges.len() as u32;
            access_edge_span.push((start, start));
            let fresh;
            let class: &CachedAccess = match cache.as_deref_mut() {
                Some(c) => c
                    .map
                    .entry((acc.f.clone(), m))
                    .or_insert_with(|| classify_access(&acc.f, m)),
                None => {
                    fresh = classify_access(&acc.f, m);
                    &fresh
                }
            };
            match class {
                CachedAccess::Excluded(why) => excluded.push((acc.id, why.clone())),
                CachedAccess::Edges { full, square, dirs } => {
                    let x = Vertex::Array(acc.array);
                    let s = Vertex::Stmt(acc.stmt);
                    let w = if by_rank { *full } else { 1 };
                    for (array_to_stmt, weight) in dirs {
                        let (from, to) = if *array_to_stmt { (x, s) } else { (s, x) };
                        let id = EdgeId(edges.len());
                        edges.push(Edge {
                            id,
                            access: acc.id,
                            from,
                            to,
                            weight: weight.clone(),
                            int_weight: w,
                            twin_of_square: *square,
                        });
                    }
                }
            }
            access_edge_span.last_mut().unwrap().1 = edges.len() as u32;
        }
        AccessGraph {
            m,
            vertices,
            edges,
            excluded,
            n_arrays: nest.arrays.len(),
            n_accesses: nest.accesses.len(),
            access_edge_span,
        }
    }

    /// Index of a vertex in [`AccessGraph::vertices`].
    ///
    /// O(1): vertices are laid out arrays-first, statements-after, so the
    /// index is a direct function of the vertex id.
    #[inline]
    pub fn vertex_index(&self, v: Vertex) -> usize {
        let idx = match v {
            Vertex::Array(ArrayId(i)) => i,
            Vertex::Stmt(StmtId(i)) => self.n_arrays + i,
        };
        debug_assert_eq!(self.vertices.get(idx), Some(&v), "vertex not in graph");
        idx
    }

    /// The edge ids produced by access `a`, as a half-open range into
    /// [`AccessGraph::edges`] (empty for excluded accesses). Edges of one
    /// access are contiguous, so this is the full access → edges adjacency.
    #[inline]
    pub fn access_edge_range(&self, a: AccessId) -> std::ops::Range<usize> {
        let (s, e) = self.access_edge_span[a.0];
        s as usize..e as usize
    }

    /// Number of *accesses* represented in the graph (square accesses
    /// count once even though they contribute two directed edges).
    pub fn represented_accesses(&self) -> usize {
        let mut ids: Vec<AccessId> = self.edges.iter().map(|e| e.access).collect();
        ids.sort();
        ids.dedup();
        ids.len()
    }

    /// The dimension (depth for statements, array rank for arrays)
    /// associated with a vertex — the column count of its allocation
    /// matrix.
    pub fn vertex_dim(&self, nest: &LoopNest, v: Vertex) -> usize {
        match v {
            Vertex::Array(x) => nest.array(x).dim,
            Vertex::Stmt(s) => nest.statement(s).depth,
        }
    }
}

impl fmt::Display for AccessGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "access graph (m = {}): {} vertices, {} directed edges, {} excluded",
            self.m,
            self.vertices.len(),
            self.edges.len(),
            self.excluded.len()
        )?;
        for e in &self.edges {
            writeln!(
                f,
                "  {:?} -> {:?}  (access {:?}, |w| = {})",
                e.from, e.to, e.access, e.int_weight
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescomm_loopnest::examples;

    #[test]
    fn motivating_example_graph_shape() {
        let (nest, ids) = examples::motivating_example(8, 4);
        let g = AccessGraph::build(&nest, 2);
        // 6 vertices: a, b, c, S1, S2, S3.
        assert_eq!(g.vertices.len(), 6);
        // 7 of the 8 accesses are represented (F8 is rank-deficient).
        assert_eq!(g.represented_accesses(), 7);
        assert_eq!(g.excluded.len(), 1);
        assert_eq!(g.excluded[0], (ids.f8, Exclusion::RankDeficient));
    }

    #[test]
    fn motivating_example_orientations() {
        let (nest, ids) = examples::motivating_example(8, 4);
        let g = AccessGraph::build(&nest, 2);
        // F1 narrow (3×2): edge S1 → b.
        let e1 = g.edges.iter().find(|e| e.access == ids.f1).unwrap();
        assert_eq!(e1.from, Vertex::Stmt(ids.s1));
        assert_eq!(e1.to, Vertex::Array(ids.b));
        // Its weight satisfies G·F1 = Id.
        let f1 = &nest.access(ids.f1).f;
        assert!((&e1.weight * f1).is_identity());
        // F6 flat (2×3): edge a → S2 with weight F6 itself.
        let e6 = g.edges.iter().find(|e| e.access == ids.f6).unwrap();
        assert_eq!(e6.from, Vertex::Array(ids.a));
        assert_eq!(e6.to, Vertex::Stmt(ids.s2));
        assert_eq!(e6.weight, nest.access(ids.f6).f);
        // F5 square identity: double arrow (two edges).
        let e5: Vec<_> = g.edges.iter().filter(|e| e.access == ids.f5).collect();
        assert_eq!(e5.len(), 2);
        assert!(e5.iter().all(|e| e.twin_of_square));
    }

    #[test]
    fn motivating_example_weights() {
        let (nest, ids) = examples::motivating_example(8, 4);
        let g = AccessGraph::build(&nest, 2);
        // Depth-3 square accesses have weight 3 ("edges of maximum weight").
        for e in &g.edges {
            let expect = nest.access(e.access).f.rank() as i64;
            assert_eq!(e.int_weight, expect);
        }
        let w5 = g
            .edges
            .iter()
            .find(|e| e.access == ids.f5)
            .unwrap()
            .int_weight;
        let w3 = g
            .edges
            .iter()
            .find(|e| e.access == ids.f3)
            .unwrap()
            .int_weight;
        assert_eq!(w5, 3);
        assert_eq!(w3, 2);
    }

    #[test]
    fn rank_below_target_excluded() {
        // With m = 3, the 2-D accesses of S1 fall below the target rank.
        let (nest, ids) = examples::motivating_example(8, 4);
        let g = AccessGraph::build(&nest, 3);
        assert!(g
            .excluded
            .iter()
            .any(|(a, r)| *a == ids.f2 && *r == Exclusion::RankBelowTarget));
        // F5 (3×3, rank 3) survives.
        assert!(g.edges.iter().any(|e| e.access == ids.f5));
    }

    #[test]
    fn square_non_unimodular_gets_single_direction() {
        use rescomm_intlin::IMat;
        use rescomm_loopnest::{Domain, NestBuilder};
        let mut b = NestBuilder::new("t");
        let x = b.array("x", 2);
        let s = b.statement("S", 2, Domain::cube(2, 4));
        // det = 2: no integral inverse.
        b.read(s, x, IMat::from_rows(&[&[2, 0], &[0, 1]]), &[0, 0]);
        let nest = b.build().unwrap();
        let g = AccessGraph::build(&nest, 2);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.edges[0].from, Vertex::Array(x));
    }

    #[test]
    fn matmul_graph() {
        let nest = examples::matmul(4);
        let g = AccessGraph::build(&nest, 2);
        // Three flat accesses: three array→statement edges.
        assert_eq!(g.edges.len(), 3);
        assert!(g.edges.iter().all(|e| matches!(e.from, Vertex::Array(_))));
        assert!(g.excluded.is_empty());
    }

    #[test]
    fn gauss_graph_excludes_pivot() {
        let nest = examples::gauss_elim(4);
        let g = AccessGraph::build(&nest, 2);
        // The A[k,k] access (rank 1) is excluded; four flat rank-2 edges.
        assert_eq!(g.excluded.len(), 1);
        assert_eq!(g.excluded[0].1, Exclusion::RankDeficient);
        assert_eq!(g.edges.len(), 4);
    }

    #[test]
    fn vertex_dims() {
        let (nest, ids) = examples::motivating_example(4, 2);
        let g = AccessGraph::build(&nest, 2);
        assert_eq!(g.vertex_dim(&nest, Vertex::Array(ids.a)), 2);
        assert_eq!(g.vertex_dim(&nest, Vertex::Array(ids.b)), 3);
        assert_eq!(g.vertex_dim(&nest, Vertex::Stmt(ids.s1)), 2);
        assert_eq!(g.vertex_dim(&nest, Vertex::Stmt(ids.s2)), 3);
    }
}
