//! Construction of the access graph `G(V, E, m)`.
//!
//! Definition (§2.2.2 of the paper): one vertex per array and per
//! statement; for every access `x[F·I + c]` of statement `S` with `F` of
//! full rank `min(q_x, d) ≥ m`:
//!
//! * `q_x < d` (flat `F`): edge `x → S`, weight matrix `F` — given `M_x` of
//!   rank `m` one can always set `M_S = M_x·F` (Lemma 1);
//! * `q_x > d` (narrow `F`): edge `S → x`, weight matrix any `G` with
//!   `G·F = Id` (remark at the end of §2.2.2; the true pseudo-inverse is
//!   rational in general, so we search a small *integer* one) — given `M_S`
//!   one sets `M_x = M_S·G`;
//! * `q_x = d` (square): a double-arrow edge; direction `x → S` always
//!   works with weight `F`, direction `S → x` needs `F` unimodular for the
//!   allocation to stay integral.
//!
//! Accesses whose matrix is rank-deficient or of rank < `m` are *excluded*
//! (they are dealt with later: a rank-deficient access can still turn into
//! a broadcast, cf. the motivating example's `F8`).

use rescomm_intlin::{small_left_inverse, IMat};
use rescomm_loopnest::{AccessId, ArrayId, LoopNest, StmtId};
use std::fmt;

/// A vertex of the access graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Vertex {
    /// An array variable.
    Array(ArrayId),
    /// A statement.
    Stmt(StmtId),
}

/// Identifier of a directed edge in the access graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub usize);

/// A directed edge of the access graph: choosing it makes the underlying
/// communication local by setting `M_to = M_from · weight`.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Edge identifier (index into [`AccessGraph::edges`]).
    pub id: EdgeId,
    /// The access this edge represents.
    pub access: AccessId,
    /// Source vertex.
    pub from: Vertex,
    /// Destination vertex.
    pub to: Vertex,
    /// Weight matrix `W`: local iff `M_to = M_from · W`.
    pub weight: IMat,
    /// Integer weight for the branching: `rank F`, a consistent estimate of
    /// the communication volume (§2.2.3).
    pub int_weight: i64,
    /// `true` if this edge is one direction of a square (double-arrow)
    /// access; its twin has the same `access`.
    pub twin_of_square: bool,
}

/// Why an access did not produce a graph edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Exclusion {
    /// `F` is rank-deficient.
    RankDeficient,
    /// `rank F < m`: the communication is too small to distribute over the
    /// full target grid; the heuristic ignores it.
    RankBelowTarget,
    /// Narrow `F` with no integer left inverse (non-primitive lattice).
    NoIntegerInverse,
}

/// The access graph of a nest for target dimension `m`.
#[derive(Debug, Clone)]
pub struct AccessGraph {
    /// Target virtual-grid dimension.
    pub m: usize,
    /// All vertices (arrays first, then statements; order is stable).
    pub vertices: Vec<Vertex>,
    /// All directed edges (a square access contributes two).
    pub edges: Vec<Edge>,
    /// Accesses that produced no edge, with the reason.
    pub excluded: Vec<(AccessId, Exclusion)>,
}

impl AccessGraph {
    /// Build the access graph of `nest` for an `m`-dimensional target grid
    /// (integer edge weights = `rank F`, the paper's volume estimate).
    pub fn build(nest: &LoopNest, m: usize) -> Self {
        Self::build_weighted(nest, m, true)
    }

    /// Build with a choice of weighting: `by_rank = true` gives the
    /// paper's volume-prioritized weights, `false` gives unit weights
    /// (the ablation: a plain maximum-cardinality branching).
    pub fn build_weighted(nest: &LoopNest, m: usize, by_rank: bool) -> Self {
        assert!(m >= 1, "target dimension must be at least 1");
        let mut vertices = Vec::new();
        for i in 0..nest.arrays.len() {
            vertices.push(Vertex::Array(ArrayId(i)));
        }
        for i in 0..nest.statements.len() {
            vertices.push(Vertex::Stmt(StmtId(i)));
        }

        let mut edges: Vec<Edge> = Vec::new();
        let mut excluded = Vec::new();
        for acc in &nest.accesses {
            let f = &acc.f;
            let (q, d) = f.shape();
            let full = q.min(d);
            if f.rank() < full {
                excluded.push((acc.id, Exclusion::RankDeficient));
                continue;
            }
            if full < m {
                excluded.push((acc.id, Exclusion::RankBelowTarget));
                continue;
            }
            let x = Vertex::Array(acc.array);
            let s = Vertex::Stmt(acc.stmt);
            let w = if by_rank { full as i64 } else { 1 };
            let push = |edges: &mut Vec<Edge>, from, to, weight, twin| {
                let id = EdgeId(edges.len());
                edges.push(Edge {
                    id,
                    access: acc.id,
                    from,
                    to,
                    weight,
                    int_weight: w,
                    twin_of_square: twin,
                });
            };
            if q < d {
                // Flat: array → statement with weight F.
                push(&mut edges, x, s, f.clone(), false);
            } else if q > d {
                // Narrow: statement → array with an integer G, G·F = Id.
                match small_left_inverse(f, 2) {
                    Ok(g) => push(&mut edges, s, x, g, false),
                    Err(_) => excluded.push((acc.id, Exclusion::NoIntegerInverse)),
                }
            } else {
                // Square: x → S always; S → x only if F is unimodular.
                push(&mut edges, x, s, f.clone(), true);
                if matches!(f.det(), 1 | -1) {
                    let inv = f.inverse_unimodular().expect("unimodular inverse");
                    push(&mut edges, s, x, inv, true);
                }
            }
        }
        AccessGraph {
            m,
            vertices,
            edges,
            excluded,
        }
    }

    /// Index of a vertex in [`AccessGraph::vertices`].
    pub fn vertex_index(&self, v: Vertex) -> usize {
        self.vertices
            .iter()
            .position(|&u| u == v)
            .expect("vertex not in graph")
    }

    /// Number of *accesses* represented in the graph (square accesses
    /// count once even though they contribute two directed edges).
    pub fn represented_accesses(&self) -> usize {
        let mut ids: Vec<AccessId> = self.edges.iter().map(|e| e.access).collect();
        ids.sort();
        ids.dedup();
        ids.len()
    }

    /// The dimension (depth for statements, array rank for arrays)
    /// associated with a vertex — the column count of its allocation
    /// matrix.
    pub fn vertex_dim(&self, nest: &LoopNest, v: Vertex) -> usize {
        match v {
            Vertex::Array(x) => nest.array(x).dim,
            Vertex::Stmt(s) => nest.statement(s).depth,
        }
    }
}

impl fmt::Display for AccessGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "access graph (m = {}): {} vertices, {} directed edges, {} excluded",
            self.m,
            self.vertices.len(),
            self.edges.len(),
            self.excluded.len()
        )?;
        for e in &self.edges {
            writeln!(
                f,
                "  {:?} -> {:?}  (access {:?}, |w| = {})",
                e.from, e.to, e.access, e.int_weight
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescomm_loopnest::examples;

    #[test]
    fn motivating_example_graph_shape() {
        let (nest, ids) = examples::motivating_example(8, 4);
        let g = AccessGraph::build(&nest, 2);
        // 6 vertices: a, b, c, S1, S2, S3.
        assert_eq!(g.vertices.len(), 6);
        // 7 of the 8 accesses are represented (F8 is rank-deficient).
        assert_eq!(g.represented_accesses(), 7);
        assert_eq!(g.excluded.len(), 1);
        assert_eq!(g.excluded[0], (ids.f8, Exclusion::RankDeficient));
    }

    #[test]
    fn motivating_example_orientations() {
        let (nest, ids) = examples::motivating_example(8, 4);
        let g = AccessGraph::build(&nest, 2);
        // F1 narrow (3×2): edge S1 → b.
        let e1 = g.edges.iter().find(|e| e.access == ids.f1).unwrap();
        assert_eq!(e1.from, Vertex::Stmt(ids.s1));
        assert_eq!(e1.to, Vertex::Array(ids.b));
        // Its weight satisfies G·F1 = Id.
        let f1 = &nest.access(ids.f1).f;
        assert!((&e1.weight * f1).is_identity());
        // F6 flat (2×3): edge a → S2 with weight F6 itself.
        let e6 = g.edges.iter().find(|e| e.access == ids.f6).unwrap();
        assert_eq!(e6.from, Vertex::Array(ids.a));
        assert_eq!(e6.to, Vertex::Stmt(ids.s2));
        assert_eq!(e6.weight, nest.access(ids.f6).f);
        // F5 square identity: double arrow (two edges).
        let e5: Vec<_> = g.edges.iter().filter(|e| e.access == ids.f5).collect();
        assert_eq!(e5.len(), 2);
        assert!(e5.iter().all(|e| e.twin_of_square));
    }

    #[test]
    fn motivating_example_weights() {
        let (nest, ids) = examples::motivating_example(8, 4);
        let g = AccessGraph::build(&nest, 2);
        // Depth-3 square accesses have weight 3 ("edges of maximum weight").
        for e in &g.edges {
            let expect = nest.access(e.access).f.rank() as i64;
            assert_eq!(e.int_weight, expect);
        }
        let w5 = g
            .edges
            .iter()
            .find(|e| e.access == ids.f5)
            .unwrap()
            .int_weight;
        let w3 = g
            .edges
            .iter()
            .find(|e| e.access == ids.f3)
            .unwrap()
            .int_weight;
        assert_eq!(w5, 3);
        assert_eq!(w3, 2);
    }

    #[test]
    fn rank_below_target_excluded() {
        // With m = 3, the 2-D accesses of S1 fall below the target rank.
        let (nest, ids) = examples::motivating_example(8, 4);
        let g = AccessGraph::build(&nest, 3);
        assert!(g
            .excluded
            .iter()
            .any(|(a, r)| *a == ids.f2 && *r == Exclusion::RankBelowTarget));
        // F5 (3×3, rank 3) survives.
        assert!(g.edges.iter().any(|e| e.access == ids.f5));
    }

    #[test]
    fn square_non_unimodular_gets_single_direction() {
        use rescomm_intlin::IMat;
        use rescomm_loopnest::{Domain, NestBuilder};
        let mut b = NestBuilder::new("t");
        let x = b.array("x", 2);
        let s = b.statement("S", 2, Domain::cube(2, 4));
        // det = 2: no integral inverse.
        b.read(s, x, IMat::from_rows(&[&[2, 0], &[0, 1]]), &[0, 0]);
        let nest = b.build().unwrap();
        let g = AccessGraph::build(&nest, 2);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.edges[0].from, Vertex::Array(x));
    }

    #[test]
    fn matmul_graph() {
        let nest = examples::matmul(4);
        let g = AccessGraph::build(&nest, 2);
        // Three flat accesses: three array→statement edges.
        assert_eq!(g.edges.len(), 3);
        assert!(g.edges.iter().all(|e| matches!(e.from, Vertex::Array(_))));
        assert!(g.excluded.is_empty());
    }

    #[test]
    fn gauss_graph_excludes_pivot() {
        let nest = examples::gauss_elim(4);
        let g = AccessGraph::build(&nest, 2);
        // The A[k,k] access (rank 1) is excluded; four flat rank-2 edges.
        assert_eq!(g.excluded.len(), 1);
        assert_eq!(g.excluded[0].1, Exclusion::RankDeficient);
        assert_eq!(g.edges.len(), 4);
    }

    #[test]
    fn vertex_dims() {
        let (nest, ids) = examples::motivating_example(4, 2);
        let g = AccessGraph::build(&nest, 2);
        assert_eq!(g.vertex_dim(&nest, Vertex::Array(ids.a)), 2);
        assert_eq!(g.vertex_dim(&nest, Vertex::Array(ids.b)), 3);
        assert_eq!(g.vertex_dim(&nest, Vertex::Stmt(ids.s1)), 2);
        assert_eq!(g.vertex_dim(&nest, Vertex::Stmt(ids.s2)), 3);
    }
}
