//! # rescomm-accessgraph — the access graph and its maximum branching
//!
//! Step 1 of the paper's heuristic (§2.2, §6): build the *access graph*
//! `G(V, E, m)` of a loop nest — vertices are statements and arrays, one
//! edge per full-rank affine access of rank ≥ `m` — then extract a
//! **maximum branching** (Edmonds) so that as many communications as
//! possible, with priority to those moving the most data, can be zeroed
//! out, and finally try to re-add the left-over edges when their
//! path/cycle compatibility conditions hold.
//!
//! * [`graph`] — graph construction with the paper's orientation rules
//!   (flat access ⇒ array→statement with weight `F`; narrow ⇒
//!   statement→array with weight a `G` s.t. `G·F = Id`; square unimodular ⇒
//!   both directions), integer weights = `rank F`;
//! * [`branching`] — Chu–Liu/Edmonds maximum branching with cycle
//!   contraction, validated against brute force;
//! * [`paths`] — relative alignment matrices along branching paths;
//! * [`mod@augment`] — step 1(c): free re-additions (identity cycles /
//!   duplicate paths) and rank-deficient constraint additions
//!   (`M·(F_{p1} − F_{p2}) = 0` with full-rank `M`).

pub mod augment;
pub mod branching;
pub mod dot;
pub mod graph;
pub mod paths;
pub mod reference;

pub use augment::{augment, merge_cross_components, AugmentOutcome, Augmented};
pub use branching::{maximum_branching, Branching};
pub use dot::to_dot;
pub use graph::{AccessGraph, Edge, EdgeId, Exclusion, GraphBuildCache, Vertex};
pub use paths::{component_structure, Component};
