//! Step 1(c) of the heuristic: re-adding non-branching edges.
//!
//! After the maximum branching is extracted, each remaining edge `u → v`
//! of the access graph is examined (§2.2.3, §6):
//!
//! * if both endpoints already lie in the same component, the edge imposes
//!   `M_root·R_u·W = M_root·R_v`. When `R_u·W = R_v` exactly (a multiple
//!   path of equal matrix weight, or a cycle whose weight product is the
//!   identity) the edge is **free**: it can be added and its communication
//!   is local for *every* choice of `M_root`;
//! * otherwise, with `K = R_u·W − R_v ≠ 0`, the communication is local
//!   only for roots satisfying `M_root·K = 0`. That is possible with a
//!   full-rank `M_root` iff the left kernel of the accumulated constraint
//!   matrix `[K₁ | K₂ | …]` still has dimension ≥ `m` — the paper's
//!   "`F_{p1} − F_{p2}` of deficient rank: it can or not be possible";
//! * edges across two components are left for the residual-communication
//!   optimizer (the branching, being maximum, had its reasons).

use crate::graph::{AccessGraph, EdgeId, Vertex};
use crate::paths::Component;
use rescomm_intlin::{left_kernel_basis, IMat};
use std::collections::HashMap;

/// Outcome of examining one non-branching edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AugmentOutcome {
    /// `R_u·W = R_v`: local for free (identity cycle / duplicate path).
    Free,
    /// Local only under the recorded root constraint, which is satisfiable
    /// with a full-rank root; the constraint was accepted.
    Constrained,
    /// The constraint would make a full-rank root impossible; edge stays
    /// residual.
    Residual,
    /// Endpoints in different components; edge stays residual.
    CrossComponent,
    /// A cross-component edge whose compatibility equation solved: the two
    /// components were merged and the edge is local
    /// (see [`merge_cross_components`]).
    Merged,
}

/// Result of the augmentation pass for one component set.
#[derive(Debug, Clone)]
pub struct Augmented {
    /// Per-edge outcome for every non-branching edge.
    pub outcomes: Vec<(EdgeId, AugmentOutcome)>,
    /// Edges now known local (branching ∪ free ∪ constrained).
    pub local_edges: Vec<EdgeId>,
    /// Residual edges (to hand to the macro-communication detector and
    /// the decomposer).
    pub residual_edges: Vec<EdgeId>,
    /// Per component-root accumulated constraint `M_root·K = 0`
    /// (`None` = unconstrained root).
    pub root_constraints: HashMap<Vertex, IMat>,
    /// Edge id → index into `outcomes` (`u32::MAX` for branching edges,
    /// which have no outcome entry), so updating one edge's outcome is O(1).
    outcome_slot: Vec<u32>,
}

impl Augmented {
    /// Build the edge-id → outcome index from the outcome list.
    pub(crate) fn from_parts(
        outcomes: Vec<(EdgeId, AugmentOutcome)>,
        local_edges: Vec<EdgeId>,
        residual_edges: Vec<EdgeId>,
        root_constraints: HashMap<Vertex, IMat>,
        n_edges: usize,
    ) -> Self {
        let mut outcome_slot = vec![u32::MAX; n_edges];
        for (i, (eid, _)) in outcomes.iter().enumerate() {
            outcome_slot[eid.0] = i as u32;
        }
        Augmented {
            outcomes,
            local_edges,
            residual_edges,
            root_constraints,
            outcome_slot,
        }
    }

    /// The recorded outcome for a non-branching edge (`None` for edges in
    /// the branching, which have no outcome entry).
    pub fn outcome_of(&self, eid: EdgeId) -> Option<&AugmentOutcome> {
        match self.outcome_slot.get(eid.0) {
            Some(&i) if i != u32::MAX => Some(&self.outcomes[i as usize].1),
            _ => None,
        }
    }

    /// O(1) outcome update through the edge-id index.
    fn set_outcome(&mut self, eid: EdgeId, o: AugmentOutcome) {
        let i = self.outcome_slot[eid.0];
        debug_assert_ne!(i, u32::MAX, "edge {eid:?} has no outcome entry");
        self.outcomes[i as usize].1 = o;
    }
}

/// Run the augmentation pass.
///
/// `branching_edges` are the already-local edges; `components` the
/// structure from [`crate::paths::component_structure`]; `m` the target
/// grid dimension.
pub fn augment(
    graph: &AccessGraph,
    branching_edges: &[EdgeId],
    components: &[Component],
    m: usize,
) -> Augmented {
    let in_branching: Vec<bool> = {
        let mut v = vec![false; graph.edges.len()];
        for e in branching_edges {
            v[e.0] = true;
        }
        v
    };
    // Vertex index -> component index (dense; vertex_index is O(1)).
    let mut comp_of: Vec<usize> = vec![usize::MAX; graph.vertices.len()];
    for (ci, c) in components.iter().enumerate() {
        for &v in &c.members {
            comp_of[graph.vertex_index(v)] = ci;
        }
    }

    let mut outcomes = Vec::new();
    let mut local_edges: Vec<EdgeId> = branching_edges.to_vec();
    let mut residual_edges = Vec::new();
    let mut root_constraints: HashMap<Vertex, IMat> = HashMap::new();
    // Track which edge ids belong to an already-local access: the second
    // direction of a square access is the same communication. Sized once by
    // the edge count; marking walks only the access's own edges through the
    // precomputed access → edges adjacency, so the pass is O(E) overall.
    let mut local_access: Vec<bool> = vec![false; graph.edges.len()];
    let mark_access = |local_access: &mut [bool], graph: &AccessGraph, eid: EdgeId| {
        let a = graph.edges[eid.0].access;
        for i in graph.access_edge_range(a) {
            local_access[i] = true;
        }
    };
    for &eid in branching_edges {
        mark_access(&mut local_access, graph, eid);
    }

    // Accesses already decided residual: both directions of a square access
    // express the same locality equation (the constraints differ by an
    // invertible factor), so the twin must not be re-counted.
    let mut residual_access: Vec<bool> = vec![false; graph.n_accesses];

    for e in &graph.edges {
        if in_branching[e.id.0] {
            continue;
        }
        if local_access[e.id.0] {
            // Twin of an already-local square access: nothing to do, and it
            // is not a residual communication either.
            outcomes.push((e.id, AugmentOutcome::Free));
            continue;
        }
        if residual_access[e.access.0] {
            outcomes.push((e.id, AugmentOutcome::Residual));
            continue;
        }
        let (cu, cv) = (
            comp_of[graph.vertex_index(e.from)],
            comp_of[graph.vertex_index(e.to)],
        );
        if cu != cv {
            outcomes.push((e.id, AugmentOutcome::CrossComponent));
            residual_edges.push(e.id);
            residual_access[e.access.0] = true;
            continue;
        }
        let comp = &components[cu];
        let ru = &comp.rel[&e.from];
        let rv = &comp.rel[&e.to];
        let lhs = ru * &e.weight;
        if lhs == *rv {
            outcomes.push((e.id, AugmentOutcome::Free));
            local_edges.push(e.id);
            mark_access(&mut local_access, graph, e.id);
            continue;
        }
        // Constraint K = R_u·W − R_v; accumulate with existing ones.
        let k = &lhs - rv;
        let accumulated = match root_constraints.get(&comp.root) {
            Some(prev) => prev.hstack(&k),
            None => k.clone(),
        };
        // Need a full-rank m root with M·K = 0: the left kernel of the
        // accumulated constraint must have dimension ≥ m.
        let feasible = match left_kernel_basis(&accumulated) {
            Some(basis) => basis.rows() >= m,
            None => false,
        };
        if feasible {
            root_constraints.insert(comp.root, accumulated);
            outcomes.push((e.id, AugmentOutcome::Constrained));
            local_edges.push(e.id);
            mark_access(&mut local_access, graph, e.id);
        } else {
            outcomes.push((e.id, AugmentOutcome::Residual));
            residual_edges.push(e.id);
            residual_access[e.access.0] = true;
        }
    }

    Augmented::from_parts(
        outcomes,
        local_edges,
        residual_edges,
        root_constraints,
        graph.edges.len(),
    )
}

/// Second pass over the `CrossComponent` residuals: try to *merge* the two
/// components so the edge becomes local.
///
/// For an edge `u → v` (locality `M_v = M_u·W`) with `u` in component `cu`
/// (root relation `R_u`) and `v` in `cv` (relation `R_v`), the components
/// unify when the root of one can be expressed from the root of the other:
///
/// * rebase `cv` onto `cu`'s root: find `Z` with `Z·R_v = R_u·W`, then
///   every `w ∈ cv` gets `R'_w = Z·R_w`;
/// * or, symmetrically, rebase `cu` onto `cv`'s root via `Z'·(R_u·W) = R_v`.
///
/// A rebase is accepted only when every rebased relation keeps **full row
/// rank** (so any full-rank seed still yields full-rank allocations, the
/// Lemma-1 guarantee the branching relations enjoy by construction).
/// Components carrying root constraints are left alone (transforming the
/// constraints is possible but the pipeline keeps them rare).
pub fn merge_cross_components(
    graph: &AccessGraph,
    components: &mut Vec<Component>,
    aug: &mut Augmented,
    _m: usize,
) {
    use rescomm_intlin::solve_xf_eq_s;
    // Dense vertex → initial component index; merges are tracked by the
    // union-find on component indices instead of rewriting the map.
    let mut comp_of: Vec<usize> = vec![usize::MAX; graph.vertices.len()];
    for (ci, c) in components.iter().enumerate() {
        for &v in &c.members {
            comp_of[graph.vertex_index(v)] = ci;
        }
    }
    let mut uf = UnionFind::new(components.len());
    let cross: Vec<EdgeId> = aug
        .outcomes
        .iter()
        .filter(|(_, o)| *o == AugmentOutcome::CrossComponent)
        .map(|(e, _)| *e)
        .collect();
    // Edges absorbed by a merge; drained from `residual_edges` in one pass
    // at the end instead of a `retain` per merged edge.
    let mut merged_edge = vec![false; graph.edges.len()];
    for eid in cross {
        let e = &graph.edges[eid.0];
        let (cu, cv) = (
            uf.find(comp_of[graph.vertex_index(e.from)]),
            uf.find(comp_of[graph.vertex_index(e.to)]),
        );
        if cu == cv {
            continue; // already merged through an earlier edge
        }
        if aug.root_constraints.contains_key(&components[cu].root)
            || aug.root_constraints.contains_key(&components[cv].root)
        {
            continue;
        }
        let target = &components[cu].rel[&e.from] * &e.weight; // R_u·W

        // Direction (a): rebase cv onto cu's root.
        let try_a = solve_xf_eq_s(&target, &components[cv].rel[&e.to])
            .ok()
            .map(|f| f.particular)
            .filter(|z| {
                components[cv].rel.values().all(|rw| {
                    // Full row rank keeps the Lemma-1 guarantee alive.
                    (z * rw).rank() == z.rows()
                })
            });
        if let Some(z) = try_a {
            let (absorbed, grown) = (cv, cu);
            apply_merge(components, absorbed, grown, &z, eid);
            uf.absorb(absorbed, grown);
            mark_merged(aug, eid, &mut merged_edge);
            continue;
        }
        // Direction (b): rebase cu onto cv's root.
        let try_b = solve_xf_eq_s(&components[cv].rel[&e.to], &target)
            .ok()
            .map(|f| f.particular)
            .filter(|z| {
                components[cu].rel.values().all(|rw| {
                    let rebased = z * rw;
                    rebased.rank() == z.rows()
                })
            });
        if let Some(z) = try_b {
            let (absorbed, grown) = (cu, cv);
            apply_merge(components, absorbed, grown, &z, eid);
            uf.absorb(absorbed, grown);
            mark_merged(aug, eid, &mut merged_edge);
        }
    }
    if merged_edge.contains(&true) {
        aug.residual_edges.retain(|e| !merged_edge[e.0]);
    }
    // Drop now-empty components (keep indices stable by filtering at the
    // end; comp_of was only internal).
    components.retain(|c| !c.members.is_empty());
}

/// Union-find over component indices with an explicitly directed union:
/// the absorbed component's class is pointed at the grown component's, so
/// lookups after any number of merges stay amortized O(α).
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]]; // path halving
            x = self.parent[x];
        }
        x
    }

    /// Direct the class of `absorbed` into the class of `grown`.
    fn absorb(&mut self, absorbed: usize, grown: usize) {
        let (a, g) = (self.find(absorbed), self.find(grown));
        self.parent[a] = g;
    }
}

fn apply_merge(components: &mut [Component], absorbed: usize, grown: usize, z: &IMat, eid: EdgeId) {
    let moved: Vec<(Vertex, IMat)> = components[absorbed]
        .rel
        .iter()
        .map(|(&w, r)| (w, z * r))
        .collect();
    let moved_members: Vec<Vertex> = std::mem::take(&mut components[absorbed].members);
    let moved_edges: Vec<EdgeId> = std::mem::take(&mut components[absorbed].edges);
    for (w, r) in moved {
        components[grown].rel.insert(w, r);
    }
    components[grown].members.extend(moved_members);
    components[grown].edges.extend(moved_edges);
    components[grown].edges.push(eid);
    components[absorbed].rel.clear();
}

/// O(1) per merged edge: the outcome index points straight at the entry,
/// and residual removal is batched by the caller.
fn mark_merged(aug: &mut Augmented, eid: EdgeId, merged_edge: &mut [bool]) {
    aug.set_outcome(eid, AugmentOutcome::Merged);
    merged_edge[eid.0] = true;
    aug.local_edges.push(eid);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branching::maximum_branching;
    use crate::graph::AccessGraph;
    use crate::paths::component_structure;
    use rescomm_intlin::IMat;
    use rescomm_loopnest::{examples, Domain, NestBuilder};

    mod rescomm_accessgraph_test_helpers {
        pub use crate::augment::merge_cross_components;
        pub use rescomm_intlin::IMat;
        pub use rescomm_loopnest::{Domain, NestBuilder};
    }

    fn run(nest: &rescomm_loopnest::LoopNest, m: usize) -> (AccessGraph, Augmented) {
        let g = AccessGraph::build(nest, m);
        let b = maximum_branching(&g);
        let comps = component_structure(&g, &b, nest);
        let a = augment(&g, &b.edges, &comps, m);
        (g, a)
    }

    #[test]
    fn motivating_example_residuals_are_f3_and_f6() {
        let (nest, ids) = examples::motivating_example(8, 4);
        let (g, aug) = run(&nest, 2);
        let residual_accs: Vec<_> = aug
            .residual_edges
            .iter()
            .map(|e| g.edges[e.0].access)
            .collect();
        assert!(residual_accs.contains(&ids.f3), "F3 must stay residual");
        assert!(residual_accs.contains(&ids.f6), "F6 must stay residual");
        assert_eq!(
            residual_accs.len(),
            2,
            "exactly two residuals: {residual_accs:?}"
        );
        // Five communications are local (the branching).
        let local_accs: std::collections::HashSet<_> = aug
            .local_edges
            .iter()
            .map(|e| g.edges[e.0].access)
            .collect();
        assert_eq!(local_accs.len(), 5);
        assert!(aug.root_constraints.is_empty());
    }

    #[test]
    fn identity_cycle_edge_is_free() {
        // x read twice through the same matrix: second edge duplicates the
        // first path exactly → free.
        let mut bld = NestBuilder::new("dup");
        let x = bld.array("x", 2);
        let s = bld.statement("S", 2, Domain::cube(2, 4));
        let f = IMat::from_rows(&[&[1, 1], &[0, 1]]);
        bld.read(s, x, f.clone(), &[0, 0]);
        bld.read(s, x, f, &[3, 3]); // same matrix, different offset
        let nest = bld.build().unwrap();
        let (g, aug) = run(&nest, 2);
        assert!(aug.residual_edges.is_empty());
        // One branching edge + free twin edges.
        assert!(aug.outcomes.iter().any(|(_, o)| *o == AugmentOutcome::Free));
        let local_accs: std::collections::HashSet<_> = aug
            .local_edges
            .iter()
            .map(|e| g.edges[e.0].access)
            .collect();
        assert_eq!(local_accs.len(), 2);
    }

    #[test]
    fn deficient_rank_constraint_accepted_when_kernel_large() {
        // Two reads whose matrices differ in a rank-1 way that a rank-1
        // target (m = 1) can still kill: M·(F1 − F2) = 0 with M 1×2.
        let mut bld = NestBuilder::new("constrained");
        let x = bld.array("x", 2);
        let s = bld.statement("S", 2, Domain::cube(2, 4));
        bld.read(s, x, IMat::from_rows(&[&[1, 0], &[0, 1]]), &[0, 0]);
        // F2 = F1 + e2·(0,1)ᵗ difference of rank 1 with left kernel (1,0).
        bld.read(s, x, IMat::from_rows(&[&[1, 0], &[1, 1]]), &[0, 0]);
        let nest = bld.build().unwrap();
        let (_, aug) = run(&nest, 1);
        assert!(
            aug.outcomes
                .iter()
                .any(|(_, o)| *o == AugmentOutcome::Constrained),
            "outcomes: {:?}",
            aug.outcomes
        );
        assert!(aug.residual_edges.is_empty());
        assert_eq!(aug.root_constraints.len(), 1);
    }

    #[test]
    fn deficient_rank_constraint_rejected_when_kernel_small() {
        // Same nest but m = 2: killing the rank-1 difference leaves only a
        // rank-1 root — infeasible, the edge stays residual.
        let mut bld = NestBuilder::new("residual");
        let x = bld.array("x", 2);
        let s = bld.statement("S", 2, Domain::cube(2, 4));
        bld.read(s, x, IMat::from_rows(&[&[1, 0], &[0, 1]]), &[0, 0]);
        bld.read(s, x, IMat::from_rows(&[&[1, 0], &[1, 1]]), &[0, 0]);
        let nest = bld.build().unwrap();
        let (_, aug) = run(&nest, 2);
        assert!(aug
            .outcomes
            .iter()
            .any(|(_, o)| *o == AugmentOutcome::Residual));
        assert_eq!(aug.residual_edges.len(), 1);
        assert!(aug.root_constraints.is_empty());
    }

    #[test]
    fn matmul_two_residual_cross_component() {
        let nest = examples::matmul(4);
        let (_, aug) = run(&nest, 2);
        // One access local, the other two stay residual (they enter the
        // same statement vertex from other components).
        assert_eq!(aug.residual_edges.len(), 2);
        assert!(aug
            .outcomes
            .iter()
            .all(|(_, o)| *o != AugmentOutcome::Constrained));
    }

    #[test]
    fn cross_component_merge_unifies_compatible_reads() {
        use rescomm_accessgraph_test_helpers::*;
        // S (depth 3) writes c[Id], reads a[Fa], reads b[Fb] with Fb a row
        // swap of Fa: both reads can be local simultaneously once the
        // components merge.
        let mut bld = NestBuilder::new("mergeable");
        let a = bld.array("a", 2);
        let b = bld.array("b", 2);
        let c = bld.array("c", 3);
        let s = bld.statement("S", 3, Domain::cube(3, 4));
        bld.write(s, c, IMat::identity(3), &[0, 0, 0]);
        bld.read(s, a, IMat::from_rows(&[&[1, 0, 0], &[0, 1, 0]]), &[0, 0]);
        bld.read(s, b, IMat::from_rows(&[&[0, 1, 0], &[1, 0, 0]]), &[0, 0]);
        let nest = bld.build().unwrap();
        let g = AccessGraph::build(&nest, 2);
        let br = maximum_branching(&g);
        let mut comps = component_structure(&g, &br, &nest);
        let mut aug = augment(&g, &br.edges, &comps, 2);
        let before = aug.residual_edges.len();
        merge_cross_components(&g, &mut comps, &mut aug, 2);
        assert!(
            aug.residual_edges.len() < before,
            "merging must absorb at least one residual: {:?}",
            aug.outcomes
        );
        assert!(aug
            .outcomes
            .iter()
            .any(|(_, o)| *o == AugmentOutcome::Merged));
        // One unified component containing all five vertices.
        assert_eq!(comps.iter().filter(|c| !c.members.is_empty()).count(), 1);
        assert_eq!(comps[0].members.len(), 4);
        // Merged relations still satisfy every component edge.
        for &eid in &comps[0].edges {
            let e = &g.edges[eid.0];
            assert_eq!(comps[0].rel[&e.to], &comps[0].rel[&e.from] * &e.weight);
        }
    }

    #[test]
    fn matmul_merge_attempts_fail_cleanly() {
        // matmul's cross edges are genuinely incompatible (at most one
        // operand aligns at full rank): merging must not change anything.
        let nest = examples::matmul(4);
        let g = AccessGraph::build(&nest, 2);
        let br = maximum_branching(&g);
        let mut comps = component_structure(&g, &br, &nest);
        let mut aug = augment(&g, &br.edges, &comps, 2);
        let before = aug.residual_edges.clone();
        merge_cross_components(&g, &mut comps, &mut aug, 2);
        assert_eq!(aug.residual_edges, before);
    }

    #[test]
    fn square_twin_not_double_counted() {
        // A single square access: branching picks one direction, the twin
        // must be reported Free (same communication), not residual.
        let mut bld = NestBuilder::new("square");
        let x = bld.array("x", 2);
        let s = bld.statement("S", 2, Domain::cube(2, 4));
        bld.read(s, x, IMat::from_rows(&[&[1, 1], &[0, 1]]), &[0, 0]);
        let nest = bld.build().unwrap();
        let (_, aug) = run(&nest, 2);
        assert!(aug.residual_edges.is_empty());
    }
}
