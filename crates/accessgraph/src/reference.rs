//! Seed (pre-optimization) implementations of the graph passes, kept as
//! proof-of-equivalence oracles.
//!
//! The optimized passes in [`crate::branching`] and [`crate::augment`]
//! replaced positional vertex scans, per-start cycle rescans, the O(E²)
//! twin marking and the per-merge residual retains with dense indices and
//! a union-find. These functions preserve the original algorithms verbatim
//! (up to the `Augmented` index bookkeeping, which did not exist then) so
//! differential property tests and the `pipeline_baseline` bin can check —
//! and time — old versus new on the same inputs.

use crate::branching::Branching;
use crate::graph::{AccessGraph, EdgeId, Vertex};
use crate::paths::Component;
use crate::{AugmentOutcome, Augmented};
use rescomm_intlin::{left_kernel_basis, solve_xf_eq_s, IMat};
use std::collections::HashMap;

/// Seed maximum branching: positional `vertices.iter().position(..)`
/// lookups, one cycle contracted per recursion level, and a fresh `seen`
/// vector per cycle-scan start vertex. The only deviation from the seed:
/// the chosen edges are sorted at the end, matching the canonical order
/// [`Branching`] now documents (the recursion emitted them in expansion
/// order; the set is identical).
pub fn maximum_branching_reference(graph: &AccessGraph) -> Branching {
    let n = graph.vertices.len();
    let position = |v: Vertex| {
        graph
            .vertices
            .iter()
            .position(|&u| u == v)
            .expect("vertex not in graph")
    };
    let raw: Vec<RawEdge> = graph
        .edges
        .iter()
        .map(|e| RawEdge {
            from: position(e.from),
            to: position(e.to),
            w: e.int_weight,
            orig: e.id.0,
            entry: None,
        })
        .collect();
    let mut chosen = max_branching_raw_ref(n, raw);
    chosen.sort_unstable();
    let total_weight = chosen.iter().map(|&i| graph.edges[i].int_weight).sum();
    Branching {
        edges: chosen.into_iter().map(EdgeId).collect(),
        total_weight,
    }
}

#[derive(Debug, Clone)]
struct RawEdge {
    from: usize,
    to: usize,
    w: i64,
    orig: usize,
    entry: Option<usize>,
}

fn max_branching_raw_ref(n: usize, edges: Vec<RawEdge>) -> Vec<usize> {
    let mut best: Vec<Option<usize>> = vec![None; n];
    for (i, e) in edges.iter().enumerate() {
        if e.w <= 0 || e.from == e.to {
            continue;
        }
        match best[e.to] {
            None => best[e.to] = Some(i),
            Some(j) => {
                let cur = &edges[j];
                if e.w > cur.w || (e.w == cur.w && e.orig < cur.orig) {
                    best[e.to] = Some(i);
                }
            }
        }
    }

    let parent = |v: usize| best[v].map(|i| edges[i].from);
    let mut cycle: Option<Vec<usize>> = None;
    'outer: for start in 0..n {
        let mut seen = vec![false; n];
        let mut v = start;
        loop {
            if seen[v] {
                let mut c = vec![v];
                let mut u = parent(v).unwrap();
                while u != v {
                    c.push(u);
                    u = parent(u).unwrap();
                }
                cycle = Some(c);
                break 'outer;
            }
            seen[v] = true;
            match parent(v) {
                Some(p) => v = p,
                None => break,
            }
        }
    }

    let Some(cyc) = cycle else {
        return best.iter().flatten().map(|&i| edges[i].orig).collect();
    };

    let in_cycle = {
        let mut m = vec![false; n];
        for &v in &cyc {
            m[v] = true;
        }
        m
    };
    let sel_weight = |v: usize| edges[best[v].unwrap()].w;
    let wmin = cyc.iter().map(|&v| sel_weight(v)).min().unwrap();

    let mut contracted: Vec<RawEdge> = Vec::with_capacity(edges.len());
    for e in &edges {
        let fu = in_cycle[e.from];
        let tv = in_cycle[e.to];
        match (fu, tv) {
            (false, false) => contracted.push(e.clone()),
            (false, true) => contracted.push(RawEdge {
                from: e.from,
                to: n,
                w: e.w - sel_weight(e.to) + wmin,
                orig: e.orig,
                entry: Some(e.to),
            }),
            (true, false) => contracted.push(RawEdge {
                from: n,
                to: e.to,
                w: e.w,
                orig: e.orig,
                entry: e.entry,
            }),
            (true, true) => {}
        }
    }

    let sub = max_branching_raw_ref(n + 1, contracted.clone());

    let entry_vertex = sub
        .iter()
        .filter_map(|&orig| {
            contracted
                .iter()
                .find(|e| e.orig == orig && e.to == n)
                .and_then(|e| e.entry)
        })
        .next();

    let mut result = sub;
    match entry_vertex {
        Some(v_in) => {
            for &v in &cyc {
                if v != v_in {
                    result.push(edges[best[v].unwrap()].orig);
                }
            }
        }
        None => {
            let drop = cyc
                .iter()
                .copied()
                .min_by_key(|&v| (sel_weight(v), edges[best[v].unwrap()].orig))
                .unwrap();
            for &v in &cyc {
                if v != drop {
                    result.push(edges[best[v].unwrap()].orig);
                }
            }
        }
    }
    result
}

/// Seed augmentation: `HashMap<Vertex, usize>` component map, `HashSet`
/// residual-access tracking, and twin marking by rescanning every edge of
/// the graph per newly-local edge (the O(E²) path).
pub fn augment_reference(
    graph: &AccessGraph,
    branching_edges: &[EdgeId],
    components: &[Component],
    m: usize,
) -> Augmented {
    let in_branching: Vec<bool> = {
        let mut v = vec![false; graph.edges.len()];
        for e in branching_edges {
            v[e.0] = true;
        }
        v
    };
    let mut comp_of: HashMap<Vertex, usize> = HashMap::new();
    for (ci, c) in components.iter().enumerate() {
        for &v in &c.members {
            comp_of.insert(v, ci);
        }
    }

    let mut outcomes = Vec::new();
    let mut local_edges: Vec<EdgeId> = branching_edges.to_vec();
    let mut residual_edges = Vec::new();
    let mut root_constraints: HashMap<Vertex, IMat> = HashMap::new();
    let mut local_access: Vec<bool> = vec![false; graph.edges.len().max(1)];
    let mark_access = |local_access: &mut Vec<bool>, graph: &AccessGraph, eid: EdgeId| {
        let a = graph.edges[eid.0].access;
        for e in &graph.edges {
            if e.access == a {
                if e.id.0 >= local_access.len() {
                    local_access.resize(e.id.0 + 1, false);
                }
                local_access[e.id.0] = true;
            }
        }
    };
    for &eid in branching_edges {
        mark_access(&mut local_access, graph, eid);
    }

    let mut residual_access: std::collections::HashSet<rescomm_loopnest::AccessId> =
        std::collections::HashSet::new();

    for e in &graph.edges {
        if in_branching[e.id.0] {
            continue;
        }
        if local_access.get(e.id.0).copied().unwrap_or(false) {
            outcomes.push((e.id, AugmentOutcome::Free));
            continue;
        }
        if residual_access.contains(&e.access) {
            outcomes.push((e.id, AugmentOutcome::Residual));
            continue;
        }
        let (cu, cv) = (comp_of[&e.from], comp_of[&e.to]);
        if cu != cv {
            outcomes.push((e.id, AugmentOutcome::CrossComponent));
            residual_edges.push(e.id);
            residual_access.insert(e.access);
            continue;
        }
        let comp = &components[cu];
        let ru = &comp.rel[&e.from];
        let rv = &comp.rel[&e.to];
        let lhs = ru * &e.weight;
        if lhs == *rv {
            outcomes.push((e.id, AugmentOutcome::Free));
            local_edges.push(e.id);
            mark_access(&mut local_access, graph, e.id);
            continue;
        }
        let k = &lhs - rv;
        let accumulated = match root_constraints.get(&comp.root) {
            Some(prev) => prev.hstack(&k),
            None => k.clone(),
        };
        let feasible = match left_kernel_basis(&accumulated) {
            Some(basis) => basis.rows() >= m,
            None => false,
        };
        if feasible {
            root_constraints.insert(comp.root, accumulated);
            outcomes.push((e.id, AugmentOutcome::Constrained));
            local_edges.push(e.id);
            mark_access(&mut local_access, graph, e.id);
        } else {
            outcomes.push((e.id, AugmentOutcome::Residual));
            residual_edges.push(e.id);
            residual_access.insert(e.access);
        }
    }

    Augmented::from_parts(
        outcomes,
        local_edges,
        residual_edges,
        root_constraints,
        graph.edges.len(),
    )
}

/// Seed cross-component merging: `HashMap` component map rebuilt up front,
/// `comp_of` rewritten per moved member, and a full outcome scan plus
/// `residual_edges.retain(..)` per merged edge.
pub fn merge_cross_components_reference(
    graph: &AccessGraph,
    components: &mut Vec<Component>,
    aug: &mut Augmented,
    _m: usize,
) {
    let mut comp_of: HashMap<Vertex, usize> = HashMap::new();
    for (ci, c) in components.iter().enumerate() {
        for &v in &c.members {
            comp_of.insert(v, ci);
        }
    }
    let cross: Vec<EdgeId> = aug
        .outcomes
        .iter()
        .filter(|(_, o)| *o == AugmentOutcome::CrossComponent)
        .map(|(e, _)| *e)
        .collect();
    for eid in cross {
        let e = &graph.edges[eid.0];
        let (cu, cv) = (comp_of[&e.from], comp_of[&e.to]);
        if cu == cv {
            continue;
        }
        if aug.root_constraints.contains_key(&components[cu].root)
            || aug.root_constraints.contains_key(&components[cv].root)
        {
            continue;
        }
        let target = &components[cu].rel[&e.from] * &e.weight;

        let try_a = solve_xf_eq_s(&target, &components[cv].rel[&e.to])
            .ok()
            .map(|f| f.particular)
            .filter(|z| {
                components[cv]
                    .rel
                    .values()
                    .all(|rw| (z * rw).rank() == z.rows())
            });
        if let Some(z) = try_a {
            apply_merge_ref(components, &mut comp_of, cv, cu, &z, eid);
            mark_merged_ref(aug, eid);
            continue;
        }
        let try_b = solve_xf_eq_s(&components[cv].rel[&e.to], &target)
            .ok()
            .map(|f| f.particular)
            .filter(|z| {
                components[cu]
                    .rel
                    .values()
                    .all(|rw| (z * rw).rank() == z.rows())
            });
        if let Some(z) = try_b {
            apply_merge_ref(components, &mut comp_of, cu, cv, &z, eid);
            mark_merged_ref(aug, eid);
        }
    }
    components.retain(|c| !c.members.is_empty());
}

fn apply_merge_ref(
    components: &mut [Component],
    comp_of: &mut HashMap<Vertex, usize>,
    absorbed: usize,
    grown: usize,
    z: &IMat,
    eid: EdgeId,
) {
    let moved: Vec<(Vertex, IMat)> = components[absorbed]
        .rel
        .iter()
        .map(|(&w, r)| (w, z * r))
        .collect();
    let moved_members: Vec<Vertex> = components[absorbed].members.clone();
    let moved_edges: Vec<EdgeId> = components[absorbed].edges.clone();
    for (w, r) in moved {
        components[grown].rel.insert(w, r);
    }
    for w in moved_members {
        components[grown].members.push(w);
        comp_of.insert(w, grown);
    }
    components[grown].edges.extend(moved_edges);
    components[grown].edges.push(eid);
    components[absorbed].members.clear();
    components[absorbed].rel.clear();
    components[absorbed].edges.clear();
}

fn mark_merged_ref(aug: &mut Augmented, eid: EdgeId) {
    for (e, o) in aug.outcomes.iter_mut() {
        if *e == eid {
            *o = AugmentOutcome::Merged;
        }
    }
    aug.residual_edges.retain(|e| *e != eid);
    aug.local_edges.push(eid);
}
