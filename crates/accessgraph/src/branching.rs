//! Maximum branchings via Chu–Liu/Edmonds with cycle contraction.
//!
//! A *branching* of a directed graph is an edge set in which every vertex
//! has at most one incoming edge and which contains no cycle; a *maximum
//! branching* maximizes the total edge weight (Evans & Minieka, cited by
//! the paper). The paper extracts a maximum branching of the access graph
//! so that the zeroed-out communications favour the edges of largest
//! integer weight — the accesses moving the most data.

use crate::graph::{AccessGraph, EdgeId};

/// A maximum branching: the chosen edges and their total integer weight.
///
/// `edges` is sorted by edge id — a canonical order, so two
/// implementations of the algorithm (see [`crate::reference`]) can be
/// compared for equality directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Branching {
    /// Chosen edges of the original graph, ascending by id.
    pub edges: Vec<EdgeId>,
    /// Sum of the chosen edges' integer weights.
    pub total_weight: i64,
}

#[derive(Debug, Clone)]
struct RawEdge {
    from: usize,
    to: usize,
    w: i64,
    /// Index into the original edge list (stable across contractions).
    orig: usize,
}

const NIL: u32 = u32::MAX;

/// Arena of skew-heap nodes, one per input edge, ordered by
/// `(weight desc, original id asc)` — the same strict total order the
/// per-vertex best-edge scan used, so pops are canonical regardless of
/// meld history. `lazy` carries pending weight adjustments for a whole
/// subtree (Edmonds' cycle reweighting applied in O(1) per contraction
/// instead of rewriting every entering edge).
struct Heaps {
    l: Vec<u32>,
    r: Vec<u32>,
    key: Vec<i64>,
    lazy: Vec<i64>,
    orig: Vec<u32>,
}

impl Heaps {
    fn push_down(&mut self, x: u32) {
        let lz = self.lazy[x as usize];
        if lz == 0 {
            return;
        }
        for c in [self.l[x as usize], self.r[x as usize]] {
            if c != NIL {
                self.key[c as usize] += lz;
                self.lazy[c as usize] += lz;
            }
        }
        self.lazy[x as usize] = 0;
    }

    /// `true` when node `a` outranks node `b` (keys already settled).
    fn beats(&self, a: u32, b: u32) -> bool {
        let (ka, kb) = (self.key[a as usize], self.key[b as usize]);
        ka > kb || (ka == kb && self.orig[a as usize] < self.orig[b as usize])
    }

    fn meld(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        self.push_down(a);
        self.push_down(b);
        let (top, other) = if self.beats(a, b) { (a, b) } else { (b, a) };
        let merged = self.meld(self.r[top as usize], other);
        self.r[top as usize] = self.l[top as usize];
        self.l[top as usize] = merged;
        top
    }

    /// Remove the root of `h`, returning the remaining heap.
    fn pop(&mut self, h: u32) -> u32 {
        self.push_down(h);
        self.meld(self.l[h as usize], self.r[h as usize])
    }

    /// Add `delta` to every key in heap `h`.
    fn add(&mut self, h: u32, delta: i64) {
        if h != NIL {
            self.key[h as usize] += delta;
            self.lazy[h as usize] += delta;
        }
    }
}

fn dsu_find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        parent[x as usize] = parent[parent[x as usize] as usize];
        x = parent[x as usize];
    }
    x
}

/// One contraction: the cycle's member forest nodes with their selected
/// in-edges `(forest node, edge index, adjusted weight)`, plus the super
/// node that replaced them.
struct Event {
    node: u32,
    members: Vec<(u32, u32, i64)>,
}

/// Compute a maximum branching of `graph` (using the integer edge weights)
/// and return the chosen edge ids with the total weight.
pub fn maximum_branching(graph: &AccessGraph) -> Branching {
    let n = graph.vertices.len();
    let raw: Vec<RawEdge> = graph
        .edges
        .iter()
        .map(|e| RawEdge {
            from: graph.vertex_index(e.from),
            to: graph.vertex_index(e.to),
            w: e.int_weight,
            orig: e.id.0,
        })
        .collect();
    let chosen = max_branching_raw(n, raw);
    let total_weight = chosen.iter().map(|&i| graph.edges[i].int_weight).sum();
    Branching {
        edges: chosen.into_iter().map(EdgeId).collect(),
        total_weight,
    }
}

/// Chu–Liu/Edmonds in the Tarjan path-growth formulation: components are
/// union-find classes, each carrying a lazy-offset skew heap of its
/// incoming edges. Growing a path of best in-edges either terminates (no
/// positive in-edge, or a finished component is reached) or closes a
/// cycle, which is contracted in O(k log E) — heap melds plus one O(1)
/// lazy reweight per member — instead of the seed recursion's O(E) edge
/// rebuild. Every edge is popped at most once overall, so the whole run
/// is O(E log E); the seed pays O(E) per contraction, O(V·E) on the twin
/// chains square accesses produce (and even batched multi-cycle
/// contraction stays quadratic there, because each contraction exposes
/// the *next* 2-cycle of the chain one level later).
///
/// The per-vertex in-edge choice is a strict total order (weight desc,
/// then lowest original id), so the optimum is canonical and independent
/// of contraction and path order — the seed recursion (kept in
/// [`crate::reference`]) picks the same edge set. Returns original edge
/// indices, ascending.
fn max_branching_raw(n: usize, edges: Vec<RawEdge>) -> Vec<usize> {
    let ne = edges.len();
    if n == 0 || ne == 0 {
        return Vec::new();
    }

    // One heap node per edge; self-loops are never selectable, skip them.
    let mut heaps = Heaps {
        l: vec![NIL; ne],
        r: vec![NIL; ne],
        key: edges.iter().map(|e| e.w).collect(),
        lazy: vec![0; ne],
        orig: edges.iter().map(|e| e.orig as u32).collect(),
    };
    let mut heap: Vec<u32> = vec![NIL; n];
    for (i, e) in edges.iter().enumerate() {
        if e.from != e.to {
            heap[e.to] = heaps.meld(heap[e.to], i as u32);
        }
    }

    let mut dsu: Vec<u32> = (0..n as u32).collect();
    let mut size: Vec<u32> = vec![1; n];
    // Contraction forest: leaves 0..n are the vertices, every contraction
    // appends a super node. `chosen` holds a node's selected in-edge
    // `(edge index, adjusted weight)` until the node is itself contracted
    // (the edge then moves into the contraction's event record).
    let mut node_of: Vec<u32> = (0..n as u32).collect();
    let mut fparent: Vec<u32> = vec![NIL; n];
    let mut chosen: Vec<Option<(u32, i64)>> = vec![None; n];
    let mut events: Vec<Event> = Vec::new();
    // 0 = untouched, 1 = on the current path, 2 = finished.
    let mut status: Vec<u8> = vec![0; n];
    let mut path: Vec<u32> = Vec::new();

    for start in 0..n as u32 {
        let s = dsu_find(&mut dsu, start);
        if status[s as usize] != 0 {
            continue;
        }
        let mut current = s;
        status[current as usize] = 1;
        path.push(current);
        loop {
            // Best positive in-edge of `current`, discarding edges the
            // contractions have turned into self-loops.
            let mut picked = NIL;
            while heap[current as usize] != NIL {
                let top = heap[current as usize];
                heaps.push_down(top);
                if dsu_find(&mut dsu, edges[top as usize].from as u32) == current {
                    heap[current as usize] = heaps.pop(top);
                    continue;
                }
                if heaps.key[top as usize] <= 0 {
                    break; // offsets only decrease keys; still inert after melds
                }
                heap[current as usize] = heaps.pop(top);
                picked = top;
                break;
            }
            if picked == NIL {
                // `current` is a root of the branching: the path cannot
                // close a cycle through it, so everything on it is final.
                for v in path.drain(..) {
                    status[v as usize] = 2;
                }
                break;
            }
            chosen[node_of[current as usize] as usize] = Some((picked, heaps.key[picked as usize]));
            let p = dsu_find(&mut dsu, edges[picked as usize].from as u32);
            match status[p as usize] {
                2 => {
                    // Entered the finished region: in-edges there are
                    // settled, no cycle can form — the path is final too.
                    for v in path.drain(..) {
                        status[v as usize] = 2;
                    }
                    break;
                }
                0 => {
                    status[p as usize] = 1;
                    path.push(p);
                    current = p;
                }
                _ => {
                    // `p` is on the path: the segment p..=current is a
                    // cycle. Contract it: record the event, reweight each
                    // member's remaining in-edges by (wmin − selected) in
                    // O(1), meld the heaps, union the classes.
                    let snode = fparent.len() as u32;
                    fparent.push(NIL);
                    chosen.push(None);
                    let mut members: Vec<(u32, u32, i64)> = Vec::new();
                    let mut reprs: Vec<u32> = Vec::new();
                    let mut wmin = i64::MAX;
                    loop {
                        let m = path.pop().expect("cycle member on path");
                        let mnode = node_of[m as usize];
                        let (ce, adj) = chosen[mnode as usize]
                            .take()
                            .expect("path member has a selected in-edge");
                        wmin = wmin.min(adj);
                        members.push((mnode, ce, adj));
                        reprs.push(m);
                        fparent[mnode as usize] = snode;
                        if m == p {
                            break;
                        }
                    }
                    let mut merged = NIL;
                    for (&m, &(_, _, adj)) in reprs.iter().zip(&members) {
                        heaps.add(heap[m as usize], wmin - adj);
                        merged = heaps.meld(merged, heap[m as usize]);
                        heap[m as usize] = NIL;
                    }
                    let mut r = reprs[0];
                    for &m in &reprs[1..] {
                        let (a, b) = if size[r as usize] >= size[m as usize] {
                            (r, m)
                        } else {
                            (m, r)
                        };
                        dsu[b as usize] = a;
                        size[a as usize] += size[b as usize];
                        r = a;
                    }
                    heap[r as usize] = merged;
                    node_of[r as usize] = snode;
                    status[r as usize] = 1;
                    path.push(r);
                    current = r;
                    events.push(Event {
                        node: snode,
                        members,
                    });
                }
            }
        }
    }

    // Expansion: outermost contraction first (events are created inner to
    // outer, so reverse order). A contracted cycle entered from outside
    // keeps all its selected edges except the one of the member the entry
    // lands in; an unentered cycle drops a minimum one instead.
    let mut assigned: Vec<Option<u32>> = vec![None; fparent.len()];
    let mut result: Vec<usize> = Vec::new();
    for node in 0..fparent.len() {
        if fparent[node] == NIL {
            if let Some((eidx, _)) = chosen[node] {
                assigned[node] = Some(eidx);
                result.push(edges[eidx as usize].orig);
            }
        }
    }
    for ev in events.iter().rev() {
        let drop_node = match assigned[ev.node as usize] {
            Some(eidx) => {
                // Walk the forest up from the entry edge's original target
                // to the member of *this* contraction containing it.
                let mut x = edges[eidx as usize].to as u32;
                while fparent[x as usize] != ev.node {
                    x = fparent[x as usize];
                    debug_assert_ne!(x, NIL, "entry target outside contracted cycle");
                }
                x
            }
            None => {
                ev.members
                    .iter()
                    .min_by_key(|&&(_, ce, adj)| (adj, edges[ce as usize].orig))
                    .expect("contraction has members")
                    .0
            }
        };
        for &(mnode, ce, _) in &ev.members {
            if mnode == drop_node {
                // Displaced by the entry edge (or dropped): pass the entry
                // down so nested contractions resolve against it.
                assigned[mnode as usize] = assigned[ev.node as usize];
            } else {
                assigned[mnode as usize] = Some(ce);
                result.push(edges[ce as usize].orig);
            }
        }
    }
    result.sort_unstable();
    result
}

/// Brute-force maximum branching over all edge subsets: exponential, only
/// for validation on tiny graphs.
pub fn brute_force_branching(n: usize, edges: &[(usize, usize, i64)]) -> i64 {
    assert!(edges.len() <= 20, "brute force limited to 20 edges");
    let mut best = 0i64;
    for mask in 0u32..(1 << edges.len()) {
        let mut indeg = vec![0usize; n];
        let mut w = 0i64;
        let mut ok = true;
        let mut chosen = Vec::new();
        for (i, &(u, v, ew)) in edges.iter().enumerate() {
            if mask & (1 << i) != 0 {
                indeg[v] += 1;
                if indeg[v] > 1 || u == v {
                    ok = false;
                    break;
                }
                w += ew;
                chosen.push((u, v));
            }
        }
        if !ok {
            continue;
        }
        // Acyclicity: repeatedly remove vertices with no outgoing edge.
        let mut alive: Vec<(usize, usize)> = chosen.clone();
        loop {
            let before = alive.len();
            let has_out: Vec<bool> = {
                let mut h = vec![false; n];
                for &(u, _) in &alive {
                    h[u] = true;
                }
                h
            };
            alive.retain(|&(_, v)| has_out[v]);
            if alive.len() == before {
                break;
            }
        }
        if alive.is_empty() {
            best = best.max(w);
        }
    }
    best
}

/// Validity check used by tests and the pipeline's debug assertions:
/// in-degree ≤ 1 and acyclicity of the chosen edge set.
pub fn is_valid_branching(graph: &AccessGraph, b: &Branching) -> bool {
    let n = graph.vertices.len();
    let mut indeg = vec![0usize; n];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &eid in &b.edges {
        let e = &graph.edges[eid.0];
        let (u, v) = (graph.vertex_index(e.from), graph.vertex_index(e.to));
        indeg[v] += 1;
        if indeg[v] > 1 {
            return false;
        }
        adj[u].push(v);
    }
    // Kahn-style acyclicity on the chosen edges.
    let mut indeg2 = indeg.clone();
    let mut stack: Vec<usize> = (0..n).filter(|&v| indeg2[v] == 0).collect();
    let mut visited = 0;
    while let Some(v) = stack.pop() {
        visited += 1;
        for &w in &adj[v] {
            indeg2[w] -= 1;
            if indeg2[w] == 0 {
                stack.push(w);
            }
        }
    }
    visited == n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescomm_loopnest::examples;

    fn raw(n: usize, edges: &[(usize, usize, i64)]) -> i64 {
        let re: Vec<RawEdge> = edges
            .iter()
            .enumerate()
            .map(|(i, &(u, v, w))| RawEdge {
                from: u,
                to: v,
                w,
                orig: i,
            })
            .collect();
        let chosen = max_branching_raw(n, re);
        chosen.iter().map(|&i| edges[i].2).sum()
    }

    #[test]
    fn simple_chain() {
        assert_eq!(raw(3, &[(0, 1, 5), (1, 2, 3)]), 8);
    }

    #[test]
    fn indegree_conflict_picks_heavier() {
        assert_eq!(raw(3, &[(0, 2, 5), (1, 2, 7)]), 7);
    }

    #[test]
    fn two_cycle_broken() {
        // 0→1 (4) and 1→0 (5) form a cycle; only one survives.
        assert_eq!(raw(2, &[(0, 1, 4), (1, 0, 5)]), 5);
    }

    #[test]
    fn cycle_with_external_entry() {
        // Cycle 0→1→2→0 of weight 3 each, plus 3→1 (weight 2). The
        // optimum takes 3→1, 1→2, 2→0: weight 8.
        assert_eq!(raw(4, &[(0, 1, 3), (1, 2, 3), (2, 0, 3), (3, 1, 2)]), 8);
    }

    #[test]
    fn matches_brute_force_on_randoms() {
        let mut seed = 0xfeedu64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(3);
            (seed >> 33) as usize
        };
        for _ in 0..300 {
            let n = 2 + next() % 4; // 2..=5 vertices
            let ecount = 1 + next() % 9; // 1..=9 edges
            let mut edges = Vec::new();
            for _ in 0..ecount {
                let u = next() % n;
                let mut v = next() % n;
                if v == u {
                    v = (v + 1) % n;
                }
                let w = 1 + (next() % 5) as i64;
                edges.push((u, v, w));
            }
            let got = raw(n, &edges);
            let want = brute_force_branching(n, &edges);
            assert_eq!(got, want, "n={n} edges={edges:?}");
        }
    }

    #[test]
    fn motivating_example_branching() {
        let (nest, ids) = examples::motivating_example(8, 4);
        let g = crate::graph::AccessGraph::build(&nest, 2);
        let b = maximum_branching(&g);
        assert!(is_valid_branching(&g, &b));
        // 5 edges (6 vertices, a as root), and both weight-3 edges in.
        assert_eq!(b.edges.len(), 5);
        assert_eq!(b.total_weight, 3 + 3 + 2 + 2 + 2);
        let accs: Vec<_> = b.edges.iter().map(|e| g.edges[e.0].access).collect();
        assert!(accs.contains(&ids.f5), "weight-3 F5 must be zeroed");
        assert!(accs.contains(&ids.f7), "weight-3 F7 must be zeroed");
        assert!(accs.contains(&ids.f1));
        assert!(accs.contains(&ids.f4));
        // Exactly one of F2/F3 (both enter S1).
        let s1_reads = [ids.f2, ids.f3]
            .iter()
            .filter(|&&a| accs.contains(&a))
            .count();
        assert_eq!(s1_reads, 1);
        // F6 (a→S2) cannot be in: S2 already has its in-edge from b (F5)…
        // unless the branching chose F6 instead; weight says F5 (3) beats
        // F6 (2).
        assert!(!accs.contains(&ids.f6));
    }

    #[test]
    fn matmul_branching_saturates() {
        let nest = examples::matmul(4);
        let g = crate::graph::AccessGraph::build(&nest, 2);
        let b = maximum_branching(&g);
        assert!(is_valid_branching(&g, &b));
        // Three edges all enter the single statement: only one fits.
        assert_eq!(b.edges.len(), 1);
        assert_eq!(b.total_weight, 2);
    }

    #[test]
    fn empty_graph() {
        use rescomm_loopnest::{Domain, NestBuilder};
        let mut bld = NestBuilder::new("empty");
        let _ = bld.array("x", 1);
        let _ = bld.statement("S", 1, Domain::cube(1, 2));
        let nest = bld.build().unwrap();
        let g = crate::graph::AccessGraph::build(&nest, 1);
        let b = maximum_branching(&g);
        assert!(b.edges.is_empty());
        assert_eq!(b.total_weight, 0);
    }
}
