//! Maximum branchings via Chu–Liu/Edmonds with cycle contraction.
//!
//! A *branching* of a directed graph is an edge set in which every vertex
//! has at most one incoming edge and which contains no cycle; a *maximum
//! branching* maximizes the total edge weight (Evans & Minieka, cited by
//! the paper). The paper extracts a maximum branching of the access graph
//! so that the zeroed-out communications favour the edges of largest
//! integer weight — the accesses moving the most data.

use crate::graph::{AccessGraph, EdgeId};

/// A maximum branching: the chosen edges and their total integer weight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Branching {
    /// Chosen edges of the original graph.
    pub edges: Vec<EdgeId>,
    /// Sum of the chosen edges' integer weights.
    pub total_weight: i64,
}

#[derive(Debug, Clone)]
struct RawEdge {
    from: usize,
    to: usize,
    w: i64,
    /// Index into the original edge list (stable across contractions).
    orig: usize,
    /// If this edge enters a contracted cycle, the original vertex of that
    /// cycle it used to enter.
    entry: Option<usize>,
}

/// Compute a maximum branching of `graph` (using the integer edge weights)
/// and return the chosen edge ids with the total weight.
pub fn maximum_branching(graph: &AccessGraph) -> Branching {
    let n = graph.vertices.len();
    let raw: Vec<RawEdge> = graph
        .edges
        .iter()
        .map(|e| RawEdge {
            from: graph.vertex_index(e.from),
            to: graph.vertex_index(e.to),
            w: e.int_weight,
            orig: e.id.0,
            entry: None,
        })
        .collect();
    let chosen = max_branching_raw(n, raw);
    let total_weight = chosen.iter().map(|&i| graph.edges[i].int_weight).sum();
    Branching {
        edges: chosen.into_iter().map(EdgeId).collect(),
        total_weight,
    }
}

/// Core recursion on `(vertex count, edges)`; vertices are `0..n` plus any
/// super-vertices appended by contraction. Returns original edge indices.
fn max_branching_raw(n: usize, edges: Vec<RawEdge>) -> Vec<usize> {
    // 1. Best positive in-edge per vertex (ties broken by lowest original
    //    index for determinism).
    let mut best: Vec<Option<usize>> = vec![None; n]; // index into `edges`
    for (i, e) in edges.iter().enumerate() {
        if e.w <= 0 || e.from == e.to {
            continue;
        }
        match best[e.to] {
            None => best[e.to] = Some(i),
            Some(j) => {
                let cur = &edges[j];
                if e.w > cur.w || (e.w == cur.w && e.orig < cur.orig) {
                    best[e.to] = Some(i);
                }
            }
        }
    }

    // 2. Find a cycle in the selection (follow parents).
    let parent = |v: usize| best[v].map(|i| edges[i].from);
    let mut cycle: Option<Vec<usize>> = None;
    'outer: for start in 0..n {
        let mut seen = vec![false; n];
        let mut v = start;
        loop {
            if seen[v] {
                // Walk again from v to collect the cycle.
                let mut c = vec![v];
                let mut u = parent(v).unwrap();
                while u != v {
                    c.push(u);
                    u = parent(u).unwrap();
                }
                cycle = Some(c);
                break 'outer;
            }
            seen[v] = true;
            match parent(v) {
                Some(p) => v = p,
                None => break,
            }
        }
    }

    let Some(cyc) = cycle else {
        // Acyclic selection: done.
        return best.iter().flatten().map(|&i| edges[i].orig).collect();
    };

    // 3. Contract the cycle into super-vertex `n`.
    let in_cycle = {
        let mut m = vec![false; n];
        for &v in &cyc {
            m[v] = true;
        }
        m
    };
    let sel_weight = |v: usize| edges[best[v].unwrap()].w;
    let wmin = cyc.iter().map(|&v| sel_weight(v)).min().unwrap();

    let mut contracted: Vec<RawEdge> = Vec::with_capacity(edges.len());
    for e in &edges {
        let fu = in_cycle[e.from];
        let tv = in_cycle[e.to];
        match (fu, tv) {
            (false, false) => contracted.push(e.clone()),
            (false, true) => contracted.push(RawEdge {
                from: e.from,
                to: n,
                w: e.w - sel_weight(e.to) + wmin,
                orig: e.orig,
                entry: Some(e.to),
            }),
            (true, false) => contracted.push(RawEdge {
                from: n,
                to: e.to,
                // `to` is untouched, so any entry recorded by an earlier
                // contraction level (for a super-vertex target) survives.
                w: e.w,
                orig: e.orig,
                entry: e.entry,
            }),
            (true, true) => { /* intra-cycle edge: dropped */ }
        }
    }

    let sub = max_branching_raw(n + 1, contracted.clone());

    // 4. Expand: did the sub-solution pick an edge entering the cycle?
    let entry_vertex = sub
        .iter()
        .filter_map(|&orig| {
            contracted
                .iter()
                .find(|e| e.orig == orig && e.to == n)
                .and_then(|e| e.entry)
        })
        .next();

    let mut result = sub;
    match entry_vertex {
        Some(v_in) => {
            // Keep all cycle edges except the one that entered v_in.
            for &v in &cyc {
                if v != v_in {
                    result.push(edges[best[v].unwrap()].orig);
                }
            }
        }
        None => {
            // Keep all cycle edges except a minimum-weight one.
            let drop = cyc
                .iter()
                .copied()
                .min_by_key(|&v| (sel_weight(v), edges[best[v].unwrap()].orig))
                .unwrap();
            for &v in &cyc {
                if v != drop {
                    result.push(edges[best[v].unwrap()].orig);
                }
            }
        }
    }
    result
}

/// Brute-force maximum branching over all edge subsets: exponential, only
/// for validation on tiny graphs.
pub fn brute_force_branching(n: usize, edges: &[(usize, usize, i64)]) -> i64 {
    assert!(edges.len() <= 20, "brute force limited to 20 edges");
    let mut best = 0i64;
    for mask in 0u32..(1 << edges.len()) {
        let mut indeg = vec![0usize; n];
        let mut w = 0i64;
        let mut ok = true;
        let mut chosen = Vec::new();
        for (i, &(u, v, ew)) in edges.iter().enumerate() {
            if mask & (1 << i) != 0 {
                indeg[v] += 1;
                if indeg[v] > 1 || u == v {
                    ok = false;
                    break;
                }
                w += ew;
                chosen.push((u, v));
            }
        }
        if !ok {
            continue;
        }
        // Acyclicity: repeatedly remove vertices with no outgoing edge.
        let mut alive: Vec<(usize, usize)> = chosen.clone();
        loop {
            let before = alive.len();
            let has_out: Vec<bool> = {
                let mut h = vec![false; n];
                for &(u, _) in &alive {
                    h[u] = true;
                }
                h
            };
            alive.retain(|&(_, v)| has_out[v]);
            if alive.len() == before {
                break;
            }
        }
        if alive.is_empty() {
            best = best.max(w);
        }
    }
    best
}

/// Validity check used by tests and the pipeline's debug assertions:
/// in-degree ≤ 1 and acyclicity of the chosen edge set.
pub fn is_valid_branching(graph: &AccessGraph, b: &Branching) -> bool {
    let n = graph.vertices.len();
    let mut indeg = vec![0usize; n];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &eid in &b.edges {
        let e = &graph.edges[eid.0];
        let (u, v) = (graph.vertex_index(e.from), graph.vertex_index(e.to));
        indeg[v] += 1;
        if indeg[v] > 1 {
            return false;
        }
        adj[u].push(v);
    }
    // Kahn-style acyclicity on the chosen edges.
    let mut indeg2 = indeg.clone();
    let mut stack: Vec<usize> = (0..n).filter(|&v| indeg2[v] == 0).collect();
    let mut visited = 0;
    while let Some(v) = stack.pop() {
        visited += 1;
        for &w in &adj[v] {
            indeg2[w] -= 1;
            if indeg2[w] == 0 {
                stack.push(w);
            }
        }
    }
    visited == n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescomm_loopnest::examples;

    fn raw(n: usize, edges: &[(usize, usize, i64)]) -> i64 {
        let re: Vec<RawEdge> = edges
            .iter()
            .enumerate()
            .map(|(i, &(u, v, w))| RawEdge {
                from: u,
                to: v,
                w,
                orig: i,
                entry: None,
            })
            .collect();
        let chosen = max_branching_raw(n, re);
        chosen.iter().map(|&i| edges[i].2).sum()
    }

    #[test]
    fn simple_chain() {
        assert_eq!(raw(3, &[(0, 1, 5), (1, 2, 3)]), 8);
    }

    #[test]
    fn indegree_conflict_picks_heavier() {
        assert_eq!(raw(3, &[(0, 2, 5), (1, 2, 7)]), 7);
    }

    #[test]
    fn two_cycle_broken() {
        // 0→1 (4) and 1→0 (5) form a cycle; only one survives.
        assert_eq!(raw(2, &[(0, 1, 4), (1, 0, 5)]), 5);
    }

    #[test]
    fn cycle_with_external_entry() {
        // Cycle 0→1→2→0 of weight 3 each, plus 3→1 (weight 2). The
        // optimum takes 3→1, 1→2, 2→0: weight 8.
        assert_eq!(raw(4, &[(0, 1, 3), (1, 2, 3), (2, 0, 3), (3, 1, 2)]), 8);
    }

    #[test]
    fn matches_brute_force_on_randoms() {
        let mut seed = 0xfeedu64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(3);
            (seed >> 33) as usize
        };
        for _ in 0..300 {
            let n = 2 + next() % 4; // 2..=5 vertices
            let ecount = 1 + next() % 9; // 1..=9 edges
            let mut edges = Vec::new();
            for _ in 0..ecount {
                let u = next() % n;
                let mut v = next() % n;
                if v == u {
                    v = (v + 1) % n;
                }
                let w = 1 + (next() % 5) as i64;
                edges.push((u, v, w));
            }
            let got = raw(n, &edges);
            let want = brute_force_branching(n, &edges);
            assert_eq!(got, want, "n={n} edges={edges:?}");
        }
    }

    #[test]
    fn motivating_example_branching() {
        let (nest, ids) = examples::motivating_example(8, 4);
        let g = crate::graph::AccessGraph::build(&nest, 2);
        let b = maximum_branching(&g);
        assert!(is_valid_branching(&g, &b));
        // 5 edges (6 vertices, a as root), and both weight-3 edges in.
        assert_eq!(b.edges.len(), 5);
        assert_eq!(b.total_weight, 3 + 3 + 2 + 2 + 2);
        let accs: Vec<_> = b.edges.iter().map(|e| g.edges[e.0].access).collect();
        assert!(accs.contains(&ids.f5), "weight-3 F5 must be zeroed");
        assert!(accs.contains(&ids.f7), "weight-3 F7 must be zeroed");
        assert!(accs.contains(&ids.f1));
        assert!(accs.contains(&ids.f4));
        // Exactly one of F2/F3 (both enter S1).
        let s1_reads = [ids.f2, ids.f3]
            .iter()
            .filter(|&&a| accs.contains(&a))
            .count();
        assert_eq!(s1_reads, 1);
        // F6 (a→S2) cannot be in: S2 already has its in-edge from b (F5)…
        // unless the branching chose F6 instead; weight says F5 (3) beats
        // F6 (2).
        assert!(!accs.contains(&ids.f6));
    }

    #[test]
    fn matmul_branching_saturates() {
        let nest = examples::matmul(4);
        let g = crate::graph::AccessGraph::build(&nest, 2);
        let b = maximum_branching(&g);
        assert!(is_valid_branching(&g, &b));
        // Three edges all enter the single statement: only one fits.
        assert_eq!(b.edges.len(), 1);
        assert_eq!(b.total_weight, 2);
    }

    #[test]
    fn empty_graph() {
        use rescomm_loopnest::{Domain, NestBuilder};
        let mut bld = NestBuilder::new("empty");
        let _ = bld.array("x", 1);
        let _ = bld.statement("S", 1, Domain::cube(1, 2));
        let nest = bld.build().unwrap();
        let g = crate::graph::AccessGraph::build(&nest, 1);
        let b = maximum_branching(&g);
        assert!(b.edges.is_empty());
        assert_eq!(b.total_weight, 0);
    }
}
