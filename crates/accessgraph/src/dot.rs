//! Graphviz DOT rendering of access graphs and branchings — the textual
//! equivalent of the paper's Figures 1–3.

use crate::branching::Branching;
use crate::graph::{AccessGraph, Vertex};
use rescomm_loopnest::LoopNest;
use std::fmt::Write;

fn vertex_name(nest: &LoopNest, v: Vertex) -> String {
    match v {
        Vertex::Array(x) => nest.array(x).name.clone(),
        Vertex::Stmt(s) => nest.statement(s).name.clone(),
    }
}

/// Render the access graph (and optionally a branching, whose edges are
/// drawn bold) as a Graphviz digraph.
pub fn to_dot(graph: &AccessGraph, nest: &LoopNest, branching: Option<&Branching>) -> String {
    let chosen: Vec<bool> = {
        let mut v = vec![false; graph.edges.len()];
        if let Some(b) = branching {
            for e in &b.edges {
                v[e.0] = true;
            }
        }
        v
    };
    let mut out = String::new();
    writeln!(out, "digraph access_graph {{").unwrap();
    writeln!(out, "  rankdir=LR;").unwrap();
    for &v in &graph.vertices {
        let shape = match v {
            Vertex::Array(_) => "ellipse",
            Vertex::Stmt(_) => "box",
        };
        writeln!(out, "  \"{}\" [shape={shape}];", vertex_name(nest, v)).unwrap();
    }
    for e in &graph.edges {
        let style = if chosen[e.id.0] {
            ", style=bold, color=black"
        } else {
            ", color=gray50"
        };
        writeln!(
            out,
            "  \"{}\" -> \"{}\" [label=\"F{} (w={}){}\"{}];",
            vertex_name(nest, e.from),
            vertex_name(nest, e.to),
            e.access.0 + 1,
            e.int_weight,
            if e.twin_of_square { ", square" } else { "" },
            style
        )
        .unwrap();
    }
    for (a, reason) in &graph.excluded {
        writeln!(out, "  // access F{} excluded: {:?}", a.0 + 1, reason).unwrap();
    }
    writeln!(out, "}}").unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branching::maximum_branching;
    use rescomm_loopnest::examples::motivating_example;

    #[test]
    fn dot_contains_all_vertices_and_edges() {
        let (nest, _) = motivating_example(4, 2);
        let g = AccessGraph::build(&nest, 2);
        let dot = to_dot(&g, &nest, None);
        for name in ["a", "b", "c", "S1", "S2", "S3"] {
            assert!(dot.contains(&format!("\"{name}\"")), "missing {name}");
        }
        assert_eq!(dot.matches(" -> ").count(), g.edges.len());
        assert!(dot.contains("excluded"));
    }

    #[test]
    fn branching_edges_are_bold() {
        let (nest, _) = motivating_example(4, 2);
        let g = AccessGraph::build(&nest, 2);
        let b = maximum_branching(&g);
        let dot = to_dot(&g, &nest, Some(&b));
        assert_eq!(dot.matches("style=bold").count(), b.edges.len());
    }

    #[test]
    fn dot_is_parseable_shape() {
        let (nest, _) = motivating_example(4, 2);
        let g = AccessGraph::build(&nest, 2);
        let dot = to_dot(&g, &nest, None);
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}
